//! Adaptive, workload-aware partitioning (§6 future work, implemented):
//! record a query log, re-zone the cluster by access frequency, and
//! watch the hottest shard's load drop. Also demonstrates the
//! distributed `$group` aggregation and polygon queries.
//!
//! ```text
//! cargo run --release --example adaptive_partitioning
//! ```

use sts::core::{Approach, StQuery, StStore, StoreConfig};
use sts::document::DateTime;
use sts::geo::{GeoPoint, GeoPolygon, GeoRect};
use sts::query::{Accumulator, GroupBy};
use sts::workload::fleet::{generate, FleetConfig};
use sts::workload::Record;

fn build_store(records: &[Record]) -> StStore {
    let mut s = StStore::new(StoreConfig {
        approach: Approach::Hil,
        num_shards: 6,
        max_chunk_bytes: 128 * 1024,
        ..Default::default()
    });
    s.bulk_load(records.iter().map(Record::to_document))
        .unwrap();
    s
}

fn main() {
    let records = generate(&FleetConfig {
        records: 30_000,
        vehicles: 150,
        ..Default::default()
    });

    // A realistic dispatcher workload: 9 of 10 queries probe Athens.
    let athens = GeoRect::new(23.60, 37.85, 23.90, 38.10);
    let crete = GeoRect::new(24.8, 35.0, 25.6, 35.6);
    let t0 = DateTime::parse_iso("2018-07-01T00:00:00Z").unwrap();
    let log: Vec<StQuery> = (0..30)
        .map(|i| StQuery {
            rect: if i % 10 == 9 { crete } else { athens },
            t0: t0.plus_millis(i64::from(i) * 4 * 86_400_000),
            t1: t0.plus_millis((i64::from(i) * 4 + 14) * 86_400_000),
        })
        .collect();

    // Baseline: count-balanced zones (§4.2.4).
    let mut plain = build_store(&records);
    plain.apply_zones();
    // Adaptive: weight documents by logged access frequency.
    let mut aware = build_store(&records);
    aware.apply_workload_aware_zones(&log);

    let mut plain_hot = 0u64;
    let mut aware_hot = 0u64;
    for q in &log {
        let (a, ra) = plain.st_query(q);
        let (b, rb) = aware.st_query(q);
        assert_eq!(a.len(), b.len());
        plain_hot += ra.cluster.max_docs_examined();
        aware_hot += rb.cluster.max_docs_examined();
    }
    println!("replaying the 30-query log:");
    println!("  count-balanced zones: hottest-shard work = {plain_hot} doc fetches");
    println!("  workload-aware zones: hottest-shard work = {aware_hot} doc fetches");
    println!(
        "  -> {:.0}% less load on the hottest shard\n",
        100.0 * (1.0 - aware_hot as f64 / plain_hot.max(1) as f64)
    );

    // Analytics on the re-zoned store: average speed per road type
    // inside a polygonal Attica region, one month.
    let attica = GeoPolygon::new(vec![
        GeoPoint::new(23.45, 37.85),
        GeoPoint::new(23.80, 37.80),
        GeoPoint::new(24.05, 38.05),
        GeoPoint::new(23.75, 38.25),
        GeoPoint::new(23.45, 38.10),
    ])
    .unwrap();
    let (region_docs, _) = aware.polygon_query(
        &attica,
        DateTime::parse_iso("2018-08-01T00:00:00Z").unwrap(),
        DateTime::parse_iso("2018-09-01T00:00:00Z").unwrap(),
    );
    println!(
        "polygonal Attica probe: {} traces in August",
        region_docs.len()
    );

    let spec = GroupBy::by(
        "roadType",
        vec![
            ("n".into(), Accumulator::Count),
            ("avgSpeed".into(), Accumulator::Avg("speedKmh".into())),
            ("maxSpeed".into(), Accumulator::Max("speedKmh".into())),
        ],
    );
    let (groups, report) = aware.st_aggregate(
        &StQuery {
            rect: *attica.bbox(),
            t0: DateTime::parse_iso("2018-08-01T00:00:00Z").unwrap(),
            t1: DateTime::parse_iso("2018-09-01T00:00:00Z").unwrap(),
        },
        &spec,
    );
    println!(
        "distributed $group over {} node(s): avg speed per road type",
        report.cluster.nodes()
    );
    for g in &groups {
        println!(
            "  {:<12} n={:<5} avg={:>5.1} km/h max={:>5.1}",
            g.get("_id").unwrap().as_str().unwrap_or("?"),
            g.get("n").unwrap().as_i64().unwrap_or(0),
            g.get("avgSpeed").unwrap().as_f64().unwrap_or(0.0),
            g.get("maxSpeed").unwrap().as_f64().unwrap_or(0.0),
        );
    }
}
