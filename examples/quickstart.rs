//! Quickstart: deploy a Hilbert-sharded spatio-temporal store, load a
//! few thousand GPS records, and run a spatio-temporal range query.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sts::core::{Approach, StQuery, StStore, StoreConfig};
use sts::document::DateTime;
use sts::geo::GeoRect;
use sts::workload::fleet::{generate, FleetConfig};

fn main() {
    // 1. Deploy: 4 shards, Hilbert approach (shard key {hilbertIndex, date}).
    let mut store = StStore::new(StoreConfig {
        approach: Approach::Hil,
        num_shards: 4,
        max_chunk_bytes: 256 * 1024,
        ..Default::default()
    });
    println!("deployed a {}-shard '{}' store", 4, store.approach());

    // 2. Load synthetic fleet trajectories (Greece, July–Nov 2018).
    let records = generate(&FleetConfig {
        records: 20_000,
        vehicles: 100,
        ..Default::default()
    });
    let n = store
        .bulk_load(records.iter().map(|r| r.to_document()))
        .expect("load");
    println!(
        "loaded {n} documents; {} chunks across shards {:?}",
        store.cluster().chunk_map().len(),
        store.cluster().docs_per_shard()
    );

    // 3. Query: central Athens, one day in October.
    let query = StQuery {
        rect: GeoRect::new(23.60, 37.90, 23.85, 38.10),
        t0: DateTime::parse_iso("2018-10-01T00:00:00Z").unwrap(),
        t1: DateTime::parse_iso("2018-10-02T00:00:00Z").unwrap(),
    };
    let (docs, report) = store.st_query(&query);
    println!(
        "query matched {} documents using {} node(s); max keys examined {}, \
         max docs examined {}, hilbert ranges {} (decomposed in {:?})",
        docs.len(),
        report.cluster.nodes(),
        report.cluster.max_keys_examined(),
        report.cluster.max_docs_examined(),
        report.hilbert_ranges,
        report.hilbert_time,
    );
    if let Some(doc) = docs.first() {
        println!("first match: {doc:?}");
    }
}
