//! Zone planning: reproduce §4.2.4 interactively — show how
//! `$bucketAuto` boundaries + one zone per shard trade per-query
//! parallelism for spatio-temporal data locality.
//!
//! ```text
//! cargo run --release --example zone_planning
//! ```

use sts::core::{Approach, StQuery, StStore, StoreConfig};
use sts::document::DateTime;
use sts::geo::GeoRect;
use sts::workload::fleet::{generate, FleetConfig};
use sts::workload::Record;

fn main() {
    let records = generate(&FleetConfig {
        records: 30_000,
        vehicles: 150,
        ..Default::default()
    });

    let probe = StQuery {
        rect: GeoRect::new(23.6, 37.9, 23.9, 38.1), // greater Athens
        t0: DateTime::parse_iso("2018-07-10T00:00:00Z").unwrap(),
        t1: DateTime::parse_iso("2018-10-10T00:00:00Z").unwrap(), // 3 months
    };

    for approach in [Approach::BslST, Approach::Hil] {
        let mut store = StStore::new(StoreConfig {
            approach,
            num_shards: 6,
            max_chunk_bytes: 128 * 1024,
            ..Default::default()
        });
        store
            .bulk_load(records.iter().map(Record::to_document))
            .expect("load");

        let (docs, before) = store.st_query(&probe);
        let spread_before = store.cluster().docs_per_shard();

        store.apply_zones(); // $bucketAuto on the approach's zone field
        let (docs_after, after) = store.st_query(&probe);
        let spread_after = store.cluster().docs_per_shard();

        assert_eq!(
            docs.len(),
            docs_after.len(),
            "zones must not change results"
        );
        println!(
            "== approach {} (zones on `{}`) ==",
            approach,
            match approach {
                Approach::BslST | Approach::BslTS => "date",
                _ => "hilbertIndex",
            }
        );
        println!("  docs/shard before: {spread_before:?}");
        println!("  docs/shard after:  {spread_after:?}");
        println!(
            "  probe query: {} results | nodes {} -> {} | maxKeys {} -> {}",
            docs.len(),
            before.cluster.nodes(),
            after.cluster.nodes(),
            before.cluster.max_keys_examined(),
            after.cluster.max_keys_examined(),
        );
        println!(
            "  zone ranges pinned: {}\n",
            store
                .cluster()
                .zones()
                .map_or(0, <[sts::cluster::Zone]>::len)
        );
    }
    println!(
        "zones shrink the node fan-out of spatially selective queries on the \
         Hilbert store (locality), at the price of less parallelism for the \
         largest scans — the trade-off §5.3 of the paper measures."
    );
}
