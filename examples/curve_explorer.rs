//! Curve explorer: visualize (in ASCII) how the Hilbert curve maps 2D
//! space to 1D, how a query rectangle decomposes into ranges, and why
//! Hilbert clusters better than Z-order — the paper's Fig. 1 and §4.2,
//! hands on.
//!
//! ```text
//! cargo run --release --example curve_explorer
//! ```

use sts::curve::locality::clusters_for_rect;
use sts::curve::{hilbert, CurveGrid, CurveKind, RangeBudget};
use sts::geo::GeoRect;

fn main() {
    // 1. Draw the order-3 Hilbert curve as visit numbers on an 8×8 grid.
    println!("order-3 Hilbert curve (cell = visit order):");
    let order = 3;
    for y in (0..8u64).rev() {
        for x in 0..8u64 {
            print!("{:>4}", hilbert::xy2d(order, x, y));
        }
        println!();
    }

    // 2. Decompose a query rectangle over a unit grid.
    let unit = GeoRect::new(0.0, 0.0, 1.0, 1.0);
    let rect = GeoRect::new(0.30, 0.55, 0.70, 0.80);
    println!("\nquery rectangle {rect:?} on a 64×64 grid:");
    for (kind, name) in [
        (CurveKind::Hilbert, "hilbert"),
        (CurveKind::ZOrder, "zorder"),
    ] {
        let grid = CurveGrid::new(unit, 6, kind);
        let exact = grid.decompose_rect(&rect, RangeBudget::UNLIMITED);
        let budgeted = grid.decompose_rect(&rect, RangeBudget::new(8));
        let span: u64 = exact.iter().map(|(lo, hi)| hi - lo + 1).sum();
        let bspan: u64 = budgeted.iter().map(|(lo, hi)| hi - lo + 1).sum();
        println!(
            "  {name:<8} exact: {:>3} ranges covering {span} cells | budget 8: {:>2} ranges, {bspan} cells ({} false-positive cells)",
            exact.len(),
            budgeted.len(),
            bspan - span,
        );
    }

    // 3. Moon et al.'s clustering comparison over sliding rectangles.
    println!("\nclusters needed per curve (lower = better locality):");
    let mut totals = (0usize, 0usize);
    for i in 0..8 {
        let x = 0.05 + f64::from(i) * 0.1;
        let r = GeoRect::new(x, 0.2, x + 0.12, 0.45);
        let h = clusters_for_rect(&CurveGrid::new(unit, 7, CurveKind::Hilbert), &r);
        let z = clusters_for_rect(&CurveGrid::new(unit, 7, CurveKind::ZOrder), &r);
        totals.0 += h;
        totals.1 += z;
        println!("  window {i}: hilbert {h:>3}  zorder {z:>3}");
    }
    println!(
        "  total    : hilbert {:>3}  zorder {:>3}",
        totals.0, totals.1
    );

    // 4. World vs fitted extents: the hil / hil* precision difference.
    let world = CurveGrid::world(13);
    let fitted = CurveGrid::fitted(GeoRect::new(19.63, 34.93, 28.25, 41.76), 13);
    let athens = sts::geo::GeoPoint::new(23.727539, 37.983810);
    let (wx, wy) = world.cell_of(athens);
    let (fx, fy) = fitted.cell_of(athens);
    println!(
        "\nAthens cell area: hil (world curve) {:.3} km² vs hil* (Greece-fitted) {:.4} km²",
        world.cell_rect(wx, wy).area_km2(),
        fitted.cell_rect(fx, fy).area_km2(),
    );
    println!("same 26 index bits — ~650× finer cells when fitted to the data MBR.");
}
