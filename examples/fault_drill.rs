//! Fault drill: arm MongoDB-style failpoints against a sharded store
//! and watch the router's retries and hedged reads keep query results
//! complete.
//!
//! ```sh
//! cargo run --example fault_drill
//! ```

use std::time::Duration;
use sts::cluster::FailPoint;
use sts::core::{Approach, StQuery, StStore, StoreConfig};
use sts::document::DateTime;
use sts::workload::fleet::{generate, FleetConfig};
use sts::workload::{Record, R_MBR};

fn main() {
    let records = generate(&FleetConfig {
        records: 4_000,
        vehicles: 25,
        ..Default::default()
    });
    let mut store = StStore::new(StoreConfig {
        approach: Approach::Hil,
        num_shards: 6,
        max_chunk_bytes: 48 * 1024,
        data_mbr: R_MBR,
        ..Default::default()
    });
    store
        .bulk_load(records.iter().map(Record::to_document))
        .unwrap();

    // A query box over central Athens, one day of data.
    let q = StQuery {
        rect: sts::geo::GeoRect::new(23.6, 37.9, 23.8, 38.1),
        t0: DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0),
        t1: DateTime::from_ymd_hms(2018, 7, 2, 0, 0, 0),
    };

    let (docs, report) = store.st_query(&q);
    let healthy = docs.len();
    println!(
        "healthy cluster : {healthy} docs from {} shards (partial: {})",
        report.cluster.nodes(),
        report.cluster.partial
    );

    // Drill 1: a shard whose primary never answers in time.
    store.arm_failpoint("drill", FailPoint::latency(2, Duration::from_secs(3600)));
    let (docs, report) = store.st_query(&q);
    println!(
        "slow shard 2    : {} docs, timeouts {}, hedges {}, served-by-replica shards {:?}",
        docs.len(),
        report.cluster.total_timeouts(),
        report.cluster.total_hedges(),
        report.cluster.hedge_served_shards()
    );
    assert_eq!(docs.len(), healthy, "hedged read must hide the slow shard");
    store.disarm_all_failpoints();

    // Drill 2: a flaky primary that throws transient errors.
    store.arm_failpoint("drill", FailPoint::transient(2));
    let (docs, report) = store.st_query(&q);
    println!(
        "flaky shard 2   : {} docs, retries {}, hedges {}",
        docs.len(),
        report.cluster.total_retries(),
        report.cluster.total_hedges()
    );
    assert_eq!(docs.len(), healthy);
    store.disarm_all_failpoints();

    // Drill 3: primary AND replica down — the router reports the loss
    // instead of hiding it.
    store.arm_failpoint("drill", FailPoint::hard_failure(2).on_replica_too());
    let (docs, report) = store.st_query(&q);
    println!(
        "shard 2 gone    : {} docs, partial {}, failed shards {:?}",
        docs.len(),
        report.cluster.partial,
        report.cluster.failed_shards()
    );
    match store.try_st_query(&q) {
        Err(e) => println!("try_st_query    : Err({e})"),
        Ok(_) => println!("try_st_query    : Ok (query missed the dead shard)"),
    }
}
