//! Fleet analytics: the paper's motivating use case (§1) — exploratory
//! analysis of historical vehicle routes with spatio-temporal queries of
//! varying granularity, comparing how each indexing approach serves the
//! same analytical session.
//!
//! ```text
//! cargo run --release --example fleet_analytics
//! ```

use sts::core::{Approach, StQuery, StStore, StoreConfig};
use sts::document::{DateTime, Value};
use sts::geo::GeoRect;
use sts::workload::fleet::{generate, FleetConfig};
use sts::workload::trajectory::assemble;
use sts::workload::Record;

fn main() {
    let records = generate(&FleetConfig {
        records: 40_000,
        vehicles: 200,
        ..Default::default()
    });
    println!(
        "fleet feed: {} GPS records from 200 vehicles\n",
        records.len()
    );

    // The analyst's session: drill-down from a month over Attica to one
    // rush hour in the city centre.
    let sessions = [
        (
            "monthly coverage over Attica",
            StQuery {
                rect: GeoRect::new(23.4, 37.8, 24.1, 38.3),
                t0: DateTime::parse_iso("2018-08-01T00:00:00Z").unwrap(),
                t1: DateTime::parse_iso("2018-09-01T00:00:00Z").unwrap(),
            },
        ),
        (
            "one week, city ring",
            StQuery {
                rect: GeoRect::new(23.65, 37.92, 23.82, 38.05),
                t0: DateTime::parse_iso("2018-08-06T00:00:00Z").unwrap(),
                t1: DateTime::parse_iso("2018-08-13T00:00:00Z").unwrap(),
            },
        ),
        (
            "rush hour, city centre",
            StQuery {
                rect: GeoRect::new(23.72, 37.97, 23.75, 37.99),
                t0: DateTime::parse_iso("2018-08-08T07:00:00Z").unwrap(),
                t1: DateTime::parse_iso("2018-08-08T09:00:00Z").unwrap(),
            },
        ),
    ];

    for approach in [Approach::BslST, Approach::Hil] {
        let mut store = StStore::new(StoreConfig {
            approach,
            num_shards: 6,
            max_chunk_bytes: 256 * 1024,
            ..Default::default()
        });
        store
            .bulk_load(records.iter().map(Record::to_document))
            .expect("load");
        println!("== approach {} ==", approach);
        for (what, q) in &sessions {
            let (docs, report) = store.st_query(q);
            // A tiny bit of analysis: mean speed of the matched traces.
            let speeds: Vec<f64> = docs
                .iter()
                .filter_map(|d| d.get("speedKmh").and_then(Value::as_f64))
                .collect();
            let mean = if speeds.is_empty() {
                0.0
            } else {
                speeds.iter().sum::<f64>() / speeds.len() as f64
            };
            println!(
                "  {what:<28} -> {:>6} traces | nodes {} | maxKeys {:>7} | mean speed {:>5.1} km/h",
                docs.len(),
                report.cluster.nodes(),
                report.cluster.max_keys_examined(),
                mean,
            );
        }
        println!();
    }
    println!(
        "note how the Hilbert store answers the spatially-selective drill-downs \
         from few nodes, while the time-sharded baseline fans out.\n"
    );

    // Deeper analysis of the rush-hour result set: stitch the point
    // documents back into per-vehicle trajectories (§1's use case).
    let mut store = StStore::new(StoreConfig {
        approach: Approach::Hil,
        num_shards: 6,
        max_chunk_bytes: 256 * 1024,
        ..Default::default()
    });
    store
        .bulk_load(records.iter().map(Record::to_document))
        .expect("load");
    let (docs, _) = store.st_query(&sessions[0].1);
    let trajectories = assemble(&docs);
    let trips: usize = trajectories
        .iter()
        .map(|t| t.split_by_gap(600.0).len())
        .sum();
    let km: f64 = trajectories.iter().map(|t| t.length_km()).sum();
    println!(
        "trajectory analysis of the monthly result set: {} vehicles, {} trips, {:.0} km driven",
        trajectories.len(),
        trips,
        km
    );
    if let Some(longest) = trajectories
        .iter()
        .max_by(|a, b| a.length_km().total_cmp(&b.length_km()))
    {
        println!(
            "busiest vehicle: {} ({:.0} km at {:.0} km/h average)",
            longest.vehicle,
            longest.length_km(),
            longest.avg_speed_kmh(),
        );
    }
}
