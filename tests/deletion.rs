//! Spatio-temporal deletion through the router: index consistency,
//! chunk-counter maintenance, and query correctness afterwards.

use sts::core::{Approach, StQuery, StStore, StoreConfig};
use sts::document::DateTime;
use sts::geo::GeoRect;
use sts::workload::synth::{generate, SynthConfig};
use sts::workload::{Record, S_MBR};

fn store(approach: Approach) -> (StStore, Vec<Record>) {
    let records = generate(&SynthConfig {
        records: 6_000,
        ..Default::default()
    });
    let mut s = StStore::new(StoreConfig {
        approach,
        num_shards: 4,
        max_chunk_bytes: 48 * 1024,
        data_mbr: S_MBR,
        ..Default::default()
    });
    s.bulk_load(records.iter().map(Record::to_document))
        .unwrap();
    (s, records)
}

fn wipe_region() -> StQuery {
    StQuery {
        rect: GeoRect::new(23.4, 37.7, 23.9, 38.2),
        t0: DateTime::from_ymd_hms(2018, 7, 10, 0, 0, 0),
        t1: DateTime::from_ymd_hms(2018, 8, 10, 0, 0, 0),
    }
}

#[test]
fn delete_removes_exactly_the_matching_region() {
    for approach in [Approach::BslST, Approach::Hil, Approach::StHash] {
        let (mut s, records) = store(approach);
        let q = wipe_region();
        let expected: u64 = records
            .iter()
            .filter(|r| q.matches(r.lon, r.lat, r.date))
            .count() as u64;
        assert!(expected > 100, "{approach}: region must be populated");

        let removed = s.st_delete(&q);
        assert_eq!(removed, expected, "{approach}");
        assert_eq!(s.doc_count(), 6_000 - expected, "{approach}");

        // The region is now empty; everything else is intact.
        let (after, _) = s.st_query(&q);
        assert!(after.is_empty(), "{approach}");
        let whole = StQuery {
            rect: S_MBR,
            t0: DateTime::from_ymd_hms(2018, 1, 1, 0, 0, 0),
            t1: DateTime::from_ymd_hms(2019, 1, 1, 0, 0, 0),
        };
        let (rest, _) = s.st_query(&whole);
        assert_eq!(rest.len() as u64, 6_000 - expected, "{approach}");

        // Indexes stay consistent with the heaps on every shard.
        for shard in s.cluster().shards() {
            let n = shard.len();
            for idx in shard.collection().indexes().iter() {
                assert_eq!(idx.len(), n, "{approach}: index {} diverged", idx.spec());
            }
        }
        // Chunk counters track the deletion.
        let counted: u64 = s
            .cluster()
            .chunk_map()
            .chunks()
            .iter()
            .map(|c| c.docs)
            .sum();
        assert_eq!(counted, 6_000 - expected, "{approach}");
    }
}

#[test]
fn delete_is_idempotent_and_safe_on_empty() {
    let (mut s, _) = store(Approach::Hil);
    let q = wipe_region();
    let first = s.st_delete(&q);
    assert!(first > 0);
    assert_eq!(s.st_delete(&q), 0, "second pass removes nothing");
    // A disjoint region is untouched.
    let far = StQuery {
        rect: GeoRect::new(24.0, 38.3, 24.3, 38.5),
        t0: q.t0,
        t1: q.t1,
    };
    let (docs, _) = s.st_query(&far);
    let before = docs.len();
    s.st_delete(&q);
    let (docs, _) = s.st_query(&far);
    assert_eq!(docs.len(), before);
}
