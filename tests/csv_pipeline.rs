//! The §A.1 loading pipeline: CSV files → records → documents → sharded
//! store, end to end, including document-size effects.

use sts::core::{Approach, StQuery, StStore, StoreConfig};
use sts::document::DateTime;
use sts::geo::GeoRect;
use sts::workload::csv::{read_csv, write_csv};
use sts::workload::fleet::{generate, FleetConfig};

#[test]
fn csv_to_store_roundtrip() {
    let records = generate(&FleetConfig {
        records: 2_000,
        vehicles: 10,
        extra_fields: 10,
        ..Default::default()
    });
    // Write to an in-memory "file" and read it back, like the paper's
    // query routers reading CSVs from disk.
    let mut buf = Vec::new();
    write_csv(&mut buf, &records).unwrap();
    let loaded = read_csv(&buf[..]).unwrap();
    assert_eq!(loaded.len(), records.len());

    let mut store = StStore::new(StoreConfig {
        approach: Approach::Hil,
        num_shards: 3,
        max_chunk_bytes: 64 * 1024,
        ..Default::default()
    });
    let n = store
        .bulk_load(loaded.iter().map(|r| r.to_document()))
        .unwrap();
    assert_eq!(n, 2_000);

    // A query over everything returns everything.
    let q = StQuery {
        rect: sts::workload::R_MBR,
        t0: DateTime::from_ymd_hms(2018, 1, 1, 0, 0, 0),
        t1: DateTime::from_ymd_hms(2019, 1, 1, 0, 0, 0),
    };
    let (docs, report) = store.st_query(&q);
    assert_eq!(docs.len(), 2_000);
    assert!(report.cluster.nodes() >= 1);
}

#[test]
fn hilbert_field_grows_documents_table6_effect() {
    let records = generate(&FleetConfig {
        records: 1_000,
        vehicles: 5,
        extra_fields: 10,
        ..Default::default()
    });
    let build = |approach| {
        let mut s = StStore::new(StoreConfig {
            approach,
            num_shards: 2,
            max_chunk_bytes: 256 * 1024,
            ..Default::default()
        });
        s.bulk_load(records.iter().map(|r| r.to_document()))
            .unwrap();
        s
    };
    let bsl = build(Approach::BslST);
    let hil = build(Approach::Hil);
    let (b, h) = (bsl.collection_stats(), hil.collection_stats());
    assert_eq!(b.documents, h.documents);
    // §A.1/Table 6: hil documents integrate the extra hilbertIndex field.
    assert!(h.data_bytes > b.data_bytes);
    let per_doc = (h.data_bytes - b.data_bytes) as f64 / h.documents as f64;
    assert!(
        (20.0..25.0).contains(&per_doc),
        "≈22 bytes/doc, got {per_doc}"
    );
}

#[test]
fn query_on_empty_store_is_empty() {
    let store = StStore::new(StoreConfig {
        approach: Approach::Hil,
        num_shards: 2,
        ..Default::default()
    });
    let q = StQuery {
        rect: GeoRect::new(0.0, 0.0, 1.0, 1.0),
        t0: DateTime::from_millis(0),
        t1: DateTime::from_millis(1),
    };
    let (docs, report) = store.st_query(&q);
    assert!(docs.is_empty());
    assert_eq!(report.cluster.n_returned(), 0);
}
