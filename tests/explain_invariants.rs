//! Invariants of the cluster explain report, checked over the paper's
//! workload on every approach:
//!
//! * per shard, `keys_examined ≥ n_returned` and
//!   `docs_examined ≥ n_returned` (every match was found and fetched),
//! * `nodes() ≤ num_shards`, with equality on broadcasts,
//! * `broadcast` exactly when the filter carries no shard-key
//!   constraint,
//! * all retry/hedge/timeout counters stay zero while no failpoint is
//!   armed.

mod support;

use sts::core::{Approach, StQuery};
use sts::document::{DateTime, Document};
use sts::query::Filter;
use sts::workload::fleet::{generate, FleetConfig};
use sts::workload::queries::full_workload;
use sts::workload::{Record, R_MBR};
use support::oracle::Oracle;
use support::store_for;

const NUM_SHARDS: usize = 6;

fn corpus() -> Vec<Document> {
    generate(&FleetConfig {
        records: 3_000,
        vehicles: 20,
        extra_fields: 4,
        ..Default::default()
    })
    .iter()
    .map(Record::to_document)
    .collect()
}

fn workload() -> Vec<StQuery> {
    full_workload(DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0))
        .into_iter()
        .map(|(_, _, q)| q)
        .collect()
}

#[test]
fn per_shard_examination_bounds_hold() {
    let docs = corpus();
    for approach in Approach::ALL {
        let store = store_for(approach, &docs, R_MBR, NUM_SHARDS);
        for q in workload() {
            let (_, report) = store.st_query(&q);
            for s in &report.cluster.per_shard {
                assert!(
                    s.stats.keys_examined >= s.stats.n_returned,
                    "{approach} shard {}: {} keys < {} returned",
                    s.shard,
                    s.stats.keys_examined,
                    s.stats.n_returned
                );
                assert!(
                    s.stats.docs_examined >= s.stats.n_returned,
                    "{approach} shard {}: {} docs < {} returned",
                    s.shard,
                    s.stats.docs_examined,
                    s.stats.n_returned
                );
                assert!(s.stats.completed, "{approach} shard {}", s.shard);
            }
        }
    }
}

#[test]
fn nodes_bounded_by_shard_count() {
    let docs = corpus();
    let oracle = Oracle::new(docs.clone());
    for approach in Approach::ALL {
        let store = store_for(approach, &docs, R_MBR, NUM_SHARDS);
        for q in workload() {
            let (res, report) = store.st_query(&q);
            assert!(report.cluster.nodes() <= NUM_SHARDS, "{approach}");
            if report.cluster.broadcast {
                assert_eq!(report.cluster.nodes(), NUM_SHARDS, "{approach}");
            }
            // Shard ids are valid and unique.
            let mut seen = std::collections::BTreeSet::new();
            for s in &report.cluster.per_shard {
                assert!(s.shard < NUM_SHARDS);
                assert!(seen.insert(s.shard), "duplicate shard {}", s.shard);
            }
            // The per-shard tallies sum to the gathered result.
            assert_eq!(report.cluster.n_returned(), res.len() as u64);
            assert_eq!(report.cluster.n_returned(), oracle.count(&q));
        }
    }
}

#[test]
fn broadcast_iff_no_shard_key_constraint() {
    let docs = corpus();
    for approach in Approach::ALL {
        let store = store_for(approach, &docs, R_MBR, NUM_SHARDS);
        // The paper's queries always constrain the shard key (date for
        // the baselines, hilbertIndex + date for the Hilbert methods).
        for q in workload() {
            let (_, report) = store.st_query(&q);
            assert!(
                !report.cluster.broadcast,
                "{approach}: shard-key-constrained query must target, not broadcast"
            );
        }
        // A filter with no shard-key constraint must broadcast to all
        // shards.
        let off_key = Filter::gte("vehicleId", "veh-00000");
        let (_, report) = store.cluster().query(&off_key);
        assert!(report.broadcast, "{approach}");
        assert_eq!(report.nodes(), NUM_SHARDS, "{approach}");
    }
}

#[test]
fn recovery_counters_zero_without_failpoints() {
    let docs = corpus();
    for approach in Approach::ALL {
        let store = store_for(approach, &docs, R_MBR, NUM_SHARDS);
        assert!(!store.cluster().fault_injector().is_active());
        for q in workload() {
            let (_, report) = store.st_query(&q);
            let c = &report.cluster;
            assert!(c.fault_free(), "{approach}");
            assert!(!c.partial);
            assert_eq!(c.total_retries(), 0);
            assert_eq!(c.total_hedges(), 0);
            assert_eq!(c.total_timeouts(), 0);
            assert!(c.timed_out_shards().is_empty());
            assert!(c.failed_shards().is_empty());
            assert!(c.hedge_served_shards().is_empty());
            assert_eq!(c.max_virtual_delay(), std::time::Duration::ZERO);
            for s in &c.per_shard {
                assert_eq!(s.recovery.attempts, 1, "{approach} shard {}", s.shard);
                assert!(!s.recovery.served_by_replica);
                assert!(!s.recovery.gave_up);
            }
        }
    }
}
