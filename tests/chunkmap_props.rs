//! Property suite for the routing table: under *any* sequence of
//! splits, reassignments and boundary insertions, a [`ChunkMap`] must
//! keep covering the whole key space exactly once, and routing must
//! stay deterministic and consistent with chunk ownership. These are
//! the invariants the live balancer (PR 7) leans on when it splits
//! and migrates chunks between a batch's stage and commit.

mod support;

use proptest::prelude::*;
use sts::cluster::ChunkMap;

/// A short encoded shard key. Non-empty: the empty key is the map's
/// −∞ sentinel (only ever a chunk `min`, never a data key).
fn key() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 1..4)
}

/// One mutation of the routing table.
#[derive(Clone, Debug)]
enum MapOp {
    /// Split the chunk containing `key` at `key` (the only split the
    /// balancer ever issues: a key routed to its own chunk).
    SplitAt(Vec<u8>),
    /// Split chunk `sel % len` at `key` — deliberately *not* routed,
    /// so out-of-range splits exercise the `Result` path.
    SplitRaw(usize, Vec<u8>),
    /// Reassign chunk `sel % len` to shard `shard % NUM_SHARDS` (a
    /// migration's routing-table flip).
    Assign(usize, usize),
    /// Ensure boundaries exist at the given keys.
    Boundaries(Vec<Vec<u8>>),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        key().prop_map(MapOp::SplitAt),
        (any::<usize>(), key()).prop_map(|(s, k)| MapOp::SplitRaw(s, k)),
        (any::<usize>(), any::<usize>()).prop_map(|(s, d)| MapOp::Assign(s, d)),
        proptest::collection::vec(key(), 1..4).prop_map(MapOp::Boundaries),
    ]
}

const NUM_SHARDS: usize = 5;

/// The full structural invariant: total coverage with no gaps and no
/// overlap, strictly increasing boundaries, valid shard ownership,
/// and `route`/`contains` agreement on every chunk boundary.
fn assert_invariants(m: &ChunkMap) {
    let chunks = m.chunks();
    assert!(!chunks.is_empty(), "a chunk map always covers the space");
    assert!(
        chunks[0].min.is_empty(),
        "first chunk must start at -infinity"
    );
    assert_eq!(
        chunks.last().unwrap().max,
        None,
        "last chunk must end at +infinity"
    );
    for w in chunks.windows(2) {
        // Contiguity: each chunk's max is exactly the next chunk's
        // min — together with the endpoints above this is both "no
        // gaps" and "no overlap".
        assert_eq!(
            w[0].max.as_ref(),
            Some(&w[1].min),
            "adjacent chunks must share their boundary"
        );
        assert!(
            w[0].min < w[1].min,
            "chunk mins must be strictly increasing"
        );
    }
    for c in chunks {
        assert!(c.shard < NUM_SHARDS, "chunk assigned to unknown shard");
    }
    assert_eq!(
        m.counts_per_shard(NUM_SHARDS).iter().sum::<usize>(),
        m.len(),
        "every chunk is counted on exactly one shard"
    );
    // Routing agrees with containment exactly at and around every
    // boundary (the off-by-one hot spots).
    for c in chunks {
        let idx = m.route(&c.min);
        assert!(
            chunks[idx].contains(&c.min),
            "routed chunk must contain the key"
        );
        assert_eq!(
            &chunks[idx].min, &c.min,
            "a chunk's min must route to that chunk"
        );
        if let Some(max) = &c.max {
            let idx = m.route(max);
            assert!(chunks[idx].contains(max));
            assert!(
                &chunks[idx].min == max,
                "an exclusive max must route to the *next* chunk"
            );
        }
    }
}

fn apply(m: &mut ChunkMap, op: &MapOp) {
    match op {
        MapOp::SplitAt(k) => {
            let idx = m.route(k);
            let result = m.split(idx, k.clone());
            // A routed split fails only when the key equals the
            // chunk's min (a no-op split) — never for any other key.
            assert_eq!(result.is_err(), m.chunks()[idx].min == *k);
        }
        MapOp::SplitRaw(sel, k) => {
            let idx = sel % m.len();
            let before = m.chunks().to_vec();
            let (min, max) = (before[idx].min.clone(), before[idx].max.clone());
            let inside = *k > min && max.as_ref().is_none_or(|mx| k < mx);
            match m.split(idx, k.clone()) {
                Ok(()) => assert!(inside, "split accepted an out-of-range key"),
                Err(e) => {
                    assert!(!inside, "split rejected an in-range key");
                    assert_eq!(e.split_key, *k);
                    assert_eq!(e.min, min);
                    assert_eq!(e.max, max);
                    assert_eq!(m.chunks(), &before[..], "rejected split must not mutate");
                }
            }
        }
        MapOp::Assign(sel, shard) => {
            let idx = sel % m.len();
            m.assign(idx, shard % NUM_SHARDS);
        }
        MapOp::Boundaries(keys) => {
            m.split_at_boundaries(keys);
            for k in keys {
                let idx = m.route(k);
                assert_eq!(
                    m.chunks()[idx].min,
                    *k,
                    "split_at_boundaries must leave a boundary at every key"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any op sequence preserves the structural invariants after
    /// every single step.
    #[test]
    fn random_sequences_preserve_coverage(
        ops in proptest::collection::vec(map_op(), 1..40),
        probes in proptest::collection::vec(key(), 6..9),
    ) {
        let mut m = ChunkMap::new_single(0);
        assert_invariants(&m);
        for op in &ops {
            apply(&mut m, op);
            assert_invariants(&m);
        }
        // Routing determinism: the same key routes identically on
        // repeat calls and on a structural clone of the map.
        let clone = m.clone();
        for k in &probes {
            let a = m.route(k);
            prop_assert_eq!(a, m.route(k));
            prop_assert_eq!(a, clone.route(k));
            prop_assert!(m.chunks()[a].contains(k));
            // Exactly one chunk contains the key (non-overlap, seen
            // through the `contains` lens).
            let holders = m.chunks().iter().filter(|c| c.contains(k)).count();
            prop_assert_eq!(holders, 1);
        }
    }

    /// `split_at_boundaries` is idempotent under arbitrary boundary
    /// sets — re-applying never changes the map.
    #[test]
    fn boundary_splitting_is_idempotent(
        boundaries in proptest::collection::vec(key(), 1..10),
    ) {
        let mut m = ChunkMap::new_single(0);
        m.split_at_boundaries(&boundaries);
        let after_once = m.chunks().to_vec();
        m.split_at_boundaries(&boundaries);
        prop_assert_eq!(m.chunks(), &after_once[..]);
        assert_invariants(&m);
    }

    /// Chunk doc/byte counters are conserved across splits and
    /// migrations on a live cluster: splits redistribute a parent's
    /// counters over its halves without changing the totals, and a
    /// migration's routing flip never touches them.
    #[test]
    fn cluster_splits_and_migrations_conserve_chunk_counters(
        n_docs in 40usize..120,
        actions in proptest::collection::vec((any::<usize>(), any::<usize>(), any::<bool>()), 1..12),
    ) {
        use sts::cluster::{Cluster, ClusterConfig, ShardKey};
        use sts::document::{doc, DateTime};

        let mut cluster = Cluster::new(
            ClusterConfig { num_shards: NUM_SHARDS, max_chunk_bytes: 4 * 1024, ..Default::default() },
            ShardKey::range(&["k", "date"]),
            vec![],
        );
        for i in 0..n_docs {
            let mut d = doc! {
                "k" => i as i64,
                "date" => DateTime::from_millis(i as i64 * 1_000),
            };
            d.ensure_id(i as u32);
            cluster.insert(&d).unwrap();
        }
        let docs_total: u64 = cluster.chunk_map().chunks().iter().map(|c| c.docs).sum();
        let bytes_total: u64 = cluster.chunk_map().chunks().iter().map(|c| c.bytes).sum();
        prop_assert_eq!(docs_total, n_docs as u64, "counters track every insert");

        for (sel, dst, do_split) in &actions {
            let cidx = sel % cluster.chunk_map().len();
            if *do_split {
                cluster.split_chunk(cidx);
            } else {
                cluster.migrate_chunk(cidx, dst % NUM_SHARDS);
            }
            let m = cluster.chunk_map();
            prop_assert_eq!(m.chunks().iter().map(|c| c.docs).sum::<u64>(), docs_total);
            prop_assert_eq!(m.chunks().iter().map(|c| c.bytes).sum::<u64>(), bytes_total);
            // The physical documents moved with the routing flips.
            prop_assert_eq!(cluster.doc_count(), n_docs as u64);
        }
    }
}
