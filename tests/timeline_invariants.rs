//! End-to-end invariants of the telemetry timeline (PR 9): windows
//! partition the run, window deltas telescope to the cumulative
//! registry, SLO budget accounting is exact, burn alerts fire iff both
//! views of a multi-window rule trip, balancer/ingest events land in
//! the windows that contain them, and the `sts-timeline/1` validator
//! catches tampering.

use std::sync::Arc;
use std::time::Duration;

use serde::Json;
use sts::core::{Approach, StStore, StoreConfig, TimelineConfig};
use sts::obs::{timeline_json, validate_timeline_json, BurnRule, Registry, SloPolicy, Timeline};
use sts::workload::fleet::{FleetConfig, FleetStream};
use sts::workload::queries::full_workload;
use sts::workload::Record;

fn policy(threshold: Duration, rules: Vec<BurnRule>) -> SloPolicy {
    SloPolicy {
        name: "query-p99".into(),
        objective: 0.9,
        threshold,
        rules,
    }
}

/// Re-derive which alerts *should* have fired from the per-window SLO
/// rows alone — the independent oracle for the tracker's multi-window
/// burn evaluation. Returns `(window, short_windows, long_windows)`.
fn expected_alerts(
    rows: &[(u64, u64, u64)],
    rules: &[BurnRule],
    budget: f64,
) -> Vec<(u64, usize, usize)> {
    let burn = |tail: &[(u64, u64, u64)]| {
        let total: u64 = tail.iter().map(|r| r.1).sum();
        let bad: u64 = tail.iter().map(|r| r.2).sum();
        if total == 0 {
            0.0
        } else {
            (bad as f64 / total as f64) / budget
        }
    };
    let mut fired = Vec::new();
    for i in 0..rows.len() {
        for rule in rules {
            let short = burn(&rows[i.saturating_sub(rule.short_windows - 1)..=i]);
            let long = burn(&rows[i.saturating_sub(rule.long_windows - 1)..=i]);
            if short >= rule.factor && long >= rule.factor {
                fired.push((rows[i].0, rule.short_windows, rule.long_windows));
            }
        }
    }
    fired
}

/// A live ingest + query run against a real store upholds every
/// structural invariant the exporters and CI gate rely on.
#[test]
fn live_run_upholds_all_invariants() {
    let fleet = FleetConfig {
        records: 3_000,
        vehicles: 50,
        seed: 0xBEE5,
        ..Default::default()
    };
    let mut store = StStore::new(StoreConfig {
        approach: Approach::Hil,
        num_shards: 4,
        max_chunk_bytes: 32 * 1024,
        ..Default::default()
    });
    store.set_metrics_registry(Arc::new(Registry::new()));
    store.enable_timeline(
        TimelineConfig {
            window: Duration::from_micros(500),
            capacity: 4_096,
        },
        Some(policy(
            Duration::from_micros(200),
            vec![BurnRule {
                short_windows: 2,
                long_windows: 8,
                factor: 2.0,
            }],
        )),
    );

    let queries: Vec<_> = full_workload(sts::document::DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0))
        .into_iter()
        .map(|(_, _, q)| q)
        .collect();
    let mut docs = 0u64;
    let mut batches = 0u64;
    let mut n_queries = 0u64;
    let mut qi = 0usize;
    for batch in FleetStream::new(&fleet, 250) {
        docs += store
            .insert_batch(batch.iter().map(Record::to_document))
            .unwrap();
        batches += 1;
        for _ in 0..3 {
            let q = &queries[qi % queries.len()];
            qi += 1;
            let _ = store.st_query(q);
            n_queries += 1;
        }
    }
    let (tl, folded) = store.finish_timeline().expect("timeline was enabled");

    // The structural validator: tiling, telescoping, SLO accounting.
    tl.validate().expect("all timeline invariants hold");
    assert!(tl.is_finished());
    assert_eq!(tl.dropped(), 0, "capacity was ample; nothing evicted");

    // Windows partition the virtual clock from zero to the run end.
    let windows: Vec<_> = tl.windows().collect();
    assert!(!windows.is_empty());
    assert_eq!(windows[0].start, Duration::ZERO);
    assert_eq!(windows.last().unwrap().end, tl.now());
    for pair in windows.windows(2) {
        assert_eq!(pair[0].end, pair[1].start, "windows tile with no gaps");
        assert_eq!(pair[0].index + 1, pair[1].index);
    }

    // Window deltas telescope to the cumulative registry totals.
    assert_eq!(tl.merged_counter("ingest.docs"), docs);
    assert_eq!(tl.merged_counter("ingest.batches"), batches);
    let qh = tl.merged_histogram("query.total");
    assert_eq!(qh.count, n_queries, "every query's latency is windowed");

    // SLO: budget consumed equals the sum of per-window violations
    // over the budget-weighted total, and the alert set matches an
    // independent re-derivation from the window rows.
    let slo = tl.slo().expect("SLO was configured");
    let rows: Vec<(u64, u64, u64)> = windows
        .iter()
        .filter_map(|w| w.slo.map(|s| (w.index, s.total, s.bad)))
        .collect();
    assert_eq!(
        rows.len(),
        windows.len(),
        "every window carries its SLO row"
    );
    let (total, bad) = slo.totals();
    assert_eq!(total, n_queries);
    assert_eq!(rows.iter().map(|r| r.1).sum::<u64>(), total);
    assert_eq!(rows.iter().map(|r| r.2).sum::<u64>(), bad);
    let budget = slo.policy().budget();
    if total > 0 {
        let expect = bad as f64 / (budget * total as f64);
        assert!((slo.budget_consumed() - expect).abs() < 1e-9);
    }
    let derived = expected_alerts(&rows, &slo.policy().rules, budget);
    let recorded: Vec<(u64, usize, usize)> = slo
        .alerts()
        .iter()
        .map(|a| (a.window, a.rule.short_windows, a.rule.long_windows))
        .collect();
    assert_eq!(recorded, derived, "alerts fire iff both views trip");

    // Event correlation: every batch commit annotated, balancer splits
    // observed (the tiny chunk size forces them), and each event sits
    // inside its window's bounds.
    let commits: usize = windows
        .iter()
        .flat_map(|w| &w.events)
        .filter(|e| e.kind == "ingest.commit")
        .count();
    assert_eq!(commits as u64, batches, "one annotation per batch commit");
    assert!(
        windows
            .iter()
            .flat_map(|w| &w.events)
            .any(|e| e.kind == "balancer.split"),
        "splits ride the timeline as events"
    );
    for w in &windows {
        for e in &w.events {
            assert!(w.start <= e.at && e.at <= w.end, "event inside its window");
        }
    }

    // The cross-query flamegraph aggregated every stage.
    assert!(!folded.is_empty());
    assert!(folded
        .iter()
        .any(|(k, _)| k.starts_with("stQuery;shardExec")));

    // Export round-trips through the shim and the schema validator.
    let doc = timeline_json(&tl, &[("approach", "hil")]);
    let text = serde_json::to_string_pretty(&doc).unwrap();
    let parsed: Json = serde_json::from_str(&text).unwrap();
    validate_timeline_json(&parsed).expect("export validates");
}

/// Deterministic virtual-clock check of the multi-window burn rule:
/// the alert fires exactly once, at the window where the short *and*
/// long views both exceed the factor — a later short-view-only spike
/// stays quiet.
#[test]
fn burn_alerts_fire_exactly_when_both_views_trip() {
    let registry = Arc::new(Registry::new());
    let mut tl = Timeline::new(
        registry,
        TimelineConfig {
            window: Duration::from_millis(1),
            capacity: 64,
        },
    );
    // budget 0.1; rule: short 1 window, long 2 windows, factor 5.
    tl.set_slo(policy(
        Duration::from_micros(100),
        vec![BurnRule {
            short_windows: 1,
            long_windows: 2,
            factor: 5.0,
        }],
    ));
    let good = Duration::from_micros(50);
    let bad = Duration::from_micros(200);
    // w0: clean. w1: fully bad — short (10/10)/0.1 = 10 ≥ 5 and long
    // (10/20)/0.1 = 5 ≥ 5 → fires. w2: clean. w3: half bad — short
    // (5/10)/0.1 = 5 trips but long (5/20)/0.1 = 2.5 < 5 → quiet.
    for window in [[good; 10], [bad; 10], [good; 10]] {
        for d in window {
            tl.observe_latency(d);
        }
        tl.advance(Duration::from_millis(1));
    }
    for i in 0..10 {
        tl.observe_latency(if i < 5 { bad } else { good });
    }
    tl.advance(Duration::from_millis(1));
    tl.finish();

    tl.validate().unwrap();
    let slo = tl.slo().unwrap();
    assert_eq!(slo.alerts().len(), 1, "exactly one alert fired");
    let a = slo.alerts()[0];
    assert_eq!(a.window, 1);
    assert!((a.short_burn - 10.0).abs() < 1e-9);
    assert!((a.long_burn - 5.0).abs() < 1e-9);
    // The alert rides its window in the export.
    let windows: Vec<_> = tl.windows().collect();
    assert_eq!(windows[1].alerts.len(), 1);
    assert!(windows[3].alerts.is_empty(), "short-only spike stays quiet");
    assert_eq!(slo.totals(), (40, 15));
    assert!((slo.budget_consumed() - 15.0 / (0.1 * 40.0)).abs() < 1e-9);
}

/// The schema validator is a real gate: tampering with the SLO
/// accounting, the window bounds, or the schema tag is rejected.
#[test]
fn validator_rejects_tampered_documents() {
    let registry = Arc::new(Registry::new());
    let mut tl = Timeline::new(
        registry,
        TimelineConfig {
            window: Duration::from_millis(1),
            capacity: 16,
        },
    );
    tl.set_slo(policy(Duration::from_micros(100), vec![]));
    for i in 0..30 {
        tl.observe_latency(Duration::from_micros(if i % 3 == 0 { 200 } else { 50 }));
        tl.advance(Duration::from_micros(100));
    }
    tl.finish();
    let doc = timeline_json(&tl, &[]);
    validate_timeline_json(&doc).expect("untampered doc validates");

    type FieldEdit<'a> = &'a dyn Fn(&mut Vec<(String, Json)>);
    let tamper = |doc: &Json, f: FieldEdit| -> Json {
        let mut v = doc.clone();
        if let Json::Obj(fields) = &mut v {
            f(fields);
        }
        v
    };
    // Wrong schema tag.
    let broken = tamper(&doc, &|fields| {
        for (k, v) in fields.iter_mut() {
            if k == "schema" {
                *v = Json::Str("sts-timeline/0".into());
            }
        }
    });
    assert!(validate_timeline_json(&broken).is_err());
    // Inflated cumulative violation count breaks the partition check.
    let broken = tamper(&doc, &|fields| {
        for (k, v) in fields.iter_mut() {
            if k == "slo" {
                if let Json::Obj(slo) = v {
                    for (sk, sv) in slo.iter_mut() {
                        if sk == "totalViolations" {
                            if let Json::UInt(n) = sv {
                                *sv = Json::UInt(*n + 1);
                            }
                        }
                    }
                }
            }
        }
    });
    assert!(validate_timeline_json(&broken).is_err());
    // A gap in the window tiling is caught.
    let broken = tamper(&doc, &|fields| {
        for (k, v) in fields.iter_mut() {
            if k == "windows" {
                if let Json::Arr(ws) = v {
                    if let Some(Json::Obj(w)) = ws.last_mut() {
                        for (wk, wv) in w.iter_mut() {
                            if wk == "startNanos" {
                                if let Json::UInt(n) = wv {
                                    *wv = Json::UInt(*n + 1);
                                }
                            }
                        }
                    }
                }
            }
        }
    });
    assert!(validate_timeline_json(&broken).is_err());
}
