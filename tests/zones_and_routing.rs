//! Routing and zone semantics across the full stack.

use sts::core::{Approach, StQuery, StStore, StoreConfig};
use sts::document::DateTime;
use sts::geo::GeoRect;
use sts::workload::fleet::{generate, FleetConfig};
use sts::workload::Record;

fn records() -> Vec<Record> {
    generate(&FleetConfig {
        records: 10_000,
        vehicles: 50,
        extra_fields: 4,
        ..Default::default()
    })
}

fn store(approach: Approach, recs: &[Record], zones: bool) -> StStore {
    let mut s = StStore::new(StoreConfig {
        approach,
        num_shards: 6,
        max_chunk_bytes: 64 * 1024,
        ..Default::default()
    });
    s.bulk_load(recs.iter().map(Record::to_document)).unwrap();
    if zones {
        s.apply_zones();
    }
    s
}

fn athens_quarter() -> StQuery {
    StQuery {
        rect: GeoRect::new(23.6, 37.85, 23.95, 38.15),
        t0: DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0),
        t1: DateTime::from_ymd_hms(2018, 12, 1, 0, 0, 0), // whole span
    }
}

#[test]
fn hilbert_routing_targets_fewer_nodes_for_spatial_queries() {
    let recs = records();
    let hil = store(Approach::Hil, &recs, false);
    let bsl = store(Approach::BslST, &recs, false);
    let q = athens_quarter();
    let (hil_docs, hil_report) = hil.st_query(&q);
    let (bsl_docs, bsl_report) = bsl.st_query(&q);
    assert_eq!(hil_docs.len(), bsl_docs.len());
    assert!(!hil_docs.is_empty());
    // Whole-timespan query: bsl must touch every time-shard; hil routes
    // by the spatial constraint (§4.1.3's drawback (ii) vs §4.2.3).
    assert_eq!(bsl_report.cluster.nodes(), 6);
    assert!(
        hil_report.cluster.nodes() <= bsl_report.cluster.nodes(),
        "hil {} vs bsl {}",
        hil_report.cluster.nodes(),
        bsl_report.cluster.nodes()
    );
}

#[test]
fn zones_never_change_results_and_keep_balance_docs() {
    let recs = records();
    for approach in [Approach::BslST, Approach::BslTS, Approach::Hil] {
        let plain = store(approach, &recs, false);
        let zoned = store(approach, &recs, true);
        assert_eq!(plain.doc_count(), zoned.doc_count(), "{approach}");
        let q = athens_quarter();
        let (a, _) = plain.st_query(&q);
        let (b, rep) = zoned.st_query(&q);
        assert_eq!(a.len(), b.len(), "{approach}");
        assert!(rep.cluster.nodes() >= 1);
        // No shard may end up empty after zone migration (bucketAuto
        // equalizes document counts).
        assert!(
            zoned.cluster().docs_per_shard().iter().all(|&n| n > 0),
            "{approach}: {:?}",
            zoned.cluster().docs_per_shard()
        );
    }
}

#[test]
fn hilbert_zones_reduce_nodes_on_average() {
    // Any single probe can get unlucky (a $bucketAuto boundary may cut
    // straight through a dense region), but across many small spatial
    // probes the zone layout must touch no more nodes than the default
    // round-robin chunk placement — that is §4.2.3's locality claim.
    let recs = records();
    let plain = store(Approach::Hil, &recs, false);
    let zoned = store(Approach::Hil, &recs, true);
    let (mut before_total, mut after_total) = (0usize, 0usize);
    for i in 0..8 {
        let lon = 20.5 + f64::from(i) * 0.9;
        for j in 0..4 {
            let lat = 35.2 + f64::from(j) * 1.5;
            let q = StQuery {
                rect: GeoRect::new(lon, lat, lon + 0.8, lat + 1.2),
                t0: DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0),
                t1: DateTime::from_ymd_hms(2018, 12, 1, 0, 0, 0),
            };
            let (a, rb) = plain.st_query(&q);
            let (b, ra) = zoned.st_query(&q);
            assert_eq!(a.len(), b.len());
            before_total += rb.cluster.nodes();
            after_total += ra.cluster.nodes();
        }
    }
    assert!(
        after_total <= before_total,
        "zones should not scatter work: {before_total} -> {after_total}"
    );
}

#[test]
fn broadcast_happens_without_shard_key_constraint() {
    let recs = records();
    let hil = store(Approach::Hil, &recs, false);
    // Temporal-only query: no hilbertIndex constraint → broadcast on a
    // {hilbertIndex, date} shard key (footnote 2 of the paper).
    let f = sts::query::Filter::And(vec![
        sts::query::Filter::gte("date", DateTime::from_ymd_hms(2018, 8, 1, 0, 0, 0)),
        sts::query::Filter::lte("date", DateTime::from_ymd_hms(2018, 8, 2, 0, 0, 0)),
    ]);
    let (_, report) = hil.find(&f);
    assert!(report.broadcast);
    assert_eq!(report.nodes(), 6);
}

#[test]
fn per_shard_planner_can_disagree_across_nodes() {
    // Table 7's "mixed usage": each shard plans independently, so the
    // simulator must at least *allow* different indexes per node.
    let recs = records();
    let bsl = store(Approach::BslST, &recs, false);
    let q = athens_quarter();
    let (_, report) = bsl.st_query(&q);
    let used: std::collections::HashSet<String> = report
        .cluster
        .indexes_used()
        .into_iter()
        .map(|(_, i)| i)
        .collect();
    assert!(!used.is_empty());
    for idx in &used {
        assert!(
            idx.contains("location") || idx.contains("date"),
            "unexpected index {idx}"
        );
    }
}
