//! Router-tier integration tests: covering-plan cache identity,
//! result-page cache correctness, executor metric attribution, and
//! admission control.

mod support;

use std::sync::Arc;
use std::time::Duration;
use sts::core::{
    AdmissionConfig, Approach, CacheOutcome, PlanCache, RouterConfig, ShedReason, SloPolicy,
    StQuery, StStore, StoreConfig, TimelineConfig,
};
use sts::curve::CurveFamily;
use sts::document::{doc, DateTime, Document, Value};
use sts::geo::GeoRect;
use sts::obs::Registry;
use support::oracle::Oracle;

const MBR: GeoRect = GeoRect::new(20.0, 35.0, 28.0, 41.5);

fn point(i: u32, lon: f64, lat: f64, ms: i64) -> Document {
    let mut d = doc! {
        "location" => doc! {
            "type" => "Point",
            "coordinates" => vec![Value::from(lon), Value::from(lat)],
        },
        "date" => DateTime::from_millis(ms),
    };
    d.ensure_id(i);
    d
}

/// A deterministic grid corpus over the MBR.
fn grid_corpus(n_side: u32, id_base: u32) -> Vec<Document> {
    let mut docs = Vec::new();
    for x in 0..n_side {
        for y in 0..n_side {
            let i = x * n_side + y;
            docs.push(point(
                id_base + i,
                20.2 + f64::from(x) * 7.4 / f64::from(n_side),
                35.2 + f64::from(y) * 6.0 / f64::from(n_side),
                i64::from(i) * 50_000,
            ));
        }
    }
    docs
}

/// A corpus clustered tightly in one corner — fitting SkewGeoHash on
/// it produces very different bucket boundaries than the even grid.
fn clustered_corpus(n: u32, id_base: u32) -> Vec<Document> {
    (0..n)
        .map(|i| {
            point(
                id_base + i,
                20.1 + f64::from(i % 37) * 0.02,
                35.1 + f64::from(i % 41) * 0.02,
                i64::from(i) * 50_000,
            )
        })
        .collect()
}

fn q() -> StQuery {
    StQuery {
        rect: GeoRect::new(21.0, 36.0, 24.5, 39.0),
        t0: DateTime::from_millis(0),
        t1: DateTime::from_millis(100_000_000),
    }
}

/// Satellite: two stores running SkewGeoHash fitted on *different*
/// samples share one plan cache without ever sharing entries — the
/// `Curve::fingerprint` key component (which folds the fitted bucket
/// boundaries in) keeps them apart end to end.
#[test]
fn different_skewgeohash_fits_never_share_plan_entries() {
    let corpus_a = grid_corpus(30, 0);
    let corpus_b = clustered_corpus(900, 50_000);
    let mut store_a = support::store_for_curve(
        Approach::HilStar,
        CurveFamily::SkewGeoHash,
        &corpus_a,
        MBR,
        4,
    );
    let mut store_b = support::store_for_curve(
        Approach::HilStar,
        CurveFamily::SkewGeoHash,
        &corpus_b,
        MBR,
        4,
    );
    let fp_a = store_a.curve().unwrap().fingerprint();
    let fp_b = store_b.curve().unwrap().fingerprint();
    assert_ne!(
        fp_a, fp_b,
        "different training samples must fit different curves"
    );

    // One shared cache fronting both stores.
    let shared = Arc::new(PlanCache::new(1024, 8));
    store_a.share_plan_cache(shared.clone());
    store_b.share_plan_cache(shared.clone());

    let query = q();
    let (docs_a1, ra1) = store_a.st_query(&query);
    let (docs_b1, rb1) = store_b.st_query(&query);
    assert_eq!(ra1.router.plan_cache, CacheOutcome::Miss);
    assert_eq!(
        rb1.router.plan_cache,
        CacheOutcome::Miss,
        "store B must NOT hit store A's plan: the fits differ"
    );
    let counters = shared.counters();
    assert_eq!(counters.misses, 2);
    assert_eq!(counters.hits, 0);
    assert_eq!(shared.len(), 2, "one entry per fingerprint");

    // Re-running each query hits its own store's entry.
    let (docs_a2, ra2) = store_a.st_query(&query);
    let (docs_b2, rb2) = store_b.st_query(&query);
    assert_eq!(ra2.router.plan_cache, CacheOutcome::Hit);
    assert_eq!(rb2.router.plan_cache, CacheOutcome::Hit);
    assert_eq!(shared.counters().hits, 2);

    // And every run is exact against the brute-force oracle.
    let oracle_a = Oracle::new(corpus_a);
    let oracle_b = Oracle::new(corpus_b);
    for docs in [&docs_a1, &docs_a2] {
        assert_eq!(docs.len() as u64, oracle_a.count(&query));
    }
    for docs in [&docs_b1, &docs_b2] {
        assert_eq!(docs.len() as u64, oracle_b.count(&query));
    }
}

/// Satellite: work executed by the shard executor's worker threads —
/// including stolen work — lands in the *owning store's* scoped
/// registry, never in the process-global one.
#[test]
fn executor_metrics_land_in_the_owning_stores_registry() {
    let corpus = grid_corpus(25, 0);
    let mut store = support::store_for(Approach::Hil, &corpus, MBR, 4);
    let private = Arc::new(Registry::new());
    store.set_metrics_registry(private.clone());

    let global_before = sts::obs::global()
        .snapshot()
        .counter("executor.tasks")
        .unwrap_or(0);
    for _ in 0..4 {
        store.st_query(&q());
    }
    let snap = private.snapshot();
    let tasks = snap.counter("executor.tasks").unwrap_or(0);
    assert!(
        tasks > 0,
        "fan-out work must be attributed to the scoped registry"
    );
    assert!(
        snap.counter("router.plancache.hit").unwrap_or(0) > 0,
        "plan-cache counters are scoped too"
    );
    let global_after = sts::obs::global()
        .snapshot()
        .counter("executor.tasks")
        .unwrap_or(0);
    assert_eq!(
        global_before, global_after,
        "a scoped store must not bleed executor metrics into the global registry"
    );
}

/// Plan-cache hits skip the covering computation, replay the routing
/// decision while it is valid, refresh it after a chunk split — and
/// stay exact throughout.
#[test]
fn plan_cache_reuses_coverings_and_refreshes_stale_routes() {
    let corpus = grid_corpus(30, 0);
    let mut store = support::store_for(Approach::Hil, &corpus, MBR, 4);
    let oracle = Oracle::new(corpus);
    let query = q();

    let (docs1, r1) = store.st_query(&query);
    assert_eq!(r1.router.plan_cache, CacheOutcome::Miss);
    assert!(!r1.router.route_reused);
    assert!(r1.hilbert_ranges > 0);

    let (docs2, r2) = store.st_query(&query);
    assert_eq!(r2.router.plan_cache, CacheOutcome::Hit);
    assert!(r2.router.route_reused, "routing generation unchanged");
    assert_eq!(r2.hilbert_time, Duration::ZERO, "no decomposition on hit");
    assert_eq!(r2.hilbert_ranges, r1.hilbert_ranges);
    assert_eq!(docs1.len(), docs2.len());

    // A chunk split bumps the routing generation: the covering stays
    // cached but the routing decision must be recomputed, not replayed.
    store.split_chunk(0);
    let (docs3, r3) = store.st_query(&query);
    assert_eq!(r3.router.plan_cache, CacheOutcome::Hit);
    assert!(
        !r3.router.route_reused,
        "stale routing generation must not be replayed"
    );
    let (docs4, r4) = store.st_query(&query);
    assert!(r4.router.route_reused, "refreshed route is replayed again");

    for docs in [&docs1, &docs2, &docs3, &docs4] {
        assert_eq!(docs.len() as u64, oracle.count(&query), "exact results");
    }
}

/// The result-page cache serves identical pages with preserved result
/// counters, and every kind of write — synchronous insert, staged
/// batch commit, delete — invalidates affected entries.
#[test]
fn result_cache_serves_pages_and_never_goes_stale() {
    let corpus = grid_corpus(20, 0);
    let mut store = StStore::new(StoreConfig {
        approach: Approach::Hil,
        num_shards: 4,
        max_chunk_bytes: 24 * 1024,
        data_mbr: MBR,
        router: RouterConfig {
            result_cache_entries: 64,
            ..RouterConfig::default()
        },
        ..Default::default()
    });
    store.bulk_load(corpus.iter().cloned()).unwrap();
    let query = q();
    let mut reference = corpus.clone();

    let (docs1, r1) = store.st_query(&query);
    assert_eq!(r1.router.result_cache, CacheOutcome::Miss);
    let (docs2, r2) = store.st_query(&query);
    assert_eq!(r2.router.result_cache, CacheOutcome::Hit);
    assert_eq!(docs1.len(), docs2.len());
    assert_eq!(
        r2.cluster.n_returned(),
        r1.cluster.n_returned(),
        "hits preserve the fill execution's result counters"
    );
    assert!(
        r2.cluster.fault_free(),
        "a served page reports a clean execution"
    );

    // Synchronous insert inside the query window → stale, then exact.
    let extra = point(90_000, 22.0, 37.0, 1_000_000);
    reference.push(extra.clone());
    store.insert(extra).unwrap();
    let (docs3, r3) = store.st_query(&query);
    assert_eq!(
        r3.router.result_cache,
        CacheOutcome::Stale,
        "a write must invalidate the cached page"
    );
    assert_eq!(docs3.len(), docs1.len() + 1, "the new document is visible");
    let oracle = Oracle::new(reference.clone());
    assert_eq!(docs3.len() as u64, oracle.count(&query));

    // Staged batch: staging alone already invalidates (conservative —
    // the write generation moved), commit keeps it invalid until the
    // refill; after refill the commit's documents are in the page.
    let staged = point(90_001, 22.1, 37.1, 1_100_000);
    reference.push(staged.clone());
    store.stage(staged).unwrap();
    let (docs4, r4) = store.st_query(&query);
    assert_ne!(r4.router.result_cache, CacheOutcome::Hit);
    assert_eq!(docs4.len(), docs3.len(), "staged docs stay invisible");
    store.commit_batch();
    let (docs5, r5) = store.st_query(&query);
    assert_ne!(r5.router.result_cache, CacheOutcome::Hit);
    let oracle = Oracle::new(reference.clone());
    assert_eq!(docs5.len() as u64, oracle.count(&query));
    let (docs6, r6) = store.st_query(&query);
    assert_eq!(r6.router.result_cache, CacheOutcome::Hit);
    assert_eq!(docs6.len(), docs5.len());

    // Deletion invalidates too.
    let victim = StQuery {
        rect: GeoRect::new(21.9, 36.9, 22.2, 37.2),
        t0: DateTime::from_millis(0),
        t1: DateTime::from_millis(2_000_000),
    };
    let removed = store.st_delete(&victim);
    assert!(removed > 0);
    let (docs7, r7) = store.st_query(&query);
    assert_ne!(
        r7.router.result_cache,
        CacheOutcome::Hit,
        "deletes must invalidate cached pages"
    );
    assert_eq!(docs7.len(), docs6.len() - removed as usize);
}

/// Admission control: per-tenant token buckets shed the tenant that
/// exhausts its burst (zero refill keeps the test deterministic),
/// while other tenants keep flowing.
#[test]
fn admission_sheds_tenants_over_budget() {
    let corpus = grid_corpus(12, 0);
    let mut store = StStore::new(StoreConfig {
        approach: Approach::Hil,
        num_shards: 4,
        data_mbr: MBR,
        router: RouterConfig {
            admission: AdmissionConfig {
                enabled: true,
                tenant_burst: 3.0,
                tenant_rate_per_sec: 0.0,
                ..AdmissionConfig::default()
            },
            ..RouterConfig::default()
        },
        ..Default::default()
    });
    store.bulk_load(corpus).unwrap();
    let query = q();

    for _ in 0..3 {
        store
            .st_query_admitted("greedy", &query)
            .expect("burst budget admits");
    }
    let shed = store
        .st_query_admitted("greedy", &query)
        .expect_err("the 4th query must shed");
    assert_eq!(shed.reason, ShedReason::TenantBudget);
    assert_eq!(shed.tenant, "greedy");
    assert_eq!(store.shed_count(), 1);
    // Other tenants have their own bucket.
    store
        .st_query_admitted("frugal", &query)
        .expect("other tenants are unaffected");
}

/// Latency-budget policy: with the ledger's p99 over the budget, a low
/// SLO burn rate escalates to hedged reads; a high burn rate sheds.
/// Every decision is a timeline event.
#[test]
fn latency_budget_hedges_on_low_burn_and_sheds_on_high() {
    let build = |slo_threshold: Duration| {
        let corpus = grid_corpus(12, 0);
        let mut store = StStore::new(StoreConfig {
            approach: Approach::Hil,
            num_shards: 4,
            data_mbr: MBR,
            router: RouterConfig {
                admission: AdmissionConfig {
                    enabled: true,
                    // Every real query's p99 exceeds 1 ns.
                    latency_budget: Duration::from_nanos(1),
                    shed_burn_threshold: 2.0,
                    min_observations: 1,
                    ..AdmissionConfig::default()
                },
                ..RouterConfig::default()
            },
            ..Default::default()
        });
        store.bulk_load(corpus).unwrap();
        store.enable_timeline(
            TimelineConfig::default(),
            Some(SloPolicy::p99("query.total", slo_threshold)),
        );
        // Prime the health ledger + seal SLO windows.
        for _ in 0..4 {
            store.st_query(&q());
        }
        store
    };

    // SLO threshold far above any latency → zero bad events → burn 0
    // → over-budget p99 escalates to a hedge, not a shed.
    let store = build(Duration::from_secs(3600));
    let (_, report) = store
        .st_query_admitted("tenant", &q())
        .expect("low burn hedges instead of shedding");
    assert!(report.router.hedged_by_policy);
    assert_eq!(store.hedge_count(), 1);
    assert_eq!(store.shed_count(), 0);

    // SLO threshold of zero → every event is bad → burn = 1/budget ≫ 2
    // → the over-budget p99 sheds.
    let store = build(Duration::ZERO);
    let shed = store
        .st_query_admitted("tenant", &q())
        .expect_err("high burn must shed");
    assert_eq!(shed.reason, ShedReason::LatencyBudget);
    assert_eq!(store.shed_count(), 1);
    // Both decisions are visible on the timeline as events.
    let (timeline, _) = store.finish_timeline().expect("timeline was on");
    assert!(
        timeline
            .windows()
            .flat_map(|w| w.events.iter())
            .any(|e| e.kind == "router.shed"),
        "sheds must be recorded as timeline events"
    );
}

/// `st_explain` surfaces the cache counters next to the per-query
/// outcomes.
#[test]
fn explain_surfaces_router_tier() {
    let corpus = grid_corpus(12, 0);
    let mut store = StStore::new(StoreConfig {
        approach: Approach::Hil,
        num_shards: 4,
        data_mbr: MBR,
        router: RouterConfig {
            result_cache_entries: 16,
            ..RouterConfig::default()
        },
        ..Default::default()
    });
    store.bulk_load(corpus).unwrap();
    store.st_query(&q()); // plan miss, result miss (fills both)
    store.insert(point(90_000, 22.0, 37.0, 1_000_000)).unwrap();
    store.st_query(&q()); // plan hit, result stale → refill
    let e = store.st_explain(&q()); // result hit
    let router = match e.get("router") {
        Some(Value::Document(d)) => d,
        other => panic!("router: {other:?}"),
    };
    assert_eq!(
        router.get("resultCache"),
        Some(&Value::String("hit".into()))
    );
    let plan = match e.get("planCacheCounters") {
        Some(Value::Document(d)) => d,
        other => panic!("planCacheCounters: {other:?}"),
    };
    match plan.get("hits") {
        Some(&Value::Int64(n)) => assert!(n >= 1),
        other => panic!("hits: {other:?}"),
    }
    assert!(matches!(
        e.get("resultCacheCounters"),
        Some(Value::Document(_))
    ));
}
