//! §6 extension: polygonal spatio-temporal queries, end to end, for
//! every approach.

use sts::core::{Approach, StStore, StoreConfig};
use sts::document::DateTime;
use sts::geo::{GeoPoint, GeoPolygon};
use sts::index::geo_point_of;
use sts::workload::synth::{generate, SynthConfig};
use sts::workload::{Record, S_MBR};

fn store_for(approach: Approach, records: &[Record]) -> StStore {
    let mut s = StStore::new(StoreConfig {
        approach,
        num_shards: 4,
        max_chunk_bytes: 64 * 1024,
        data_mbr: S_MBR,
        ..Default::default()
    });
    s.bulk_load(records.iter().map(Record::to_document))
        .unwrap();
    s
}

/// A triangle inside the S box.
fn triangle() -> GeoPolygon {
    GeoPolygon::new(vec![
        GeoPoint::new(23.4, 37.7),
        GeoPoint::new(24.1, 37.8),
        GeoPoint::new(23.7, 38.4),
    ])
    .unwrap()
}

#[test]
fn polygon_query_matches_brute_force_on_every_approach() {
    let records = generate(&SynthConfig {
        records: 8_000,
        ..Default::default()
    });
    let poly = triangle();
    let t0 = DateTime::from_ymd_hms(2018, 7, 5, 0, 0, 0);
    let t1 = DateTime::from_ymd_hms(2018, 8, 20, 0, 0, 0);
    let truth = records
        .iter()
        .filter(|r| poly.contains(GeoPoint::new(r.lon, r.lat)) && r.date >= t0 && r.date <= t1)
        .count();
    assert!(truth > 100, "query must be productive: {truth}");
    for approach in Approach::ALL {
        let store = store_for(approach, &records);
        let (docs, report) = store.polygon_query(&poly, t0, t1);
        assert_eq!(docs.len(), truth, "{approach}");
        assert_eq!(report.cluster.n_returned() as usize, truth);
        if approach.uses_hilbert() {
            assert!(report.hilbert_ranges > 0);
        }
        // Exactness: no bbox-only false positives slip through.
        for d in &docs {
            let p = geo_point_of(d, "location").unwrap();
            assert!(poly.contains(p));
        }
    }
}

#[test]
fn polygon_tighter_than_its_bbox() {
    let records = generate(&SynthConfig {
        records: 6_000,
        ..Default::default()
    });
    let poly = triangle();
    let t0 = DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0);
    let t1 = DateTime::from_ymd_hms(2018, 9, 1, 0, 0, 0);
    let store = store_for(Approach::Hil, &records);
    let (poly_docs, poly_report) = store.polygon_query(&poly, t0, t1);
    let (bbox_docs, _) = store.st_query(&sts::core::StQuery {
        rect: *poly.bbox(),
        t0,
        t1,
    });
    // A triangle holds ~half its bbox's uniform points.
    assert!(poly_docs.len() < bbox_docs.len());
    assert!(poly_docs.len() * 4 > bbox_docs.len());
    // Candidates were bbox-scoped: docs examined ≥ bbox matches on the
    // hottest shard is not guaranteed, but overall work must cover the
    // polygon's result set.
    assert!(poly_report.cluster.max_docs_examined() as usize >= poly_docs.len() / 4);
}
