//! Fault drills for the scatter/gather router: with failpoints armed,
//! queries still return the complete, oracle-verified result set, and
//! the report's recovery observables are deterministic under a fixed
//! seed.
//!
//! Determinism note: all assertions are on *virtual* quantities
//! (attempt counts, injected latency sums) — never on wall-clock
//! durations. Set `STS_CHAOS=1` to run the full generated chaos suite
//! (the CI chaos job does); by default a subset runs.

mod support;

use std::time::Duration;
use sts::cluster::{FailPoint, FailPointMode, RecoveryPolicy, ShardRecovery};
use sts::core::{Approach, QueryError, StQuery, StStore};
use sts::document::{DateTime, Document};
use sts::workload::chaos::{default_profile, scenarios, ChaosConfig};
use sts::workload::fleet::{generate, FleetConfig};
use sts::workload::queries::full_workload;
use sts::workload::{Record, R_MBR};
use support::oracle::{result_id_set, Oracle};
use support::store_for;

const NUM_SHARDS: usize = 6;

fn corpus() -> Vec<Document> {
    generate(&FleetConfig {
        records: 3_000,
        vehicles: 20,
        extra_fields: 4,
        ..Default::default()
    })
    .iter()
    .map(Record::to_document)
    .collect()
}

fn workload() -> Vec<StQuery> {
    full_workload(DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0))
        .into_iter()
        .map(|(_, _, q)| q)
        .collect()
}

/// The three single-shard fault kinds of the acceptance criterion.
fn single_shard_faults(shard: usize) -> Vec<(&'static str, FailPoint)> {
    vec![
        // Latency far beyond the per-shard timeout: every primary
        // attempt times out.
        (
            "latency",
            FailPoint::latency(shard, Duration::from_secs(3600)),
        ),
        ("transient", FailPoint::transient(shard)),
        ("hard-failure", FailPoint::hard_failure(shard)),
    ]
}

/// Run the workload and check every result against the oracle.
fn assert_complete_and_correct(store: &StStore, oracle: &Oracle, label: &str) {
    for q in workload() {
        let (docs, report) = store.st_query(&q);
        assert!(!report.cluster.partial, "{label}: partial result");
        assert_eq!(
            result_id_set(&docs),
            oracle.id_set(&q),
            "{label}: wrong result set for {q:?}"
        );
    }
}

#[test]
fn single_shard_faults_preserve_correctness_for_every_approach() {
    let docs = corpus();
    let oracle = Oracle::new(docs.clone());
    // Afflict a middle shard: chunks land on it for every approach.
    let shard = NUM_SHARDS / 2;
    for approach in Approach::ALL {
        let store = store_for(approach, &docs, R_MBR, NUM_SHARDS);
        for (kind, point) in single_shard_faults(shard) {
            store.arm_failpoint("drill", point);
            assert_complete_and_correct(&store, &oracle, &format!("{approach}/{kind}"));
            store.disarm_all_failpoints();
        }
    }
}

#[test]
fn recovery_observables_reflect_the_armed_fault() {
    let docs = corpus();
    let shard = NUM_SHARDS / 2;
    let store = store_for(Approach::Hil, &docs, R_MBR, NUM_SHARDS);
    let hits = |rec: &ShardRecovery| rec.attempts > 1;

    // Timeout-inducing latency: the afflicted shard hedges.
    store.arm_failpoint(
        "drill",
        FailPoint::latency(shard, Duration::from_secs(3600)),
    );
    let mut saw_shard = false;
    for q in workload() {
        let (_, report) = store.st_query(&q);
        for s in &report.cluster.per_shard {
            if s.shard == shard {
                saw_shard = true;
                assert!(hits(&s.recovery));
                assert_eq!(s.recovery.timeouts, 1);
                assert_eq!(s.recovery.hedges, 1);
                assert!(s.recovery.served_by_replica);
                assert_eq!(
                    s.recovery.injected_latency,
                    store.cluster().recovery_policy().shard_timeout
                );
            } else {
                assert!(s.recovery.clean(), "healthy shard {} touched", s.shard);
            }
        }
    }
    assert!(saw_shard, "workload never targeted the afflicted shard");
    store.disarm_all_failpoints();

    // Transient errors: retries exhaust on the primary, hedge succeeds.
    store.arm_failpoint("drill", FailPoint::transient(shard));
    let policy = *store.cluster().recovery_policy();
    for q in workload() {
        let (_, report) = store.st_query(&q);
        for s in &report.cluster.per_shard {
            if s.shard == shard {
                assert_eq!(s.recovery.retries, policy.max_retries);
                assert_eq!(s.recovery.transient_errors, 1 + policy.max_retries);
                assert_eq!(s.recovery.hedges, 1);
                assert!(s.recovery.backoff_wait > Duration::ZERO);
            }
        }
    }
    store.disarm_all_failpoints();

    // Hard failure: no retries against the dead primary, one hedge.
    store.arm_failpoint("drill", FailPoint::hard_failure(shard));
    for q in workload() {
        let (_, report) = store.st_query(&q);
        for s in &report.cluster.per_shard {
            if s.shard == shard {
                assert_eq!(s.recovery.retries, 0);
                assert_eq!(s.recovery.hedges, 1);
                assert_eq!(s.recovery.attempts, 2);
                assert!(s.recovery.served_by_replica);
            }
        }
    }
}

/// Strip a report down to its deterministic recovery content (wall
/// times and per-shard durations are measurements, not replayable).
fn recovery_trace(store: &StStore) -> Vec<(usize, ShardRecovery, u64)> {
    let mut out = Vec::new();
    for q in workload() {
        let (_, report) = store.st_query(&q);
        for s in &report.cluster.per_shard {
            out.push((s.shard, s.recovery, s.stats.n_returned));
        }
    }
    out
}

#[test]
fn recovery_reports_are_deterministic_across_runs() {
    let docs = corpus();
    let build = || {
        let store = store_for(Approach::HilStar, &docs, R_MBR, NUM_SHARDS);
        // A probabilistic failpoint everywhere — the hardest case for
        // determinism: outcomes must be a pure function of the seed and
        // the attempt coordinates, not of thread scheduling.
        store.arm_failpoint(
            "flaky-everywhere",
            FailPoint::transient(0)
                .on_all_shards()
                .with_mode(FailPointMode::Random { probability: 0.4 }),
        );
        store
    };
    let first = recovery_trace(&build());
    let second = recovery_trace(&build());
    assert_eq!(first, second, "two identical runs must replay identically");
    assert!(
        first.iter().any(|(_, rec, _)| rec.attempts > 1),
        "the drill should actually inject faults"
    );
}

#[test]
fn both_copies_down_yields_partial_results_and_errors() {
    let docs = corpus();
    let oracle = Oracle::new(docs.clone());
    let shard = NUM_SHARDS / 2;
    let store = store_for(Approach::Hil, &docs, R_MBR, NUM_SHARDS);
    store.arm_failpoint("gone", FailPoint::hard_failure(shard).on_replica_too());
    let mut lost_any = false;
    for q in workload() {
        let (docs_got, report) = store.st_query(&q);
        let targeted = report.cluster.per_shard.iter().any(|s| s.shard == shard);
        if targeted {
            assert!(report.cluster.partial);
            assert_eq!(report.cluster.failed_shards(), vec![shard]);
            assert!(docs_got.len() as u64 <= oracle.count(&q));
            match store.try_st_query(&q) {
                Err(QueryError::ShardsUnavailable { shards }) => {
                    assert_eq!(shards, vec![shard]);
                }
                other => panic!("expected ShardsUnavailable, got {other:?}"),
            }
            lost_any = true;
        } else {
            assert!(!report.cluster.partial);
        }
    }
    assert!(lost_any, "workload never targeted the dead shard");
}

#[test]
fn fail_fast_policy_documents_what_recovery_buys() {
    let docs = corpus();
    let shard = NUM_SHARDS / 2;
    let mut store = store_for(Approach::Hil, &docs, R_MBR, NUM_SHARDS);
    store.set_recovery_policy(RecoveryPolicy::fail_fast());
    store.arm_failpoint("drill", FailPoint::transient(shard));
    let mut dropped = false;
    for q in workload() {
        let (_, report) = store.st_query(&q);
        if report.cluster.per_shard.iter().any(|s| s.shard == shard) {
            assert!(report.cluster.partial, "fail-fast keeps no shard alive");
            dropped = true;
        }
    }
    assert!(dropped);
}

#[test]
fn chaos_default_profile_preserves_correctness() {
    let docs = corpus();
    let oracle = Oracle::new(docs.clone());
    let profile = default_profile(NUM_SHARDS);
    for approach in Approach::ALL {
        let store = store_for(approach, &docs, R_MBR, NUM_SHARDS);
        profile.arm(&store);
        assert_complete_and_correct(&store, &oracle, &format!("{approach}/{}", profile.name));
    }
}

#[test]
fn chaos_generated_scenarios_preserve_correctness() {
    // The CI chaos job sets STS_CHAOS=1 for the full generated suite;
    // the default run keeps a fast subset.
    let full = std::env::var("STS_CHAOS").is_ok();
    let cfg = ChaosConfig {
        num_shards: NUM_SHARDS,
        scenarios: if full { 12 } else { 3 },
        ..Default::default()
    };
    let docs = corpus();
    let oracle = Oracle::new(docs.clone());
    let approaches: &[Approach] = if full {
        &Approach::ALL
    } else {
        &[Approach::Hil]
    };
    for scenario in scenarios(&cfg) {
        for &approach in approaches {
            let store = store_for(approach, &docs, R_MBR, NUM_SHARDS);
            scenario.arm(&store);
            assert_complete_and_correct(&store, &oracle, &format!("{approach}/{}", scenario.name));
        }
    }
}
