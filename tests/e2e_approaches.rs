//! End-to-end equivalence: every approach answers the paper's workload
//! identically, matching brute-force ground truth, on both data sets.

use sts::core::{Approach, StStore, StoreConfig};
use sts::workload::fleet::{generate, FleetConfig};
use sts::workload::queries::{full_workload, QuerySize};
use sts::workload::synth::{self, SynthConfig};
use sts::workload::{Record, R_MBR, S_MBR};

fn store_for(approach: Approach, records: &[Record], mbr: sts::geo::GeoRect) -> StStore {
    let mut store = StStore::new(StoreConfig {
        approach,
        num_shards: 6,
        max_chunk_bytes: 96 * 1024,
        data_mbr: mbr,
        ..Default::default()
    });
    store
        .bulk_load(records.iter().map(Record::to_document))
        .unwrap();
    store
}

fn start() -> sts::document::DateTime {
    sts::document::DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0)
}

fn check_workload(records: &[Record], mbr: sts::geo::GeoRect) {
    check_workload_with(records, mbr, None);
}

/// Same equivalence check, optionally with a failpoint armed on every
/// store — the fault-tolerant router must hide the fault entirely.
fn check_workload_with(
    records: &[Record],
    mbr: sts::geo::GeoRect,
    fault: Option<sts::cluster::FailPoint>,
) {
    let truth: Vec<u64> = full_workload(start())
        .iter()
        .map(|(_, _, q)| {
            records
                .iter()
                .filter(|r| q.matches(r.lon, r.lat, r.date))
                .count() as u64
        })
        .collect();
    for approach in Approach::ALL {
        let store = store_for(approach, records, mbr);
        if let Some(point) = &fault {
            store.arm_failpoint("e2e-drill", point.clone());
        }
        for ((size, n, q), expected) in full_workload(start()).iter().zip(&truth) {
            let (docs, report) = store.st_query(q);
            assert_eq!(
                docs.len() as u64,
                *expected,
                "{approach} {}{n}",
                size.label()
            );
            assert_eq!(report.cluster.n_returned(), *expected);
            assert!(!report.cluster.partial, "{approach} {}{n}", size.label());
            // Every returned doc truly matches.
            for d in &docs {
                let p = sts::index::geo_point_of(d, "location").unwrap();
                let t = d.get("date").unwrap().as_datetime().unwrap();
                assert!(q.matches(p.lon, p.lat, t));
            }
        }
    }
}

#[test]
fn fleet_dataset_all_approaches_agree() {
    let records = generate(&FleetConfig {
        records: 8_000,
        vehicles: 40,
        extra_fields: 8,
        ..Default::default()
    });
    // The paper's small query targets central Athens; the generator's
    // Athens hotspot must make at least the big queries productive.
    let big_q4 = full_workload(start())
        .into_iter()
        .find(|(s, n, _)| *s == QuerySize::Big && *n == 4)
        .unwrap()
        .2;
    assert!(
        records.iter().any(|r| big_q4.matches(r.lon, r.lat, r.date)),
        "workload must be productive on fleet data"
    );
    check_workload(&records, R_MBR);
}

#[test]
fn synthetic_dataset_all_approaches_agree() {
    let records = synth::generate(&SynthConfig {
        records: 12_000,
        ..Default::default()
    });
    check_workload(&records, S_MBR);
}

/// The whole equivalence suite again, but with a single-shard fault
/// armed: a slow primary, a flaky primary, and a dead primary. The
/// router's retries and hedged reads must make every fault invisible
/// to the results.
#[test]
fn fleet_dataset_agrees_under_single_shard_faults() {
    use std::time::Duration;
    use sts::cluster::FailPoint;

    let records = generate(&FleetConfig {
        records: 4_000,
        vehicles: 25,
        extra_fields: 4,
        ..Default::default()
    });
    let shard = 2; // store_for deploys 6 shards
    let faults = [
        FailPoint::latency(shard, Duration::from_secs(3600)),
        FailPoint::transient(shard),
        FailPoint::hard_failure(shard),
    ];
    for fault in faults {
        check_workload_with(&records, R_MBR, Some(fault));
    }
}
