//! The ST-Hash related-work baseline (§2.2): correctness, plus a
//! measurement of the paper's critique — spatially selective queries
//! with long time spans degrade under a time-prefixed encoding.

use sts::core::{Approach, StQuery, StStore, StoreConfig};
use sts::document::DateTime;
use sts::geo::GeoRect;
use sts::workload::synth::{generate, SynthConfig};
use sts::workload::{Record, S_MBR};

fn store(approach: Approach, records: &[Record]) -> StStore {
    let mut s = StStore::new(StoreConfig {
        approach,
        num_shards: 5,
        max_chunk_bytes: 64 * 1024,
        data_mbr: S_MBR,
        ..Default::default()
    });
    s.bulk_load(records.iter().map(Record::to_document))
        .unwrap();
    s
}

fn spatial_query(days: i64) -> StQuery {
    let t0 = DateTime::from_ymd_hms(2018, 7, 10, 0, 0, 0);
    StQuery {
        rect: GeoRect::new(23.5, 37.8, 23.7, 38.0), // ~4% of the S box
        t0,
        t1: t0.plus_millis(days * 86_400_000),
    }
}

#[test]
fn sthash_returns_correct_results() {
    let records = generate(&SynthConfig {
        records: 8_000,
        ..Default::default()
    });
    let st = store(Approach::StHash, &records);
    assert_eq!(st.cluster().shard_key_index(), "stHash_1");
    for days in [1i64, 7, 30] {
        let q = spatial_query(days);
        let truth = records
            .iter()
            .filter(|r| q.matches(r.lon, r.lat, r.date))
            .count();
        let (docs, report) = st.st_query(&q);
        assert_eq!(docs.len(), truth, "{days} days");
        assert!(truth > 0, "{days} days should match something");
        assert!(!report.cluster.broadcast, "stHash constraint must target");
    }
}

#[test]
fn paper_critique_long_timespans_degrade_sthash() {
    let records = generate(&SynthConfig {
        records: 10_000,
        ..Default::default()
    });
    let sthash = store(Approach::StHash, &records);
    let hil = store(Approach::Hil, &records);

    // Same spatial footprint, growing time span. For hil the
    // decomposition is one-off; for ST-Hash every extra day multiplies
    // the interval families, and under a fixed budget the merged ranges
    // swallow whole days of unrelated space.
    let (mut st_work, mut hil_work) = (0u64, 0u64);
    for days in [7i64, 30] {
        let q = spatial_query(days);
        let (a, st_rep) = sthash.st_query(&q);
        let (b, hil_rep) = hil.st_query(&q);
        assert_eq!(a.len(), b.len());
        st_work += st_rep.cluster.total_keys_examined();
        hil_work += hil_rep.cluster.total_keys_examined();
    }
    assert!(
        st_work > hil_work,
        "time-prefixed encoding should examine more keys for \
         spatially-selective long-window queries: stHash {st_work} vs hil {hil_work}"
    );
}

#[test]
fn sthash_is_fine_for_short_windows() {
    // Fairness check: for a single-day window the time prefix is
    // harmless — ST-Hash should be in hil's ballpark, not broken.
    let records = generate(&SynthConfig {
        records: 8_000,
        ..Default::default()
    });
    let sthash = store(Approach::StHash, &records);
    let hil = store(Approach::Hil, &records);
    let q = spatial_query(1);
    let (a, st_rep) = sthash.st_query(&q);
    let (b, hil_rep) = hil.st_query(&q);
    assert_eq!(a.len(), b.len());
    let st_keys = st_rep.cluster.total_keys_examined().max(1);
    let hil_keys = hil_rep.cluster.total_keys_examined().max(1);
    assert!(
        st_keys < hil_keys * 50,
        "short-window overhead should be bounded: {st_keys} vs {hil_keys}"
    );
}
