//! Differential testing of the covering-range budget.
//!
//! The budget coalescer (`sts-curve`'s interval-tree + gap bridging)
//! only ever *widens* ranges, so it can add false positives but never
//! drop a matching document. Executor-level contract: for any budget —
//! from the pathological 1 up to UNLIMITED — a Hilbert store returns
//! exactly the full-scan oracle's result set, and exactly the same set
//! as the UNLIMITED store.

mod support;

use std::collections::BTreeSet;
use sts::core::{Approach, StQuery, StoreConfig};
use sts::curve::RangeBudget;
use sts::document::{doc, DateTime, Document, ObjectId, Value};
use sts::geo::GeoRect;
use support::oracle::{result_id_set, Oracle};

fn data_mbr() -> GeoRect {
    GeoRect::new(20.0, 35.0, 28.0, 41.5)
}

/// Deterministic pseudo-random corpus (SplitMix64 over the seed).
fn corpus(n: usize, seed: u64) -> Vec<Document> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let unit = |v: u64| v as f64 / u64::MAX as f64;
    (0..n)
        .map(|i| {
            let lon = 20.0 + unit(next()) * 8.0;
            let lat = 35.0 + unit(next()) * 6.5;
            let ms = (next() % 8_000_000) as i64;
            let mut d = doc! {
                "location" => doc! {
                    "type" => "Point",
                    "coordinates" => vec![Value::from(lon), Value::from(lat)],
                },
                "date" => DateTime::from_millis(ms),
            };
            d.ensure_id(i as u32);
            d
        })
        .collect()
}

fn queries() -> Vec<StQuery> {
    // Mixed sizes: tiny boxes (few cells, budget irrelevant), mid boxes
    // (budget binds on the fitted curve), the whole MBR, a degenerate
    // line, and a rect disjoint from the data.
    vec![
        StQuery {
            rect: GeoRect::new(23.0, 37.0, 23.4, 37.3),
            t0: DateTime::from_millis(0),
            t1: DateTime::from_millis(8_000_000),
        },
        StQuery {
            rect: GeoRect::new(21.0, 36.0, 26.0, 40.0),
            t0: DateTime::from_millis(1_000_000),
            t1: DateTime::from_millis(6_000_000),
        },
        StQuery {
            rect: data_mbr(),
            t0: DateTime::from_millis(0),
            t1: DateTime::from_millis(8_000_000),
        },
        StQuery {
            rect: GeoRect::new(24.0, 35.0, 24.0, 41.5),
            t0: DateTime::from_millis(0),
            t1: DateTime::from_millis(8_000_000),
        },
        StQuery {
            rect: GeoRect::new(60.0, 50.0, 61.0, 51.0),
            t0: DateTime::from_millis(0),
            t1: DateTime::from_millis(8_000_000),
        },
    ]
}

fn budgeted_store(
    approach: Approach,
    docs: &[Document],
    budget: RangeBudget,
) -> sts::core::StStore {
    let mut store = sts::core::StStore::new(StoreConfig {
        approach,
        num_shards: 5,
        max_chunk_bytes: 24 * 1024,
        data_mbr: data_mbr(),
        range_budget: budget,
        ..Default::default()
    });
    store.bulk_load(docs.iter().cloned()).unwrap();
    store
}

#[test]
fn every_budget_matches_the_unlimited_covering_and_the_oracle() {
    let docs = corpus(900, 0x5137_2021);
    let oracle = Oracle::new(docs.clone());
    for approach in [Approach::Hil, Approach::HilStar] {
        let unlimited = budgeted_store(approach, &docs, RangeBudget::UNLIMITED);
        for q in &queries() {
            let truth = oracle.id_set(q);
            let (udocs, _) = unlimited.st_query(q);
            assert_eq!(result_id_set(&udocs), truth, "{approach:?} UNLIMITED");
        }
        for max_ranges in [1usize, 2, 7, 16, 64] {
            let store = budgeted_store(approach, &docs, RangeBudget::new(max_ranges));
            for q in &queries() {
                let truth = oracle.id_set(q);
                let (bdocs, report) = store.st_query(q);
                let ids: BTreeSet<ObjectId> = result_id_set(&bdocs);
                assert_eq!(
                    ids, truth,
                    "{approach:?} budget {max_ranges}: result drift vs oracle"
                );
                assert!(
                    report.hilbert_ranges <= max_ranges,
                    "{approach:?} budget {max_ranges}: covering used {} ranges",
                    report.hilbert_ranges
                );
            }
        }
    }
}

/// Live-store budget swaps (`set_range_budget`, the perfsmoke ablation
/// mechanism) preserve results too — tightening or loosening the budget
/// on a loaded store never changes what a query returns.
#[test]
fn set_range_budget_preserves_results_on_a_live_store() {
    let docs = corpus(600, 0x000D_ECAF);
    let oracle = Oracle::new(docs.clone());
    let mut store = budgeted_store(Approach::HilStar, &docs, RangeBudget::default());
    for q in &queries() {
        let baseline = oracle.id_set(q);
        for max_ranges in [1usize, 16, 128] {
            store.set_range_budget(RangeBudget::new(max_ranges));
            let (bdocs, _) = store.st_query(q);
            assert_eq!(result_id_set(&bdocs), baseline, "budget {max_ranges}");
        }
        store.set_range_budget(RangeBudget::UNLIMITED);
        let (udocs, _) = store.st_query(q);
        assert_eq!(result_id_set(&udocs), baseline, "UNLIMITED");
    }
}
