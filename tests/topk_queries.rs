//! Distributed top-k (sort + limit) across the sharded store.

use sts::core::{Approach, StQuery, StStore, StoreConfig};
use sts::document::{DateTime, Value};
use sts::geo::GeoRect;
use sts::query::FindOptions;
use sts::workload::fleet::{generate, FleetConfig};
use sts::workload::Record;

fn store() -> (StStore, Vec<Record>) {
    let records = generate(&FleetConfig {
        records: 8_000,
        vehicles: 40,
        extra_fields: 8,
        ..Default::default()
    });
    let mut s = StStore::new(StoreConfig {
        approach: Approach::Hil,
        num_shards: 5,
        max_chunk_bytes: 64 * 1024,
        ..Default::default()
    });
    s.bulk_load(records.iter().map(Record::to_document))
        .unwrap();
    (s, records)
}

fn probe() -> StQuery {
    StQuery {
        rect: GeoRect::new(22.0, 36.0, 25.0, 39.5),
        t0: DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0),
        t1: DateTime::from_ymd_hms(2018, 12, 1, 0, 0, 0),
    }
}

#[test]
fn top_k_fastest_traces() {
    let (s, records) = store();
    let q = probe();
    let k = 25;
    let (docs, _) = s.st_query_with_options(&q, &FindOptions::sort_desc("speedKmh").with_limit(k));
    assert_eq!(docs.len(), k);
    // Sorted descending.
    let speeds: Vec<f64> = docs
        .iter()
        .map(|d| d.get("speedKmh").unwrap().as_f64().unwrap())
        .collect();
    assert!(speeds.windows(2).all(|w| w[0] >= w[1]), "{speeds:?}");
    // The k-th best equals the brute-force k-th best.
    let mut all: Vec<f64> = records
        .iter()
        .filter(|r| q.matches(r.lon, r.lat, r.date))
        .map(|r| {
            r.payload
                .iter()
                .find(|(n, _)| n == "speedKmh")
                .and_then(|(_, v)| v.as_f64())
                .unwrap()
        })
        .collect();
    all.sort_by(|a, b| b.partial_cmp(a).unwrap());
    assert!(all.len() > k);
    assert_eq!(speeds, all[..k], "global top-k must match brute force");
}

#[test]
fn sort_by_date_ascending_whole_result() {
    let (s, _) = store();
    let q = probe();
    let (sorted, _) = s.st_query_with_options(&q, &FindOptions::sort_asc("date"));
    let (unsorted, _) = s.st_query(&q);
    assert_eq!(sorted.len(), unsorted.len());
    assert!(sorted.windows(2).all(|w| {
        w[0].get("date").unwrap().as_datetime() <= w[1].get("date").unwrap().as_datetime()
    }));
}

#[test]
fn limit_zero_and_oversized() {
    let (s, _) = store();
    let q = probe();
    let (none, _) = s.st_query_with_options(&q, &FindOptions::none().with_limit(0));
    assert!(none.is_empty());
    let (all, _) = s.st_query(&q);
    let (capped, _) = s.st_query_with_options(&q, &FindOptions::none().with_limit(10_000_000));
    assert_eq!(all.len(), capped.len());
}

#[test]
fn missing_sort_field_sorts_first() {
    // S-style records carry no speed field; sort by it anyway.
    let (s, _) = store();
    let q = probe();
    let (docs, _) =
        s.st_query_with_options(&q, &FindOptions::sort_asc("noSuchField").with_limit(5));
    assert_eq!(docs.len(), 5);
    assert!(docs
        .iter()
        .all(|d| d.get("noSuchField").is_none() || d.get("noSuchField") == Some(&Value::Null)));
}
