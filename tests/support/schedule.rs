//! Schedule-driven concurrent differential oracle.
//!
//! A [`ScheduleCase`] is a deterministic interleaving of the five
//! operations a live deployment races: **stage** (ingest a batch
//! without committing), **commit** (publish the batch and run the
//! live balancer), **query**, **split**, **migrate**, plus failpoint
//! arming. [`replay`] executes the interleaving single-threaded
//! against a real [`StStore`] while maintaining the reference state —
//! which documents are committed vs. still staged — and checks after
//! *every* step:
//!
//! * **exact result parity**: each query's `_id` set equals the
//!   full-scan oracle's over the committed corpus (staged documents
//!   are invisible until their commit, visible in full after it);
//! * **conservation**: the union of all shards' physical records is
//!   exactly the staged+committed corpus — zero lost and zero
//!   duplicated records, no matter how many migrations rolled back
//!   mid-transfer under injected faults;
//! * **snapshot accounting**: the cluster-wide visible count equals
//!   the committed corpus size.
//!
//! The crate's proptest shim has no shrinking, so [`shrink`] is a
//! hand-rolled delta-debugging pass: it greedily removes op windows
//! while the replay still fails, producing a minimal repro that
//! [`dump_failure`] writes as JSON under `target/ingest-chaos/` (CI
//! uploads the directory as an artifact on failure). Replays are pure
//! functions of the schedule — faults, balancing and routing are all
//! seed-deterministic — so a dumped schedule reproduces exactly.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use sts::cluster::{FailPoint, FailPointMode};
use sts::core::{Approach, CacheOutcome, QueryReport, RouterConfig, StQuery, StStore, StoreConfig};
use sts::curve::CurveFamily;
use sts::document::{doc, DateTime, Document, Value};
use sts::geo::GeoRect;

use super::curve_sample_of;
use super::oracle::Oracle;

/// Spatial box the corpus lives in (as in the differential-oracle
/// tests: roughly the paper's R MBR).
const LON_MIN: f64 = 20.0;
const LON_MAX: f64 = 28.0;
const LAT_MIN: f64 = 35.0;
const LAT_MAX: f64 = 41.5;
/// Temporal span of the corpus, in millis.
const SPAN_MS: i64 = 8_000_000;
/// Shards in every schedule deployment.
const NUM_SHARDS: usize = 4;
/// Chunk split threshold — small, so schedules actually split.
const MAX_CHUNK_BYTES: u64 = 24 * 1024;
/// Documents bulk-loaded before the schedule starts (epoch 0).
const BASE_DOCS: usize = 140;
/// Documents the schedule ingests in batches.
const INCOMING_DOCS: usize = 96;

/// One step of a deterministic interleaving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleOp {
    /// Stage `incoming[lo..hi]` into the in-flight batch: stored and
    /// indexed, but invisible until the next `Commit`.
    Stage { lo: usize, hi: usize },
    /// Publish the in-flight batch (one atomic epoch store) and run
    /// the live balancer.
    Commit,
    /// Run `queries[qidx % len]` and demand exact oracle parity.
    Query { qidx: usize },
    /// Run `queries[qidx % len]` **twice back to back** through the
    /// router's result-page cache, demanding exact oracle parity on
    /// both runs and a cache hit on the second — the first run either
    /// fills a fresh entry or detects a stale one (data moved since an
    /// earlier `CachedQuery` of the same shape) and refills it. Proves
    /// the epoch/write-generation stamping never serves a torn or
    /// stale page across commit/split/migrate interleavings.
    CachedQuery { qidx: usize },
    /// Split a chunk: `sel` picks it (mod live chunk count), falling
    /// back to the fullest chunk when the pick has too few docs to
    /// split.
    Split { sel: u64 },
    /// Two-phase-migrate a chunk (`sel`, as in `Split`) to the shard
    /// `dst_off` slots after its current owner — never a self-move,
    /// so the fault-aware transfer protocol always executes.
    Migrate { sel: u64, dst_off: u64 },
    /// Arm a failpoint on shard `sel % NUM_SHARDS`. `times == 0`
    /// means always-on. Primary-only, so hedged reads keep every
    /// query answerable while migrations feel the fault.
    ArmFault {
        sel: u64,
        kind: FaultSpec,
        times: u32,
    },
    /// Disarm every failpoint.
    Disarm,
}

/// Injected fault kinds the schedules draw from. All are recoverable
/// for queries under the default policy (retries + hedged reads);
/// migrations retry transients and abort on hard failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// Retryable error.
    Transient,
    /// Node down (primary only).
    Hard,
    /// 10 s injected latency — over the shard timeout, so it behaves
    /// as a timeout for queries and as plain slowness for transfers.
    Latency,
}

impl FaultSpec {
    fn name(self) -> &'static str {
        match self {
            FaultSpec::Transient => "transient",
            FaultSpec::Hard => "hard",
            FaultSpec::Latency => "latency",
        }
    }
}

/// A fully materialized test case: the corpus and queries are derived
/// from `seed`, so `(seed, ops)` reproduces the run exactly.
#[derive(Clone, Debug)]
pub struct ScheduleCase {
    pub seed: u64,
    pub approach: Approach,
    /// Curve family the deployment runs on (only consulted by the
    /// curve-based approaches). Seeds stride through the zoo so a
    /// 64-seed matrix covers every approach×curve combination.
    pub curve: CurveFamily,
    /// Bulk-loaded before the schedule runs (always visible).
    pub base: Vec<Document>,
    /// Ingested by `Stage` ops, batch by batch.
    pub incoming: Vec<Document>,
    /// Query pool; index 0 is the full-extent query.
    pub queries: Vec<StQuery>,
    pub ops: Vec<ScheduleOp>,
}

/// What a successful replay observed — the acceptance evidence that a
/// schedule really exercised live ingestion.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayReport {
    /// Queries executed in total.
    pub queries_run: usize,
    /// Queries executed while a staged batch was in flight (the
    /// "concurrent ingest" condition).
    pub inflight_queries: usize,
    /// Documents ingested through the staged path.
    pub ingested: usize,
    /// Chunk splits performed during the schedule.
    pub splits: usize,
    /// Two-phase migrations that committed.
    pub migrations_committed: u64,
    /// Two-phase migrations rolled back for good.
    pub migrations_aborted: u64,
    /// Mid-transfer retries after transient faults.
    pub migration_retries: u64,
    /// Query-side fault recoveries observed (retries + hedges +
    /// timeouts) plus migration-side retries/aborts — evidence the
    /// armed faults actually fired.
    pub fault_recoveries: u64,
    /// `CachedQuery` ops executed (each runs its query twice).
    pub cached_queries: usize,
    /// Result-page cache hits served during the replay.
    pub cache_hits: u64,
    /// Cache entries invalidated by their epoch/write-generation stamp
    /// (data moved between fills) — the staleness-detection evidence.
    pub cache_stale: u64,
}

/// A failed replay: which op broke which invariant.
#[derive(Clone, Debug)]
pub struct ReplayError {
    /// Index into `ops` of the offending step.
    pub op_index: usize,
    pub message: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op #{}: {}", self.op_index, self.message)
    }
}

// ---------------------------------------------------------------- rng

/// SplitMix64 — the same generator the fault injector hashes with, so
/// schedule generation needs no external RNG crate.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    pub fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------- generator

fn point_doc(rng: &mut Rng, id: u32) -> Document {
    let lon = LON_MIN + rng.unit() * (LON_MAX - LON_MIN);
    let lat = LAT_MIN + rng.unit() * (LAT_MAX - LAT_MIN);
    let ms = rng.below(SPAN_MS as u64) as i64;
    let mut d = doc! {
        "location" => doc! {
            "type" => "Point",
            "coordinates" => vec![Value::from(lon), Value::from(lat)],
        },
        "date" => DateTime::from_millis(ms),
    };
    d.ensure_id(id);
    d
}

/// The query every schedule ends on: the whole corpus extent, so the
/// final parity check proves every committed document is visible.
fn full_extent_query() -> StQuery {
    StQuery {
        rect: GeoRect::new(LON_MIN, LAT_MIN, LON_MAX, LAT_MAX),
        t0: DateTime::from_millis(0),
        t1: DateTime::from_millis(SPAN_MS),
    }
}

fn random_query(rng: &mut Rng, anchors: &[Document]) -> StQuery {
    // Half the pool is anchored on an actual document so result sets
    // stay productive; the rest are free boxes (possibly empty).
    if rng.below(2) == 0 {
        let d = &anchors[rng.below(anchors.len() as u64) as usize];
        let p = sts::index::geo_point_of(d, "location").expect("corpus docs carry a location");
        let ms = d
            .get("date")
            .and_then(|v| v.as_datetime())
            .expect("corpus docs carry a date")
            .millis();
        let half_deg = 0.05 + rng.unit() * 1.5;
        let half_ms = 20_000 + rng.below(2_500_000) as i64;
        StQuery {
            rect: GeoRect::new(
                p.lon - half_deg,
                p.lat - half_deg,
                p.lon + half_deg,
                p.lat + half_deg,
            ),
            t0: DateTime::from_millis((ms - half_ms).max(0)),
            t1: DateTime::from_millis((ms + half_ms).min(SPAN_MS)),
        }
    } else {
        let (a, b) = (
            LON_MIN + rng.unit() * (LON_MAX - LON_MIN),
            LON_MIN + rng.unit() * (LON_MAX - LON_MIN),
        );
        let (c, d) = (
            LAT_MIN + rng.unit() * (LAT_MAX - LAT_MIN),
            LAT_MIN + rng.unit() * (LAT_MAX - LAT_MIN),
        );
        let (t_a, t_b) = (
            rng.below(SPAN_MS as u64) as i64,
            rng.below(SPAN_MS as u64) as i64,
        );
        StQuery {
            rect: GeoRect::new(a.min(b), c.min(d), a.max(b), c.max(d)),
            t0: DateTime::from_millis(t_a.min(t_b)),
            t1: DateTime::from_millis(t_a.max(t_b)),
        }
    }
}

fn fault_spec(rng: &mut Rng) -> FaultSpec {
    match rng.below(3) {
        0 => FaultSpec::Transient,
        1 => FaultSpec::Hard,
        _ => FaultSpec::Latency,
    }
}

impl ScheduleCase {
    /// Deterministically generate one case from a seed. Every case is
    /// guaranteed by construction to contain concurrent ingest
    /// (queries between a `Stage` and its `Commit`), at least one
    /// forced split and one forced migration, and at least one armed
    /// failpoint that fires before the schedule ends.
    pub fn generate(seed: u64) -> Self {
        let mut rng = Rng::new(seed ^ 0x5C4E_D01E_u64.rotate_left(7));
        let approach = Approach::ALL[(seed as usize) % Approach::ALL.len()];
        // The curve strides four times slower than the approach, so
        // seeds 0..16 already span every (approach, curve) pair and
        // 64 seeds visit each pair four times.
        let curve = CurveFamily::ALL[((seed / 4) as usize) % CurveFamily::ALL.len()];
        let base: Vec<Document> = (0..BASE_DOCS)
            .map(|i| point_doc(&mut rng, i as u32))
            .collect();
        let incoming: Vec<Document> = (0..INCOMING_DOCS)
            .map(|i| point_doc(&mut rng, 10_000 + i as u32))
            .collect();
        let mut queries = vec![full_extent_query()];
        for _ in 0..5 {
            queries.push(random_query(&mut rng, &base));
        }

        let mut ops = Vec::new();
        // Arm a fault up front so ingest-time balancing and the early
        // queries run under it. Times(1..=2) keeps it bounded.
        ops.push(ScheduleOp::ArmFault {
            sel: rng.next(),
            kind: fault_spec(&mut rng),
            times: 1 + rng.below(2) as u32,
        });

        // Partition the incoming corpus into 3–4 contiguous batches.
        let n_batches = 3 + rng.below(2) as usize;
        let per = INCOMING_DOCS / n_batches;
        for b in 0..n_batches {
            let lo = b * per;
            let hi = if b + 1 == n_batches {
                INCOMING_DOCS
            } else {
                lo + per
            };
            ops.push(ScheduleOp::Stage { lo, hi });
            // The concurrent-ingest condition: a query races the
            // staged (uncommitted) batch in every schedule.
            ops.push(ScheduleOp::Query {
                qidx: 1 + rng.below(5) as usize,
            });
            if rng.below(3) == 0 {
                // Sometimes split or migrate *while the batch is still
                // staged* — epoch stamps must survive the move.
                if rng.below(2) == 0 {
                    ops.push(ScheduleOp::Split { sel: rng.next() });
                } else {
                    ops.push(ScheduleOp::Migrate {
                        sel: rng.next(),
                        dst_off: rng.next(),
                    });
                }
            }
            ops.push(ScheduleOp::Commit);
            if b == 0 {
                // Forced live split + migration right after the first
                // commit — every schedule rebalances under load.
                ops.push(ScheduleOp::Split { sel: rng.next() });
                ops.push(ScheduleOp::Migrate {
                    sel: rng.next(),
                    dst_off: rng.next(),
                });
                // Fill the result cache with the full-extent page right
                // after the first commit; later batches invalidate it
                // (writes/epoch move), so the final `CachedQuery {0}`
                // is guaranteed to observe a stale entry and refill.
                ops.push(ScheduleOp::CachedQuery { qidx: 0 });
            }
            if b == 1 {
                // A second fault profile mid-schedule; always-on every
                // third seed so migrations must roll back.
                ops.push(ScheduleOp::ArmFault {
                    sel: rng.next(),
                    kind: fault_spec(&mut rng),
                    times: if rng.below(3) == 0 {
                        0
                    } else {
                        1 + rng.below(2) as u32
                    },
                });
            }
            if rng.below(2) == 0 {
                ops.push(ScheduleOp::Query {
                    qidx: rng.below(6) as usize,
                });
            }
            // Every batch exercises the result cache at some point of
            // the commit/split/migrate interleaving.
            ops.push(ScheduleOp::CachedQuery {
                qidx: rng.below(6) as usize,
            });
        }
        // A final migration attempt under whatever faults are still
        // armed, then the full-extent parity check.
        ops.push(ScheduleOp::Migrate {
            sel: rng.next(),
            dst_off: rng.next(),
        });
        ops.push(ScheduleOp::Query { qidx: 0 });
        // The guaranteed-stale re-read: qidx 0 was cached after the
        // first commit and at least two more batches committed since.
        ops.push(ScheduleOp::CachedQuery { qidx: 0 });

        ScheduleCase {
            seed,
            approach,
            curve,
            base,
            incoming,
            queries,
            ops,
        }
    }
}

// ------------------------------------------------------------- replay

fn data_mbr() -> GeoRect {
    GeoRect::new(LON_MIN, LAT_MIN, LON_MAX, LAT_MAX)
}

/// Pick the chunk a `Split`/`Migrate` op targets: the selector's
/// chunk if it holds at least two documents, else the fullest chunk
/// (so forced balancer ops never degenerate into no-ops on empty
/// slivers).
fn pick_chunk(store: &StStore, sel: u64) -> usize {
    let chunks = store.cluster().chunk_map().chunks();
    let cidx = (sel as usize) % chunks.len();
    if chunks[cidx].docs >= 2 {
        return cidx;
    }
    (0..chunks.len())
        .max_by_key(|&i| chunks[i].docs)
        .unwrap_or(cidx)
}

fn id_of(d: &Document) -> Result<sts::document::ObjectId, String> {
    d.object_id().ok_or_else(|| "document without _id".into())
}

/// Run one query and check it against the oracle: complete (never
/// partial under recovery), duplicate-free, exact `_id` parity with
/// the committed corpus, and an exact report count.
fn checked_query(
    store: &StStore,
    q: &StQuery,
    oracle: &Oracle,
    label: &str,
) -> Result<(Vec<Document>, QueryReport), String> {
    let (docs, qr) = store.st_query(q);
    if qr.cluster.partial {
        return Err(format!("{label} returned a partial result under recovery"));
    }
    let mut got = BTreeSet::new();
    for d in &docs {
        let id = id_of(d)?;
        if !got.insert(id) {
            return Err(format!("{label} returned {id:?} twice"));
        }
    }
    let want = oracle.id_set(q);
    if got != want {
        let missing: Vec<_> = want.difference(&got).collect();
        let extra: Vec<_> = got.difference(&want).collect();
        return Err(format!(
            "{label} parity broken ({} got vs {} expected): \
             missing {missing:?}, extra {extra:?}",
            got.len(),
            want.len()
        ));
    }
    if qr.cluster.n_returned() != oracle.count(q) {
        return Err(format!(
            "{label} report counts {} docs, oracle {}",
            qr.cluster.n_returned(),
            oracle.count(q)
        ));
    }
    Ok((docs, qr))
}

/// The conservation invariant: the union of every shard's physical
/// records is exactly `committed ∪ staged` — nothing lost, nothing
/// duplicated — and the visible count equals the committed corpus.
fn check_conservation(
    store: &StStore,
    committed: &[Document],
    staged: &[Document],
) -> Result<(), String> {
    let mut seen: BTreeMap<sts::document::ObjectId, usize> = BTreeMap::new();
    for shard in store.cluster().shards() {
        for (_, d) in shard.collection().iter() {
            *seen.entry(id_of(&d)?).or_insert(0) += 1;
        }
    }
    if let Some((id, n)) = seen.iter().find(|(_, n)| **n > 1) {
        return Err(format!("record {id:?} exists {n} times across shards"));
    }
    let expected: BTreeSet<_> = committed
        .iter()
        .chain(staged)
        .map(id_of)
        .collect::<Result<_, _>>()?;
    let physical: BTreeSet<_> = seen.into_keys().collect();
    let lost: Vec<_> = expected.difference(&physical).collect();
    if !lost.is_empty() {
        return Err(format!("{} records lost: {lost:?}", lost.len()));
    }
    let alien: Vec<_> = physical.difference(&expected).collect();
    if !alien.is_empty() {
        return Err(format!("{} phantom records: {alien:?}", alien.len()));
    }
    let visible: usize = store
        .cluster()
        .shards()
        .iter()
        .map(|s| s.collection().visible_len())
        .sum();
    if visible != committed.len() {
        return Err(format!(
            "{} records visible at the committed snapshot, expected {} \
             (staged batch leaked or committed records hidden)",
            visible,
            committed.len()
        ));
    }
    Ok(())
}

/// Replay the schedule against a real store, checking every invariant
/// after every step. Pure function of the case: the fault injector,
/// balancer and router are all deterministic.
pub fn replay(case: &ScheduleCase) -> Result<ReplayReport, ReplayError> {
    let err = |i: usize, m: String| ReplayError {
        op_index: i,
        message: m,
    };
    let mut store = StStore::new(StoreConfig {
        approach: case.approach,
        num_shards: NUM_SHARDS,
        max_chunk_bytes: MAX_CHUNK_BYTES,
        data_mbr: data_mbr(),
        curve: case.curve,
        // Fit data-adaptive families on the bulk-loaded corpus only —
        // the staged batches arrive *after* deployment, exactly like
        // production ingest against an already-fitted curve.
        curve_sample: curve_sample_of(&case.base),
        // The result-page cache is ON for schedule replays — the whole
        // point of `CachedQuery` is proving its epoch/write-generation
        // invalidation against the oracle.
        router: RouterConfig {
            result_cache_entries: 256,
            ..RouterConfig::default()
        },
        ..Default::default()
    });
    store
        .bulk_load(case.base.iter().cloned())
        .map_err(|e| err(0, format!("bulk load failed: {e}")))?;
    let chunks0 = store.cluster().chunk_map().len();
    let stats0 = store.cluster().migration_stats();

    let mut committed: Vec<Document> = case.base.clone();
    let mut staged: Vec<Document> = Vec::new();
    let mut report = ReplayReport::default();

    for (i, op) in case.ops.iter().enumerate() {
        match op {
            ScheduleOp::Stage { lo, hi } => {
                let lo = (*lo).min(case.incoming.len());
                let hi = (*hi).min(case.incoming.len());
                for d in &case.incoming[lo..hi] {
                    store
                        .stage(d.clone())
                        .map_err(|e| err(i, format!("stage failed: {e}")))?;
                    staged.push(d.clone());
                    report.ingested += 1;
                }
            }
            ScheduleOp::Commit => {
                store.commit_batch();
                committed.append(&mut staged);
            }
            ScheduleOp::Query { qidx } => {
                let q = &case.queries[qidx % case.queries.len()];
                let oracle = Oracle::new(committed.clone());
                let (_, qr) = checked_query(&store, q, &oracle, &format!("query {qidx}"))
                    .map_err(|m| err(i, m))?;
                report.queries_run += 1;
                if !staged.is_empty() {
                    report.inflight_queries += 1;
                }
                report.fault_recoveries += u64::from(qr.cluster.total_retries())
                    + u64::from(qr.cluster.total_hedges())
                    + u64::from(qr.cluster.total_timeouts());
            }
            ScheduleOp::CachedQuery { qidx } => {
                let q = &case.queries[qidx % case.queries.len()];
                let oracle = Oracle::new(committed.clone());
                let label = format!("cached query {qidx}");
                // First run: fills a fresh entry, or detects+refills a
                // stale one. Either way exact parity is demanded — a
                // stale page served here would break it.
                let (docs1, qr1) = checked_query(&store, q, &oracle, &format!("{label} (fill)"))
                    .map_err(|m| err(i, m))?;
                // The first run may be a miss (fresh shape), a stale
                // refill (data moved since an earlier fill) or even a
                // hit (same shape re-run with nothing changed) — but
                // never a bypass: the cache is on for every replay.
                if qr1.router.result_cache == CacheOutcome::Bypass {
                    return Err(err(i, format!("{label}: result cache bypassed")));
                }
                // Second run, back to back: nothing changed, so the
                // page MUST come from the cache and match exactly.
                let (docs2, qr2) = checked_query(&store, q, &oracle, &format!("{label} (hit)"))
                    .map_err(|m| err(i, m))?;
                if qr2.router.result_cache != CacheOutcome::Hit {
                    return Err(err(
                        i,
                        format!(
                            "{label}: second back-to-back run was {:?}, expected a cache hit",
                            qr2.router.result_cache
                        ),
                    ));
                }
                let ids1: Vec<_> = docs1.iter().map(id_of).collect::<Result<_, _>>().unwrap();
                let ids2: Vec<_> = docs2.iter().map(id_of).collect::<Result<_, _>>().unwrap();
                if ids1 != ids2 {
                    return Err(err(i, format!("{label}: cached page diverged from fill")));
                }
                report.queries_run += 2;
                report.cached_queries += 1;
                if !staged.is_empty() {
                    report.inflight_queries += 2;
                }
                report.fault_recoveries += u64::from(qr1.cluster.total_retries())
                    + u64::from(qr1.cluster.total_hedges())
                    + u64::from(qr1.cluster.total_timeouts());
            }
            ScheduleOp::Split { sel } => {
                store.split_chunk(pick_chunk(&store, *sel));
            }
            ScheduleOp::Migrate { sel, dst_off } => {
                let cidx = pick_chunk(&store, *sel);
                let src = store.cluster().chunk_map().chunks()[cidx].shard;
                let dst = (src + 1 + (*dst_off as usize) % (NUM_SHARDS - 1)) % NUM_SHARDS;
                store.migrate_chunk(cidx, dst);
            }
            ScheduleOp::ArmFault { sel, kind, times } => {
                let shard = (*sel as usize) % NUM_SHARDS;
                let point = match kind {
                    FaultSpec::Transient => FailPoint::transient(shard),
                    FaultSpec::Hard => FailPoint::hard_failure(shard),
                    FaultSpec::Latency => FailPoint::latency(shard, Duration::from_secs(10)),
                };
                let point = match times {
                    0 => point,
                    n => point.with_mode(FailPointMode::Times(*n)),
                };
                store.arm_failpoint(format!("sched-{i}"), point);
            }
            ScheduleOp::Disarm => store.disarm_all_failpoints(),
        }
        check_conservation(&store, &committed, &staged).map_err(|m| err(i, m))?;
    }

    let stats = store.cluster().migration_stats();
    report.splits = store.cluster().chunk_map().len() - chunks0;
    report.migrations_committed = stats.chunks_moved - stats0.chunks_moved;
    report.migrations_aborted = stats.migrations_aborted - stats0.migrations_aborted;
    report.migration_retries = stats.migration_retries - stats0.migration_retries;
    report.fault_recoveries += report.migration_retries + report.migrations_aborted;
    let cache = store.result_cache_counters();
    report.cache_hits = cache.hits;
    report.cache_stale = cache.stale;
    Ok(report)
}

// ----------------------------------------------------------- shrinker

/// Greedy delta-debugging: remove windows of ops (halving the window
/// each pass) while the replay still fails. The proptest shim cannot
/// shrink, so failing schedules are minimized here before dumping.
pub fn shrink(case: &ScheduleCase) -> ScheduleCase {
    let mut best = case.clone();
    if replay(&best).is_ok() {
        return best;
    }
    let mut window = (best.ops.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < best.ops.len() {
            let mut candidate = best.clone();
            let end = (i + window).min(candidate.ops.len());
            candidate.ops.drain(i..end);
            if !candidate.ops.is_empty() && replay(&candidate).is_err() {
                best = candidate;
                removed_any = true;
                // Re-test the same index: new ops slid into the window.
            } else {
                i += window;
            }
        }
        if window == 1 && !removed_any {
            return best;
        }
        window = (window / 2).max(1);
    }
}

// ------------------------------------------------------------ dumping

fn op_json(op: &ScheduleOp) -> String {
    match op {
        ScheduleOp::Stage { lo, hi } => format!(r#"{{"op":"stage","lo":{lo},"hi":{hi}}}"#),
        ScheduleOp::Commit => r#"{"op":"commit"}"#.to_string(),
        ScheduleOp::Query { qidx } => format!(r#"{{"op":"query","qidx":{qidx}}}"#),
        ScheduleOp::CachedQuery { qidx } => {
            format!(r#"{{"op":"cached_query","qidx":{qidx}}}"#)
        }
        ScheduleOp::Split { sel } => format!(r#"{{"op":"split","sel":{sel}}}"#),
        ScheduleOp::Migrate { sel, dst_off } => {
            format!(r#"{{"op":"migrate","sel":{sel},"dst_off":{dst_off}}}"#)
        }
        ScheduleOp::ArmFault { sel, kind, times } => format!(
            r#"{{"op":"arm_fault","sel":{sel},"kind":"{}","times":{times}}}"#,
            kind.name()
        ),
        ScheduleOp::Disarm => r#"{"op":"disarm"}"#.to_string(),
    }
}

/// Write the (ideally shrunk) failing schedule as JSON under
/// `target/ingest-chaos/`, returning the path. The corpus and query
/// pool regenerate deterministically from the seed, so seed + ops
/// reproduce the failure exactly.
pub fn dump_failure(case: &ScheduleCase, error: &ReplayError) -> PathBuf {
    let dir = PathBuf::from("target/ingest-chaos");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("schedule-seed{}.json", case.seed));
    let mut body = String::new();
    let _ = write!(
        body,
        r#"{{"seed":{},"approach":"{}","curve":"{}","failed_op":{},"error":{:?},"ops":["#,
        case.seed, case.approach, case.curve, error.op_index, error.message
    );
    for (i, op) in case.ops.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&op_json(op));
    }
    body.push_str("]}\n");
    let _ = std::fs::write(&path, body);
    path
}

/// Replay, and on failure shrink + dump + panic with the repro path —
/// the single entry point the matrix tests call per seed.
pub fn replay_or_explain(case: &ScheduleCase) -> ReplayReport {
    match replay(case) {
        Ok(report) => report,
        Err(e) => {
            let minimal = shrink(case);
            let error = replay(&minimal).err().unwrap_or(e.clone());
            let path = dump_failure(&minimal, &error);
            panic!(
                "schedule seed {} ({} on {}) failed: {e}\n\
                 shrunk to {} ops (from {}), failing with: {error}\n\
                 repro dumped to {}",
                case.seed,
                case.approach,
                case.curve,
                minimal.ops.len(),
                case.ops.len(),
                path.display()
            );
        }
    }
}
