//! Shared helpers for the integration-test binaries.
//!
//! Each test binary that needs these declares `mod support;` — unused
//! items in *that* binary are expected, hence the allow.
#![allow(dead_code)]

pub mod oracle;
pub mod schedule;

use sts::core::{Approach, StStore, StoreConfig};
use sts::document::Document;
use sts::geo::GeoRect;

/// Deploy one approach over the documents, with a small chunk size so
/// even modest test loads split across shards.
pub fn store_for(
    approach: Approach,
    docs: &[Document],
    mbr: GeoRect,
    num_shards: usize,
) -> StStore {
    let mut store = StStore::new(StoreConfig {
        approach,
        num_shards,
        max_chunk_bytes: 24 * 1024,
        data_mbr: mbr,
        ..Default::default()
    });
    store.bulk_load(docs.iter().cloned()).unwrap();
    store
}
