//! Shared helpers for the integration-test binaries.
//!
//! Each test binary that needs these declares `mod support;` — unused
//! items in *that* binary are expected, hence the allow.
#![allow(dead_code)]

pub mod oracle;
pub mod schedule;

use sts::core::{Approach, StStore, StoreConfig};
use sts::curve::CurveFamily;
use sts::document::Document;
use sts::geo::{GeoPoint, GeoRect};

/// Deploy one approach over the documents, with a small chunk size so
/// even modest test loads split across shards.
pub fn store_for(
    approach: Approach,
    docs: &[Document],
    mbr: GeoRect,
    num_shards: usize,
) -> StStore {
    store_for_curve(approach, CurveFamily::default(), docs, mbr, num_shards)
}

/// [`store_for`] with an explicit curve family. The skew-GeoHash
/// training sample is the corpus itself (deterministic), so the fitted
/// grid adapts to exactly the data under test.
pub fn store_for_curve(
    approach: Approach,
    curve: CurveFamily,
    docs: &[Document],
    mbr: GeoRect,
    num_shards: usize,
) -> StStore {
    let curve_sample = curve_sample_of(docs);
    let mut store = StStore::new(StoreConfig {
        approach,
        num_shards,
        max_chunk_bytes: 24 * 1024,
        data_mbr: mbr,
        curve,
        curve_sample,
        ..Default::default()
    });
    store.bulk_load(docs.iter().cloned()).unwrap();
    store
}

/// The geo points of a corpus, as a curve-fitting sample.
pub fn curve_sample_of(docs: &[Document]) -> Vec<GeoPoint> {
    docs.iter()
        .filter_map(|d| sts::index::geo_point_of(d, "location"))
        .collect()
}
