//! A naive full-scan reference engine — the differential-testing
//! oracle.
//!
//! It answers spatio-temporal queries by brute force over a plain
//! `Vec<Document>`: no indexes, no sharding, no routing, no recovery.
//! Anything the real engines (any approach, any fault profile) return
//! must equal what this oracle returns, as a set of `_id`s.

use std::collections::BTreeSet;
use sts::core::StQuery;
use sts::document::{Document, ObjectId};
use sts::index::geo_point_of;

/// The reference engine: the ground-truth corpus in load order.
pub struct Oracle {
    docs: Vec<Document>,
}

impl Oracle {
    /// Build over the exact documents the stores under test loaded
    /// (same `ObjectId`s, so result sets are comparable).
    pub fn new(docs: Vec<Document>) -> Self {
        Oracle { docs }
    }

    /// The corpus.
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// Full-scan answer to a spatio-temporal range query.
    pub fn query(&self, q: &StQuery) -> Vec<&Document> {
        self.docs
            .iter()
            .filter(|d| {
                let p = geo_point_of(d, "location").expect("corpus docs carry a location");
                let t = d
                    .get("date")
                    .and_then(|v| v.as_datetime())
                    .expect("corpus docs carry a date");
                q.matches(p.lon, p.lat, t)
            })
            .collect()
    }

    /// The matching `_id` set — the canonical comparison form.
    pub fn id_set(&self, q: &StQuery) -> BTreeSet<ObjectId> {
        self.query(q)
            .into_iter()
            .map(|d| d.object_id().expect("corpus docs carry an _id"))
            .collect()
    }

    /// Matching-document count.
    pub fn count(&self, q: &StQuery) -> u64 {
        self.query(q).len() as u64
    }
}

/// The `_id` set of an engine's result, for comparison with
/// [`Oracle::id_set`]. Panics if any result document lacks an `_id`
/// or the engine returned duplicates (both are engine bugs).
pub fn result_id_set(docs: &[Document]) -> BTreeSet<ObjectId> {
    let ids: BTreeSet<ObjectId> = docs
        .iter()
        .map(|d| d.object_id().expect("result docs carry an _id"))
        .collect();
    assert_eq!(ids.len(), docs.len(), "engine returned duplicate documents");
    ids
}
