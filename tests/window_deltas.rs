//! Property suite for windowed histogram delta arithmetic — the
//! foundation the telemetry timeline's invariants stand on. A timeline
//! window is the *difference* of two cumulative bucket dumps
//! ([`HistogramCounts::delta`]); for the timeline's validation to be
//! exact rather than statistical, three algebraic facts must hold for
//! any recording sequence:
//!
//! 1. deltas telescope — merging every window delta reproduces the
//!    cumulative histogram bucket-for-bucket (count, sum, saturation),
//! 2. per-window min/max estimates bound the true window extremes at
//!    bucket resolution,
//! 3. quantiles of merged deltas are sane: monotone in `q` and pinned
//!    inside the observed `[min, max]`.
//!
//! [`HistogramCounts::delta`]: sts::obs::HistogramCounts::delta

use proptest::prelude::*;
use std::time::Duration;
use sts::obs::{Histogram, HistogramCounts};

/// A run of recording batches: each inner vec is one timeline window's
/// worth of latencies (nanoseconds, zero to multi-second scale so the
/// log-linear buckets all get exercised).
fn batches() -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(proptest::collection::vec(1u64..5_000_000_000, 0..24), 1..8)
}

/// Record the batches into one histogram, dumping cumulative counts at
/// each window boundary; return the per-window deltas alongside the
/// final cumulative dump.
fn window_deltas(batches: &[Vec<u64>]) -> (Vec<HistogramCounts>, HistogramCounts) {
    let h = Histogram::new();
    let mut cursor = HistogramCounts::empty();
    let mut deltas = Vec::new();
    for batch in batches {
        for &nanos in batch {
            h.record(Duration::from_nanos(nanos));
        }
        let dump = h.counts();
        deltas.push(dump.delta(&cursor));
        cursor = dump;
    }
    (deltas, cursor)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Snapshot-minus-snapshot deltas partition the recordings: each
    /// window's count is its batch size, and merging every delta gives
    /// back the cumulative histogram exactly.
    #[test]
    fn deltas_telescope_to_the_cumulative_histogram(batches in batches()) {
        let (deltas, cumulative) = window_deltas(&batches);
        for (delta, batch) in deltas.iter().zip(&batches) {
            prop_assert_eq!(delta.count, batch.len() as u64);
            let sum: u64 = batch.iter().sum();
            prop_assert_eq!(delta.sum_nanos, sum);
        }
        let mut merged = HistogramCounts::empty();
        for delta in &deltas {
            merged.merge(delta);
        }
        prop_assert_eq!(&merged.buckets, &cumulative.buckets);
        prop_assert_eq!(merged.count, cumulative.count);
        prop_assert_eq!(merged.sum_nanos, cumulative.sum_nanos);
        prop_assert_eq!(merged.saturated, cumulative.saturated);
    }

    /// A window delta only sees bucket counts, so its min/max are
    /// bucket-resolution estimates — but they must always *bound* the
    /// true window extremes (clamped by the exactly-tracked cumulative
    /// extremes).
    #[test]
    fn delta_extremes_bound_the_true_window_extremes(batches in batches()) {
        let (deltas, _) = window_deltas(&batches);
        for (delta, batch) in deltas.iter().zip(&batches) {
            if batch.is_empty() {
                prop_assert!(delta.is_empty());
                continue;
            }
            let true_min = *batch.iter().min().unwrap();
            let true_max = *batch.iter().max().unwrap();
            prop_assert!(
                delta.min_nanos <= true_min,
                "window min estimate {} above true min {}",
                delta.min_nanos, true_min
            );
            prop_assert!(
                delta.max_nanos >= true_max,
                "window max estimate {} below true max {}",
                delta.max_nanos, true_max
            );
            prop_assert!(delta.min_nanos <= delta.max_nanos);
        }
    }

    /// Quantiles of a merge of window deltas: monotone in `q`, inside
    /// the estimated `[min, max]`, with the mean conserved exactly
    /// (sum and count both telescope).
    #[test]
    fn quantiles_after_merge_are_sane(batches in batches()) {
        let (deltas, _) = window_deltas(&batches);
        let mut merged = HistogramCounts::empty();
        for delta in &deltas {
            merged.merge(delta);
        }
        let n: usize = batches.iter().map(Vec::len).sum();
        prop_assert_eq!(merged.count, n as u64);
        if n > 0 {
            let p50 = merged.percentile(0.50);
            let p95 = merged.percentile(0.95);
            let p99 = merged.percentile(0.99);
            prop_assert!(p50 <= p95 && p95 <= p99);
            let lo = Duration::from_nanos(merged.min_nanos);
            let hi = Duration::from_nanos(merged.max_nanos);
            for q in [p50, p95, p99] {
                prop_assert!(lo <= q && q <= hi, "quantile {q:?} outside [{lo:?}, {hi:?}]");
            }
            let true_sum: u64 = batches.iter().flatten().sum();
            let mean = merged.mean();
            prop_assert_eq!(mean, Duration::from_nanos(true_sum / n as u64));
            prop_assert!(lo <= mean && mean <= hi);
        }
    }
}
