//! Allocation hygiene for the query hot path.
//!
//! This binary installs [`sts::obs::CountingAllocator`] as the global
//! allocator, so the executor's `AllocSpan` instrumentation measures
//! real allocations. The contract under test: after a warm-up pass
//! (scratch buffers at their high-water capacity), executing the same
//! spatio-temporal query performs **zero** heap allocations inside the
//! executor hot section on every shard — the scan, fetch, residual
//! filter and result staging all run out of reused buffers.

mod support;

use sts::core::{Approach, StQuery, StoreConfig};
use sts::document::{doc, DateTime, Value};
use sts::geo::GeoRect;
use sts::obs::CountingAllocator;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn corpus_store(approach: Approach) -> sts::core::StStore {
    let mut store = sts::core::StStore::new(StoreConfig {
        approach,
        num_shards: 4,
        max_chunk_bytes: 24 * 1024,
        data_mbr: GeoRect::new(20.0, 35.0, 28.0, 41.5),
        ..Default::default()
    });
    let mut i = 0u32;
    for x in 0..40 {
        for y in 0..40 {
            let mut d = doc! {
                "location" => doc! {
                    "type" => "Point",
                    "coordinates" => vec![
                        Value::from(20.0 + f64::from(x) * 0.2),
                        Value::from(35.0 + f64::from(y) * 0.15),
                    ],
                },
                "date" => DateTime::from_millis(i64::from(i) * 60_000),
            };
            d.ensure_id(i);
            store.insert(d).unwrap();
            i += 1;
        }
    }
    store
}

fn query() -> StQuery {
    StQuery {
        rect: GeoRect::new(22.0, 36.0, 25.0, 38.5),
        t0: DateTime::from_millis(10_000_000),
        t1: DateTime::from_millis(60_000_000),
    }
}

#[test]
fn warmed_up_executor_hot_path_allocates_nothing() {
    // Sanity: the counting allocator really is installed — building the
    // store must move the thread-local counter.
    let before = sts::obs::alloc::thread_allocations();
    let store = corpus_store(Approach::Hil);
    assert!(
        sts::obs::alloc::thread_allocations() > before,
        "CountingAllocator not installed: store build reported no allocations"
    );

    let q = query();
    // Warm-up: grows every scratch buffer (covering tree, seek keys,
    // decode values, result staging) to its high-water capacity, and
    // registers every metric so later lookups don't allocate entries.
    let (warm_docs, _) = store.st_query(&q);
    assert!(!warm_docs.is_empty(), "query must do real work");
    store.st_query(&q);

    // Steady state: every shard's executor hot section must report a
    // zero allocation delta, several runs in a row.
    for run in 0..3 {
        let (docs, report) = store.st_query(&q);
        assert_eq!(docs.len(), warm_docs.len());
        assert!(!report.cluster.per_shard.is_empty());
        for shard in &report.cluster.per_shard {
            assert_eq!(
                shard.stats.allocations, 0,
                "run {run}: shard {} allocated {} time(s) in the hot section",
                shard.shard, shard.stats.allocations
            );
        }
    }

    // And the published counter agrees: it stops growing once warm.
    let obs = store.metrics_registry().snapshot();
    let after_warm = obs.counter("shard.exec_allocs").unwrap_or(0);
    store.st_query(&q);
    let obs = store.metrics_registry().snapshot();
    assert_eq!(obs.counter("shard.exec_allocs").unwrap_or(0), after_warm);
}

/// The same contract holds for the skip-scan access path (hil* plans
/// drive `skip_scan_2d` through the shared batch cursor).
#[test]
fn skip_scan_hot_path_allocates_nothing_after_warm_up() {
    let store = corpus_store(Approach::HilStar);
    let q = query();
    let (warm_docs, _) = store.st_query(&q);
    assert!(!warm_docs.is_empty());
    store.st_query(&q);

    let (docs, report) = store.st_query(&q);
    assert_eq!(docs.len(), warm_docs.len());
    for shard in &report.cluster.per_shard {
        assert_eq!(
            shard.stats.allocations, 0,
            "shard {} allocated in the hot section",
            shard.shard
        );
    }
}
