//! Distributed aggregation: scatter/gather `$group` must equal a
//! single-node reference computation, for every approach.

use std::collections::BTreeMap;
use sts::core::{Approach, StQuery, StStore, StoreConfig};
use sts::document::{DateTime, Value};
use sts::geo::GeoRect;
use sts::query::{Accumulator, GroupBy};
use sts::workload::fleet::{generate, FleetConfig};
use sts::workload::Record;

fn records() -> Vec<Record> {
    generate(&FleetConfig {
        records: 9_000,
        vehicles: 45,
        extra_fields: 12, // includes speedKmh, heading, …, roadType
        ..Default::default()
    })
}

fn query() -> StQuery {
    StQuery {
        rect: GeoRect::new(22.5, 36.5, 24.5, 39.0),
        t0: DateTime::from_ymd_hms(2018, 7, 15, 0, 0, 0),
        t1: DateTime::from_ymd_hms(2018, 10, 15, 0, 0, 0),
    }
}

/// Reference computation straight over the record stream.
fn reference(records: &[Record], q: &StQuery) -> BTreeMap<String, (i64, f64)> {
    let mut acc: BTreeMap<String, (i64, f64)> = BTreeMap::new();
    for r in records {
        if !q.matches(r.lon, r.lat, r.date) {
            continue;
        }
        let road = r
            .payload
            .iter()
            .find(|(k, _)| k == "roadType")
            .and_then(|(_, v)| v.as_str())
            .unwrap()
            .to_string();
        let speed = r
            .payload
            .iter()
            .find(|(k, _)| k == "speedKmh")
            .and_then(|(_, v)| v.as_f64())
            .unwrap();
        let e = acc.entry(road).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += speed;
    }
    acc
}

#[test]
fn distributed_group_matches_reference_for_all_approaches() {
    let records = records();
    let q = query();
    let want = reference(&records, &q);
    assert!(want.len() >= 4, "need several road types: {}", want.len());
    let spec = GroupBy::by(
        "roadType",
        vec![
            ("n".into(), Accumulator::Count),
            ("sumSpeed".into(), Accumulator::Sum("speedKmh".into())),
            ("avgSpeed".into(), Accumulator::Avg("speedKmh".into())),
        ],
    );
    for approach in Approach::EXTENDED {
        let mut store = StStore::new(StoreConfig {
            approach,
            num_shards: 5,
            max_chunk_bytes: 96 * 1024,
            ..Default::default()
        });
        store
            .bulk_load(records.iter().map(Record::to_document))
            .unwrap();
        let (groups, report) = store.st_aggregate(&q, &spec);
        assert_eq!(groups.len(), want.len(), "{approach}");
        assert!(report.cluster.nodes() >= 1);
        for g in &groups {
            let key = g.get("_id").unwrap().as_str().unwrap();
            let (n, sum) = want[key];
            assert_eq!(g.get("n").unwrap().as_i64(), Some(n), "{approach}/{key}");
            let got_sum = g.get("sumSpeed").unwrap().as_f64().unwrap();
            assert!((got_sum - sum).abs() < 1e-6, "{approach}/{key}");
            let got_avg = g.get("avgSpeed").unwrap().as_f64().unwrap();
            assert!((got_avg - sum / n as f64).abs() < 1e-9);
        }
    }
}

#[test]
fn global_group_over_zoned_store() {
    let records = records();
    let q = query();
    let mut store = StStore::new(StoreConfig {
        approach: Approach::Hil,
        num_shards: 4,
        max_chunk_bytes: 64 * 1024,
        ..Default::default()
    });
    store
        .bulk_load(records.iter().map(Record::to_document))
        .unwrap();
    let spec = GroupBy::global(vec![
        ("n".into(), Accumulator::Count),
        ("minSpeed".into(), Accumulator::Min("speedKmh".into())),
        ("maxSpeed".into(), Accumulator::Max("speedKmh".into())),
    ]);
    let (before, _) = store.st_aggregate(&q, &spec);
    store.apply_zones();
    let (after, _) = store.st_aggregate(&q, &spec);
    assert_eq!(before, after, "zoning must not change aggregates");
    assert_eq!(before.len(), 1);
    assert_eq!(before[0].get("_id"), Some(&Value::Null));
    let min = before[0].get("minSpeed").unwrap().as_f64().unwrap();
    let max = before[0].get("maxSpeed").unwrap().as_f64().unwrap();
    assert!(min <= max);
    assert!((0.0..=130.0).contains(&min) && (0.0..=130.0).contains(&max));
}
