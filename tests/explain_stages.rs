//! Stage-timing invariants of `explain()`, checked across every
//! approach on the paper's workload:
//!
//! * every per-shard stage duration (`planningMicros`, `indexScanMicros`,
//!   `fetchFilterMicros`, `recoveryMicros`) is present and non-negative,
//! * per shard, the stage micros sum to at most the shard's
//!   `totalMicros`, and the slowest shard's total is at most the
//!   cluster `executionTimeMicros` + recovery,
//! * with a latency failpoint armed, the injected delay lands in the
//!   recovery stage and never inflates the wall-clock scan stages.

mod support;

use std::time::Duration;
use sts::cluster::FailPoint;
use sts::core::{Approach, StQuery};
use sts::document::{DateTime, Document, Value};
use sts::workload::fleet::{generate, FleetConfig};
use sts::workload::queries::full_workload;
use sts::workload::{Record, R_MBR};
use support::store_for;

const NUM_SHARDS: usize = 6;
const STAGE_KEYS: [&str; 4] = [
    "planningMicros",
    "indexScanMicros",
    "fetchFilterMicros",
    "recoveryMicros",
];

fn corpus() -> Vec<Document> {
    generate(&FleetConfig {
        records: 2_000,
        vehicles: 20,
        ..Default::default()
    })
    .iter()
    .map(Record::to_document)
    .collect()
}

fn workload() -> Vec<StQuery> {
    full_workload(DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0))
        .into_iter()
        .map(|(_, _, q)| q)
        .collect()
}

fn int_field(doc: &Document, key: &str) -> i64 {
    match doc.get(key) {
        Some(&Value::Int64(v)) => v,
        other => panic!("{key}: expected Int64, got {other:?}"),
    }
}

#[test]
fn every_stage_present_and_partitioned() {
    let docs = corpus();
    for approach in Approach::ALL {
        let store = store_for(approach, &docs, R_MBR, NUM_SHARDS);
        for q in workload() {
            let explain = store.st_explain(&q);
            let shards = match explain.get("shards") {
                Some(Value::Array(a)) => a,
                other => panic!("{approach}: shards missing: {other:?}"),
            };
            assert!(!shards.is_empty(), "{approach}: no shard entries");
            let cluster_total = int_field(&explain, "executionTimeMicros");
            assert!(cluster_total >= 0, "{approach}");
            for (key, lower) in [("routingMicros", 0), ("mergeMicros", 0)] {
                assert!(int_field(&explain, key) >= lower, "{approach} {key}");
            }
            for entry in shards {
                let shard = match entry {
                    Value::Document(d) => d,
                    other => panic!("{approach}: shard entry {other:?}"),
                };
                let stages = match shard.get("stages") {
                    Some(Value::Document(d)) => d,
                    other => panic!("{approach}: stages missing: {other:?}"),
                };
                let mut sum = 0i64;
                for key in STAGE_KEYS {
                    let v = int_field(stages, key);
                    assert!(v >= 0, "{approach} {key} negative");
                    sum += v;
                }
                let total = int_field(shard, "totalMicros");
                assert!(
                    sum <= total,
                    "{approach} shard {}: stage sum {sum}us > total {total}us",
                    int_field(shard, "shard"),
                );
            }
        }
    }
}

#[test]
fn covering_stage_reported_for_hilbert_only() {
    let docs = corpus();
    let q = workload().remove(0);
    for approach in Approach::ALL {
        let store = store_for(approach, &docs, R_MBR, NUM_SHARDS);
        let explain = store.st_explain(&q);
        let covering = match explain.get("covering") {
            Some(Value::Document(d)) => d,
            other => panic!("{approach}: covering missing: {other:?}"),
        };
        let ranges = int_field(covering, "ranges");
        if approach.uses_hilbert() {
            assert!(ranges > 0, "{approach}: no covering ranges");
        } else {
            assert_eq!(ranges, 0, "{approach}: baselines have no decomposition");
            assert_eq!(int_field(covering, "micros"), 0, "{approach}");
        }
    }
}

#[test]
fn injected_latency_lands_in_the_recovery_stage() {
    let docs = corpus();
    let q = workload().remove(0);
    // 100ms stays under the default 250ms shard timeout, so the shard
    // still answers on the first attempt — the delay is purely virtual.
    let injected = Duration::from_millis(100);
    for approach in Approach::ALL {
        let store = store_for(approach, &docs, R_MBR, NUM_SHARDS);

        // Fault-free reference: recovery is zero everywhere.
        let clean = store.st_query(&q).1;
        for s in &clean.cluster.per_shard {
            assert_eq!(
                s.stage_breakdown().recovery,
                Duration::ZERO,
                "{approach}: recovery without faults"
            );
        }
        let clean_scan_max = clean
            .cluster
            .per_shard
            .iter()
            .map(|s| s.stats.scan_time())
            .max()
            .unwrap();

        store.arm_failpoint("lag", FailPoint::latency(0, injected).on_all_shards());
        let (_, faulted) = store.st_query(&q);
        store.disarm_all_failpoints();

        let mut saw_recovery = false;
        for s in &faulted.cluster.per_shard {
            let b = s.stage_breakdown();
            if b.recovery >= injected {
                saw_recovery = true;
            }
            // The virtual delay must appear in its own stage, and the
            // shard's total must account for it on top of wall time.
            assert_eq!(
                b.total(),
                s.total_time(),
                "{approach}: breakdown total drifted"
            );
            // Wall-clock scan stages stay in the fault-free ballpark:
            // nowhere near the injected 100ms (tolerate 50x scheduler
            // noise over the clean run's slowest scan).
            assert!(
                b.index_scan < clean_scan_max * 50 + Duration::from_millis(20),
                "{approach}: injected latency leaked into scan time ({:?})",
                b.index_scan
            );
        }
        assert!(saw_recovery, "{approach}: no shard recorded the delay");

        // And explain() surfaces it under recoveryMicros.
        store.arm_failpoint("lag", FailPoint::latency(0, injected).on_all_shards());
        let explain = store.st_explain(&q);
        store.disarm_all_failpoints();
        let shards = match explain.get("shards") {
            Some(Value::Array(a)) => a,
            other => panic!("{approach}: {other:?}"),
        };
        let max_recovery = shards
            .iter()
            .map(|e| match e {
                Value::Document(d) => match d.get("stages") {
                    Some(Value::Document(s)) => int_field(s, "recoveryMicros"),
                    other => panic!("{approach}: {other:?}"),
                },
                other => panic!("{approach}: {other:?}"),
            })
            .max()
            .unwrap();
        assert!(
            max_recovery >= injected.as_micros() as i64,
            "{approach}: recoveryMicros {max_recovery} < injected {}",
            injected.as_micros()
        );
    }
}
