//! Property tests across the whole stack: for random query rectangles
//! and time windows, routed + indexed execution equals brute force, on
//! every approach.

use proptest::prelude::*;
use std::sync::OnceLock;
use sts::core::{Approach, StQuery, StStore, StoreConfig};
use sts::document::DateTime;
use sts::geo::GeoRect;
use sts::workload::synth::{generate, SynthConfig};
use sts::workload::{Record, S_MBR};

/// One shared store per approach (building stores is the expensive part;
/// the properties vary the queries).
fn stores() -> &'static Vec<(Approach, StStore, Vec<Record>)> {
    static STORES: OnceLock<Vec<(Approach, StStore, Vec<Record>)>> = OnceLock::new();
    STORES.get_or_init(|| {
        let records = generate(&SynthConfig {
            records: 6_000,
            ..Default::default()
        });
        Approach::ALL
            .into_iter()
            .map(|a| {
                let mut s = StStore::new(StoreConfig {
                    approach: a,
                    num_shards: 5,
                    max_chunk_bytes: 48 * 1024,
                    data_mbr: S_MBR,
                    ..Default::default()
                });
                s.bulk_load(records.iter().map(Record::to_document))
                    .unwrap();
                (a, s, records.clone())
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn indexed_execution_equals_brute_force(
        fx in 0.0f64..1.0, fy in 0.0f64..1.0,
        w in 0.0f64..0.6, h in 0.0f64..0.6,
        t_off_h in 0i64..(70 * 24), span_h in 1i64..(20 * 24),
    ) {
        let rect = GeoRect::new(
            S_MBR.min_lon + fx * S_MBR.lon_span() * (1.0 - w),
            S_MBR.min_lat + fy * S_MBR.lat_span() * (1.0 - h),
            S_MBR.min_lon + fx * S_MBR.lon_span() * (1.0 - w) + w * S_MBR.lon_span(),
            S_MBR.min_lat + fy * S_MBR.lat_span() * (1.0 - h) + h * S_MBR.lat_span(),
        );
        let t0 = DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0).plus_millis(t_off_h * 3_600_000);
        let q = StQuery { rect, t0, t1: t0.plus_millis(span_h * 3_600_000) };
        let mut counts = Vec::new();
        for (approach, store, records) in stores() {
            let truth = records.iter().filter(|r| q.matches(r.lon, r.lat, r.date)).count();
            let (docs, report) = store.st_query(&q);
            prop_assert_eq!(docs.len(), truth, "approach {}", approach);
            prop_assert_eq!(report.cluster.n_returned() as usize, truth);
            counts.push(truth);
        }
        // All approaches agreed (implied, but assert the invariant).
        prop_assert!(counts.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn degenerate_windows_are_safe(
        fx in 0.0f64..1.0, fy in 0.0f64..1.0,
    ) {
        // Zero-area rectangle and zero-length time window.
        let lon = S_MBR.min_lon + fx * S_MBR.lon_span();
        let lat = S_MBR.min_lat + fy * S_MBR.lat_span();
        let t0 = DateTime::from_ymd_hms(2018, 8, 1, 0, 0, 0);
        let q = StQuery { rect: GeoRect::new(lon, lat, lon, lat), t0, t1: t0 };
        for (approach, store, records) in stores() {
            let truth = records.iter().filter(|r| q.matches(r.lon, r.lat, r.date)).count();
            let (docs, _) = store.st_query(&q);
            prop_assert_eq!(docs.len(), truth, "approach {}", approach);
        }
    }
}
