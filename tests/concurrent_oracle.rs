//! The concurrent differential oracle: deterministic schedules of
//! {stage, commit, query, split, migrate, fault} replayed against the
//! full-scan reference.
//!
//! Every schedule in the 64-seed matrix contains concurrent ingest
//! (queries racing a staged batch), at least one live split and one
//! two-phase migration, and armed failpoints — and must hold exact
//! result parity plus zero lost/duplicated records after every single
//! step ([`support::schedule::replay`]). Failing schedules are
//! delta-debugged down to minimal op sequences and dumped as JSON
//! under `target/ingest-chaos/` (the CI `ingest-chaos` job uploads
//! them as artifacts).

mod support;

use proptest::prelude::*;
use std::collections::BTreeSet;
use sts::cluster::{FailPoint, FailPointMode};
use sts::core::Approach;
use sts::curve::CurveFamily;
use support::schedule::{replay, replay_or_explain, shrink, ScheduleCase, ScheduleOp};

/// The acceptance matrix: 64 seeded schedules, each proven to have
/// actually exercised concurrent ingest, live rebalancing and fault
/// injection — not just to have passed vacuously.
#[test]
fn sixty_four_seeded_schedules_match_the_oracle() {
    let mut total_commits = 0u64;
    let mut total_aborts = 0u64;
    let mut total_retries = 0u64;
    let mut total_cache_hits = 0u64;
    let mut total_cache_stale = 0u64;
    let mut curve_combos: BTreeSet<(&str, &str)> = BTreeSet::new();
    for seed in 0..64u64 {
        let case = ScheduleCase::generate(seed);
        if case.approach.uses_hilbert() {
            curve_combos.insert((case.approach.name(), case.curve.name()));
        }
        let report = replay_or_explain(&case);
        assert!(report.ingested > 0, "seed {seed}: no documents ingested");
        assert!(
            report.inflight_queries >= 1,
            "seed {seed}: no query raced a staged batch (not concurrent)"
        );
        assert!(
            report.splits >= 1,
            "seed {seed}: no live chunk split happened"
        );
        assert!(
            report.migrations_committed + report.migrations_aborted >= 1,
            "seed {seed}: no two-phase migration executed"
        );
        assert!(
            report.fault_recoveries >= 1,
            "seed {seed}: armed faults never fired"
        );
        assert!(
            report.cached_queries >= 2,
            "seed {seed}: schedule never exercised the result cache"
        );
        assert!(
            report.cache_hits >= report.cached_queries as u64,
            "seed {seed}: every CachedQuery's second run must hit"
        );
        total_commits += report.migrations_committed;
        total_aborts += report.migrations_aborted;
        total_retries += report.migration_retries;
        total_cache_hits += report.cache_hits;
        total_cache_stale += report.cache_stale;
    }
    // Across the matrix the fault mix must have produced both
    // outcomes of the two-phase protocol: commits *and* rollbacks,
    // plus mid-transfer retries. A matrix where migrations only ever
    // succeed isn't testing the rollback path at all.
    assert!(total_commits > 0, "no migration ever committed");
    assert!(total_aborts > 0, "no migration ever rolled back");
    assert!(
        total_retries > 0,
        "no migration ever retried a transient fault"
    );
    // The result cache must have both served pages and detected stale
    // entries across the matrix — a matrix where nothing ever goes
    // stale isn't testing the epoch/write-generation invalidation.
    assert!(total_cache_hits > 0, "the result cache never served a hit");
    assert!(
        total_cache_stale > 0,
        "no cached page was ever invalidated by a commit"
    );
    // Non-vacuity for the curve zoo: both curve-based approaches must
    // have run under every family in the matrix — eight combinations,
    // each replayed four times across the 64 seeds.
    for approach in [Approach::Hil, Approach::HilStar] {
        for family in CurveFamily::ALL {
            assert!(
                curve_combos.contains(&(approach.name(), family.name())),
                "the seed matrix never ran {approach} on {family}"
            );
        }
    }
}

/// Satellite: a migration that loses its shard to a transient
/// failpoint mid-transfer retries and completes — with per-record
/// parity and exact counts preserved throughout.
#[test]
fn migration_retries_transient_fault_and_completes() {
    let case = ScheduleCase::generate(7);
    let mut store = store_with(&case);
    let before = snapshot_ids(&store);
    let count_before = store.doc_count();

    // Find a chunk with documents and fault its *donor* shard: the
    // migration draws against the source.
    let cidx = fullest_chunk(&store);
    let src = store.cluster().chunk_map().chunks()[cidx].shard;
    let dst = (src + 1) % NUM_SHARDS;
    store.arm_failpoint(
        "drop-shard-once",
        FailPoint::transient(src).with_mode(FailPointMode::Times(1)),
    );

    let stats0 = store.cluster().migration_stats();
    assert!(
        store.migrate_chunk(cidx, dst),
        "one transient fault is within the retry budget"
    );
    let stats = store.cluster().migration_stats();
    assert_eq!(stats.chunks_moved, stats0.chunks_moved + 1);
    assert_eq!(stats.migration_retries, stats0.migration_retries + 1);
    assert_eq!(stats.migrations_aborted, stats0.migrations_aborted);
    assert_eq!(store.cluster().chunk_map().chunks()[cidx].shard, dst);

    // Zero lost, zero duplicated: the exact same record set exists.
    assert_eq!(store.doc_count(), count_before);
    assert_eq!(snapshot_ids(&store), before);
}

/// Satellite: a migration whose transfer keeps failing (always-on
/// transient exhausts the retry budget) rolls back completely — the
/// chunk stays on its donor and every record survives exactly once.
#[test]
fn migration_exhausting_retries_rolls_back() {
    let case = ScheduleCase::generate(11);
    let mut store = store_with(&case);
    let before = snapshot_ids(&store);

    let cidx = fullest_chunk(&store);
    let src = store.cluster().chunk_map().chunks()[cidx].shard;
    let dst = (src + 1) % NUM_SHARDS;
    store.arm_failpoint("drop-shard-always", FailPoint::transient(src));

    let stats0 = store.cluster().migration_stats();
    assert!(!store.migrate_chunk(cidx, dst), "must abort, not commit");
    let stats = store.cluster().migration_stats();
    assert_eq!(stats.chunks_moved, stats0.chunks_moved, "nothing moved");
    assert_eq!(stats.migrations_aborted, stats0.migrations_aborted + 1);
    assert_eq!(
        stats.migration_retries,
        stats0.migration_retries + u64::from(store.cluster().recovery_policy().max_retries),
        "every retry in the budget was spent before giving up"
    );
    assert_eq!(
        store.cluster().chunk_map().chunks()[cidx].shard,
        src,
        "aborted migration leaves ownership on the donor"
    );
    assert_eq!(snapshot_ids(&store), before, "rollback is exact");

    // A hard failure aborts immediately — no retries can help a dead
    // node.
    store.disarm_all_failpoints();
    store.arm_failpoint("node-down", FailPoint::hard_failure(src));
    let stats0 = store.cluster().migration_stats();
    assert!(!store.migrate_chunk(cidx, dst));
    let stats = store.cluster().migration_stats();
    assert_eq!(stats.migrations_aborted, stats0.migrations_aborted + 1);
    assert_eq!(stats.migration_retries, stats0.migration_retries);
    assert_eq!(snapshot_ids(&store), before);

    // Once the fault clears, the same migration completes.
    store.disarm_all_failpoints();
    assert!(store.migrate_chunk(cidx, dst));
    assert_eq!(store.cluster().chunk_map().chunks()[cidx].shard, dst);
    assert_eq!(snapshot_ids(&store), before);
}

/// The shrinker really minimizes: plant a known-bad schedule (a query
/// expecting committed visibility that a doctored case breaks) and
/// check the delta-debugger strips the irrelevant prefix.
#[test]
fn shrinker_reduces_failing_schedules() {
    // Build a case whose replay fails deterministically: claim a
    // document was ingested that never will be, by pointing a Stage
    // op past the corpus (replay clamps the range to empty, so the
    // reference and the store agree) — instead, break parity by
    // duplicating a Stage range: the second stage inserts the same
    // `_id`s again, which the conservation check reports as
    // duplicates.
    let mut case = ScheduleCase::generate(3);
    case.ops = vec![
        ScheduleOp::Query { qidx: 1 },
        ScheduleOp::Split { sel: 9 },
        ScheduleOp::Stage { lo: 0, hi: 8 },
        ScheduleOp::Commit,
        ScheduleOp::Stage { lo: 0, hi: 8 }, // duplicate _ids
        ScheduleOp::Query { qidx: 0 },
    ];
    assert!(replay(&case).is_err(), "the planted schedule must fail");
    let minimal = shrink(&case);
    assert!(replay(&minimal).is_err(), "shrinking preserves failure");
    assert!(
        minimal.ops.len() <= 3,
        "shrinker should strip the irrelevant ops, kept {:?}",
        minimal.ops
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized seeds and op-window mutations on top of the fixed
    /// matrix: drop a random window of ops from a generated schedule
    /// and replay. Any op subset must still hold parity and
    /// conservation (the replay derives its expectations from the ops
    /// actually present, so every sub-schedule is self-consistent).
    #[test]
    fn mutated_schedules_still_match_the_oracle(
        seed in 0u64..10_000,
        cut_at in any::<proptest::sample::Index>(),
        cut_len in 0usize..6,
    ) {
        let mut case = ScheduleCase::generate(seed);
        let at = cut_at.index(case.ops.len());
        let end = (at + cut_len).min(case.ops.len());
        case.ops.drain(at..end);
        if case.ops.is_empty() {
            case.ops.push(ScheduleOp::Query { qidx: 0 });
        }
        // Mutated schedules lose the generator's structural
        // guarantees (a cut can remove the forced split), so only the
        // correctness invariants are asserted here — that is the
        // point: no interleaving may break them.
        replay_or_explain(&case);
    }
}

// ------------------------------------------------------------ helpers

const NUM_SHARDS: usize = 4;

/// Deploy the case's base corpus on its approach (no schedule ops).
fn store_with(case: &ScheduleCase) -> sts::core::StStore {
    let mut store = sts::core::StStore::new(sts::core::StoreConfig {
        approach: case.approach,
        num_shards: NUM_SHARDS,
        max_chunk_bytes: 24 * 1024,
        data_mbr: sts::geo::GeoRect::new(20.0, 35.0, 28.0, 41.5),
        curve: case.curve,
        curve_sample: support::curve_sample_of(&case.base),
        ..Default::default()
    });
    store.bulk_load(case.base.iter().cloned()).unwrap();
    store
}

/// The chunk holding the most documents (always migratable).
fn fullest_chunk(store: &sts::core::StStore) -> usize {
    let chunks = store.cluster().chunk_map().chunks();
    (0..chunks.len()).max_by_key(|&i| chunks[i].docs).unwrap()
}

/// Every physical record's `_id` across all shards, with duplicate
/// detection (sorted, so comparable before/after a migration).
fn snapshot_ids(store: &sts::core::StStore) -> Vec<sts::document::ObjectId> {
    let mut ids: Vec<_> = store
        .cluster()
        .shards()
        .iter()
        .flat_map(|s| {
            s.collection()
                .iter()
                .map(|(_, d)| d.object_id().expect("records carry an _id"))
                .collect::<Vec<_>>()
        })
        .collect();
    ids.sort();
    let n = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), n, "a record exists on two shards at once");
    ids
}
