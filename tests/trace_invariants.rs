//! Distributed-trace invariants, checked across every approach on the
//! paper's workload:
//!
//! * every query yields exactly one root span (`stQuery`) and every
//!   child span nests strictly within its parent's interval,
//! * per-shard `planning`/`indexScan`/`fetchFilter` children partition
//!   their `shardExec` span exactly; `covering` appears iff the
//!   approach decomposes a Hilbert range,
//! * `recovery` spans appear iff the fault machinery engaged on that
//!   shard — never on clean runs, always when a failpoint fired, and
//!   exactly matching the per-shard recovery reports under random
//!   chaos,
//! * the Chrome trace-event export round-trips through the
//!   `serde_json` shim with the same structure.

mod support;

use std::time::Duration;
use sts::cluster::{FailPoint, FailPointMode};
use sts::core::{Approach, StQuery, TraceId};
use sts::document::{DateTime, Document};
use sts::obs::Trace;
use sts::workload::fleet::{generate, FleetConfig};
use sts::workload::queries::full_workload;
use sts::workload::{Record, R_MBR};
use support::store_for;

const NUM_SHARDS: usize = 6;

fn corpus() -> Vec<Document> {
    generate(&FleetConfig {
        records: 2_000,
        vehicles: 20,
        ..Default::default()
    })
    .iter()
    .map(Record::to_document)
    .collect()
}

fn workload() -> Vec<StQuery> {
    full_workload(DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0))
        .into_iter()
        .map(|(_, _, q)| q)
        .collect()
}

/// The structural invariants every trace must satisfy, asserted
/// explicitly (not only via `validate()`): exactly one root, and every
/// child's interval inside its parent's.
fn assert_nesting(trace: &Trace, ctx: &str) {
    trace.validate().unwrap_or_else(|e| panic!("{ctx}: {e}"));
    let mut roots = 0usize;
    for s in trace.spans() {
        match s.parent {
            None => roots += 1,
            Some(pid) => {
                let p = trace.get(pid).expect("parent span exists");
                assert!(
                    s.start >= p.start && s.end() <= p.end(),
                    "{ctx}: span `{}` [{:?}, {:?}] escapes parent `{}` [{:?}, {:?}]",
                    s.name,
                    s.start,
                    s.end(),
                    p.name,
                    p.start,
                    p.end()
                );
            }
        }
    }
    assert_eq!(roots, 1, "{ctx}: expected exactly one root span");
}

fn spans_named<'t>(trace: &'t Trace, name: &str) -> Vec<&'t sts::obs::TraceSpan> {
    trace.spans().iter().filter(|s| s.name == name).collect()
}

#[test]
fn clean_traces_have_one_root_and_stage_children() {
    let docs = corpus();
    for approach in Approach::ALL {
        let store = store_for(approach, &docs, R_MBR, NUM_SHARDS);
        for (i, q) in workload().iter().enumerate() {
            let (_, report) = store.st_query(q);
            let trace = report.trace(TraceId(i as u64));
            let ctx = format!("{approach} query {i}");
            assert_nesting(&trace, &ctx);
            let root = trace.root().unwrap();
            assert_eq!(root.name, "stQuery", "{ctx}");

            // Fault-free runs never emit recovery spans.
            assert!(spans_named(&trace, "recovery").is_empty(), "{ctx}");

            // The router pipeline is always present.
            assert_eq!(spans_named(&trace, "routing").len(), 1, "{ctx}");
            assert_eq!(spans_named(&trace, "merge").len(), 1, "{ctx}");

            // Covering appears iff the approach decomposes the query
            // rectangle into Hilbert ranges.
            let covering = spans_named(&trace, "covering").len();
            assert_eq!(covering, usize::from(approach.uses_hilbert()), "{ctx}");

            // Each shardExec span is exactly partitioned by its three
            // wall-clock stage children.
            let execs = spans_named(&trace, "shardExec");
            assert_eq!(execs.len(), report.cluster.nodes(), "{ctx}");
            for exec in execs {
                let mut staged = Duration::ZERO;
                for stage in ["planning", "indexScan", "fetchFilter"] {
                    let child = trace
                        .spans()
                        .iter()
                        .find(|s| s.name == stage && s.parent == Some(exec.id))
                        .unwrap_or_else(|| panic!("{ctx}: shardExec missing `{stage}`"));
                    staged += child.duration;
                }
                assert_eq!(
                    staged, exec.duration,
                    "{ctx}: stages do not partition shardExec"
                );
            }
        }
    }
}

#[test]
fn injected_latency_produces_recovery_spans() {
    let docs = corpus();
    let q = workload().remove(0);
    let injected = Duration::from_millis(100);
    for approach in Approach::ALL {
        let store = store_for(approach, &docs, R_MBR, NUM_SHARDS);
        store.arm_failpoint("lag", FailPoint::latency(0, injected).on_all_shards());
        let (_, report) = store.st_query(&q);
        store.disarm_all_failpoints();

        let trace = report.trace(TraceId(0));
        let ctx = format!("{approach} faulted");
        assert_nesting(&trace, &ctx);

        // Every touched shard fired the failpoint, so every shardExec
        // carries a recovery child at least as long as the injection.
        let dirty = report
            .cluster
            .per_shard
            .iter()
            .filter(|s| !s.recovery.clean())
            .count();
        assert_eq!(dirty, report.cluster.nodes(), "{ctx}: all shards faulted");
        let recoveries = spans_named(&trace, "recovery");
        assert_eq!(recoveries.len(), dirty, "{ctx}");
        for rec in recoveries {
            assert!(rec.duration >= injected, "{ctx}: {:?}", rec.duration);
            let parent = trace
                .get(rec.parent.expect("recovery has a parent"))
                .unwrap();
            assert_eq!(parent.name, "shardExec", "{ctx}");
            assert_eq!(parent.track, rec.track, "{ctx}: recovery crossed tracks");
        }
    }
}

#[test]
fn chaos_recovery_spans_match_fault_reports() {
    let docs = corpus();
    let store = store_for(Approach::Hil, &docs, R_MBR, NUM_SHARDS);
    store.arm_failpoint(
        "chaos",
        FailPoint::transient(0)
            .on_all_shards()
            .with_mode(FailPointMode::Random { probability: 0.4 }),
    );
    let mut fired_total = 0usize;
    for (i, q) in workload().iter().enumerate() {
        let (_, report) = store.st_query(q);
        let trace = report.trace(TraceId(i as u64));
        let ctx = format!("chaos query {i}");
        assert_nesting(&trace, &ctx);
        // Recovery spans appear on exactly the shards whose recovery
        // machinery engaged — no more, no fewer.
        let dirty: Vec<usize> = report
            .cluster
            .per_shard
            .iter()
            .filter(|s| !s.recovery.clean())
            .map(|s| s.shard)
            .collect();
        let mut traced: Vec<usize> = spans_named(&trace, "recovery")
            .iter()
            .map(|r| match r.track {
                sts::obs::Track::Shard(s) => s,
                sts::obs::Track::Router => panic!("{ctx}: recovery on router track"),
            })
            .collect();
        traced.sort_unstable();
        let mut expected = dirty.clone();
        expected.sort_unstable();
        assert_eq!(traced, expected, "{ctx}");
        fired_total += dirty.len();
    }
    store.disarm_all_failpoints();
    assert!(fired_total > 0, "chaos failpoint never fired");
}

#[test]
fn chrome_export_round_trips_through_the_shim() {
    let docs = corpus();
    let q = workload().remove(0);
    let store = store_for(Approach::HilStar, &docs, R_MBR, NUM_SHARDS);
    // Fault one shard so the export includes a recovery span too.
    store.arm_failpoint("lag", FailPoint::latency(0, Duration::from_millis(5)));
    let (_, report) = store.st_query(&q);
    store.disarm_all_failpoints();
    let trace = report.trace(TraceId(42));
    assert_nesting(&trace, "export");

    let json = trace.to_chrome_json();
    let v = serde_json::from_str(&json).expect("chrome JSON parses through the shim");
    let events = v
        .get("traceEvents")
        .and_then(serde::Json::as_array)
        .expect("traceEvents array");
    let complete: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(serde::Json::as_str) == Some("X"))
        .collect();
    assert_eq!(complete.len(), trace.len());
    let roots = complete
        .iter()
        .filter(|e| {
            e.get("args")
                .map(|a| a.get("parent").is_none())
                .unwrap_or(false)
        })
        .count();
    assert_eq!(roots, 1, "exactly one root event in the export");
    // The router track is labelled for the Perfetto UI.
    let labels: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(serde::Json::as_str) == Some("thread_name"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(serde::Json::as_str)
        })
        .collect();
    assert!(labels.contains(&"router"), "{labels:?}");
}

#[test]
fn st_trace_exports_the_query_it_just_ran() {
    let docs = corpus();
    let q = workload().remove(0);
    let store = store_for(Approach::Hil, &docs, R_MBR, NUM_SHARDS);
    let trace = store.st_trace(&q);
    assert_nesting(&trace, "st_trace");
    let root = trace.root().unwrap();
    assert_eq!(root.name, "stQuery");
    assert!(trace.len() >= 4, "root + routing + shardExec(s) + merge");
}
