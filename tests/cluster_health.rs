//! Cluster-health telemetry invariants at the store level: shard-load
//! accounting agrees with the per-query reports, the balancer event
//! history matches the migration counters, and the Hilbert approaches
//! spread a temporally clustered workload across shards measurably
//! more evenly than the date-sharded baselines (the §4.2 locality
//! claim, quantified).

mod support;

use sts::cluster::BalancerEventKind;
use sts::core::{Approach, StQuery};
use sts::document::{DateTime, Document};
use sts::geo::GeoRect;
use sts::workload::fleet::{generate, FleetConfig};
use sts::workload::{Record, R_MBR};
use support::store_for;

const NUM_SHARDS: usize = 6;

fn corpus() -> Vec<Document> {
    generate(&FleetConfig {
        records: 2_500,
        vehicles: 25,
        ..Default::default()
    })
    .iter()
    .map(Record::to_document)
    .collect()
}

/// A temporally clustered workload: spatially varied hotspot
/// rectangles, all asking about the same hot three-day window (around
/// day 90 of the fleet's 153-day span).
fn hot_window_batch(n: usize, seed: u64) -> Vec<StQuery> {
    let centers = [
        (23.7275, 37.9838),
        (22.9446, 40.6401),
        (21.7346, 38.2466),
        (25.1442, 35.3387),
        (22.4191, 39.6390),
    ];
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let start = DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0);
    let t0 = start.plus_millis(90 * 86_400_000);
    let t1 = DateTime::from_millis(t0.millis() + 3 * 86_400_000);
    (0..n)
        .map(|_| {
            let (clon, clat) = centers[(next() % centers.len() as u64) as usize];
            let dx = (next() % 1_000) as f64 / 10_000.0 - 0.05;
            let dy = (next() % 1_000) as f64 / 10_000.0 - 0.05;
            let w = 0.02 + (next() % 600) as f64 / 10_000.0;
            StQuery {
                rect: GeoRect::new(clon + dx, clat + dy, clon + dx + w, clat + dy + w),
                t0,
                t1,
            }
        })
        .collect()
}

#[test]
fn health_counters_agree_with_query_reports() {
    let docs = corpus();
    let batch = hot_window_batch(30, 0xC0FFEE);
    for approach in Approach::ALL {
        let store = store_for(approach, &docs, R_MBR, NUM_SHARDS);
        let mut routed = 0u64;
        let mut returned = 0u64;
        let mut keys = 0u64;
        for q in &batch {
            let (found, report) = store.st_query(q);
            routed += report.cluster.nodes() as u64;
            returned += found.len() as u64;
            keys += report.cluster.total_keys_examined();
        }
        let health = store.health_snapshot();
        assert_eq!(health.total_queries(), routed, "{approach}");
        assert_eq!(
            health.shards.iter().map(|s| s.docs_returned).sum::<u64>(),
            returned,
            "{approach}"
        );
        assert_eq!(
            health.shards.iter().map(|s| s.keys_examined).sum::<u64>(),
            keys,
            "{approach}"
        );
        // Every stored document is accounted to exactly one shard.
        assert_eq!(
            health.shards.iter().map(|s| s.docs_stored).sum::<u64>(),
            docs.len() as u64,
            "{approach}"
        );
        // Chunk heat: the batch touched at least one chunk, and the
        // routing table the snapshot reports covers all stored docs.
        assert!(
            health.chunks.iter().any(|c| c.queries_routed > 0),
            "{approach}: no chunk heat recorded"
        );
        assert_eq!(
            health.chunks.iter().map(|c| c.docs).sum::<u64>(),
            docs.len() as u64,
            "{approach}"
        );
    }
}

#[test]
fn balancer_event_history_matches_migration_counters() {
    let docs = corpus();
    for approach in Approach::ALL {
        let store = store_for(approach, &docs, R_MBR, NUM_SHARDS);
        let health = store.health_snapshot();
        let stats = store.cluster().migration_stats();

        // Loading far more data than one chunk holds forces splits.
        assert!(
            health
                .events
                .iter()
                .any(|e| e.kind == BalancerEventKind::Split),
            "{approach}: no split events recorded"
        );
        // The Migrate events replay the migration counters exactly.
        let (moves, docs_moved) = health
            .events
            .iter()
            .filter_map(|e| match e.kind {
                BalancerEventKind::Migrate { docs, .. } => Some(docs),
                _ => None,
            })
            .fold((0u64, 0u64), |(n, d), docs| (n + 1, d + docs));
        assert_eq!(moves, stats.chunks_moved, "{approach}");
        assert_eq!(docs_moved, stats.docs_moved, "{approach}");
        // History is ordered.
        for (i, e) in health.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "{approach}: event order");
        }
    }
}

#[test]
fn hilbert_sharding_spreads_the_hot_window_more_evenly() {
    // The paper-regime configuration (chunks hold many documents, so a
    // three-day hot window concentrates on few date-range chunks): a
    // larger corpus and 64 KB chunks. With tiny chunks every hot day
    // already spans several chunks and the comparison washes out.
    let docs: Vec<Document> = generate(&FleetConfig {
        records: 7_600,
        vehicles: 500,
        ..Default::default()
    })
    .iter()
    .map(Record::to_document)
    .collect();
    let batch = hot_window_batch(40, 0x5137_2021);
    let gini_of = |approach: Approach| -> f64 {
        let mut store = sts::core::StStore::new(sts::core::StoreConfig {
            approach,
            num_shards: NUM_SHARDS,
            max_chunk_bytes: 64 * 1024,
            data_mbr: R_MBR,
            ..Default::default()
        });
        store.bulk_load(docs.iter().cloned()).unwrap();
        for q in &batch {
            store.st_query(q);
        }
        store.health_snapshot().queries_skew().gini
    };
    let bsl_st = gini_of(Approach::BslST);
    let bsl_ts = gini_of(Approach::BslTS);
    let hil = gini_of(Approach::Hil);
    let hil_star = gini_of(Approach::HilStar);
    for (name, h) in [("hil", hil), ("hil*", hil_star)] {
        for (bname, b) in [("bslST", bsl_st), ("bslTS", bsl_ts)] {
            assert!(
                h + 0.05 < b,
                "gini({name}) = {h:.3} not measurably below gini({bname}) = {b:.3}"
            );
        }
    }
}
