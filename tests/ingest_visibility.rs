//! Interleaved ingest + query on one collection and on the full
//! store: a staged batch is invisible in full until its commit and
//! visible in full after — never a torn prefix — and the decoded-doc
//! cache (PR 4) stays coherent across the stage/commit boundary.

mod support;

use sts::core::{Approach, StQuery};
use sts::document::{doc, DateTime, Document, Value};
use sts::geo::GeoRect;
use sts::index::{IndexField, IndexSpec};
use sts::query::{Filter, LocalCollection};
use support::oracle::{result_id_set, Oracle};
use support::store_for;

fn fix(id: u32, lon: f64, lat: f64, ms: i64) -> Document {
    let mut d = doc! {
        "location" => doc! {
            "type" => "Point",
            "coordinates" => vec![Value::from(lon), Value::from(lat)],
        },
        "date" => DateTime::from_millis(ms),
    };
    d.ensure_id(id);
    d
}

fn mbr() -> GeoRect {
    GeoRect::new(20.0, 35.0, 28.0, 41.5)
}

fn everything() -> StQuery {
    StQuery {
        rect: mbr(),
        t0: DateTime::from_millis(0),
        t1: DateTime::from_millis(10_000_000),
    }
}

/// Corpus of `n` fixes spread across the MBR and timeline.
fn corpus(n: usize, id_base: u32) -> Vec<Document> {
    (0..n)
        .map(|i| {
            let f = i as f64 / n as f64;
            fix(
                id_base + i as u32,
                20.5 + 7.0 * f,
                35.5 + 5.5 * ((i * 37 % n) as f64 / n as f64),
                (i as i64 * 9_973) % 8_000_000,
            )
        })
        .collect()
}

// ------------------------------------------------- LocalCollection

/// The core atomicity property on a single collection: every query
/// between stage and commit sees *none* of the batch; every query
/// after commit sees *all* of it. Both the executor path (`find`) and
/// the visibility-aware full scan agree at each point.
#[test]
fn staged_batch_is_all_or_nothing_on_one_collection() {
    let mut coll = LocalCollection::new();
    coll.create_index(IndexSpec::single("_id"));
    coll.create_index(IndexSpec::new("date_1", vec![IndexField::asc("date")]));

    let base = corpus(40, 0);
    for d in &base {
        coll.insert(d).unwrap();
    }
    let batch = corpus(25, 1_000);

    let all = Filter::gte("date", DateTime::from_millis(0));
    let (docs, _) = coll.find(&all);
    assert_eq!(docs.len(), 40);

    // Stage the batch one document at a time: after *each* stage the
    // reader still sees exactly the base corpus — a torn batch would
    // surface here as a partial prefix.
    for (i, d) in batch.iter().enumerate() {
        coll.stage(d).unwrap();
        let (docs, _) = coll.find(&all);
        assert_eq!(
            docs.len(),
            40,
            "staged doc {i} leaked into query results before commit"
        );
        assert_eq!(coll.find_collscan(&all).len(), 40);
        assert_eq!(coll.visible_len(), 40);
        assert_eq!(coll.len(), 40 + i + 1, "staged docs are stored");
    }

    // One commit flips the whole batch visible at once.
    coll.commit_batch();
    let (docs, _) = coll.find(&all);
    assert_eq!(docs.len(), 65, "commit publishes the entire batch");
    assert_eq!(coll.find_collscan(&all).len(), 65);
    assert_eq!(coll.visible_len(), 65);

    // And the published set is exactly base ∪ batch by `_id`.
    let got = result_id_set(&docs);
    let want: std::collections::BTreeSet<_> = base
        .iter()
        .chain(&batch)
        .map(|d| d.object_id().unwrap())
        .collect();
    assert_eq!(got, want);
}

/// The decoded-document cache serves reads both below and above the
/// snapshot correctly: `get` (snapshot-blind) and `get_visible` agree
/// before and after the commit, and repeated reads — which hit the
/// cache — never change their answer mid-batch.
#[test]
fn decoded_cache_stays_coherent_across_commit() {
    let mut coll = LocalCollection::new();
    coll.create_index(IndexSpec::single("_id"));

    let d0 = fix(1, 21.0, 36.0, 1_000);
    let rid0 = coll.insert(&d0).unwrap();
    let d1 = fix(2, 22.0, 37.0, 2_000);
    let rid1 = coll.stage(&d1).unwrap();

    let snap = coll.snapshot();
    for _ in 0..3 {
        // Repeated (cached) reads: stable answers while staged.
        assert_eq!(coll.get(rid0).as_ref(), Some(&d0));
        assert_eq!(coll.get_visible(rid0, snap).as_ref(), Some(&d0));
        assert_eq!(
            coll.get(rid1).as_ref(),
            Some(&d1),
            "snapshot-blind read serves the staged record"
        );
        assert_eq!(
            coll.get_visible(rid1, snap),
            None,
            "snapshot read must not serve the staged record"
        );
    }
    assert_eq!(coll.epoch_of(rid0), Some(0));
    assert_eq!(coll.epoch_of(rid1), Some(snap + 1));

    coll.commit_batch();
    let snap = coll.snapshot();
    for _ in 0..3 {
        assert_eq!(
            coll.get_visible(rid1, snap).as_ref(),
            Some(&d1),
            "the same cached record flips visible after commit"
        );
    }
    // A reader pinned to the old snapshot still excludes the batch —
    // the visibility decision is per-read, not baked into the cache.
    assert_eq!(coll.get_visible(rid1, snap - 1), None);
    assert_eq!(coll.get_visible(rid0, snap - 1).as_ref(), Some(&d0));
}

/// Two batches staged back-to-back without an intervening commit form
/// one visibility unit: a single commit publishes both.
#[test]
fn consecutive_stages_merge_into_one_visibility_unit() {
    let mut coll = LocalCollection::new();
    coll.create_index(IndexSpec::single("_id"));
    let a = fix(1, 21.0, 36.0, 1_000);
    let b = fix(2, 22.0, 37.0, 2_000);
    let ra = coll.stage(&a).unwrap();
    let rb = coll.stage(&b).unwrap();
    assert_eq!(coll.epoch_of(ra), coll.epoch_of(rb));
    assert_eq!(coll.visible_len(), 0);
    coll.commit_batch();
    assert_eq!(coll.visible_len(), 2);
}

// ------------------------------------------------------- full store

/// The store-level version, across every approach: interleave staged
/// batches with spatio-temporal queries and check each query matches
/// the oracle over exactly the committed corpus — full invisibility
/// before each commit, full visibility after.
#[test]
fn interleaved_ingest_and_queries_match_the_oracle_per_approach() {
    let base = corpus(120, 0);
    let batches: Vec<Vec<Document>> = (0..3).map(|b| corpus(30, 10_000 + 100 * b)).collect();
    let probes = [
        everything(),
        StQuery {
            rect: GeoRect::new(21.0, 35.5, 26.5, 40.0),
            t0: DateTime::from_millis(500_000),
            t1: DateTime::from_millis(6_500_000),
        },
    ];

    for approach in Approach::ALL {
        let mut store = store_for(approach, &base, mbr(), 4);
        let mut committed = base.clone();
        for batch in &batches {
            // Stage the whole batch, then query: nothing of it shows.
            for d in batch {
                store.stage(d.clone()).unwrap();
            }
            let oracle = Oracle::new(committed.clone());
            for q in &probes {
                let (docs, _) = store.st_query(q);
                assert_eq!(
                    result_id_set(&docs),
                    oracle.id_set(q),
                    "{approach}: staged batch visible before commit"
                );
            }

            store.commit_batch();
            committed.extend(batch.iter().cloned());
            let oracle = Oracle::new(committed.clone());
            for q in &probes {
                let (docs, _) = store.st_query(q);
                assert_eq!(
                    result_id_set(&docs),
                    oracle.id_set(q),
                    "{approach}: committed batch not fully visible"
                );
            }
        }
        assert_eq!(store.doc_count(), committed.len() as u64);
    }
}

/// `insert_batch` is equivalent to stage-all + commit: the batch
/// becomes visible atomically and the count matches.
#[test]
fn insert_batch_publishes_atomically() {
    let base = corpus(60, 0);
    let batch = corpus(40, 5_000);
    let mut store = store_for(Approach::HilStar, &base, mbr(), 4);
    let n = store.insert_batch(batch.iter().cloned()).unwrap();
    assert_eq!(n, 40);
    let oracle = Oracle::new(base.iter().chain(&batch).cloned().collect());
    let q = everything();
    let (docs, _) = store.st_query(&q);
    assert_eq!(result_id_set(&docs), oracle.id_set(&q));
}
