//! Differential testing: every approach (`bslST`, `bslTS`, `hil`,
//! `hil*`) must return exactly the full-scan oracle's result set on
//! random spatio-temporal workloads — and the curve-based approaches
//! must do so on *every* curve family in the zoo (Hilbert, Z-order,
//! onion, skew-adaptive GeoHash).

mod support;

use proptest::prelude::*;
use sts::core::{Approach, StQuery};
use sts::curve::CurveFamily;
use sts::document::{doc, DateTime, Document, Value};
use sts::geo::GeoRect;
use support::oracle::{result_id_set, Oracle};
use support::{store_for, store_for_curve};

/// Spatial box the random corpus lives in (roughly the paper's R MBR).
const LON_MIN: f64 = 20.0;
const LON_MAX: f64 = 28.0;
const LAT_MIN: f64 = 35.0;
const LAT_MAX: f64 = 41.5;
/// Temporal span of the random corpus, in millis.
const SPAN_MS: i64 = 8_000_000;

fn data_mbr() -> GeoRect {
    GeoRect::new(LON_MIN, LAT_MIN, LON_MAX, LAT_MAX)
}

/// One random fix: (lon, lat, timestamp millis).
fn point() -> impl Strategy<Value = (f64, f64, i64)> {
    (LON_MIN..LON_MAX, LAT_MIN..LAT_MAX, 0..SPAN_MS)
}

/// A random spatio-temporal range query (possibly empty, possibly
/// degenerate — the engines must agree with the oracle regardless).
fn query() -> impl Strategy<Value = StQuery> {
    (
        LON_MIN..LON_MAX,
        LON_MIN..LON_MAX,
        LAT_MIN..LAT_MAX,
        LAT_MIN..LAT_MAX,
        0..SPAN_MS,
        0..SPAN_MS,
    )
        .prop_map(|(lon_a, lon_b, lat_a, lat_b, t_a, t_b)| StQuery {
            rect: GeoRect::new(
                lon_a.min(lon_b),
                lat_a.min(lat_b),
                lon_a.max(lon_b),
                lat_a.max(lat_b),
            ),
            t0: DateTime::from_millis(t_a.min(t_b)),
            t1: DateTime::from_millis(t_a.max(t_b)),
        })
}

/// Materialize the corpus: GeoJSON point + date + unique `_id` per fix.
fn corpus(points: &[(f64, f64, i64)]) -> Vec<Document> {
    points
        .iter()
        .enumerate()
        .map(|(i, &(lon, lat, ms))| {
            let mut d = doc! {
                "location" => doc! {
                    "type" => "Point",
                    "coordinates" => vec![Value::from(lon), Value::from(lat)],
                },
                "date" => DateTime::from_millis(ms),
            };
            d.ensure_id(i as u32);
            d
        })
        .collect()
}

fn assert_matches_oracle_in(oracle: &Oracle, queries: &[StQuery], mbr: GeoRect) {
    for approach in Approach::ALL {
        let store = store_for(approach, oracle.docs(), mbr, 4);
        for q in queries {
            let (docs, report) = store.st_query(q);
            assert_eq!(
                result_id_set(&docs),
                oracle.id_set(q),
                "{approach} disagrees with the oracle on {q:?}"
            );
            assert_eq!(report.cluster.n_returned(), oracle.count(q));
            // No failpoints armed: the report must be complete and
            // recovery-free.
            assert!(!report.cluster.partial);
            assert!(report.cluster.fault_free());
        }
    }
}

fn assert_matches_oracle(oracle: &Oracle, queries: &[StQuery]) {
    assert_matches_oracle_in(oracle, queries, data_mbr());
}

/// The curve-zoo sweep: both curve-based approaches on every family
/// must return exactly the oracle's result set.
fn assert_curve_zoo_matches_oracle_in(oracle: &Oracle, queries: &[StQuery], mbr: GeoRect) {
    for approach in [Approach::Hil, Approach::HilStar] {
        for family in CurveFamily::ALL {
            let store = store_for_curve(approach, family, oracle.docs(), mbr, 4);
            for q in queries {
                let (docs, report) = store.st_query(q);
                assert_eq!(
                    result_id_set(&docs),
                    oracle.id_set(q),
                    "{approach}/{family} disagrees with the oracle on {q:?}"
                );
                assert_eq!(report.cluster.n_returned(), oracle.count(q));
                assert!(report.hilbert_ranges > 0 || oracle.count(q) == 0);
                assert!(!report.cluster.partial);
                assert!(report.cluster.fault_free());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Uniform random corpus, fully random query boxes.
    #[test]
    fn random_workloads_match_the_oracle(
        points in proptest::collection::vec(point(), 120..240),
        queries in proptest::collection::vec(query(), 1..5),
    ) {
        let oracle = Oracle::new(corpus(&points));
        assert_matches_oracle(&oracle, &queries);
    }

    /// Queries centred on actual data points, so result sets are
    /// productive (a pure-random box often matches nothing).
    #[test]
    fn productive_workloads_match_the_oracle(
        points in proptest::collection::vec(point(), 120..220),
        centers in proptest::collection::vec(
            (any::<proptest::sample::Index>(), 0.02..1.2f64, 10_000..3_000_000i64),
            1..4,
        ),
    ) {
        let oracle = Oracle::new(corpus(&points));
        let queries: Vec<StQuery> = centers
            .iter()
            .map(|(idx, half_deg, half_ms)| {
                let (lon, lat, ms) = points[idx.index(points.len())];
                StQuery {
                    rect: GeoRect::new(
                        lon - half_deg,
                        lat - half_deg,
                        lon + half_deg,
                        lat + half_deg,
                    ),
                    t0: DateTime::from_millis((ms - half_ms).max(0)),
                    t1: DateTime::from_millis((ms + half_ms).min(SPAN_MS)),
                }
            })
            .collect();
        // Every query is productive by construction: it contains the
        // point it was centred on.
        for q in &queries {
            assert!(oracle.count(q) >= 1);
        }
        assert_matches_oracle(&oracle, &queries);
    }

    /// Duplicate positions and timestamps (heavy skew) don't break
    /// set-equality with the oracle.
    #[test]
    fn skewed_duplicates_match_the_oracle(
        base in proptest::collection::vec(point(), 10..30),
        copies in 2..6usize,
        queries in proptest::collection::vec(query(), 1..4),
    ) {
        let mut points = Vec::new();
        for _ in 0..copies {
            points.extend(base.iter().copied());
        }
        let oracle = Oracle::new(corpus(&points));
        assert_matches_oracle(&oracle, &queries);
    }

    /// Every curve family in the zoo is exact on random corpora and
    /// random query boxes (the full-scan differential oracle applied
    /// per-curve, acceptance criterion of the curve-zoo refactor).
    #[test]
    fn curve_zoo_matches_the_oracle(
        points in proptest::collection::vec(point(), 100..180),
        queries in proptest::collection::vec(query(), 1..4),
    ) {
        let oracle = Oracle::new(corpus(&points));
        assert_curve_zoo_matches_oracle_in(&oracle, &queries, data_mbr());
    }
}

/// The paper's own workload, differentially checked on the fleet
/// generator's output (complements the random cases above).
#[test]
fn paper_workload_matches_the_oracle() {
    use sts::workload::fleet::{generate, FleetConfig};
    use sts::workload::queries::full_workload;
    use sts::workload::{Record, R_MBR};

    let records = generate(&FleetConfig {
        records: 4_000,
        vehicles: 25,
        extra_fields: 4,
        ..Default::default()
    });
    let docs: Vec<Document> = records.iter().map(Record::to_document).collect();
    let oracle = Oracle::new(docs);
    let start = DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0);
    let queries: Vec<StQuery> = full_workload(start)
        .into_iter()
        .map(|(_, _, q)| q)
        .collect();
    assert_matches_oracle_in(&oracle, &queries, R_MBR);
    // And the same fleet workload holds on every curve in the zoo.
    assert_curve_zoo_matches_oracle_in(&oracle, &queries, R_MBR);
}
