//! Chunking and balancing invariants at the store level: chunk counters,
//! jumbo handling, and stability of results under heavy rebalancing.

use sts::cluster::{Cluster, ClusterConfig, ShardKey};
use sts::core::{Approach, StQuery, StStore, StoreConfig};
use sts::document::{doc, DateTime, Document, Value};
use sts::geo::GeoRect;
use sts::workload::fleet::{generate, FleetConfig};
use sts::workload::Record;

fn point_doc(i: u32, lon: f64, lat: f64, ms: i64, h: i64) -> Document {
    let mut d = doc! {
        "location" => doc! {
            "type" => "Point",
            "coordinates" => vec![Value::from(lon), Value::from(lat)],
        },
        "date" => DateTime::from_millis(ms),
        "hilbertIndex" => h,
    };
    d.ensure_id(i);
    d
}

#[test]
fn chunk_map_covers_key_space_without_gaps() {
    let mut c = Cluster::new(
        ClusterConfig {
            num_shards: 5,
            max_chunk_bytes: 8 * 1024,
            ..Default::default()
        },
        ShardKey::range(&["hilbertIndex", "date"]),
        vec![],
    );
    for i in 0..3_000u32 {
        c.insert(&point_doc(
            i,
            20.0,
            35.0,
            i64::from(i) * 997,
            i64::from(i % 97),
        ))
        .unwrap();
    }
    let chunks = c.chunk_map().chunks();
    assert!(chunks.len() > 10);
    // First chunk starts at -inf, last ends at +inf, and the boundaries
    // tile exactly.
    assert!(chunks[0].min.is_empty());
    assert!(chunks.last().unwrap().max.is_none());
    for w in chunks.windows(2) {
        assert_eq!(w[0].max.as_ref(), Some(&w[1].min), "gap or overlap");
    }
    // Counters roughly track the data (split halving is an estimate,
    // totals must be exact).
    let total_docs: u64 = chunks.iter().map(|c| c.docs).sum();
    assert_eq!(total_docs, 3_000);
}

#[test]
fn smaller_chunks_mean_more_even_distribution() {
    // §3.3: "the configuration of small-sized chunks leads to a more
    // even distribution of data".
    let records = generate(&FleetConfig {
        records: 6_000,
        vehicles: 30,
        extra_fields: 4,
        ..Default::default()
    });
    let spread = |max_chunk: u64| -> f64 {
        let mut store = StStore::new(StoreConfig {
            approach: Approach::Hil,
            num_shards: 6,
            max_chunk_bytes: max_chunk,
            ..Default::default()
        });
        store
            .bulk_load(records.iter().map(Record::to_document))
            .unwrap();
        let per = store.cluster().docs_per_shard();
        let max = *per.iter().max().unwrap() as f64;
        let min = *per.iter().min().unwrap() as f64;
        max / min.max(1.0)
    };
    let small = spread(16 * 1024);
    let large = spread(2 * 1024 * 1024);
    assert!(
        small <= large,
        "small chunks should balance at least as evenly: {small} vs {large}"
    );
    assert!(small < 2.5, "small-chunk imbalance ratio: {small}");
}

#[test]
fn query_results_stable_across_chunk_granularities() {
    let records = generate(&FleetConfig {
        records: 5_000,
        vehicles: 25,
        extra_fields: 4,
        ..Default::default()
    });
    let q = StQuery {
        rect: GeoRect::new(22.5, 37.0, 24.5, 39.0),
        t0: DateTime::from_ymd_hms(2018, 8, 1, 0, 0, 0),
        t1: DateTime::from_ymd_hms(2018, 10, 1, 0, 0, 0),
    };
    let mut counts = Vec::new();
    for max_chunk in [8 * 1024u64, 64 * 1024, 1024 * 1024] {
        let mut store = StStore::new(StoreConfig {
            approach: Approach::Hil,
            num_shards: 4,
            max_chunk_bytes: max_chunk,
            ..Default::default()
        });
        store
            .bulk_load(records.iter().map(Record::to_document))
            .unwrap();
        counts.push(store.st_query(&q).0.len());
    }
    assert!(counts[0] > 0);
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}

#[test]
fn jumbo_chunk_keeps_accepting_writes() {
    let mut c = Cluster::new(
        ClusterConfig {
            num_shards: 2,
            max_chunk_bytes: 2 * 1024,
            ..Default::default()
        },
        ShardKey::range(&["hilbertIndex"]),
        vec![],
    );
    // One hot key value — the chunk goes jumbo but must keep working.
    for i in 0..1_000u32 {
        c.insert(&point_doc(i, 23.7, 37.9, i64::from(i), 42))
            .unwrap();
    }
    assert!(c.chunk_map().chunks().iter().any(|ch| ch.jumbo));
    assert_eq!(c.doc_count(), 1_000);
    let f = sts::query::Filter::eq("hilbertIndex", 42i64);
    let (docs, _) = c.query(&f);
    assert_eq!(docs.len(), 1_000);
}
