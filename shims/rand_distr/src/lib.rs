//! Offline stand-in for `rand_distr`: just the `Normal` distribution
//! (the only one the workspace samples), via the Box–Muller transform.

use rand::{Rng, RngCore};

pub use rand::Distribution;

/// Parameter error from `Normal::new`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Error;

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

/// Normal (Gaussian) distribution.
#[derive(Clone, Copy, Debug)]
pub struct Normal<T> {
    mean: T,
    std_dev: T,
}

impl Normal<f64> {
    /// A normal distribution with the given mean and standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if std_dev.is_finite() && std_dev >= 0.0 && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms per draw keeps the stream a pure
        // function of the rng state (no cached second sample).
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{SeedableRng, StdRng};

    #[test]
    fn mean_and_spread_are_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Normal::new(10.0, 2.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }
}
