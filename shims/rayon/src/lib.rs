//! Offline stand-in for `rayon`.
//!
//! Implements the one pattern the workspace uses —
//! `slice.par_iter().map(f).collect::<C>()` — with real parallelism:
//! the items are split into contiguous chunks, one scoped OS thread per
//! chunk (bounded by available parallelism), and results are gathered
//! back **in input order**, matching rayon's indexed collect semantics.
//! There is no work stealing; the fan-outs here are a handful of
//! equally-sized shard tasks, where static chunking is just as good.

use std::num::NonZeroUsize;

/// `.par_iter()` entry point for shared slices.
pub trait IntoParallelRefIterator<'a> {
    /// Item yielded by the parallel iterator.
    type Item: 'a;

    /// A parallel iterator borrowing `self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The mapped stage of a parallel iterator.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Execute the map on scoped threads and gather results in input
    /// order into any `FromIterator` collection.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_ordered(self.items, &self.f).into_iter().collect()
    }
}

/// Number of worker threads to use for `n` items.
fn workers_for(n: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(n).max(1)
}

/// Apply `f` to every item on a small pool of scoped threads, returning
/// the results in input order.
fn run_ordered<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = workers_for(n);
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let slots = &mut out[..];
    std::thread::scope(|scope| {
        // Hand each worker a disjoint window of the output buffer.
        let mut rest = slots;
        let mut start = 0;
        let mut handles = Vec::with_capacity(workers);
        while start < n {
            let take = chunk.min(n - start);
            let (window, tail) = rest.split_at_mut(take);
            rest = tail;
            let base = start;
            handles.push(scope.spawn(move || {
                for (i, slot) in window.iter_mut().enumerate() {
                    *slot = Some(f(&items[base + i]));
                }
            }));
            start += take;
        }
        for h in handles {
            h.join().expect("parallel worker panicked");
        }
    });
    out.into_iter()
        .map(|s| s.expect("worker filled slot"))
        .collect()
}

/// Everything the workspace imports via `rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = Vec::new();
        let out: Vec<u32> = none.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
