//! Offline stand-in for `proptest`.
//!
//! The build environment cannot fetch crates.io, so this crate
//! re-implements the subset of proptest's API the workspace uses:
//! `proptest!`/`prop_assert*!`/`prop_oneof!`, `Strategy` with
//! `prop_map`/`prop_filter`/`prop_recursive`/`boxed`, `any::<T>()`,
//! numeric `ANY` constants (plus `f64` class strategies combinable with
//! `|`), `collection::vec`, `option::of`, `Just`, tuple strategies, and
//! regex-lite string strategies (`"[a-z]{1,8}"`).
//!
//! Differences from the real crate, deliberate and documented:
//!
//! * **No shrinking.** A failing case panics with the case number; the
//!   run is deterministic, so re-running reproduces it exactly.
//! * **Deterministic seeding.** Each test function's RNG is seeded from
//!   a hash of the function name, so failures reproduce across runs and
//!   machines (the repo's tests must be wall-clock- and entropy-free).

use rand::prelude::*;

/// Per-test-run configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG for one property function, seeded from its name.
#[doc(hidden)]
pub fn test_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generation strategy: how to produce one random value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (rejection sampling).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Build recursive structures: `f` maps a strategy for the inner
    /// level to a strategy for the outer one; nesting is bounded by
    /// `levels` (the real crate's stochastic depth control simplifies
    /// to explicit unrolling here).
    fn prop_recursive<S, F>(
        self,
        levels: u32,
        _size: u32,
        _items_per_collection: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.boxed();
        for _ in 0..levels {
            strat = Union::weighted(vec![(1, strat.clone()), (2, f(strat).boxed())]).boxed();
        }
        strat
    }

    /// Type-erase (and make cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(std::rc::Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        self.0.generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<V>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut StdRng) -> V {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive values: {}",
            self.reason
        );
    }
}

/// Weighted choice between type-erased strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Union<V> {
    /// Equal-weight union.
    pub fn even(arms: Vec<BoxedStrategy<V>>) -> Self {
        Union {
            arms: arms.into_iter().map(|s| (1, s)).collect(),
        }
    }

    /// Weighted union.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "union of zero strategies");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights covered the draw")
    }
}

// ---- ranges -------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

// ---- arbitrary ----------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw one unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Random bit patterns: covers normals, subnormals, infinities
        // and NaNs, like the real crate's full f64 domain.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> [T; N] {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

// ---- numeric ANY / float classes ----------------------------------------

/// `proptest::num::<int>::ANY`-style constants.
pub struct NumAny<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for NumAny<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A union of IEEE-754 value classes, combinable with `|`.
#[derive(Clone, Copy, Debug)]
pub struct FloatClass {
    mask: u32,
}

const CLASS_NORMAL: u32 = 1;
const CLASS_ZERO: u32 = 2;
const CLASS_SUBNORMAL: u32 = 4;
const CLASS_INFINITE: u32 = 8;

impl core::ops::BitOr for FloatClass {
    type Output = FloatClass;

    fn bitor(self, rhs: FloatClass) -> FloatClass {
        FloatClass {
            mask: self.mask | rhs.mask,
        }
    }
}

impl Strategy for FloatClass {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        let classes: Vec<u32> = [CLASS_NORMAL, CLASS_ZERO, CLASS_SUBNORMAL, CLASS_INFINITE]
            .into_iter()
            .filter(|c| self.mask & c != 0)
            .collect();
        assert!(!classes.is_empty(), "empty float class mask");
        let class = classes[rng.gen_range(0..classes.len())];
        let sign = rng.next_u64() << 63;
        let mantissa = rng.next_u64() & ((1u64 << 52) - 1);
        match class {
            CLASS_NORMAL => {
                let exp = rng.gen_range(1u64..2047) << 52;
                f64::from_bits(sign | exp | mantissa)
            }
            CLASS_ZERO => f64::from_bits(sign),
            CLASS_SUBNORMAL => f64::from_bits(sign | mantissa.max(1)),
            _ => f64::from_bits(sign | (2047u64 << 52)),
        }
    }
}

/// Numeric strategies, mirroring `proptest::num`.
pub mod num {
    macro_rules! int_mod {
        ($($m:ident),+ $(,)?) => {$(
            pub mod $m {
                /// Any value of this integer type.
                pub const ANY: crate::NumAny<core::primitive::$m> =
                    crate::NumAny(core::marker::PhantomData);
            }
        )+};
    }

    int_mod!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub mod f64 {
        use crate::FloatClass;

        /// Normal (non-zero, non-subnormal, finite) doubles.
        pub const NORMAL: FloatClass = FloatClass {
            mask: super::super::CLASS_NORMAL,
        };
        /// Positive and negative zero.
        pub const ZERO: FloatClass = FloatClass {
            mask: super::super::CLASS_ZERO,
        };
        /// Subnormal doubles.
        pub const SUBNORMAL: FloatClass = FloatClass {
            mask: super::super::CLASS_SUBNORMAL,
        };
        /// The two infinities.
        pub const INFINITE: FloatClass = FloatClass {
            mask: super::super::CLASS_INFINITE,
        };
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    /// Either boolean.
    pub const ANY: crate::NumAny<core::primitive::bool> = crate::NumAny(core::marker::PhantomData);
}

// ---- tuples -------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident $v:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A a)
    (A a, B b)
    (A a, B b, C c)
    (A a, B b, C c, D d)
    (A a, B b, C c, D d, E e)
    (A a, B b, C c, D d, E e, F f)
}

// ---- collections / option -----------------------------------------------

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::*;

    /// A `Vec` whose length is drawn from `sizes` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, sizes: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        sizes: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.sizes.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers, mirroring `proptest::sample`.
pub mod sample {
    use super::*;

    /// An index into a collection whose size is only known at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Project onto a concrete collection length.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Option strategies, mirroring `proptest::option`.
pub mod option {
    use super::*;

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---- regex-lite string strategies ---------------------------------------

/// One pattern element: what characters it may produce.
enum Piece {
    Lit(char),
    AnyChar,
    Class(Vec<(char, char)>),
}

impl Piece {
    fn generate(&self, rng: &mut StdRng) -> char {
        match self {
            Piece::Lit(c) => *c,
            // Printable ASCII keeps generated keys well-behaved in
            // ordering tests while still exercising the encoders.
            Piece::AnyChar => char::from(rng.gen_range(0x20u8..0x7F)),
            Piece::Class(ranges) => {
                let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
                let mut pick = rng.gen_range(0..total);
                for (a, b) in ranges {
                    let span = *b as u32 - *a as u32 + 1;
                    if pick < span {
                        return char::from_u32(*a as u32 + pick).expect("ascii range");
                    }
                    pick -= span;
                }
                unreachable!("ranges covered the draw")
            }
        }
    }
}

/// Parse the regex-lite subset: literals, `.`, `[...]` classes with
/// ranges, and `{n}`/`{n,m}`/`?`/`*`/`+` quantifiers.
fn parse_pattern(pattern: &str) -> Vec<(Piece, u32, u32)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let piece = match chars[i] {
            '.' => {
                i += 1;
                Piece::AnyChar
            }
            '\\' => {
                i += 1;
                let c = *chars.get(i).expect("escape at end of pattern");
                i += 1;
                Piece::Lit(c)
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated character class: {pattern}");
                i += 1; // consume ']'
                Piece::Class(ranges)
            }
            c => {
                i += 1;
                Piece::Lit(c)
            }
        };
        let (lo, hi) = match chars.get(i) {
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('{') => {
                i += 1;
                let mut lo = 0u32;
                while chars[i].is_ascii_digit() {
                    lo = lo * 10 + chars[i].to_digit(10).expect("digit");
                    i += 1;
                }
                let hi = if chars[i] == ',' {
                    i += 1;
                    let mut hi = 0u32;
                    while chars[i].is_ascii_digit() {
                        hi = hi * 10 + chars[i].to_digit(10).expect("digit");
                        i += 1;
                    }
                    hi
                } else {
                    lo
                };
                assert_eq!(chars[i], '}', "malformed quantifier: {pattern}");
                i += 1;
                (lo, hi)
            }
            _ => (1, 1),
        };
        out.push((piece, lo, hi));
    }
    out
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let mut s = String::new();
        for (piece, lo, hi) in parse_pattern(self) {
            let count = rng.gen_range(lo..=hi);
            for _ in 0..count {
                s.push(piece.generate(rng));
            }
        }
        s
    }
}

// ---- macros -------------------------------------------------------------

/// Declares deterministic property tests (shrink-free stand-in for
/// proptest's macro of the same name).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            for _ in 0..__cfg.cases {
                $( let $pat = $crate::Strategy::generate(&($strat), &mut __rng); )+
                $body
            }
        }
    )*};
}

/// `assert!` under proptest's name (no shrinking to drive, so the
/// failing case simply panics).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Equal-weight union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::even(vec![ $( $crate::Strategy::boxed($s) ),+ ])
    };
}

/// Everything tests import via `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::test_rng("string_patterns_match_shape");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-d]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)));
            let t = Strategy::generate(&"[a-zA-Z][a-zA-Z0-9_]{0,11}", &mut rng);
            assert!(!t.is_empty() && t.len() <= 12);
            assert!(t.chars().next().unwrap().is_ascii_alphabetic());
            let dot = Strategy::generate(&".{0,12}", &mut rng);
            assert!(dot.len() <= 12);
        }
    }

    #[test]
    fn float_classes_generate_their_class() {
        let mut rng = crate::test_rng("float_classes");
        let normal_or_zero = crate::num::f64::NORMAL | crate::num::f64::ZERO;
        for _ in 0..500 {
            let v = Strategy::generate(&normal_or_zero, &mut rng);
            assert!(v == 0.0 || v.is_normal(), "{v}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_and_loops(x in 0u64..32, s in "[a-c]{2}", o in crate::option::of(1i32..5)) {
            prop_assert!(x < 32);
            prop_assert_eq!(s.len(), 2);
            if let Some(v) = o {
                prop_assert!((1..5).contains(&v));
            }
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1i64), 10i64..20, any::<bool>().prop_map(i64::from)]) {
            prop_assert!(v == 0 || v == 1 || (10..20).contains(&v));
        }
    }
}
