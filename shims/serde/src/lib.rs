//! Offline stand-in for `serde`.
//!
//! The workspace only ever derives `Serialize` on plain named-field
//! structs and feeds them to `serde_json::to_string_pretty`, so this
//! shim collapses serde's serializer abstraction to one concrete data
//! model: `Serialize` renders straight into a [`Json`] tree, and the
//! derive macro (re-exported from `serde_derive`, like the real crate)
//! emits that impl for named-field structs.

pub use serde_derive::Serialize;

/// A JSON value tree — the single "serializer" this shim targets.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    /// Numeric view (any of Int/UInt/Float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Unsigned view (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// Signed view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object view: the key/value pairs in insertion order.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Types renderable as JSON.
pub trait Serialize {
    /// Render into a [`Json`] tree.
    fn to_json(&self) -> Json;
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! ser_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Int(i64::from(*self))
            }
        }
    )+};
}

ser_int!(i8, i16, i32, i64, u8, u16, u32);

impl Serialize for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl Serialize for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl Serialize for isize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }
}
