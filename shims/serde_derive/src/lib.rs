//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` for
//! plain named-field structs, implemented directly on `proc_macro`
//! token trees (no `syn`/`quote` available offline).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the shim `serde::Serialize` (a `to_json` rendering) for a
/// non-generic struct with named fields — the only shape the workspace
/// derives on.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`, including expanded doc comments) and
    // visibility, then expect `struct <Name> { fields }`.
    let mut name = None;
    let mut fields_group = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the bracket group of the attribute.
                tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("expected struct name, found {other:?}"),
                }
                // Everything up to the brace group (there are no
                // generics in the derives this workspace contains).
                for tt in tokens.by_ref() {
                    if let TokenTree::Group(g) = &tt {
                        if g.delimiter() == Delimiter::Brace {
                            fields_group = Some(g.stream());
                            break;
                        }
                    }
                }
                break;
            }
            _ => {}
        }
    }
    let name = name.expect("#[derive(Serialize)] supports structs only");
    let body = fields_group.expect("#[derive(Serialize)] requires named fields");

    let mut entries = String::new();
    for field in field_names(body) {
        entries.push_str(&format!(
            "(\"{field}\".to_string(), serde::Serialize::to_json(&self.{field})),"
        ));
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_json(&self) -> serde::Json {{\n\
                 serde::Json::Obj(vec![{entries}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}

/// Field names of a named-field struct body: the identifier right
/// before each top-level `:`.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut prev: Option<String> = None;
    let mut expecting_name = true;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ':' && expecting_name => {
                if let Some(name) = prev.take() {
                    names.push(name);
                }
                expecting_name = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                expecting_name = true;
                prev = None;
            }
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute on the next field; its group is skipped by
                // the Group arm below.
            }
            TokenTree::Ident(id) if expecting_name => {
                let s = id.to_string();
                // `pub` / `pub(crate)` precede the name; keep only the
                // latest ident seen before the `:`.
                if s != "pub" {
                    prev = Some(s);
                }
            }
            _ => {}
        }
    }
    names
}
