//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the subset of `rand` 0.8's API the workspace
//! uses: `StdRng`/`SmallRng` seeded from a `u64`, `Rng::gen_range` over
//! integer and float ranges, `gen`/`gen_bool`, and `SliceRandom`'s
//! `shuffle`/`choose`. The generator is xoshiro256++ seeded via
//! SplitMix64 — high-quality, fast, and fully deterministic, which is
//! all the workspace's seeded generators and tests require. Streams
//! differ from the real `rand`'s, but every consumer derives its ground
//! truth from the generated data, never from the literal stream.

/// Splits one `u64` seed into well-distributed state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — the default generator behind this shim's `StdRng`.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

/// The shim makes no small/large distinction; both names map to the
/// same generator.
pub type SmallRng = StdRng;

impl StdRng {
    fn next_u64_impl(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Construction from seeds (the only constructors the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// OS-entropy construction is unavailable offline; this seeds from
    /// a fixed constant instead (no workspace code relies on it).
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x5EED_5EED_5EED_5EED)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [0x9E37_79B9, 0x7F4A_7C15, 0xBF58_476D, 0x94D0_49BB];
        }
        StdRng { s }
    }
}

/// Core random-value interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types a range expression can sample (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let v = rng.next_u64() % span;
                ((self.start as $wide).wrapping_add(v as $wide)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = rng.next_u64() % (span + 1);
                ((lo as $wide).wrapping_add(v as $wide)) as $t
            }
        }
    )+};
}

int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! float_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )+};
}

float_sample_range!(f32, f64);

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw one uniformly random value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}
impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Sampling interface for distributions, mirroring
/// `rand::distributions::Distribution` (re-exported by `rand_distr`).
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The user-facing convenience trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Uniform draw of a whole type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

/// Everything the workspace imports via `rand::prelude::*`.
pub mod prelude {
    pub use crate::{Distribution, Rng, RngCore, SeedableRng, SliceRandom, SmallRng, StdRng};
}

pub mod distributions {
    pub use crate::Distribution;
}

pub mod seq {
    pub use crate::SliceRandom;
}

pub mod rngs {
    pub use crate::{SmallRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements should move something");
    }
}
