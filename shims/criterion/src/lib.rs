//! Offline stand-in for `criterion`.
//!
//! Provides the bench-definition API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with ids, inputs and throughput) backed by a simple
//! warmup + timed-batch harness that prints mean time per iteration.
//! No statistics, plots or comparisons — enough to compile, run and
//! eyeball the numbers offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measuring time per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_ITERS: u64 = 3;

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare elements/bytes processed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sample-count hint; the shim's fixed time budget ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{id}", self.name), self.throughput);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{id}", self.name), self.throughput);
        self
    }

    /// Finish the group (formatting parity with the real crate).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Identifier from a name and a displayed parameter.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (ignored by the shim's harness).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects one benchmark's timing.
#[derive(Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let started = Instant::now();
        while started.elapsed() < MEASURE_BUDGET {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Time `routine` on fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        let started = Instant::now();
        while started.elapsed() < MEASURE_BUDGET {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{name:<56} (no iterations)");
            return;
        }
        let per_iter = self.total / u32::try_from(self.iters).unwrap_or(u32::MAX);
        let mut line = format!("{name:<56} {per_iter:>12.3?}/iter ({} iters)", self.iters);
        if let Some(tp) = throughput {
            let secs = per_iter.as_secs_f64().max(1e-12);
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:.1} Melem/s", n as f64 / secs / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(
                        "  {:.1} MiB/s",
                        n as f64 / secs / (1 << 20) as f64
                    ));
                }
            }
        }
        println!("{line}");
    }
}

/// Collect bench functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
