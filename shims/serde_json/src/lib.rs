//! Offline stand-in for `serde_json`: serialize the shim `serde`'s
//! [`Json`] tree to compact or pretty JSON text.

use serde::{Json, Serialize};

/// Serialization error. The shim's data model is always serializable;
/// the type exists so call sites keep their `Result` handling.
#[derive(Clone, Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), None, 0, &mut out);
    Ok(out)
}

/// Pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_json(v: &Json, indent: Option<usize>, depth: usize, out: &mut String) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::UInt(u) => out.push_str(&u.to_string()),
        Json::Float(x) => {
            if x.is_finite() {
                // Keep a decimal point so the value reads back as float.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_json(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(colon);
                write_json(val, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Json::Obj(vec![
            ("name".to_string(), Json::Str("q\"1".to_string())),
            ("n".to_string(), Json::UInt(3)),
            (
                "xs".to_string(),
                Json::Arr(vec![Json::Int(-1), Json::Float(2.5), Json::Null]),
            ),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"q\"1","n":3,"xs":[-1,2.5,null]}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"q\\\"1\""));
    }
}
