//! Offline stand-in for `serde_json`: serialize the shim `serde`'s
//! [`Json`] tree to compact or pretty JSON text, and parse JSON text
//! back into a [`Json`] tree.

use serde::{Json, Serialize};

/// Serialization/parse error. Serialization is infallible in the shim's
/// data model; parsing reports where and why it stopped.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn at(pos: usize, msg: &str) -> Self {
        Error(format!("{msg} at byte {pos}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Parse JSON text into a [`Json`] tree.
pub fn from_str(input: &str) -> Result<Json, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at(p.pos, "trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(self.pos, "unexpected character"))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::at(self.pos, "invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::at(self.pos, "expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(Error::at(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(Error::at(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::at(self.pos, "bad \\u escape"))?;
                            // Surrogates map to the replacement char; the
                            // writer never emits them.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::at(self.pos, "bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // slicing at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::at(self.pos, "invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        if let Some(b'e' | b'E') = self.peek() {
            float = true;
            self.pos += 1;
            if let Some(b'+' | b'-') = self.peek() {
                self.pos += 1;
            }
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at(start, "invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| Error::at(start, "invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| Error::at(start, "integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| Error::at(start, "integer out of range"))
        }
    }
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), None, 0, &mut out);
    Ok(out)
}

/// Pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_json(v: &Json, indent: Option<usize>, depth: usize, out: &mut String) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::UInt(u) => out.push_str(&u.to_string()),
        Json::Float(x) => {
            if x.is_finite() {
                // Keep a decimal point so the value reads back as float.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_json(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(colon);
                write_json(val, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Json::Obj(vec![
            ("name".to_string(), Json::Str("q\"1".to_string())),
            ("n".to_string(), Json::UInt(3)),
            (
                "xs".to_string(),
                Json::Arr(vec![Json::Int(-1), Json::Float(2.5), Json::Null]),
            ),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"q\"1","n":3,"xs":[-1,2.5,null]}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"q\\\"1\""));
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Json::Null);
        assert_eq!(from_str(" true ").unwrap(), Json::Bool(true));
        assert_eq!(from_str("false").unwrap(), Json::Bool(false));
        assert_eq!(from_str("42").unwrap(), Json::UInt(42));
        assert_eq!(from_str("-7").unwrap(), Json::Int(-7));
        assert_eq!(from_str("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(from_str("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(
            from_str(r#""a\n\"bé""#).unwrap(),
            Json::Str("a\n\"b\u{e9}".to_string())
        );
    }

    #[test]
    fn parses_containers_and_rejects_garbage() {
        let v = from_str(r#"{"xs": [1, -2, 3.5], "ok": true, "s": "hi"}"#).unwrap();
        assert_eq!(
            v.get("xs").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str(r#""open"#).is_err());
    }

    #[test]
    fn round_trips_through_the_writer() {
        let v = Json::Obj(vec![
            ("schema".to_string(), Json::Str("sts-bench/1".to_string())),
            ("p50_us".to_string(), Json::Float(123.5)),
            ("count".to_string(), Json::UInt(400)),
            ("delta".to_string(), Json::Int(-3)),
            (
                "rows".to_string(),
                Json::Arr(vec![Json::Null, Json::Bool(false)]),
            ),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&text).unwrap(), v);
        }
    }
}
