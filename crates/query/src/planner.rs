//! Candidate plan generation and MongoDB-style trial ranking.

use crate::collection::LocalCollection;
use crate::executor::{execute_plan, ExecBudget};
use crate::filter::Filter;
use crate::plan::{IndexAccess, KeyFilter, QueryPlan};
use crate::shape::QueryShape;
use sts_document::Value;
use sts_geo::{cells_to_ranges, cover_rect};
use sts_index::{FieldKind, IndexSpec, ScanRange};

/// The query planner.
///
/// Plan *generation* is rule-based (which indexes can serve which
/// constraints, §3.1's leading-field rule); plan *selection* runs every
/// candidate for a bounded trial and keeps the most productive one —
/// the same strategy as MongoDB's multi-planner, and the mechanism that
/// reproduces Table 7's observed index choices without special-casing.
#[derive(Clone, Copy, Debug)]
pub struct Planner {
    /// Cell budget for `$geoWithin` coverings on 2dsphere scans.
    /// MongoDB keeps query coverings coarse (its S2 coverer defaults to
    /// ~20 cells), trading false positives for fewer seeks.
    pub geo_scan_cells: usize,
    /// Cell budget when the covering only feeds an index-level filter.
    /// MongoDB reuses the query's (coarse) covering for filters too, so
    /// this defaults to the same value as `geo_scan_cells`; raise it to
    /// ablate how much a finer filter covering would save.
    pub geo_filter_cells: usize,
    /// Trial execution budget per candidate plan.
    pub trial_works: u64,
}

impl Default for Planner {
    fn default() -> Self {
        Planner {
            geo_scan_cells: 20,
            geo_filter_cells: 20,
            trial_works: 512,
        }
    }
}

impl Planner {
    /// Generate every candidate plan for `filter` over the collection's
    /// indexes. Always returns at least one plan (the fallback scan).
    pub fn candidates(&self, coll: &LocalCollection, filter: &Filter) -> Vec<QueryPlan> {
        let shape = QueryShape::analyze(filter);
        let mut plans = Vec::new();
        for index in coll.indexes().iter() {
            if let Some(plan) = self.plan_for_index(index.spec(), &shape) {
                plans.push(plan);
            }
        }
        if plans.is_empty() {
            plans.push(self.fallback(coll));
        }
        plans
    }

    /// Unbounded scan through whichever index exists (prefer `_id`).
    fn fallback(&self, coll: &LocalCollection) -> QueryPlan {
        let name = coll
            .indexes()
            .get("_id")
            .map(|i| i.spec().name.clone())
            .or_else(|| coll.indexes().iter().next().map(|i| i.spec().name.clone()))
            .unwrap_or_else(|| "_id".to_string());
        QueryPlan {
            index_name: name,
            ranges: vec![ScanRange::whole()],
            access: IndexAccess::Sequential,
            key_filters: vec![],
            is_fallback: true,
        }
    }

    /// Rule-based bounds derivation for one index.
    fn plan_for_index(&self, spec: &IndexSpec, shape: &QueryShape) -> Option<QueryPlan> {
        let lead = &spec.fields[0];
        match lead.kind {
            FieldKind::Geo2dSphere { bits } => {
                // Usable only with a $geoWithin on the same path (§3.1:
                // a compound index needs its leading field constrained).
                let (gpath, rect) = shape.geo.as_ref()?;
                if gpath != &lead.path {
                    return None;
                }
                let cells = cover_rect(rect, bits, self.geo_scan_cells);
                let ranges = int_ranges_to_scan(&cells_to_ranges(&cells, bits));
                // Trailing predicates become index-level filters: the
                // 2dsphere stage does not seek on them (see
                // `IndexAccess::Sequential` docs).
                let key_filters = self.trailing_filters(spec, shape, 1);
                Some(QueryPlan {
                    index_name: spec.name.clone(),
                    ranges,
                    access: IndexAccess::Sequential,
                    key_filters,
                    is_fallback: false,
                })
            }
            FieldKind::Asc => {
                if let Some((ipath, intervals)) = &shape.int_intervals {
                    if ipath == &lead.path {
                        // Hilbert-style disjunctive intervals.
                        let ranges: Vec<ScanRange> = intervals
                            .iter()
                            .map(|&(lo, hi)| {
                                ScanRange::with_prefix(
                                    &[],
                                    Some((&Value::Int64(lo), true)),
                                    Some((&Value::Int64(hi), true)),
                                )
                            })
                            .collect();
                        let access = self.trailing_skip(spec, shape);
                        let key_filters = if matches!(access, IndexAccess::SkipScan { .. }) {
                            vec![]
                        } else {
                            self.trailing_filters(spec, shape, 1)
                        };
                        return Some(QueryPlan {
                            index_name: spec.name.clone(),
                            ranges,
                            access,
                            key_filters,
                            is_fallback: false,
                        });
                    }
                }
                let iv = shape.range_for(&lead.path)?;
                if !iv.is_constrained() {
                    return None;
                }
                let ranges = vec![ScanRange::with_prefix(
                    &[],
                    iv.lo.as_ref().map(|v| (v, true)),
                    iv.hi.as_ref().map(|v| (v, true)),
                )];
                let key_filters = self.trailing_filters(spec, shape, 1);
                Some(QueryPlan {
                    index_name: spec.name.clone(),
                    ranges,
                    access: IndexAccess::Sequential,
                    key_filters,
                    is_fallback: false,
                })
            }
            // Hashed indexes serve only equality; the paper's workload
            // never issues one, so they are not planned for.
            FieldKind::Hashed => None,
        }
    }

    /// Skip-scan access when the second field has a two-sided interval.
    fn trailing_skip(&self, spec: &IndexSpec, shape: &QueryShape) -> IndexAccess {
        if let Some(f1) = spec.fields.get(1) {
            if matches!(f1.kind, FieldKind::Asc) {
                if let Some(iv) = shape.range_for(&f1.path) {
                    if let (Some(lo), Some(hi)) = (&iv.lo, &iv.hi) {
                        return IndexAccess::SkipScan {
                            t_lo: lo.clone(),
                            t_hi: hi.clone(),
                        };
                    }
                }
            }
        }
        IndexAccess::Sequential
    }

    /// Index-level filters for trailing compound fields from position
    /// `from` onwards.
    fn trailing_filters(
        &self,
        spec: &IndexSpec,
        shape: &QueryShape,
        from: usize,
    ) -> Vec<KeyFilter> {
        let mut filters = Vec::new();
        for (pos, field) in spec.fields.iter().enumerate().skip(from) {
            match field.kind {
                FieldKind::Asc => {
                    if let Some((ipath, intervals)) = &shape.int_intervals {
                        if ipath == &field.path {
                            filters.push(KeyFilter::from_int_ranges(pos, intervals));
                            continue;
                        }
                    }
                    if let Some(iv) = shape.range_for(&field.path) {
                        if let (Some(lo), Some(hi)) = (&iv.lo, &iv.hi) {
                            filters.push(KeyFilter::from_interval(pos, lo.clone(), hi.clone()));
                        }
                    }
                }
                FieldKind::Geo2dSphere { bits } => {
                    if let Some((gpath, rect)) = &shape.geo {
                        if gpath == &field.path {
                            let cells = cover_rect(rect, bits, self.geo_filter_cells);
                            let ranges = cells_to_ranges(&cells, bits);
                            filters.push(KeyFilter::from_int_ranges(pos, &to_i64_ranges(&ranges)));
                        }
                    }
                }
                FieldKind::Hashed => {}
            }
        }
        filters
    }

    /// Choose a plan by trial execution (multi-planner).
    pub fn choose(&self, coll: &LocalCollection, filter: &Filter) -> QueryPlan {
        let mut plans = self.candidates(coll, filter);
        if plans.len() == 1 {
            return plans.pop().unwrap();
        }
        let budget = Some(ExecBudget {
            max_works: self.trial_works,
        });
        let mut best: Option<(f64, u64, QueryPlan)> = None;
        for plan in plans {
            let (_, stats) = execute_plan(coll, filter, &plan, budget, false);
            let score = stats.productivity();
            let works = stats.works();
            let better = match &best {
                None => true,
                Some((bscore, bworks, _)) => {
                    score > *bscore || (score == *bscore && works < *bworks)
                }
            };
            if better {
                best = Some((score, works, plan));
            }
        }
        best.expect("candidates is never empty").2
    }
}

fn int_ranges_to_scan(ranges: &[(u64, u64)]) -> Vec<ScanRange> {
    ranges
        .iter()
        .map(|&(lo, hi)| {
            ScanRange::with_prefix(
                &[],
                Some((&Value::Int64(lo as i64), true)),
                Some((&Value::Int64(hi as i64), true)),
            )
        })
        .collect()
}

fn to_i64_ranges(ranges: &[(u64, u64)]) -> Vec<(i64, i64)> {
    ranges
        .iter()
        .map(|&(lo, hi)| (lo as i64, hi as i64))
        .collect()
}
