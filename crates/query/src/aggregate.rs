//! Distributed aggregation: `$match` + `$group` over the sharded store.
//!
//! The paper's motivating applications (§1) *analyze* the retrieved
//! trajectories — fuel-consumption studies, movement patterns — which in
//! MongoDB runs as an aggregation pipeline. This module provides the
//! classic scatter/gather evaluation: every shard folds its matching
//! documents into **partial aggregates** (one accumulator state per
//! group), the router merges the partials, and finalization produces one
//! result document per group. Only combinable accumulators are offered,
//! so the merge is exact.

use crate::explain::ExecutionStats;
use crate::filter::Filter;
use crate::LocalCollection;
use std::collections::BTreeMap;
use sts_document::{Document, Value};

/// An accumulator specification.
#[derive(Clone, Debug, PartialEq)]
pub enum Accumulator {
    /// Number of documents in the group (`$count` / `$sum: 1`).
    Count,
    /// Sum of a numeric field (`$sum`). Non-numeric values are skipped.
    Sum(String),
    /// Average of a numeric field (`$avg`).
    Avg(String),
    /// Minimum by canonical order (`$min`).
    Min(String),
    /// Maximum by canonical order (`$max`).
    Max(String),
}

/// A `$group` stage: optional group key path (dotted), plus named
/// accumulators. A `None` key groups everything into a single bucket
/// (MongoDB's `_id: null`).
#[derive(Clone, Debug, PartialEq)]
pub struct GroupBy {
    /// Dotted path of the grouping key; `None` = one global group.
    pub key_path: Option<String>,
    /// `(output field, accumulator)` pairs.
    pub accumulators: Vec<(String, Accumulator)>,
}

impl GroupBy {
    /// Group everything into one bucket.
    pub fn global(accumulators: Vec<(String, Accumulator)>) -> Self {
        GroupBy {
            key_path: None,
            accumulators,
        }
    }

    /// Group by a field.
    pub fn by(key_path: impl Into<String>, accumulators: Vec<(String, Accumulator)>) -> Self {
        GroupBy {
            key_path: Some(key_path.into()),
            accumulators,
        }
    }
}

/// Mergeable accumulator state.
#[derive(Clone, Debug, PartialEq)]
enum AccState {
    Count(u64),
    /// Shared by Sum and Avg (Avg finalizes as sum/count).
    Sum {
        sum: f64,
        count: u64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AccState {
    fn new(spec: &Accumulator) -> AccState {
        match spec {
            Accumulator::Count => AccState::Count(0),
            Accumulator::Sum(_) | Accumulator::Avg(_) => AccState::Sum { sum: 0.0, count: 0 },
            Accumulator::Min(_) => AccState::Min(None),
            Accumulator::Max(_) => AccState::Max(None),
        }
    }

    fn fold(&mut self, spec: &Accumulator, doc: &Document) {
        match (self, spec) {
            (AccState::Count(n), Accumulator::Count) => *n += 1,
            (AccState::Sum { sum, count }, Accumulator::Sum(path) | Accumulator::Avg(path)) => {
                if let Some(x) = doc.get_path(path).and_then(Value::as_f64) {
                    *sum += x;
                    *count += 1;
                }
            }
            (AccState::Min(cur), Accumulator::Min(path)) => {
                if let Some(v) = doc.get_path(path) {
                    let replace = cur
                        .as_ref()
                        .is_none_or(|c| v.canonical_cmp(c) == std::cmp::Ordering::Less);
                    if replace {
                        *cur = Some(v.clone());
                    }
                }
            }
            (AccState::Max(cur), Accumulator::Max(path)) => {
                if let Some(v) = doc.get_path(path) {
                    let replace = cur
                        .as_ref()
                        .is_none_or(|c| v.canonical_cmp(c) == std::cmp::Ordering::Greater);
                    if replace {
                        *cur = Some(v.clone());
                    }
                }
            }
            _ => unreachable!("state/spec pairing fixed at construction"),
        }
    }

    fn merge(&mut self, other: &AccState) {
        match (self, other) {
            (AccState::Count(a), AccState::Count(b)) => *a += b,
            (AccState::Sum { sum, count }, AccState::Sum { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            (AccState::Min(a), AccState::Min(b)) => {
                if let Some(bv) = b {
                    let replace = a
                        .as_ref()
                        .is_none_or(|av| bv.canonical_cmp(av) == std::cmp::Ordering::Less);
                    if replace {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AccState::Max(a), AccState::Max(b)) => {
                if let Some(bv) = b {
                    let replace = a
                        .as_ref()
                        .is_none_or(|av| bv.canonical_cmp(av) == std::cmp::Ordering::Greater);
                    if replace {
                        *a = Some(bv.clone());
                    }
                }
            }
            _ => unreachable!("partials from the same GroupBy align"),
        }
    }

    fn finalize(&self, spec: &Accumulator) -> Value {
        match (self, spec) {
            (AccState::Count(n), _) => Value::Int64(*n as i64),
            (AccState::Sum { sum, .. }, Accumulator::Sum(_)) => Value::Double(*sum),
            (AccState::Sum { sum, count }, Accumulator::Avg(_)) => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Double(*sum / *count as f64)
                }
            }
            (AccState::Min(v), _) | (AccState::Max(v), _) => v.clone().unwrap_or(Value::Null),
            _ => unreachable!("state/spec pairing fixed at construction"),
        }
    }
}

/// One shard's (or the merged) aggregation state.
#[derive(Clone, Debug, Default)]
pub struct PartialAggregation {
    /// Group key (memcomparable encoding) → (original key, states).
    /// The BTreeMap keeps output deterministic and key-ordered.
    groups: BTreeMap<Vec<u8>, (Value, Vec<AccState>)>,
}

impl PartialAggregation {
    /// Number of groups so far.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// No groups yet.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    fn fold(&mut self, spec: &GroupBy, doc: &Document) {
        let key_value = match &spec.key_path {
            None => Value::Null,
            Some(p) => doc.get_path(p).cloned().unwrap_or(Value::Null),
        };
        let key_bytes = sts_encoding::encode_value(&key_value);
        let entry = self.groups.entry(key_bytes).or_insert_with(|| {
            (
                key_value,
                spec.accumulators
                    .iter()
                    .map(|(_, a)| AccState::new(a))
                    .collect(),
            )
        });
        for (state, (_, acc)) in entry.1.iter_mut().zip(&spec.accumulators) {
            state.fold(acc, doc);
        }
    }

    /// Merge another shard's partial into this one (exact for all
    /// offered accumulators).
    pub fn merge(&mut self, other: PartialAggregation) {
        for (key, (kv, states)) in other.groups {
            match self.groups.get_mut(&key) {
                None => {
                    self.groups.insert(key, (kv, states));
                }
                Some((_, mine)) => {
                    for (a, b) in mine.iter_mut().zip(&states) {
                        a.merge(b);
                    }
                }
            }
        }
    }

    /// Produce one result document per group: `_id` is the group key,
    /// accumulator outputs follow in declaration order.
    pub fn finalize(self, spec: &GroupBy) -> Vec<Document> {
        self.groups
            .into_values()
            .map(|(key, states)| {
                let mut d = Document::with_capacity(1 + spec.accumulators.len());
                d.set("_id", key);
                for ((name, acc), state) in spec.accumulators.iter().zip(&states) {
                    d.set(name.clone(), state.finalize(acc));
                }
                d
            })
            .collect()
    }
}

/// Run `$match`(filter) + `$group`(spec) on one shard, returning the
/// partial aggregate and the scan statistics.
pub fn aggregate_local(
    coll: &LocalCollection,
    filter: &Filter,
    spec: &GroupBy,
) -> (PartialAggregation, ExecutionStats) {
    let plan = coll.plan(filter);
    let mut partial = PartialAggregation::default();
    // Reuse the executor with collect=true is wasteful (it clones all
    // documents); fold inline instead via a collscan-style pass when the
    // plan is a fallback, else execute and fold the returned docs.
    let (docs, stats) = crate::executor::execute_plan(coll, filter, &plan, None, true);
    for d in &docs {
        partial.fold(spec, d);
    }
    (partial, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_document::{doc, DateTime};
    use sts_index::IndexSpec;

    fn collection() -> LocalCollection {
        let mut c = LocalCollection::new();
        c.create_index(IndexSpec::single("date"));
        for i in 0..100i64 {
            let mut d = doc! {
                "date" => DateTime::from_millis(i * 1_000),
                "vehicle" => format!("veh-{}", i % 3),
                "speed" => (i % 10) as f64 * 10.0,
            };
            d.ensure_id(i as u32);
            c.insert(&d).unwrap();
        }
        c
    }

    fn date_filter(lo: i64, hi: i64) -> Filter {
        Filter::And(vec![
            Filter::gte("date", DateTime::from_millis(lo)),
            Filter::lte("date", DateTime::from_millis(hi)),
        ])
    }

    #[test]
    fn global_count_and_avg() {
        let c = collection();
        let spec = GroupBy::global(vec![
            ("n".into(), Accumulator::Count),
            ("avgSpeed".into(), Accumulator::Avg("speed".into())),
            ("maxSpeed".into(), Accumulator::Max("speed".into())),
        ]);
        let (partial, stats) = aggregate_local(&c, &date_filter(0, 99_000), &spec);
        assert_eq!(stats.n_returned, 100);
        let out = partial.finalize(&spec);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("n").unwrap().as_i64(), Some(100));
        assert_eq!(out[0].get("avgSpeed").unwrap().as_f64(), Some(45.0));
        assert_eq!(out[0].get("maxSpeed").unwrap().as_f64(), Some(90.0));
    }

    #[test]
    fn group_by_key_with_sum_min() {
        let c = collection();
        let spec = GroupBy::by(
            "vehicle",
            vec![
                ("n".into(), Accumulator::Count),
                ("total".into(), Accumulator::Sum("speed".into())),
                ("minSpeed".into(), Accumulator::Min("speed".into())),
            ],
        );
        let (partial, _) = aggregate_local(&c, &date_filter(0, 99_000), &spec);
        let out = partial.finalize(&spec);
        assert_eq!(out.len(), 3);
        for d in &out {
            assert!(d.get("_id").unwrap().as_str().unwrap().starts_with("veh-"));
            assert!((33..=34).contains(&d.get("n").unwrap().as_i64().unwrap()));
            assert!(d.get("minSpeed").unwrap().as_f64().unwrap() <= 20.0);
        }
    }

    #[test]
    fn merge_partials_equals_single_pass() {
        let c = collection();
        let spec = GroupBy::by(
            "vehicle",
            vec![
                ("n".into(), Accumulator::Count),
                ("avg".into(), Accumulator::Avg("speed".into())),
            ],
        );
        // Two half-range partials merged…
        let (mut a, _) = aggregate_local(&c, &date_filter(0, 49_000), &spec);
        let (b, _) = aggregate_local(&c, &date_filter(50_000, 99_000), &spec);
        a.merge(b);
        let merged = a.finalize(&spec);
        // …must equal the single full-range pass.
        let (full, _) = aggregate_local(&c, &date_filter(0, 99_000), &spec);
        let full = full.finalize(&spec);
        assert_eq!(merged, full);
    }

    #[test]
    fn missing_fields_are_skipped_not_poisoned() {
        let mut c = LocalCollection::new();
        c.create_index(IndexSpec::single("date"));
        let mut with = doc! {"date" => DateTime::from_millis(0), "speed" => 50.0};
        with.ensure_id(0);
        c.insert(&with).unwrap();
        let mut without = doc! {"date" => DateTime::from_millis(1)};
        without.ensure_id(1);
        c.insert(&without).unwrap();
        let spec = GroupBy::global(vec![
            ("n".into(), Accumulator::Count),
            ("avg".into(), Accumulator::Avg("speed".into())),
        ]);
        let (p, _) = aggregate_local(&c, &date_filter(0, 10), &spec);
        let out = p.finalize(&spec);
        assert_eq!(out[0].get("n").unwrap().as_i64(), Some(2));
        // Average over the single present value, not over 2.
        assert_eq!(out[0].get("avg").unwrap().as_f64(), Some(50.0));
    }

    #[test]
    fn empty_match_yields_no_groups() {
        let c = collection();
        let spec = GroupBy::global(vec![("n".into(), Accumulator::Count)]);
        let (p, _) = aggregate_local(&c, &date_filter(1_000_000, 2_000_000), &spec);
        assert!(p.is_empty());
        assert!(p.finalize(&spec).is_empty());
    }
}
