//! Query representation, planning and per-shard execution.
//!
//! This crate is the `mongod` query layer of the simulator:
//!
//! * [`Filter`] — the query AST (`$and`/`$or`/`$in`/`$gte`/`$lte`/
//!   `$geoWithin`), matching the document representations shown in
//!   §4.1–4.2 of the paper;
//! * [`QueryShape`] — normalized constraint extraction (spatial
//!   rectangle, temporal interval, explicit 1D-value intervals);
//! * [`Planner`] — candidate index plans plus MongoDB-style **trial
//!   execution ranking**: each candidate runs with a small work budget
//!   and the most productive plan wins. This is what organically
//!   reproduces Table 7, where bslST's optimizer sometimes prefers the
//!   plain `date` index over the spatio-temporal compound;
//! * [`execute_plan`] — index scan (sequential, skip-scan, or
//!   key-filtered), document fetch, residual filtering, with MongoDB
//!   `explain()`-equivalent [`ExecutionStats`];
//! * [`LocalCollection`] — one shard's collection slice: record store +
//!   indexes + find/explain entry points.
//!
//! # Example
//!
//! ```
//! use sts_document::{doc, DateTime};
//! use sts_index::{IndexField, IndexSpec};
//! use sts_query::{Filter, LocalCollection};
//!
//! let mut coll = LocalCollection::new();
//! coll.create_index(IndexSpec::new(
//!     "hilbertIndex_1_date_1",
//!     vec![IndexField::asc("hilbertIndex"), IndexField::asc("date")],
//! ));
//! for i in 0..100i64 {
//!     let mut d = doc! {"hilbertIndex" => i % 10, "date" => DateTime::from_millis(i * 1_000)};
//!     d.ensure_id(i as u32);
//!     coll.insert(&d).unwrap();
//! }
//! let filter = Filter::And(vec![
//!     Filter::gte("hilbertIndex", 3i64),
//!     Filter::lte("hilbertIndex", 4i64),
//!     Filter::gte("date", DateTime::from_millis(0)),
//!     Filter::lte("date", DateTime::from_millis(50_000)),
//! ]);
//! let (docs, stats) = coll.find(&filter);
//! assert_eq!(docs.len() as u64, stats.n_returned);
//! assert!(stats.keys_examined < 100, "index scan, not a full scan");
//! ```

pub mod aggregate;

mod collection;
mod error;
mod executor;
mod explain;
mod filter;
mod options;
mod plan;
mod planner;
mod shape;

pub use aggregate::{aggregate_local, Accumulator, GroupBy, PartialAggregation};
pub use collection::LocalCollection;
pub use error::QueryError;
pub use executor::{
    execute_plan, execute_plan_into, execute_plan_with_rids, ExecBudget, QueryScratch,
};
pub use explain::ExecutionStats;
pub use filter::{CmpOp, Filter};
pub use options::{FindOptions, SortOrder};
pub use plan::{IndexAccess, KeyFilter, QueryPlan};
pub use planner::Planner;
pub use shape::QueryShape;
