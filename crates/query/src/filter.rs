//! The query filter AST and document-level evaluation.

use std::cmp::Ordering;
use std::fmt;
use sts_document::{Document, Value};
use sts_geo::{GeoPolygon, GeoRect};
use sts_index::geo_point_of;

/// Comparison operators (MongoDB query operators).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `$eq`
    Eq,
    /// `$gte`
    Gte,
    /// `$lte`
    Lte,
    /// `$gt`
    Gt,
    /// `$lt`
    Lt,
}

/// A query predicate tree.
#[derive(Clone, PartialEq)]
pub enum Filter {
    /// Conjunction (`$and`; also the implicit top-level document form).
    And(Vec<Filter>),
    /// Disjunction (`$or`).
    Or(Vec<Filter>),
    /// Field comparison.
    Cmp {
        /// Dotted field path.
        path: String,
        /// Operator.
        op: CmpOp,
        /// Right-hand value.
        value: Value,
    },
    /// `$in` — membership in an explicit value set.
    In {
        /// Dotted field path.
        path: String,
        /// Candidate values.
        values: Vec<Value>,
    },
    /// `$geoWithin` on a rectangle (the paper's `$box`-style constraint).
    GeoWithin {
        /// Dotted path of the GeoJSON point field.
        path: String,
        /// Query rectangle.
        rect: GeoRect,
    },
    /// `$geoWithin` on a simple polygon (the paper's §6 future-work
    /// extension; planned through the polygon's bounding box, refined
    /// exactly at the document level).
    GeoWithinPolygon {
        /// Dotted path of the GeoJSON point field.
        path: String,
        /// Query polygon.
        polygon: GeoPolygon,
    },
}

impl Filter {
    /// Convenience: `path >= value`.
    pub fn gte(path: impl Into<String>, value: impl Into<Value>) -> Filter {
        Filter::Cmp {
            path: path.into(),
            op: CmpOp::Gte,
            value: value.into(),
        }
    }

    /// Convenience: `path <= value`.
    pub fn lte(path: impl Into<String>, value: impl Into<Value>) -> Filter {
        Filter::Cmp {
            path: path.into(),
            op: CmpOp::Lte,
            value: value.into(),
        }
    }

    /// Convenience: `path == value`.
    pub fn eq(path: impl Into<String>, value: impl Into<Value>) -> Filter {
        Filter::Cmp {
            path: path.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// Evaluate against a document.
    pub fn matches(&self, doc: &Document) -> bool {
        match self {
            Filter::And(fs) => fs.iter().all(|f| f.matches(doc)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(doc)),
            Filter::Cmp { path, op, value } => {
                let Some(v) = doc.get_path(path) else {
                    return false;
                };
                // MongoDB comparisons only match within the same type
                // bracket (numbers cross-match among themselves).
                if v.kind() != value.kind() {
                    return false;
                }
                let ord = v.canonical_cmp(value);
                match op {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Gte => ord != Ordering::Less,
                    CmpOp::Lte => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Lt => ord == Ordering::Less,
                }
            }
            Filter::In { path, values } => {
                let Some(v) = doc.get_path(path) else {
                    return false;
                };
                values
                    .iter()
                    .any(|cand| v.kind() == cand.kind() && v.canonical_cmp(cand) == Ordering::Equal)
            }
            Filter::GeoWithin { path, rect } => {
                geo_point_of(doc, path).is_some_and(|p| rect.contains(p))
            }
            Filter::GeoWithinPolygon { path, polygon } => {
                geo_point_of(doc, path).is_some_and(|p| polygon.contains(p))
            }
        }
    }
}

impl fmt::Debug for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::And(fs) => write!(f, "$and{fs:?}"),
            Filter::Or(fs) => write!(f, "$or{fs:?}"),
            Filter::Cmp { path, op, value } => write!(f, "{{{path}: {op:?} {value:?}}}"),
            Filter::In { path, values } => write!(f, "{{{path}: $in {values:?}}}"),
            Filter::GeoWithin { path, rect } => write!(f, "{{{path}: $geoWithin {rect:?}}}"),
            Filter::GeoWithinPolygon { path, polygon } => {
                write!(
                    f,
                    "{{{path}: $geoWithin polygon[{}]}}",
                    polygon.vertices().len()
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_document::{doc, DateTime};

    fn vehicle_doc() -> Document {
        doc! {
            "location" => doc! {
                "type" => "Point",
                "coordinates" => vec![Value::from(23.76), Value::from(37.99)],
            },
            "date" => DateTime::from_millis(5_000),
            "hilbertIndex" => 42i64,
            "speed" => 54.5,
        }
    }

    #[test]
    fn cmp_operators() {
        let d = vehicle_doc();
        assert!(Filter::gte("speed", 54.5).matches(&d));
        assert!(Filter::lte("speed", 54.5).matches(&d));
        assert!(!Filter::gte("speed", 55.0).matches(&d));
        assert!(Filter::eq("hilbertIndex", 42i64).matches(&d));
        assert!(Filter::Cmp {
            path: "speed".into(),
            op: CmpOp::Lt,
            value: Value::from(60.0)
        }
        .matches(&d));
        assert!(!Filter::Cmp {
            path: "speed".into(),
            op: CmpOp::Gt,
            value: Value::from(54.5)
        }
        .matches(&d));
    }

    #[test]
    fn missing_field_never_matches() {
        let d = vehicle_doc();
        assert!(!Filter::gte("absent", 1i64).matches(&d));
        assert!(!Filter::In {
            path: "absent".into(),
            values: vec![Value::Null]
        }
        .matches(&d));
    }

    #[test]
    fn type_bracketing() {
        let d = vehicle_doc();
        // A datetime is not comparable with a number under MongoDB's
        // query semantics (though sortable in an index).
        assert!(!Filter::gte("date", 0i64).matches(&d));
        assert!(Filter::gte("date", DateTime::from_millis(0)).matches(&d));
        // Int vs double cross-match numerically.
        assert!(Filter::eq("hilbertIndex", 42.0).matches(&d));
    }

    #[test]
    fn geo_within() {
        let d = vehicle_doc();
        let hit = GeoRect::new(23.7, 37.9, 23.8, 38.0);
        let miss = GeoRect::new(24.0, 38.0, 25.0, 39.0);
        assert!(Filter::GeoWithin {
            path: "location".into(),
            rect: hit
        }
        .matches(&d));
        assert!(!Filter::GeoWithin {
            path: "location".into(),
            rect: miss
        }
        .matches(&d));
    }

    #[test]
    fn paper_query_shape() {
        // The exact query form of §4.2.2: geoWithin + date range + $or of
        // hilbert ranges/$in.
        let d = vehicle_doc();
        let q = Filter::And(vec![
            Filter::GeoWithin {
                path: "location".into(),
                rect: GeoRect::new(23.7, 37.9, 23.8, 38.0),
            },
            Filter::gte("date", DateTime::from_millis(1_000)),
            Filter::lte("date", DateTime::from_millis(9_000)),
            Filter::Or(vec![
                Filter::And(vec![
                    Filter::gte("hilbertIndex", 40i64),
                    Filter::lte("hilbertIndex", 45i64),
                ]),
                Filter::In {
                    path: "hilbertIndex".into(),
                    values: vec![Value::Int64(99)],
                },
            ]),
        ]);
        assert!(q.matches(&d));
    }

    #[test]
    fn in_and_or_semantics() {
        let d = vehicle_doc();
        assert!(Filter::In {
            path: "hilbertIndex".into(),
            values: vec![Value::Int64(1), Value::Int64(42)],
        }
        .matches(&d));
        assert!(Filter::Or(vec![
            Filter::eq("hilbertIndex", 0i64),
            Filter::eq("speed", 54.5),
        ])
        .matches(&d));
        assert!(!Filter::Or(vec![]).matches(&d));
        assert!(Filter::And(vec![]).matches(&d));
    }
}
