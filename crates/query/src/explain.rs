//! Execution statistics — the simulator's `explain("executionStats")`.

use std::time::Duration;

/// What one shard-local execution cost. Field names follow MongoDB's
/// explain output, which is where the paper's metrics (§5.1) come from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionStats {
    /// Which index served the query (Table 7).
    pub index_used: String,
    /// Index entries touched (`totalKeysExamined`).
    pub keys_examined: u64,
    /// Documents fetched from the record store (`totalDocsExamined`).
    pub docs_examined: u64,
    /// Documents matching the full filter (`nReturned`).
    pub n_returned: u64,
    /// B+tree descents performed.
    pub seeks: u64,
    /// Wall-clock execution time on this shard.
    pub duration: Duration,
    /// False when a trial budget aborted the scan early.
    pub completed: bool,
}

impl ExecutionStats {
    /// Work units in the MongoDB multi-planner sense: one per key
    /// examined plus one per fetch.
    pub fn works(&self) -> u64 {
        self.keys_examined + self.docs_examined + self.seeks
    }

    /// Productivity score for plan ranking: results per unit of work,
    /// with a completion bonus (MongoDB's ranker similarly rewards EOF).
    pub fn productivity(&self) -> f64 {
        let base = self.n_returned as f64 / (self.works() + 1) as f64;
        if self.completed {
            base + 1.0
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completed_plans_outrank_aborted_ones() {
        let done = ExecutionStats {
            n_returned: 1,
            keys_examined: 100,
            completed: true,
            ..Default::default()
        };
        let partial = ExecutionStats {
            n_returned: 50,
            keys_examined: 100,
            completed: false,
            ..Default::default()
        };
        assert!(done.productivity() > partial.productivity());
    }

    #[test]
    fn more_selective_completed_plan_wins() {
        let tight = ExecutionStats {
            n_returned: 10,
            keys_examined: 20,
            completed: true,
            ..Default::default()
        };
        let loose = ExecutionStats {
            n_returned: 10,
            keys_examined: 2_000,
            completed: true,
            ..Default::default()
        };
        assert!(tight.productivity() > loose.productivity());
    }
}
