//! Execution statistics — the simulator's `explain("executionStats")`.

use std::time::Duration;

/// What one shard-local execution cost. Field names follow MongoDB's
/// explain output, which is where the paper's metrics (§5.1) come from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionStats {
    /// Which index served the query (Table 7).
    pub index_used: String,
    /// Index entries touched (`totalKeysExamined`).
    pub keys_examined: u64,
    /// Documents fetched from the record store (`totalDocsExamined`).
    pub docs_examined: u64,
    /// Documents matching the full filter (`nReturned`).
    pub n_returned: u64,
    /// B+tree descents performed.
    pub seeks: u64,
    /// Wall-clock execution time on this shard (index scan + fetch +
    /// residual filtering; excludes planning).
    pub duration: Duration,
    /// Wall-clock time spent choosing the plan, trial executions
    /// included (the `Planning` stage).
    pub planning: Duration,
    /// The slice of `duration` spent fetching documents and running the
    /// residual filter (the `FetchFilter` stage); the remainder is pure
    /// index scanning.
    pub fetch_time: Duration,
    /// Heap allocations performed inside the execution hot section
    /// (scan + fetch + residual filter + result staging). Always 0
    /// unless the process installs `sts_obs::CountingAllocator`; the
    /// warmed-up hot path keeps it 0 even then.
    pub allocations: u64,
    /// False when a trial budget aborted the scan early.
    pub completed: bool,
}

impl ExecutionStats {
    /// The `IndexScan` stage: execution time not spent on fetch +
    /// residual filtering. Fetch intervals are disjoint sub-intervals
    /// of the execution window measured with the same monotonic clock,
    /// so this never underflows in practice; saturate anyway.
    pub fn scan_time(&self) -> Duration {
        self.duration.saturating_sub(self.fetch_time)
    }

    /// Total shard-local wall time: planning plus execution.
    pub fn total_time(&self) -> Duration {
        self.planning + self.duration
    }
    /// Work units in the MongoDB multi-planner sense: one per key
    /// examined plus one per fetch.
    pub fn works(&self) -> u64 {
        self.keys_examined + self.docs_examined + self.seeks
    }

    /// Productivity score for plan ranking: results per unit of work,
    /// with a completion bonus (MongoDB's ranker similarly rewards EOF).
    pub fn productivity(&self) -> f64 {
        let base = self.n_returned as f64 / (self.works() + 1) as f64;
        if self.completed {
            base + 1.0
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completed_plans_outrank_aborted_ones() {
        let done = ExecutionStats {
            n_returned: 1,
            keys_examined: 100,
            completed: true,
            ..Default::default()
        };
        let partial = ExecutionStats {
            n_returned: 50,
            keys_examined: 100,
            completed: false,
            ..Default::default()
        };
        assert!(done.productivity() > partial.productivity());
    }

    #[test]
    fn more_selective_completed_plan_wins() {
        let tight = ExecutionStats {
            n_returned: 10,
            keys_examined: 20,
            completed: true,
            ..Default::default()
        };
        let loose = ExecutionStats {
            n_returned: 10,
            keys_examined: 2_000,
            completed: true,
            ..Default::default()
        };
        assert!(tight.productivity() > loose.productivity());
    }

    #[test]
    fn stage_split_partitions_the_execution_window() {
        let s = ExecutionStats {
            duration: Duration::from_micros(100),
            planning: Duration::from_micros(7),
            fetch_time: Duration::from_micros(40),
            ..Default::default()
        };
        assert_eq!(s.scan_time(), Duration::from_micros(60));
        assert_eq!(s.scan_time() + s.fetch_time, s.duration);
        assert_eq!(s.total_time(), Duration::from_micros(107));
        // A transiently inconsistent pair must not panic.
        let odd = ExecutionStats {
            duration: Duration::from_micros(1),
            fetch_time: Duration::from_micros(5),
            ..Default::default()
        };
        assert_eq!(odd.scan_time(), Duration::ZERO);
    }
}
