//! Find options: sort and limit, with distributed top-k semantics.
//!
//! A sorted, limited find over a sharded collection is the classic
//! scatter/gather top-k: every shard returns its own best `k`, the
//! router merges and truncates. The shard-local part lives here.

use std::cmp::Ordering;
use sts_document::{Document, Value};

/// Sort direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SortOrder {
    /// Ascending (MongoDB `1`).
    Asc,
    /// Descending (MongoDB `-1`).
    Desc,
}

/// Result-shaping options for a find.
#[derive(Clone, Debug, Default)]
pub struct FindOptions {
    /// Sort by this dotted path (missing values sort first, like
    /// MongoDB's null-first ascending order).
    pub sort: Option<(String, SortOrder)>,
    /// Keep at most this many documents (after sorting).
    pub limit: Option<usize>,
}

impl FindOptions {
    /// No shaping.
    pub fn none() -> Self {
        FindOptions::default()
    }

    /// Sort ascending by a path.
    pub fn sort_asc(path: impl Into<String>) -> Self {
        FindOptions {
            sort: Some((path.into(), SortOrder::Asc)),
            limit: None,
        }
    }

    /// Sort descending by a path.
    pub fn sort_desc(path: impl Into<String>) -> Self {
        FindOptions {
            sort: Some((path.into(), SortOrder::Desc)),
            limit: None,
        }
    }

    /// Add a limit.
    pub fn with_limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Compare two documents under the sort spec.
    pub fn cmp_docs(&self, a: &Document, b: &Document) -> Ordering {
        let Some((path, order)) = &self.sort else {
            return Ordering::Equal;
        };
        let null = Value::Null;
        let va = a.get_path(path).unwrap_or(&null);
        let vb = b.get_path(path).unwrap_or(&null);
        let ord = va.canonical_cmp(vb);
        match order {
            SortOrder::Asc => ord,
            SortOrder::Desc => ord.reverse(),
        }
    }

    /// Apply sort + limit in place (stable sort keeps scan order among
    /// ties, matching single-node MongoDB).
    pub fn shape(&self, docs: &mut Vec<Document>) {
        if self.sort.is_some() {
            docs.sort_by(|a, b| self.cmp_docs(a, b));
        }
        if let Some(n) = self.limit {
            docs.truncate(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_document::doc;

    fn docs() -> Vec<Document> {
        vec![
            doc! {"speed" => 30.0, "id" => 1},
            doc! {"speed" => 10.0, "id" => 2},
            doc! {"id" => 3}, // missing sort field
            doc! {"speed" => 20.0, "id" => 4},
        ]
    }

    fn ids(docs: &[Document]) -> Vec<i64> {
        docs.iter()
            .map(|d| d.get("id").unwrap().as_i64().unwrap())
            .collect()
    }

    #[test]
    fn sort_asc_missing_first() {
        let mut d = docs();
        FindOptions::sort_asc("speed").shape(&mut d);
        assert_eq!(ids(&d), vec![3, 2, 4, 1]);
    }

    #[test]
    fn sort_desc_with_limit() {
        let mut d = docs();
        FindOptions::sort_desc("speed").with_limit(2).shape(&mut d);
        assert_eq!(ids(&d), vec![1, 4]);
    }

    #[test]
    fn limit_without_sort_keeps_scan_order() {
        let mut d = docs();
        FindOptions::none().with_limit(3).shape(&mut d);
        assert_eq!(ids(&d), vec![1, 2, 3]);
    }

    #[test]
    fn no_options_is_identity() {
        let mut d = docs();
        FindOptions::none().shape(&mut d);
        assert_eq!(ids(&d), vec![1, 2, 3, 4]);
    }
}
