//! Query-layer errors that propagate through the distributed executor.

/// Why a distributed query could not produce a complete result set.
///
/// The fault-tolerant router degrades to partial results by default
/// (flagging them in the report); the `try_*` entry points convert
/// that degradation into this error instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// These shards never answered, even after retries and hedging.
    ShardsUnavailable {
        /// The abandoned shard ids, ascending.
        shards: Vec<usize>,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::ShardsUnavailable { shards } => {
                write!(f, "shards {shards:?} unavailable after retries and hedging")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_shards() {
        let e = QueryError::ShardsUnavailable { shards: vec![2, 5] };
        assert_eq!(
            e.to_string(),
            "shards [2, 5] unavailable after retries and hedging"
        );
    }
}
