//! Shard-local plan execution.

use crate::collection::LocalCollection;
use crate::explain::ExecutionStats;
use crate::filter::Filter;
use crate::plan::{IndexAccess, QueryPlan};
use std::ops::ControlFlow;
use std::time::Instant;
use sts_document::Document;
use sts_obs::AllocSpan;

/// Work budget for trial executions (MongoDB's multi-planner runs each
/// candidate for a bounded number of works).
#[derive(Clone, Copy, Debug)]
pub struct ExecBudget {
    /// Maximum closure invocations (≈ in-bounds keys examined) before the
    /// scan aborts with `completed == false`.
    pub max_works: u64,
}

/// Reusable per-executor buffers: result staging plus the index layer's
/// decode/seek-key scratch. Owning one across queries is what makes the
/// warmed-up hot path allocation-free — every buffer a query needs
/// already exists at its high-water capacity.
#[derive(Default)]
pub struct QueryScratch {
    /// Staged `(record id, document)` results; drained by the caller
    /// *outside* the measured hot section.
    out: Vec<(u64, Document)>,
    /// Value-decode and seek-key buffers threaded into `sts-index`.
    scan: sts_index::ScanScratch,
}

impl QueryScratch {
    /// Empty scratch; buffers grow to their high-water mark on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drain the results staged by the last [`execute_plan_into`] call,
    /// leaving capacity in place for the next query.
    pub fn drain(&mut self) -> std::vec::Drain<'_, (u64, Document)> {
        self.out.drain(..)
    }

    /// Results staged by the last [`execute_plan_into`] call.
    pub fn results(&self) -> &[(u64, Document)] {
        &self.out
    }
}

/// Execute `plan` against one shard's collection.
///
/// Every emitted index entry passes through the plan's key filters; the
/// survivors are fetched (counted in `docs_examined`) and checked against
/// the *full* filter — the refinement step that guarantees exactness
/// regardless of how lossy the index bounds were. Matching documents are
/// returned when `collect` is true (routers set it false for trials).
pub fn execute_plan(
    coll: &LocalCollection,
    filter: &Filter,
    plan: &QueryPlan,
    budget: Option<ExecBudget>,
    collect: bool,
) -> (Vec<Document>, ExecutionStats) {
    let (pairs, stats) = execute_plan_with_rids(coll, filter, plan, budget, collect);
    (pairs.into_iter().map(|(_, d)| d).collect(), stats)
}

/// Like [`execute_plan`], but returns `(record id, document)` pairs —
/// what mutation paths (delete) need to act on the matches.
pub fn execute_plan_with_rids(
    coll: &LocalCollection,
    filter: &Filter,
    plan: &QueryPlan,
    budget: Option<ExecBudget>,
    collect: bool,
) -> (Vec<(u64, Document)>, ExecutionStats) {
    let mut scratch = QueryScratch::new();
    let stats = execute_plan_into(coll, filter, plan, budget, collect, &mut scratch);
    (std::mem::take(&mut scratch.out), stats)
}

/// The allocation-free core: execute `plan` staging matches into
/// `scratch` instead of a fresh `Vec`.
///
/// The section between the first index seek and the last staged result
/// is measured with an [`AllocSpan`]; on a warmed-up scratch (buffers at
/// their high-water capacity) the reported `stats.allocations` is zero.
/// The one unavoidable allocation — `stats.index_used`, a `String`
/// cloned from the plan for explain output — happens *before* the
/// measured window on purpose: it is explain metadata, not query work.
pub fn execute_plan_into(
    coll: &LocalCollection,
    filter: &Filter,
    plan: &QueryPlan,
    budget: Option<ExecBudget>,
    collect: bool,
    scratch: &mut QueryScratch,
) -> ExecutionStats {
    let start = Instant::now();
    let mut stats = ExecutionStats {
        index_used: plan.index_name.clone(),
        completed: true,
        ..Default::default()
    };
    // Split-borrow the scratch: the handler stages into `out` while the
    // index layer owns `scan` for the duration of the walk.
    let QueryScratch { out, scan } = scratch;
    out.clear();
    let Some(index) = coll.indexes().get(&plan.index_name) else {
        // Planner bug or dropped index; report an empty, failed scan.
        stats.completed = false;
        stats.duration = start.elapsed();
        return stats;
    };

    // Snapshot the committed epoch once: the whole scan reads "as of"
    // this instant, so a batch committed mid-scan is either entirely
    // visible (committed before this load) or entirely invisible.
    let snapshot = coll.snapshot();
    let max_works = budget.map_or(u64::MAX, |b| b.max_works);
    let mut works = 0u64;
    // Signals a budget abort out of the closure without borrowing
    // `stats` across the scan-loop check below.
    let aborted = std::cell::Cell::new(false);

    // Shared per-entry handler: key filters → fetch → residual filter.
    let mut handle = |values: &[sts_document::Value], rid: u64| -> ControlFlow<()> {
        works += 1;
        if works > max_works {
            aborted.set(true);
            return ControlFlow::Break(());
        }
        if !plan.key_filters.iter().all(|kf| kf.matches(values)) {
            return ControlFlow::Continue(());
        }
        // Everything from here is the FetchFilter stage: heap fetch plus
        // residual-filter evaluation (two clock reads per fetched doc).
        let fetch_start = Instant::now();
        let Some(doc) = coll.get_visible(rid, snapshot) else {
            // Tombstoned, or staged by a batch newer than our snapshot —
            // either way the record does not exist for this reader.
            stats.fetch_time += fetch_start.elapsed();
            return ControlFlow::Continue(());
        };
        stats.docs_examined += 1;
        if filter.matches(&doc) {
            stats.n_returned += 1;
            if collect {
                out.push((rid, doc));
            }
        }
        stats.fetch_time += fetch_start.elapsed();
        ControlFlow::Continue(())
    };

    let alloc_span = AllocSpan::start();
    let scan_stats = match &plan.access {
        IndexAccess::Sequential => index.scan_ranges_with(scan, &plan.ranges, &mut handle),
        IndexAccess::SkipScan { t_lo, t_hi } => {
            let mut acc = sts_index::ScanStats::default();
            for r in &plan.ranges {
                acc.merge(index.skip_scan_2d_with(scan, r, t_lo, t_hi, &mut handle));
                if aborted.get() {
                    break;
                }
            }
            acc
        }
    };
    // `handle` borrows `stats`/`out` mutably; the borrow ends here.
    let _ = &mut handle;
    stats.allocations = alloc_span.allocations();
    stats.completed = !aborted.get();
    stats.keys_examined = scan_stats.keys_examined;
    stats.seeks = scan_stats.seeks;
    stats.duration = start.elapsed();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::KeyFilter;
    use std::time::Duration;
    use sts_document::{doc, DateTime, Value};
    use sts_geo::GeoRect;
    use sts_index::{IndexField, IndexSpec, ScanRange};

    fn collection() -> LocalCollection {
        let mut c = LocalCollection::new();
        c.create_index(IndexSpec::single("_id"));
        c.create_index(IndexSpec::new(
            "hil",
            vec![IndexField::asc("hilbertIndex"), IndexField::asc("date")],
        ));
        for h in 0..20i64 {
            for t in 0..20i64 {
                let mut d = doc! {
                    "location" => doc! {
                        "type" => "Point",
                        "coordinates" => vec![
                            Value::from(23.0 + h as f64 * 0.01),
                            Value::from(37.0 + t as f64 * 0.01),
                        ],
                    },
                    "hilbertIndex" => h,
                    "date" => DateTime::from_millis(t * 100),
                };
                d.ensure_id(0);
                c.insert(&d).unwrap();
            }
        }
        c
    }

    fn st_filter() -> Filter {
        Filter::And(vec![
            Filter::gte("hilbertIndex", 5i64),
            Filter::lte("hilbertIndex", 9i64),
            Filter::gte("date", DateTime::from_millis(300)),
            Filter::lte("date", DateTime::from_millis(700)),
        ])
    }

    fn hil_plan(access: IndexAccess) -> QueryPlan {
        QueryPlan {
            index_name: "hil".into(),
            ranges: vec![ScanRange::with_prefix(
                &[],
                Some((&Value::Int64(5), true)),
                Some((&Value::Int64(9), true)),
            )],
            access,
            key_filters: vec![],
            is_fallback: false,
        }
    }

    #[test]
    fn sequential_and_skip_return_same_results() {
        let c = collection();
        let f = st_filter();
        let seq = execute_plan(&c, &f, &hil_plan(IndexAccess::Sequential), None, true);
        let skip = execute_plan(
            &c,
            &f,
            &hil_plan(IndexAccess::SkipScan {
                t_lo: Value::DateTime(DateTime::from_millis(300)),
                t_hi: Value::DateTime(DateTime::from_millis(700)),
            }),
            None,
            true,
        );
        assert_eq!(seq.1.n_returned, 5 * 5);
        assert_eq!(skip.1.n_returned, 5 * 5);
        // Residual filtering makes sequential fetch every key in the
        // hilbert range; skip-scan fetches only in-bounds ones.
        assert_eq!(seq.1.docs_examined, 5 * 20);
        assert_eq!(skip.1.docs_examined, 5 * 5);
        assert!(skip.1.keys_examined < seq.1.keys_examined);
    }

    #[test]
    fn key_filter_avoids_fetches() {
        let c = collection();
        let f = st_filter();
        let mut plan = hil_plan(IndexAccess::Sequential);
        plan.key_filters = vec![KeyFilter::from_interval(
            1,
            Value::DateTime(DateTime::from_millis(300)),
            Value::DateTime(DateTime::from_millis(700)),
        )];
        let (_, stats) = execute_plan(&c, &f, &plan, None, true);
        assert_eq!(stats.n_returned, 25);
        assert_eq!(stats.docs_examined, 25, "filtered keys are not fetched");
        assert_eq!(stats.keys_examined, 5 * 20 + 1, "but still examined");
    }

    #[test]
    fn budget_aborts_marked_incomplete() {
        let c = collection();
        let f = st_filter();
        let (_, stats) = execute_plan(
            &c,
            &f,
            &hil_plan(IndexAccess::Sequential),
            Some(ExecBudget { max_works: 10 }),
            false,
        );
        assert!(!stats.completed);
        assert!(stats.works() < 60);
    }

    #[test]
    fn residual_geo_filter_applies() {
        let c = collection();
        // Index gives hilbert range; residual restricts location too.
        let f = Filter::And(vec![
            Filter::gte("hilbertIndex", 0i64),
            Filter::lte("hilbertIndex", 19i64),
            Filter::GeoWithin {
                path: "location".into(),
                rect: GeoRect::new(23.0, 37.0, 23.05, 37.05),
            },
        ]);
        let plan = QueryPlan {
            index_name: "hil".into(),
            ranges: vec![ScanRange::whole()],
            access: IndexAccess::Sequential,
            key_filters: vec![],
            is_fallback: false,
        };
        let (docs, stats) = execute_plan(&c, &f, &plan, None, true);
        assert_eq!(docs.len(), 6 * 6);
        assert_eq!(stats.n_returned, 36);
        assert_eq!(stats.docs_examined, 400, "no key filter: all fetched");
    }

    #[test]
    fn fetch_time_stays_within_the_execution_window() {
        let c = collection();
        let f = st_filter();
        let (_, stats) = execute_plan(&c, &f, &hil_plan(IndexAccess::Sequential), None, true);
        assert!(stats.fetch_time <= stats.duration);
        assert_eq!(stats.scan_time() + stats.fetch_time, stats.duration);
        assert!(stats.fetch_time > Duration::ZERO, "100 docs were fetched");
    }

    #[test]
    fn missing_index_reports_incomplete() {
        let c = collection();
        let plan = QueryPlan {
            index_name: "nope".into(),
            ranges: vec![],
            access: IndexAccess::Sequential,
            key_filters: vec![],
            is_fallback: false,
        };
        let (docs, stats) = execute_plan(&c, &st_filter(), &plan, None, true);
        assert!(docs.is_empty());
        assert!(!stats.completed);
    }
}
