//! Normalizing filters into planner-friendly shapes.

use crate::filter::{CmpOp, Filter};
use std::cmp::Ordering;
use sts_document::Value;
use sts_geo::GeoRect;

/// An interval over one field's values; `None` endpoints are unbounded.
/// Present endpoints are inclusive (strict predicates widen to inclusive
/// index bounds and rely on residual filtering).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ValueInterval {
    /// Inclusive lower endpoint, if bounded.
    pub lo: Option<Value>,
    /// Inclusive upper endpoint, if bounded.
    pub hi: Option<Value>,
}

impl ValueInterval {
    /// Intersect with another lower endpoint (keep the larger).
    fn tighten_lo(&mut self, v: Value) {
        match &self.lo {
            Some(cur) if v.canonical_cmp(cur) != Ordering::Greater => {}
            _ => self.lo = Some(v),
        }
    }

    /// Intersect with another upper endpoint (keep the smaller).
    fn tighten_hi(&mut self, v: Value) {
        match &self.hi {
            Some(cur) if v.canonical_cmp(cur) != Ordering::Less => {}
            _ => self.hi = Some(v),
        }
    }

    /// Whether any endpoint is set.
    pub fn is_constrained(&self) -> bool {
        self.lo.is_some() || self.hi.is_some()
    }
}

/// The planner's view of a query: per-dimension constraints pulled out of
/// the `$and` tree.
///
/// This intentionally covers the paper's query class — conjunctions of a
/// spatial rectangle, a temporal interval and (for the Hilbert methods)
/// an `$or` of 1D intervals on one integer field. Anything outside that
/// class clears `fully_captured` and is handled by residual filtering on
/// fetched documents (which always runs anyway for exactness).
#[derive(Clone, Debug, Default)]
pub struct QueryShape {
    /// `$geoWithin` rectangle (path, rect).
    pub geo: Option<(String, GeoRect)>,
    /// Interval constraint (path, interval) from `$gte`/`$lte`/`$eq`.
    pub range: Option<(String, ValueInterval)>,
    /// Disjunctive integer intervals on one path (`$or` of range clauses
    /// plus `$in` singletons — the Hilbert constraint of §4.2.2),
    /// sorted and merged.
    pub int_intervals: Option<(String, Vec<(i64, i64)>)>,
    /// Whether every predicate was absorbed into the fields above.
    pub fully_captured: bool,
}

impl QueryShape {
    /// Analyze a filter.
    pub fn analyze(filter: &Filter) -> QueryShape {
        let mut shape = QueryShape {
            fully_captured: true,
            ..QueryShape::default()
        };
        shape.absorb(filter);
        if let Some((_, ivs)) = &mut shape.int_intervals {
            ivs.sort_unstable();
            let mut merged: Vec<(i64, i64)> = Vec::with_capacity(ivs.len());
            for &(lo, hi) in ivs.iter() {
                match merged.last_mut() {
                    Some((_, ph)) if lo <= ph.saturating_add(1) => *ph = (*ph).max(hi),
                    _ => merged.push((lo, hi)),
                }
            }
            *ivs = merged;
        }
        shape
    }

    /// The interval constraint for `path`, if any.
    pub fn range_for(&self, path: &str) -> Option<&ValueInterval> {
        match &self.range {
            Some((p, iv)) if p == path => Some(iv),
            _ => None,
        }
    }

    fn absorb(&mut self, filter: &Filter) {
        match filter {
            Filter::And(fs) => {
                for f in fs {
                    self.absorb(f);
                }
            }
            Filter::GeoWithin { path, rect } => {
                if self.geo.is_none() {
                    self.geo = Some((path.clone(), *rect));
                } else {
                    self.fully_captured = false;
                }
            }
            Filter::GeoWithinPolygon { path, polygon } => {
                // Plan through the bounding box; the box is a superset of
                // the polygon, so document-level refinement must run.
                if self.geo.is_none() {
                    self.geo = Some((path.clone(), *polygon.bbox()));
                }
                self.fully_captured = false;
            }
            Filter::Cmp { path, op, value } => {
                if matches!(op, CmpOp::Gt | CmpOp::Lt) {
                    self.fully_captured = false;
                }
                let iv = self.interval_for(path);
                let Some(iv) = iv else {
                    self.fully_captured = false;
                    return;
                };
                match op {
                    CmpOp::Gte | CmpOp::Gt => iv.tighten_lo(value.clone()),
                    CmpOp::Lte | CmpOp::Lt => iv.tighten_hi(value.clone()),
                    CmpOp::Eq => {
                        iv.tighten_lo(value.clone());
                        iv.tighten_hi(value.clone());
                    }
                }
            }
            Filter::Or(branches) => {
                if self.int_intervals.is_some() || !self.absorb_or(branches) {
                    self.fully_captured = false;
                }
            }
            Filter::In { path, values } => {
                if !values.is_empty() && values.iter().all(|v| v.as_i64().is_some()) {
                    let ivs = values
                        .iter()
                        .map(|v| {
                            let x = v.as_i64().unwrap();
                            (x, x)
                        })
                        .collect();
                    self.push_int_intervals(path, ivs);
                } else {
                    self.fully_captured = false;
                }
            }
        }
    }

    /// Mutable interval for `path` — only one ranged path is tracked.
    fn interval_for(&mut self, path: &str) -> Option<&mut ValueInterval> {
        match &mut self.range {
            None => {
                self.range = Some((path.to_string(), ValueInterval::default()));
                Some(&mut self.range.as_mut().unwrap().1)
            }
            Some((p, _)) if p == path => Some(&mut self.range.as_mut().unwrap().1),
            Some(_) => None,
        }
    }

    /// Try to absorb an `$or` of interval clauses over a single integer
    /// path. Returns `false` when the disjunction has any other form.
    fn absorb_or(&mut self, branches: &[Filter]) -> bool {
        let mut path: Option<String> = None;
        let mut ivs: Vec<(i64, i64)> = Vec::new();
        for b in branches {
            match b {
                Filter::And(parts) => {
                    let (mut lo, mut hi) = (None, None);
                    for p in parts {
                        let Filter::Cmp {
                            path: pp,
                            op,
                            value,
                        } = p
                        else {
                            return false;
                        };
                        let Some(x) = value.as_i64() else {
                            return false;
                        };
                        if path.get_or_insert_with(|| pp.clone()) != pp {
                            return false;
                        }
                        match op {
                            CmpOp::Gte => lo = Some(x),
                            CmpOp::Lte => hi = Some(x),
                            CmpOp::Eq => {
                                lo = Some(x);
                                hi = Some(x);
                            }
                            _ => return false,
                        }
                    }
                    let (Some(lo), Some(hi)) = (lo, hi) else {
                        return false;
                    };
                    ivs.push((lo, hi));
                }
                Filter::Cmp {
                    path: pp,
                    op: CmpOp::Eq,
                    value,
                } => {
                    let Some(x) = value.as_i64() else {
                        return false;
                    };
                    if path.get_or_insert_with(|| pp.clone()) != pp {
                        return false;
                    }
                    ivs.push((x, x));
                }
                Filter::In { path: pp, values } => {
                    if values.is_empty() || !values.iter().all(|v| v.as_i64().is_some()) {
                        return false;
                    }
                    if path.get_or_insert_with(|| pp.clone()) != pp {
                        return false;
                    }
                    ivs.extend(values.iter().map(|v| {
                        let x = v.as_i64().unwrap();
                        (x, x)
                    }));
                }
                _ => return false,
            }
        }
        match path {
            Some(p) if !ivs.is_empty() => {
                self.push_int_intervals(&p, ivs);
                true
            }
            _ => false,
        }
    }

    fn push_int_intervals(&mut self, path: &str, ivs: Vec<(i64, i64)>) {
        match &mut self.int_intervals {
            None => self.int_intervals = Some((path.to_string(), ivs)),
            Some((p, existing)) if p == path => existing.extend(ivs),
            Some(_) => self.fully_captured = false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_document::DateTime;

    fn dt(ms: i64) -> Value {
        Value::DateTime(DateTime::from_millis(ms))
    }

    #[test]
    fn paper_hilbert_query_shape() {
        let q = Filter::And(vec![
            Filter::GeoWithin {
                path: "location".into(),
                rect: GeoRect::new(23.7, 37.9, 23.8, 38.0),
            },
            Filter::gte("date", DateTime::from_millis(1_000)),
            Filter::lte("date", DateTime::from_millis(9_000)),
            Filter::Or(vec![
                Filter::And(vec![
                    Filter::gte("hilbertIndex", 40i64),
                    Filter::lte("hilbertIndex", 45i64),
                ]),
                Filter::In {
                    path: "hilbertIndex".into(),
                    values: vec![Value::Int64(99), Value::Int64(47)],
                },
            ]),
        ]);
        let s = QueryShape::analyze(&q);
        assert!(s.fully_captured);
        assert_eq!(s.geo.as_ref().unwrap().0, "location");
        let iv = s.range_for("date").unwrap();
        assert_eq!(iv.lo, Some(dt(1_000)));
        assert_eq!(iv.hi, Some(dt(9_000)));
        assert_eq!(
            s.int_intervals,
            Some(("hilbertIndex".into(), vec![(40, 45), (47, 47), (99, 99)]))
        );
    }

    #[test]
    fn adjacent_intervals_merge() {
        let q = Filter::Or(vec![
            Filter::eq("h", 5i64),
            Filter::eq("h", 6i64),
            Filter::And(vec![Filter::gte("h", 7i64), Filter::lte("h", 9i64)]),
        ]);
        let s = QueryShape::analyze(&q);
        assert_eq!(s.int_intervals, Some(("h".into(), vec![(5, 9)])));
    }

    #[test]
    fn conflicting_bounds_intersect() {
        let q = Filter::And(vec![
            Filter::gte("date", DateTime::from_millis(100)),
            Filter::gte("date", DateTime::from_millis(200)),
            Filter::lte("date", DateTime::from_millis(900)),
            Filter::lte("date", DateTime::from_millis(800)),
        ]);
        let s = QueryShape::analyze(&q);
        let iv = s.range_for("date").unwrap();
        assert_eq!(iv.lo, Some(dt(200)));
        assert_eq!(iv.hi, Some(dt(800)));
        assert!(s.fully_captured);
    }

    #[test]
    fn half_open_interval() {
        let q = Filter::gte("date", DateTime::from_millis(5));
        let s = QueryShape::analyze(&q);
        let iv = s.range_for("date").unwrap();
        assert_eq!(iv.lo, Some(dt(5)));
        assert_eq!(iv.hi, None);
        assert!(iv.is_constrained());
    }

    #[test]
    fn heterogeneous_or_is_not_captured() {
        let q = Filter::Or(vec![Filter::eq("h", 5i64), Filter::eq("speed", 1i64)]);
        let s = QueryShape::analyze(&q);
        assert!(!s.fully_captured);
        assert!(s.int_intervals.is_none());
    }

    #[test]
    fn strict_ops_widen_and_flag_residual() {
        let q = Filter::And(vec![Filter::Cmp {
            path: "date".into(),
            op: CmpOp::Gt,
            value: dt(100),
        }]);
        let s = QueryShape::analyze(&q);
        assert!(!s.fully_captured);
        assert_eq!(s.range_for("date").unwrap().lo, Some(dt(100)));
    }

    #[test]
    fn second_ranged_path_is_residual() {
        let q = Filter::And(vec![
            Filter::gte("date", DateTime::from_millis(1)),
            Filter::gte("speed", 10.0),
        ]);
        let s = QueryShape::analyze(&q);
        assert!(!s.fully_captured);
        // First path keeps its constraint.
        assert!(s.range_for("date").is_some());
    }
}
