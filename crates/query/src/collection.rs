//! One shard's collection slice: records + indexes + find.

use crate::executor::{execute_plan_into, QueryScratch};
use crate::explain::ExecutionStats;
use crate::filter::Filter;
use crate::plan::QueryPlan;
use crate::planner::Planner;
use std::sync::{Arc, Mutex};
use sts_document::Document;
use sts_index::{extract_key_values, IndexManager, IndexSpec};
use sts_obs::Registry;
use sts_storage::{CollectionStats, CollectionStore, RecordId};

/// A shard-local collection: the unit a `mongod` process manages.
pub struct LocalCollection {
    store: CollectionStore,
    indexes: IndexManager,
    /// Where stage timers land. Defaults to the process-wide registry;
    /// a cluster can rescope all its shards onto a private one so
    /// concurrent stores (benchmark approaches, parallel tests) never
    /// bleed metrics into each other.
    obs: Arc<Registry>,
    /// Reusable execution buffers. A shard serves one query at a time,
    /// so the mutex is uncontended — it exists only because the cluster
    /// fans queries out to shards from rayon workers (`&self` + `Sync`).
    scratch: Mutex<QueryScratch>,
}

impl Default for LocalCollection {
    fn default() -> Self {
        LocalCollection {
            store: CollectionStore::default(),
            indexes: IndexManager::default(),
            obs: sts_obs::global_handle(),
            scratch: Mutex::new(QueryScratch::new()),
        }
    }
}

impl LocalCollection {
    /// Empty collection with no indexes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Redirect this collection's stage metrics to `obs`.
    pub fn set_obs(&mut self, obs: Arc<Registry>) {
        self.obs = obs;
    }

    /// Create an index over existing and future documents.
    ///
    /// Panics if documents already exist (the simulator always creates
    /// indexes before loading, as the paper's methodology does).
    pub fn create_index(&mut self, spec: IndexSpec) {
        assert!(
            self.store.is_empty(),
            "create indexes before loading data (paper methodology §5.1)"
        );
        self.indexes.create_index(spec);
    }

    /// The index set.
    pub fn indexes(&self) -> &IndexManager {
        &self.indexes
    }

    /// Insert a document; all indexes must accept it (2dsphere fields
    /// must hold valid points, like MongoDB's insert-time validation).
    pub fn insert(&mut self, doc: &Document) -> Result<RecordId, String> {
        for index in self.indexes.iter() {
            if extract_key_values(index.spec(), doc).is_none() {
                return Err(format!(
                    "document not indexable by {}: invalid or missing geo field",
                    index.spec()
                ));
            }
        }
        let rid = self.store.insert(doc);
        let ok = self.indexes.insert_doc(doc, rid);
        debug_assert!(ok, "validated above");
        Ok(rid)
    }

    /// Remove by record id, unindexing along the way.
    pub fn remove(&mut self, rid: RecordId) -> Option<Document> {
        let doc = self.store.remove(rid)?;
        self.indexes.remove_doc(&doc, rid);
        Some(doc)
    }

    /// Fetch a document.
    pub fn get(&self, rid: RecordId) -> Option<Document> {
        self.store.get(rid)
    }

    /// Live document count.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Iterate all `(record id, document)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, Document)> + '_ {
        self.store.iter()
    }

    /// Storage statistics (Table 6).
    pub fn stats(&self) -> CollectionStats {
        self.store.stats()
    }

    /// Plan a query with the default planner.
    pub fn plan(&self, filter: &Filter) -> QueryPlan {
        Planner::default().choose(self, filter)
    }

    /// Plan and execute, returning matching documents and explain stats.
    /// Planning time (trial executions included) is reported in
    /// `stats.planning`, separately from the execution window.
    pub fn find(&self, filter: &Filter) -> (Vec<Document>, ExecutionStats) {
        self.find_with_planner(&Planner::default(), filter)
    }

    /// Plan, execute and shape (sort/limit) — the shard-local half of a
    /// distributed top-k find.
    pub fn find_with_options(
        &self,
        filter: &Filter,
        options: &crate::FindOptions,
    ) -> (Vec<Document>, ExecutionStats) {
        let (mut docs, stats) = self.find(filter);
        options.shape(&mut docs);
        (docs, stats)
    }

    /// Execute with an explicit planner configuration.
    pub fn find_with_planner(
        &self,
        planner: &Planner,
        filter: &Filter,
    ) -> (Vec<Document>, ExecutionStats) {
        let planning_start = std::time::Instant::now();
        let plan = planner.choose(self, filter);
        let planning = planning_start.elapsed();
        let mut scratch = self
            .scratch
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut stats = execute_plan_into(self, filter, &plan, None, true, &mut scratch);
        // Draining into the caller's Vec happens outside the measured
        // hot section: handing results upward costs one (amortized)
        // reallocation here, not per-key work inside the scan loop.
        let docs = scratch.drain().map(|(_, d)| d).collect();
        drop(scratch);
        stats.planning = planning;
        self.obs.record("shard.planning", stats.planning);
        self.obs.record("shard.index_scan", stats.scan_time());
        self.obs.record("shard.fetch_filter", stats.fetch_time);
        self.obs.counter("shard.exec_allocs").add(stats.allocations);
        (docs, stats)
    }

    /// Delete every matching document, returning the removed documents
    /// (callers use them to maintain routing metadata).
    pub fn delete_matching(&mut self, filter: &Filter) -> Vec<Document> {
        let plan = self.plan(filter);
        let (pairs, _) = crate::executor::execute_plan_with_rids(self, filter, &plan, None, true);
        let mut removed = Vec::with_capacity(pairs.len());
        for (rid, _) in pairs {
            if let Some(d) = self.remove(rid) {
                removed.push(d);
            }
        }
        removed
    }

    /// Brute-force evaluation over every document — the ground truth the
    /// tests compare indexed execution against.
    pub fn find_collscan(&self, filter: &Filter) -> Vec<Document> {
        self.iter()
            .map(|(_, d)| d)
            .filter(|d| filter.matches(d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_document::{doc, DateTime, Value};
    use sts_geo::GeoRect;
    use sts_index::IndexField;

    fn geo_doc(lon: f64, lat: f64, ms: i64) -> Document {
        let mut d = doc! {
            "location" => doc! {
                "type" => "Point",
                "coordinates" => vec![Value::from(lon), Value::from(lat)],
            },
            "date" => DateTime::from_millis(ms),
        };
        d.ensure_id((ms / 1_000) as u32);
        d
    }

    fn st_collection() -> LocalCollection {
        let mut c = LocalCollection::new();
        c.create_index(IndexSpec::single("_id"));
        c.create_index(IndexSpec::new(
            "location_1_date_1",
            vec![IndexField::geo("location"), IndexField::asc("date")],
        ));
        c.create_index(IndexSpec::single("date"));
        for i in 0..500i64 {
            let lon = 23.0 + (i % 25) as f64 * 0.04;
            let lat = 37.0 + (i / 25) as f64 * 0.04;
            c.insert(&geo_doc(lon, lat, i * 60_000)).unwrap();
        }
        c
    }

    #[test]
    fn find_matches_collscan_ground_truth() {
        let c = st_collection();
        let f = Filter::And(vec![
            Filter::GeoWithin {
                path: "location".into(),
                rect: GeoRect::new(23.2, 37.2, 23.6, 37.6),
            },
            Filter::gte("date", DateTime::from_millis(0)),
            Filter::lte("date", DateTime::from_millis(500 * 60_000)),
        ]);
        let (docs, stats) = c.find(&f);
        let truth = c.find_collscan(&f);
        assert_eq!(docs.len(), truth.len());
        assert!(stats.n_returned as usize == truth.len());
        assert!(!truth.is_empty(), "query should match something");
        assert!(stats.completed);
    }

    #[test]
    fn find_reports_stage_timings() {
        let c = st_collection();
        let f = Filter::And(vec![
            Filter::gte("date", DateTime::from_millis(0)),
            Filter::lte("date", DateTime::from_millis(100 * 60_000)),
        ]);
        let (_, stats) = c.find(&f);
        assert!(stats.fetch_time <= stats.duration);
        assert_eq!(stats.scan_time() + stats.fetch_time, stats.duration);
        assert_eq!(stats.total_time(), stats.planning + stats.duration);
        assert!(stats.docs_examined > 0);
    }

    #[test]
    fn insert_rejects_bad_geo() {
        let mut c = st_collection();
        let bad = doc! {"date" => DateTime::from_millis(0), "location" => "oops"};
        assert!(c.insert(&bad).is_err());
    }

    #[test]
    fn remove_unindexes() {
        let mut c = LocalCollection::new();
        c.create_index(IndexSpec::single("date"));
        let d = geo_doc(23.0, 37.0, 1_000);
        let rid = c.insert(&d).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.remove(rid).unwrap(), d);
        assert_eq!(c.len(), 0);
        assert_eq!(c.indexes().get("date").unwrap().len(), 0);
        assert!(c.remove(rid).is_none());
    }

    #[test]
    #[should_panic(expected = "before loading data")]
    fn create_index_after_load_panics() {
        let mut c = LocalCollection::new();
        c.create_index(IndexSpec::single("date"));
        c.insert(&geo_doc(23.0, 37.0, 0)).unwrap();
        c.create_index(IndexSpec::single("x"));
    }

    #[test]
    fn unindexable_query_falls_back_to_full_scan() {
        let c = st_collection();
        let f = Filter::gte("speed", 10.0); // no index on speed
        let plan = c.plan(&f);
        assert!(plan.is_fallback);
        let (docs, stats) = c.find(&f);
        assert!(docs.is_empty());
        assert_eq!(stats.docs_examined, 500);
    }
}
