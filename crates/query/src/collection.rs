//! One shard's collection slice: records + indexes + find.

use crate::executor::{execute_plan_into, QueryScratch};
use crate::explain::ExecutionStats;
use crate::filter::Filter;
use crate::plan::QueryPlan;
use crate::planner::Planner;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use sts_document::Document;
use sts_index::{extract_key_values, IndexManager, IndexSpec};
use sts_obs::Registry;
use sts_storage::{CollectionStats, CollectionStore, RecordId};

/// A shard-local collection: the unit a `mongod` process manages.
///
/// ## Snapshot visibility
///
/// The collection carries a **committed-epoch** counter. Ordinary
/// inserts stamp epoch 0 (immediately visible). A batched ingest
/// instead *stages* documents at `committed + 1` — they are stored and
/// indexed, but [`get_visible`](Self::get_visible) (and therefore the
/// executor's fetch stage) treats them as absent until
/// [`commit_batch`](Self::commit_batch) publishes the epoch with a
/// single atomic store. A scan that overlaps a batch thus sees either
/// none or all of it, never a torn prefix. In a cluster every shard
/// shares one counter (see [`share_epoch`](Self::share_epoch)), making
/// the commit point global across shards.
pub struct LocalCollection {
    store: CollectionStore,
    indexes: IndexManager,
    /// Where stage timers land. Defaults to the process-wide registry;
    /// a cluster can rescope all its shards onto a private one so
    /// concurrent stores (benchmark approaches, parallel tests) never
    /// bleed metrics into each other.
    obs: Arc<Registry>,
    /// Highest published insert epoch; records stamped above it are
    /// staged and invisible. Shared across shards of a cluster so one
    /// store is the whole batch's commit point.
    committed: Arc<AtomicU64>,
    /// Reusable execution buffers. A shard serves one query at a time,
    /// so the mutex is uncontended — it exists only because the cluster
    /// fans queries out to shards from rayon workers (`&self` + `Sync`).
    scratch: Mutex<QueryScratch>,
}

impl Default for LocalCollection {
    fn default() -> Self {
        LocalCollection {
            store: CollectionStore::default(),
            indexes: IndexManager::default(),
            obs: sts_obs::global_handle(),
            committed: Arc::new(AtomicU64::new(0)),
            scratch: Mutex::new(QueryScratch::new()),
        }
    }
}

impl LocalCollection {
    /// Empty collection with no indexes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Redirect this collection's stage metrics to `obs`.
    pub fn set_obs(&mut self, obs: Arc<Registry>) {
        self.obs = obs;
    }

    /// Create an index over existing and future documents.
    ///
    /// Panics if documents already exist (the simulator always creates
    /// indexes before loading, as the paper's methodology does).
    pub fn create_index(&mut self, spec: IndexSpec) {
        assert!(
            self.store.is_empty(),
            "create indexes before loading data (paper methodology §5.1)"
        );
        self.indexes.create_index(spec);
    }

    /// The index set.
    pub fn indexes(&self) -> &IndexManager {
        &self.indexes
    }

    /// Insert a document; all indexes must accept it (2dsphere fields
    /// must hold valid points, like MongoDB's insert-time validation).
    pub fn insert(&mut self, doc: &Document) -> Result<RecordId, String> {
        self.insert_at_epoch(doc, 0)
    }

    /// Insert a document stamped with an explicit epoch. Epoch 0 is
    /// immediately visible; anything above the committed epoch stays
    /// invisible to snapshot readers until published. Migrations use
    /// this to carry a record's stamp across shards unchanged.
    pub fn insert_at_epoch(&mut self, doc: &Document, epoch: u64) -> Result<RecordId, String> {
        for index in self.indexes.iter() {
            if extract_key_values(index.spec(), doc).is_none() {
                return Err(format!(
                    "document not indexable by {}: invalid or missing geo field",
                    index.spec()
                ));
            }
        }
        let rid = self.store.insert_at(doc, epoch);
        let ok = self.indexes.insert_doc(doc, rid);
        debug_assert!(ok, "validated above");
        Ok(rid)
    }

    /// Stage a document into the in-flight batch (epoch `committed + 1`):
    /// stored and indexed now, visible only after [`commit_batch`].
    ///
    /// [`commit_batch`]: Self::commit_batch
    pub fn stage(&mut self, doc: &Document) -> Result<RecordId, String> {
        let epoch = self.snapshot() + 1;
        self.insert_at_epoch(doc, epoch)
    }

    /// Publish the in-flight batch: one atomic store advances the
    /// committed epoch, flipping every staged record visible at once.
    pub fn commit_batch(&self) {
        let next = self.snapshot() + 1;
        self.committed.store(next, Ordering::Release);
    }

    /// The current committed epoch — the snapshot a query starting now
    /// executes against.
    pub fn snapshot(&self) -> u64 {
        self.committed.load(Ordering::Acquire)
    }

    /// Handle to the committed-epoch counter, for sharing one commit
    /// point across every shard of a cluster.
    pub fn share_epoch(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.committed)
    }

    /// Rebind this collection onto a shared committed-epoch counter.
    pub fn set_epoch_handle(&mut self, epoch: Arc<AtomicU64>) {
        self.committed = epoch;
    }

    /// Remove by record id, unindexing along the way.
    pub fn remove(&mut self, rid: RecordId) -> Option<Document> {
        let doc = self.store.remove(rid)?;
        self.indexes.remove_doc(&doc, rid);
        Some(doc)
    }

    /// Fetch a document (snapshot-blind; staged records are served too).
    pub fn get(&self, rid: RecordId) -> Option<Document> {
        self.store.get(rid)
    }

    /// Fetch a document only if it is visible at `snapshot`.
    pub fn get_visible(&self, rid: RecordId, snapshot: u64) -> Option<Document> {
        self.store.get_visible(rid, snapshot)
    }

    /// The insert epoch a live record carries.
    pub fn epoch_of(&self, rid: RecordId) -> Option<u64> {
        self.store.epoch_of(rid)
    }

    /// Live document count, staged records included (what storage
    /// accounting and chunk sizing care about).
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Documents visible at the current committed epoch.
    pub fn visible_len(&self) -> usize {
        self.store.visible_len(self.snapshot())
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Iterate all `(record id, document)` pairs, staged included.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, Document)> + '_ {
        self.store.iter()
    }

    /// Iterate `(record id, document)` pairs visible at the current
    /// committed epoch — what a reader starting now observes.
    pub fn iter_visible(&self) -> impl Iterator<Item = (RecordId, Document)> + '_ {
        self.store.iter_visible(self.snapshot())
    }

    /// Storage statistics (Table 6).
    pub fn stats(&self) -> CollectionStats {
        self.store.stats()
    }

    /// Plan a query with the default planner.
    pub fn plan(&self, filter: &Filter) -> QueryPlan {
        Planner::default().choose(self, filter)
    }

    /// Plan and execute, returning matching documents and explain stats.
    /// Planning time (trial executions included) is reported in
    /// `stats.planning`, separately from the execution window.
    pub fn find(&self, filter: &Filter) -> (Vec<Document>, ExecutionStats) {
        self.find_with_planner(&Planner::default(), filter)
    }

    /// Plan, execute and shape (sort/limit) — the shard-local half of a
    /// distributed top-k find.
    pub fn find_with_options(
        &self,
        filter: &Filter,
        options: &crate::FindOptions,
    ) -> (Vec<Document>, ExecutionStats) {
        let (mut docs, stats) = self.find(filter);
        options.shape(&mut docs);
        (docs, stats)
    }

    /// Execute with an explicit planner configuration.
    pub fn find_with_planner(
        &self,
        planner: &Planner,
        filter: &Filter,
    ) -> (Vec<Document>, ExecutionStats) {
        let planning_start = std::time::Instant::now();
        let plan = planner.choose(self, filter);
        let planning = planning_start.elapsed();
        let mut scratch = self
            .scratch
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut stats = execute_plan_into(self, filter, &plan, None, true, &mut scratch);
        // Draining into the caller's Vec happens outside the measured
        // hot section: handing results upward costs one (amortized)
        // reallocation here, not per-key work inside the scan loop.
        let docs = scratch.drain().map(|(_, d)| d).collect();
        drop(scratch);
        stats.planning = planning;
        self.obs.record("shard.planning", stats.planning);
        self.obs.record("shard.index_scan", stats.scan_time());
        self.obs.record("shard.fetch_filter", stats.fetch_time);
        self.obs.counter("shard.exec_allocs").add(stats.allocations);
        (docs, stats)
    }

    /// Delete every matching document, returning the removed documents
    /// (callers use them to maintain routing metadata).
    pub fn delete_matching(&mut self, filter: &Filter) -> Vec<Document> {
        let plan = self.plan(filter);
        let (pairs, _) = crate::executor::execute_plan_with_rids(self, filter, &plan, None, true);
        let mut removed = Vec::with_capacity(pairs.len());
        for (rid, _) in pairs {
            if let Some(d) = self.remove(rid) {
                removed.push(d);
            }
        }
        removed
    }

    /// Brute-force evaluation over every *visible* document — the ground
    /// truth the tests compare indexed execution against. Visibility
    /// matters: a correct indexed find must return exactly the committed
    /// records, so the reference scan applies the same snapshot.
    pub fn find_collscan(&self, filter: &Filter) -> Vec<Document> {
        self.iter_visible()
            .map(|(_, d)| d)
            .filter(|d| filter.matches(d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_document::{doc, DateTime, Value};
    use sts_geo::GeoRect;
    use sts_index::IndexField;

    fn geo_doc(lon: f64, lat: f64, ms: i64) -> Document {
        let mut d = doc! {
            "location" => doc! {
                "type" => "Point",
                "coordinates" => vec![Value::from(lon), Value::from(lat)],
            },
            "date" => DateTime::from_millis(ms),
        };
        d.ensure_id((ms / 1_000) as u32);
        d
    }

    fn st_collection() -> LocalCollection {
        let mut c = LocalCollection::new();
        c.create_index(IndexSpec::single("_id"));
        c.create_index(IndexSpec::new(
            "location_1_date_1",
            vec![IndexField::geo("location"), IndexField::asc("date")],
        ));
        c.create_index(IndexSpec::single("date"));
        for i in 0..500i64 {
            let lon = 23.0 + (i % 25) as f64 * 0.04;
            let lat = 37.0 + (i / 25) as f64 * 0.04;
            c.insert(&geo_doc(lon, lat, i * 60_000)).unwrap();
        }
        c
    }

    #[test]
    fn find_matches_collscan_ground_truth() {
        let c = st_collection();
        let f = Filter::And(vec![
            Filter::GeoWithin {
                path: "location".into(),
                rect: GeoRect::new(23.2, 37.2, 23.6, 37.6),
            },
            Filter::gte("date", DateTime::from_millis(0)),
            Filter::lte("date", DateTime::from_millis(500 * 60_000)),
        ]);
        let (docs, stats) = c.find(&f);
        let truth = c.find_collscan(&f);
        assert_eq!(docs.len(), truth.len());
        assert!(stats.n_returned as usize == truth.len());
        assert!(!truth.is_empty(), "query should match something");
        assert!(stats.completed);
    }

    #[test]
    fn find_reports_stage_timings() {
        let c = st_collection();
        let f = Filter::And(vec![
            Filter::gte("date", DateTime::from_millis(0)),
            Filter::lte("date", DateTime::from_millis(100 * 60_000)),
        ]);
        let (_, stats) = c.find(&f);
        assert!(stats.fetch_time <= stats.duration);
        assert_eq!(stats.scan_time() + stats.fetch_time, stats.duration);
        assert_eq!(stats.total_time(), stats.planning + stats.duration);
        assert!(stats.docs_examined > 0);
    }

    #[test]
    fn insert_rejects_bad_geo() {
        let mut c = st_collection();
        let bad = doc! {"date" => DateTime::from_millis(0), "location" => "oops"};
        assert!(c.insert(&bad).is_err());
    }

    #[test]
    fn remove_unindexes() {
        let mut c = LocalCollection::new();
        c.create_index(IndexSpec::single("date"));
        let d = geo_doc(23.0, 37.0, 1_000);
        let rid = c.insert(&d).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.remove(rid).unwrap(), d);
        assert_eq!(c.len(), 0);
        assert_eq!(c.indexes().get("date").unwrap().len(), 0);
        assert!(c.remove(rid).is_none());
    }

    #[test]
    #[should_panic(expected = "before loading data")]
    fn create_index_after_load_panics() {
        let mut c = LocalCollection::new();
        c.create_index(IndexSpec::single("date"));
        c.insert(&geo_doc(23.0, 37.0, 0)).unwrap();
        c.create_index(IndexSpec::single("x"));
    }

    #[test]
    fn staged_batch_invisible_until_commit() {
        let mut c = st_collection();
        let f = Filter::And(vec![
            Filter::gte("date", DateTime::from_millis(0)),
            Filter::lte("date", DateTime::from_millis(500 * 60_000)),
        ]);
        let (before, _) = c.find(&f);
        // Stage a batch: indexed immediately, but invisible to find and
        // to the reference collscan alike.
        for i in 0..10i64 {
            c.stage(&geo_doc(23.3, 37.3, 1_000 + i)).unwrap();
        }
        assert_eq!(c.len(), 510);
        assert_eq!(c.visible_len(), 500);
        let (during, _) = c.find(&f);
        assert_eq!(during.len(), before.len(), "staged docs leaked into find");
        assert_eq!(c.find_collscan(&f).len(), before.len());
        // One atomic commit flips the whole batch visible.
        c.commit_batch();
        let (after, _) = c.find(&f);
        assert_eq!(after.len(), before.len() + 10);
        assert_eq!(c.find_collscan(&f).len(), before.len() + 10);
        assert_eq!(c.visible_len(), 510);
    }

    #[test]
    fn unindexable_query_falls_back_to_full_scan() {
        let c = st_collection();
        let f = Filter::gte("speed", 10.0); // no index on speed
        let plan = c.plan(&f);
        assert!(plan.is_fallback);
        let (docs, stats) = c.find(&f);
        assert!(docs.is_empty());
        assert_eq!(stats.docs_examined, 500);
    }
}
