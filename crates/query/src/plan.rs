//! Physical query plans.

use std::cmp::Ordering;
use sts_document::Value;
use sts_index::ScanRange;

/// How the chosen index is traversed.
#[derive(Clone, Debug)]
pub enum IndexAccess {
    /// Sequential scan of each range, examining every key.
    ///
    /// This is what MongoDB's 2dsphere stages do: the spatial covering
    /// produces the bounds and every other predicate (e.g. the date
    /// interval) is applied as an index-level *filter* — keys still
    /// count as examined. The paper's baselines pay exactly this cost.
    Sequential,
    /// Two-field skip-scan: trailing field constrained to
    /// `[t_lo, t_hi]` with in-bounds seeking (see
    /// [`sts_index::Index::skip_scan_2d`]). Available to plain
    /// ascending compound indexes — i.e. the Hilbert methods'
    /// `(hilbertIndex, date)` index — where MongoDB performs true
    /// interval intersection.
    SkipScan {
        /// Inclusive lower trailing bound.
        t_lo: Value,
        /// Inclusive upper trailing bound.
        t_hi: Value,
    },
}

/// Index-level filter over decoded key values: the value at `field_pos`
/// must fall into one of the sorted, disjoint inclusive `ranges`
/// (GeoHash cell membership, date intervals, Hilbert intervals).
#[derive(Clone, Debug)]
pub struct KeyFilter {
    /// Which decoded key field to test.
    pub field_pos: usize,
    /// Sorted, disjoint inclusive value ranges.
    pub ranges: Vec<(Value, Value)>,
}

impl KeyFilter {
    /// Build from integer ranges.
    pub fn from_int_ranges(field_pos: usize, ranges: &[(i64, i64)]) -> Self {
        KeyFilter {
            field_pos,
            ranges: ranges
                .iter()
                .map(|&(lo, hi)| (Value::Int64(lo), Value::Int64(hi)))
                .collect(),
        }
    }

    /// Build from a single inclusive value interval.
    pub fn from_interval(field_pos: usize, lo: Value, hi: Value) -> Self {
        KeyFilter {
            field_pos,
            ranges: vec![(lo, hi)],
        }
    }

    /// Test a decoded key.
    pub fn matches(&self, values: &[Value]) -> bool {
        let Some(v) = values.get(self.field_pos) else {
            return false;
        };
        // Binary search over disjoint sorted ranges: first range whose
        // upper endpoint is not below v.
        let idx = self
            .ranges
            .partition_point(|(_, hi)| hi.canonical_cmp(v) == Ordering::Less);
        self.ranges.get(idx).is_some_and(|(lo, hi)| {
            lo.canonical_cmp(v) != Ordering::Greater && v.canonical_cmp(hi) != Ordering::Greater
        })
    }
}

/// A fully-determined access path for one shard-local execution.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// Name of the index to traverse.
    pub index_name: String,
    /// B+tree intervals over the leading field(s).
    pub ranges: Vec<ScanRange>,
    /// Traversal mode.
    pub access: IndexAccess,
    /// Index-level filters on decoded keys (applied before fetching).
    pub key_filters: Vec<KeyFilter>,
    /// True when this plan is an unbounded fallback scan (no usable
    /// index constraint — MongoDB's COLLSCAN equivalent through `_id`).
    pub is_fallback: bool,
}

impl QueryPlan {
    /// Short human-readable description (for Table 7-style reporting).
    pub fn describe(&self) -> String {
        let mode = match self.access {
            IndexAccess::Sequential => "seq",
            IndexAccess::SkipScan { .. } => "skip",
        };
        let kf = if self.key_filters.is_empty() {
            ""
        } else {
            "+keyFilter"
        };
        format!(
            "{} [{} range(s), {mode}{kf}{}]",
            self.index_name,
            self.ranges.len(),
            if self.is_fallback { ", fallback" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_document::DateTime;

    #[test]
    fn int_key_filter_membership() {
        let kf = KeyFilter::from_int_ranges(1, &[(10, 20), (30, 30), (40, 50)]);
        let v = |x: i64| vec![Value::Null, Value::Int64(x)];
        for hit in [10, 15, 20, 30, 40, 50] {
            assert!(kf.matches(&v(hit)), "{hit}");
        }
        for miss in [9, 25, 31, 39, 51] {
            assert!(!kf.matches(&v(miss)), "{miss}");
        }
        assert!(!kf.matches(&[Value::Null]));
        assert!(!kf.matches(&[Value::Null, Value::from("x")]));
    }

    #[test]
    fn datetime_interval_filter() {
        let kf = KeyFilter::from_interval(
            0,
            Value::DateTime(DateTime::from_millis(100)),
            Value::DateTime(DateTime::from_millis(200)),
        );
        let v = |ms: i64| vec![Value::DateTime(DateTime::from_millis(ms))];
        assert!(kf.matches(&v(100)));
        assert!(kf.matches(&v(150)));
        assert!(kf.matches(&v(200)));
        assert!(!kf.matches(&v(99)));
        assert!(!kf.matches(&v(201)));
    }

    #[test]
    fn describe_mentions_mode() {
        let p = QueryPlan {
            index_name: "st".into(),
            ranges: vec![],
            access: IndexAccess::Sequential,
            key_filters: vec![],
            is_fallback: false,
        };
        assert!(p.describe().contains("seq"));
        assert!(p.describe().contains("st"));
    }
}
