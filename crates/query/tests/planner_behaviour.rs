//! Planner behaviour: candidate generation rules and multi-planner
//! trial ranking — the machinery behind Table 7.

use sts_document::{doc, DateTime, Document, Value};
use sts_geo::GeoRect;
use sts_index::{IndexField, IndexSpec};
use sts_query::{Filter, IndexAccess, LocalCollection, Planner};

fn point_doc(i: u32, lon: f64, lat: f64, ms: i64) -> Document {
    let mut d = doc! {
        "location" => doc! {
            "type" => "Point",
            "coordinates" => vec![Value::from(lon), Value::from(lat)],
        },
        "date" => DateTime::from_millis(ms),
        "hilbertIndex" => (lon * 1000.0) as i64,
    };
    d.ensure_id(i);
    d
}

/// A bslST-shaped collection: `_id`, compound (geo, date), single date.
fn bsl_st_collection(n: u32) -> LocalCollection {
    let mut c = LocalCollection::new();
    c.create_index(IndexSpec::single("_id"));
    c.create_index(IndexSpec::new(
        "location_2dsphere_date_1",
        vec![IndexField::geo("location"), IndexField::asc("date")],
    ));
    c.create_index(IndexSpec::single("date"));
    for i in 0..n {
        let lon = 20.0 + (i % 100) as f64 * 0.08;
        let lat = 35.0 + ((i / 100) % 60) as f64 * 0.1;
        c.insert(&point_doc(i, lon, lat, i64::from(i) * 10_000))
            .unwrap();
    }
    c
}

fn st_filter(rect: GeoRect, t0: i64, t1: i64) -> Filter {
    Filter::And(vec![
        Filter::GeoWithin {
            path: "location".into(),
            rect,
        },
        Filter::gte("date", DateTime::from_millis(t0)),
        Filter::lte("date", DateTime::from_millis(t1)),
    ])
}

#[test]
fn candidates_follow_leading_field_rule() {
    let c = bsl_st_collection(2_000);
    let planner = Planner::default();
    // Spatio-temporal query: compound (geo leads) + date index qualify;
    // _id does not (§3.1: no predicate on the leading field).
    let f = st_filter(GeoRect::new(21.0, 36.0, 23.0, 38.0), 0, 5_000_000);
    let plans = planner.candidates(&c, &f);
    let names: Vec<&str> = plans.iter().map(|p| p.index_name.as_str()).collect();
    assert!(names.contains(&"location_2dsphere_date_1"), "{names:?}");
    assert!(names.contains(&"date"), "{names:?}");
    assert!(!names.contains(&"_id"), "{names:?}");

    // Temporal-only query: the 2dsphere compound is unusable.
    let f = Filter::And(vec![
        Filter::gte("date", DateTime::from_millis(0)),
        Filter::lte("date", DateTime::from_millis(1_000)),
    ]);
    let names: Vec<String> = planner
        .candidates(&c, &f)
        .into_iter()
        .map(|p| p.index_name)
        .collect();
    assert_eq!(names, vec!["date"]);
}

#[test]
fn geo_leading_plans_are_sequential_with_date_key_filter() {
    // The 2dsphere stage must not seek on trailing date bounds (the
    // paper's baselines pay this); date becomes an index-level filter.
    let c = bsl_st_collection(500);
    let f = st_filter(GeoRect::new(21.0, 36.0, 22.0, 37.0), 0, 1_000_000);
    let plans = Planner::default().candidates(&c, &f);
    let geo_plan = plans
        .iter()
        .find(|p| p.index_name == "location_2dsphere_date_1")
        .unwrap();
    assert!(matches!(geo_plan.access, IndexAccess::Sequential));
    assert_eq!(geo_plan.key_filters.len(), 1, "date as index-level filter");
    assert!(!geo_plan.ranges.is_empty());
}

#[test]
fn hilbert_compound_gets_skip_scan() {
    let mut c = LocalCollection::new();
    c.create_index(IndexSpec::single("_id"));
    c.create_index(IndexSpec::new(
        "hilbertIndex_1_date_1",
        vec![IndexField::asc("hilbertIndex"), IndexField::asc("date")],
    ));
    for i in 0..500 {
        c.insert(&point_doc(
            i,
            20.0 + (i % 50) as f64 * 0.1,
            36.0,
            i64::from(i) * 1_000,
        ))
        .unwrap();
    }
    let f = Filter::And(vec![
        Filter::gte("date", DateTime::from_millis(100_000)),
        Filter::lte("date", DateTime::from_millis(200_000)),
        Filter::Or(vec![Filter::And(vec![
            Filter::gte("hilbertIndex", 20_500i64),
            Filter::lte("hilbertIndex", 21_500i64),
        ])]),
    ]);
    let plans = Planner::default().candidates(&c, &f);
    let hil = plans
        .iter()
        .find(|p| p.index_name == "hilbertIndex_1_date_1")
        .unwrap();
    assert!(
        matches!(hil.access, IndexAccess::SkipScan { .. }),
        "plain Asc compounds do interval intersection"
    );
    assert!(hil.key_filters.is_empty(), "skip-scan subsumes the filter");
}

#[test]
fn trial_ranking_prefers_selective_plan_for_small_queries() {
    let c = bsl_st_collection(5_000);
    // Tiny rectangle, wide time window: the compound examines few keys;
    // the date index would fetch everything in the window.
    let f = st_filter(GeoRect::new(21.0, 36.0, 21.1, 36.1), 0, 50_000_000);
    let plan = Planner::default().choose(&c, &f);
    assert_eq!(plan.index_name, "location_2dsphere_date_1");
}

#[test]
fn trial_ranking_can_prefer_date_index_for_big_queries() {
    let c = bsl_st_collection(5_000);
    // Huge rectangle (most of the space), narrow time window: scanning
    // the date index examines far fewer keys than the coarse spatial
    // covering — the Table 7 "○" cases.
    let f = st_filter(GeoRect::new(19.0, 34.0, 29.0, 42.0), 0, 500_000);
    let plan = Planner::default().choose(&c, &f);
    assert_eq!(plan.index_name, "date");
}

#[test]
fn unusable_everything_falls_back() {
    let c = bsl_st_collection(100);
    let f = Filter::gte("speedKmh", 10.0);
    let plan = Planner::default().choose(&c, &f);
    assert!(plan.is_fallback);
    assert_eq!(plan.index_name, "_id");
}

#[test]
fn geo_scan_cell_budget_controls_range_count() {
    let c = bsl_st_collection(500);
    let f = st_filter(GeoRect::new(19.7, 35.0, 28.0, 41.5), 0, 1_000_000);
    let coarse = Planner {
        geo_scan_cells: 8,
        ..Default::default()
    };
    let fine = Planner {
        geo_scan_cells: 128,
        ..Default::default()
    };
    let pc = coarse
        .candidates(&c, &f)
        .into_iter()
        .find(|p| p.index_name.contains("location"))
        .unwrap();
    let pf = fine
        .candidates(&c, &f)
        .into_iter()
        .find(|p| p.index_name.contains("location"))
        .unwrap();
    assert!(pc.ranges.len() <= pf.ranges.len());
    assert!(pf.ranges.len() > 4);
}
