//! Per-shard index management.

use crate::index::Index;
use crate::spec::IndexSpec;
use sts_btree::SizeReport;
use sts_document::Document;

/// All indexes of one shard's collection slice, maintained together.
///
/// MongoDB always maintains the `_id` index plus the shard-key index
/// plus any user indexes (§A.3 counts exactly these when comparing
/// memory footprints).
#[derive(Default)]
pub struct IndexManager {
    indexes: Vec<Index>,
}

impl IndexManager {
    /// No indexes yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an index. Panics on duplicate names (caller bug).
    pub fn create_index(&mut self, spec: IndexSpec) {
        assert!(
            self.get(&spec.name).is_none(),
            "duplicate index name {:?}",
            spec.name
        );
        self.indexes.push(Index::new(spec));
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> Option<&Index> {
        self.indexes.iter().find(|i| i.spec().name == name)
    }

    /// Iterate all indexes.
    pub fn iter(&self) -> impl Iterator<Item = &Index> {
        self.indexes.iter()
    }

    /// Number of indexes.
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// True when no indexes exist.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// Index a document everywhere. Returns `false` (and rolls back
    /// nothing — matching MongoDB, geo errors abort inserts upstream)
    /// when any index rejects it; callers validate geo fields first.
    pub fn insert_doc(&mut self, doc: &Document, record_id: u64) -> bool {
        self.indexes
            .iter_mut()
            .all(|i| i.insert_doc(doc, record_id))
    }

    /// Remove a document everywhere.
    pub fn remove_doc(&mut self, doc: &Document, record_id: u64) {
        for i in &mut self.indexes {
            i.remove_doc(doc, record_id);
        }
    }

    /// Per-index size reports: `(name, report)` (Fig. 14's breakdown).
    pub fn size_reports(&self) -> Vec<(String, SizeReport)> {
        self.indexes
            .iter()
            .map(|i| (i.spec().name.clone(), i.size_report()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{IndexField, IndexSpec};
    use sts_document::{doc, DateTime, Value};

    fn mgr() -> IndexManager {
        let mut m = IndexManager::new();
        m.create_index(IndexSpec::single("_id"));
        m.create_index(IndexSpec::new(
            "st",
            vec![IndexField::asc("hilbertIndex"), IndexField::asc("date")],
        ));
        m
    }

    fn d(i: i64) -> Document {
        let mut d = doc! {
            "hilbertIndex" => i,
            "date" => DateTime::from_millis(i * 1_000),
            "v" => Value::from(i as f64),
        };
        d.ensure_id(i as u32);
        d
    }

    #[test]
    fn maintains_all_indexes() {
        let mut m = mgr();
        // Keep the exact documents around: `_id` generation is unique per
        // call, and removal must present the same document that was
        // indexed (as the store layer does).
        let (da, db) = (d(1), d(2));
        assert!(m.insert_doc(&da, 0));
        assert!(m.insert_doc(&db, 1));
        assert_eq!(m.get("_id").unwrap().len(), 2);
        assert_eq!(m.get("st").unwrap().len(), 2);
        m.remove_doc(&da, 0);
        assert_eq!(m.get("_id").unwrap().len(), 1);
        assert_eq!(m.get("st").unwrap().len(), 1);
    }

    #[test]
    fn size_reports_cover_all_indexes() {
        let mut m = mgr();
        for i in 0..100 {
            m.insert_doc(&d(i), i as u64);
        }
        let reports = m.size_reports();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|(_, r)| r.entries == 100));
    }

    #[test]
    #[should_panic(expected = "duplicate index name")]
    fn rejects_duplicate_names() {
        let mut m = mgr();
        m.create_index(IndexSpec::single("_id"));
    }
}
