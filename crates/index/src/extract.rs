//! Extracting index key values from documents.

use crate::spec::{FieldKind, IndexSpec};
use sts_document::{Document, Value};
use sts_geo::{GeoHash, GeoPoint};

/// Read a point from a document field: either a GeoJSON
/// `{type: "Point", coordinates: [lon, lat]}` object or a legacy
/// two-element `[lon, lat]` array (both accepted by MongoDB, §3.2).
pub fn geo_point_of(doc: &Document, path: &str) -> Option<GeoPoint> {
    let v = doc.get_path(path)?;
    let coords = match v {
        Value::Document(d) => {
            if d.get("type").and_then(Value::as_str) != Some("Point") {
                return None;
            }
            d.get("coordinates")?.as_array()?
        }
        Value::Array(a) => a.as_slice(),
        _ => return None,
    };
    if coords.len() != 2 {
        return None;
    }
    let p = GeoPoint::new(coords[0].as_f64()?, coords[1].as_f64()?);
    p.is_valid().then_some(p)
}

/// FNV-1a hash of an encoded value, for hashed index fields.
fn hash_value(v: &Value) -> i64 {
    let enc = sts_encoding::encode_value(v);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in enc {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h as i64
}

/// Extract the per-field key values an index stores for `doc`.
///
/// Missing fields index as `Null` (MongoDB's sparse-less default);
/// 2dsphere fields with malformed geometry return `None` — such
/// documents are rejected at insert (MongoDB errors on them too).
pub fn extract_key_values(spec: &IndexSpec, doc: &Document) -> Option<Vec<Value>> {
    let mut out = Vec::with_capacity(spec.fields.len());
    for field in &spec.fields {
        let v = match field.kind {
            FieldKind::Asc => doc.get_path(&field.path).cloned().unwrap_or(Value::Null),
            FieldKind::Geo2dSphere { bits } => {
                let p = geo_point_of(doc, &field.path)?;
                Value::Int64(GeoHash::encode(p, bits).bits() as i64)
            }
            FieldKind::Hashed => {
                let v = doc.get_path(&field.path).cloned().unwrap_or(Value::Null);
                Value::Int64(hash_value(&v))
            }
        };
        out.push(v);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::IndexField;
    use sts_document::{doc, DateTime};

    fn geo_doc() -> Document {
        doc! {
            "location" => doc! {
                "type" => "Point",
                "coordinates" => vec![Value::from(23.727539), Value::from(37.983810)],
            },
            "date" => DateTime::from_millis(1_000),
        }
    }

    #[test]
    fn extracts_geojson_point() {
        let p = geo_point_of(&geo_doc(), "location").unwrap();
        assert_eq!((p.lon, p.lat), (23.727539, 37.983810));
    }

    #[test]
    fn extracts_legacy_pair() {
        let d = doc! {"loc" => vec![Value::from(1.0), Value::from(2.0)]};
        let p = geo_point_of(&d, "loc").unwrap();
        assert_eq!((p.lon, p.lat), (1.0, 2.0));
    }

    #[test]
    fn rejects_malformed_geometry() {
        for d in [
            doc! {"loc" => doc! {"type" => "Polygon", "coordinates" => vec![]}},
            doc! {"loc" => vec![Value::from(1.0)]},
            doc! {"loc" => vec![Value::from(200.0), Value::from(0.0)]},
            doc! {"loc" => "not geo"},
        ] {
            assert!(geo_point_of(&d, "loc").is_none(), "{d:?}");
        }
        assert!(geo_point_of(&geo_doc(), "absent").is_none());
    }

    #[test]
    fn compound_extraction_with_geohash() {
        let spec = IndexSpec::new(
            "st",
            vec![IndexField::geo("location"), IndexField::asc("date")],
        );
        let vals = extract_key_values(&spec, &geo_doc()).unwrap();
        assert_eq!(vals.len(), 2);
        let expected = GeoHash::encode(GeoPoint::new(23.727539, 37.983810), 26).bits() as i64;
        assert_eq!(vals[0].as_i64(), Some(expected));
        assert_eq!(vals[1].as_datetime(), Some(DateTime::from_millis(1_000)));
    }

    #[test]
    fn missing_plain_field_indexes_null() {
        let spec = IndexSpec::single("speed");
        let vals = extract_key_values(&spec, &geo_doc()).unwrap();
        assert_eq!(vals, vec![Value::Null]);
    }

    #[test]
    fn missing_geo_field_rejects_document() {
        let spec = IndexSpec::new("g", vec![IndexField::geo("nope")]);
        assert!(extract_key_values(&spec, &geo_doc()).is_none());
    }

    #[test]
    fn hashed_is_deterministic_and_spreads() {
        let spec = IndexSpec::new("h", vec![IndexField::hashed("date")]);
        let a = extract_key_values(&spec, &geo_doc()).unwrap();
        let b = extract_key_values(&spec, &geo_doc()).unwrap();
        assert_eq!(a, b);
        let mut other = geo_doc();
        other.set("date", DateTime::from_millis(1_001));
        let c = extract_key_values(&spec, &other).unwrap();
        assert_ne!(a, c);
    }
}
