//! Building B+tree scan ranges from typed constraints.

use std::ops::Bound;
use sts_btree::KeyBound;
use sts_document::Value;
use sts_encoding::KeyWriter;

/// Nine `0xFF` bytes: appended to an encoded key prefix, this sorts after
/// every stored entry sharing that prefix. Stored entries end with an
/// 8-byte record-id suffix whose bytes may all be `0xFF`; nine beats any
/// continuation bytewise because value encodings always start with a
/// rank byte `< 0xFF`.
pub const EXCLUSIVE_TAIL: [u8; 9] = [0xFF; 9];

/// Encode a sequence of field values as a key prefix.
pub fn key_for_values(values: &[Value]) -> Vec<u8> {
    let mut w = KeyWriter::new();
    for v in values {
        w.push(v);
    }
    w.finish()
}

/// One contiguous B+tree scan interval.
#[derive(Clone, Debug, PartialEq)]
pub struct ScanRange {
    /// Lower key bound.
    pub lower: KeyBound,
    /// Upper key bound.
    pub upper: KeyBound,
}

impl ScanRange {
    /// The whole index.
    pub fn whole() -> Self {
        ScanRange {
            lower: Bound::Unbounded,
            upper: Bound::Unbounded,
        }
    }

    /// A range over a compound index: equality on `prefix` values, then
    /// an optional interval `(low, high)` on the next field, where the
    /// `bool` is *inclusive*.
    ///
    /// With `low`/`high` both `None` this scans every entry under the
    /// prefix. Trailing fields beyond `prefix.len() + 1` are always
    /// unconstrained at the B+tree level (they are filtered per-key by
    /// the executor, like MongoDB's index-level filters).
    pub fn with_prefix(
        prefix: &[Value],
        low: Option<(&Value, bool)>,
        high: Option<(&Value, bool)>,
    ) -> Self {
        let base = key_for_values(prefix);
        let lower = match low {
            None => {
                if prefix.is_empty() {
                    Bound::Unbounded
                } else {
                    Bound::Included(base.clone())
                }
            }
            Some((v, inclusive)) => {
                let mut k = base.clone();
                k.extend_from_slice(&sts_encoding::encode_value(v));
                if inclusive {
                    Bound::Included(k)
                } else {
                    // Skip every entry whose next field equals `v`.
                    k.extend_from_slice(&EXCLUSIVE_TAIL);
                    Bound::Excluded(k)
                }
            }
        };
        let upper = match high {
            None => {
                if prefix.is_empty() {
                    Bound::Unbounded
                } else {
                    let mut k = base;
                    k.push(0xFF);
                    Bound::Excluded(k)
                }
            }
            Some((v, inclusive)) => {
                let mut k = base;
                k.extend_from_slice(&sts_encoding::encode_value(v));
                if inclusive {
                    k.extend_from_slice(&EXCLUSIVE_TAIL);
                    Bound::Included(k)
                } else {
                    Bound::Excluded(k)
                }
            }
        };
        ScanRange { lower, upper }
    }

    /// Equality on every given value (point range over the prefix).
    pub fn equality(values: &[Value]) -> Self {
        Self::with_prefix(values, None, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_btree::BTree;
    use sts_document::DateTime;
    use sts_encoding::KeyWriter;

    /// Insert (h, date, rid) entries like the hil compound index does.
    fn tree_with(entries: &[(i64, i64)]) -> BTree {
        let mut t = BTree::new();
        for (rid, (h, d)) in entries.iter().enumerate() {
            let mut w = KeyWriter::new();
            w.push(&Value::Int64(*h))
                .push(&Value::DateTime(DateTime::from_millis(*d)))
                .push_raw_u64(rid as u64);
            t.insert(&w.finish(), rid as u64);
        }
        t
    }

    fn scan(t: &BTree, r: &ScanRange) -> Vec<u64> {
        t.range(r.lower.clone(), r.upper.clone())
            .map(|(_, v)| v)
            .collect()
    }

    #[test]
    fn equality_prefix_covers_all_dates() {
        let t = tree_with(&[(1, 10), (1, 20), (2, 10), (2, 30), (3, 5)]);
        let r = ScanRange::equality(&[Value::Int64(2)]);
        assert_eq!(scan(&t, &r), vec![2, 3]);
    }

    #[test]
    fn prefix_with_date_interval() {
        let t = tree_with(&[(1, 10), (1, 20), (1, 30), (1, 40), (2, 25)]);
        let d = |ms: i64| Value::DateTime(DateTime::from_millis(ms));
        let r = ScanRange::with_prefix(
            &[Value::Int64(1)],
            Some((&d(20), true)),
            Some((&d(30), true)),
        );
        assert_eq!(scan(&t, &r), vec![1, 2]);
        let r = ScanRange::with_prefix(
            &[Value::Int64(1)],
            Some((&d(20), false)),
            Some((&d(40), false)),
        );
        assert_eq!(scan(&t, &r), vec![2]);
    }

    #[test]
    fn open_interval_on_leading_field() {
        let t = tree_with(&[(1, 10), (2, 10), (3, 10), (4, 10)]);
        let r = ScanRange::with_prefix(
            &[],
            Some((&Value::Int64(2), true)),
            Some((&Value::Int64(3), true)),
        );
        assert_eq!(scan(&t, &r), vec![1, 2]);
    }

    #[test]
    fn whole_scans_everything() {
        let t = tree_with(&[(1, 10), (2, 10)]);
        assert_eq!(scan(&t, &ScanRange::whole()), vec![0, 1]);
    }

    #[test]
    fn exclusive_tail_beats_max_record_id() {
        // An entry with rid = u64::MAX must still fall inside an
        // inclusive upper bound on its key values.
        let mut t = BTree::new();
        let mut w = KeyWriter::new();
        w.push(&Value::Int64(7)).push_raw_u64(u64::MAX);
        t.insert(&w.finish(), 0);
        let r = ScanRange::with_prefix(
            &[],
            Some((&Value::Int64(7), true)),
            Some((&Value::Int64(7), true)),
        );
        assert_eq!(scan(&t, &r), vec![0]);
    }
}
