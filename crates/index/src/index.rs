//! A single index: B+tree + spec + maintenance.

use crate::bounds::ScanRange;
use crate::extract::extract_key_values;
use crate::spec::IndexSpec;
use std::ops::{Bound, ControlFlow};
use sts_btree::{BTree, KeyBound, SizeReport};
use sts_document::{Document, Value};
use sts_encoding::{encode_value_into, KeyReader, KeyWriter};

/// Reusable buffers for index scans.
///
/// Scans decode key values and build seek targets on every entry; with a
/// scratch threaded in from the executor those buffers are reused across
/// queries instead of reallocated per scan — part of the hot path's
/// zero-allocation contract.
#[derive(Default)]
pub struct ScanScratch {
    /// Decoded per-field key values handed to the scan closure.
    values: Vec<Value>,
    /// Seek-target key under construction (skip-scan jumps).
    seek_key: Vec<u8>,
}

impl ScanScratch {
    /// Empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Borrow an owned key bound for the batch cursor.
fn as_ref_bound(b: &KeyBound) -> Bound<&[u8]> {
    match b {
        Bound::Included(k) => Bound::Included(k.as_slice()),
        Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Statistics of one or more index scans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Index entries touched (MongoDB `totalKeysExamined`).
    pub keys_examined: u64,
    /// Distinct B+tree descents (one per scan range).
    pub seeks: u64,
}

impl ScanStats {
    /// Accumulate.
    pub fn merge(&mut self, other: ScanStats) {
        self.keys_examined += other.keys_examined;
        self.seeks += other.seeks;
    }
}

/// One secondary index of a collection.
pub struct Index {
    spec: IndexSpec,
    tree: BTree,
}

impl Index {
    /// Create an empty index.
    pub fn new(spec: IndexSpec) -> Self {
        Index {
            spec,
            tree: BTree::new(),
        }
    }

    /// The spec.
    pub fn spec(&self) -> &IndexSpec {
        &self.spec
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Key bytes for a document, or `None` when extraction fails
    /// (malformed geo field).
    fn key_of(&self, doc: &Document, record_id: u64) -> Option<Vec<u8>> {
        let values = extract_key_values(&self.spec, doc)?;
        let mut w = KeyWriter::new();
        for v in &values {
            w.push(v);
        }
        w.push_raw_u64(record_id);
        Some(w.finish())
    }

    /// Index a document. Returns `false` when the document cannot be
    /// indexed (2dsphere extraction failed).
    pub fn insert_doc(&mut self, doc: &Document, record_id: u64) -> bool {
        match self.key_of(doc, record_id) {
            Some(k) => {
                self.tree.insert(&k, record_id);
                true
            }
            None => false,
        }
    }

    /// Remove a document's entry.
    pub fn remove_doc(&mut self, doc: &Document, record_id: u64) -> bool {
        match self.key_of(doc, record_id) {
            Some(k) => self.tree.remove(&k).is_some(),
            None => false,
        }
    }

    /// Scan the given ranges; for each entry, decode the per-field key
    /// values and call `f(values, record_id)`. Returns scan statistics.
    ///
    /// Decoding lets the executor apply *index-level filters* on trailing
    /// compound fields (MongoDB's `indexFilterSet`/bounds behaviour):
    /// non-matching keys still count as examined but avoid a document
    /// fetch.
    pub fn scan_ranges<F: FnMut(&[Value], u64) -> ControlFlow<()>>(
        &self,
        ranges: &[ScanRange],
        f: F,
    ) -> ScanStats {
        self.scan_ranges_with(&mut ScanScratch::new(), ranges, f)
    }

    /// [`scan_ranges`](Self::scan_ranges) with caller-owned scratch
    /// buffers, serving the whole (sorted) batch of ranges through one
    /// [`BatchCursor`](sts_btree::BatchCursor): the descent path is
    /// reused across ranges sharing a node prefix, and the cursor
    /// resumes forward instead of re-descending from the root.
    pub fn scan_ranges_with<F: FnMut(&[Value], u64) -> ControlFlow<()>>(
        &self,
        scratch: &mut ScanScratch,
        ranges: &[ScanRange],
        mut f: F,
    ) -> ScanStats {
        let nfields = self.spec.fields.len();
        let mut cur = self.tree.batch_cursor();
        'ranges: for range in ranges {
            cur.seek(as_ref_bound(&range.lower));
            let upper = as_ref_bound(&range.upper);
            while let Some((key, rid)) = cur.next(upper) {
                scratch.values.clear();
                let mut r = KeyReader::new(key);
                for _ in 0..nfields {
                    scratch
                        .values
                        .push(r.next_value().expect("index key corrupt"));
                }
                if f(&scratch.values, rid).is_break() {
                    break 'ranges;
                }
            }
        }
        ScanStats {
            keys_examined: cur.keys_examined(),
            seeks: cur.seeks(),
        }
    }

    /// Skip-scan over a two-field compound index: scan `leading` while
    /// constraining the *second* field to `[t_lo, t_hi]` (inclusive).
    ///
    /// Mirrors MongoDB's `IndexBoundsChecker`: within the leading
    /// interval the cursor *seeks* — a key whose trailing value is below
    /// the interval jumps to `(v0, t_lo)`, one above jumps past all of
    /// `v0` — instead of examining every key. This is what makes the
    /// `(hilbertIndex, date)` compound index efficient for wide Hilbert
    /// ranges with narrow time windows, and it's why the paper's `hil`
    /// method examines orders of magnitude fewer keys (Fig. 13b).
    pub fn skip_scan_2d<F: FnMut(&[Value], u64) -> ControlFlow<()>>(
        &self,
        leading: &ScanRange,
        t_lo: &Value,
        t_hi: &Value,
        f: F,
    ) -> ScanStats {
        self.skip_scan_2d_with(&mut ScanScratch::new(), leading, t_lo, t_hi, f)
    }

    /// [`skip_scan_2d`](Self::skip_scan_2d) with caller-owned scratch.
    /// Every jump is a forward [`seek`](sts_btree::BatchCursor::seek) on
    /// one batch cursor — the seek target is built in the reusable
    /// scratch key buffer and the descent path is reused, rather than
    /// cloning bounds and re-descending from the root per jump.
    pub fn skip_scan_2d_with<F: FnMut(&[Value], u64) -> ControlFlow<()>>(
        &self,
        scratch: &mut ScanScratch,
        leading: &ScanRange,
        t_lo: &Value,
        t_hi: &Value,
        mut f: F,
    ) -> ScanStats {
        use std::cmp::Ordering;

        let mut cur = self.tree.batch_cursor();
        cur.seek(as_ref_bound(&leading.lower));
        let upper = as_ref_bound(&leading.upper);
        while let Some((key, rid)) = cur.next(upper) {
            let mut r = KeyReader::new(key);
            let v0 = r.next_value().expect("index key corrupt");
            let v1 = r.next_value().expect("index key corrupt");
            if v1.canonical_cmp(t_lo) == Ordering::Less {
                // Jump forward to (v0, t_lo).
                scratch.seek_key.clear();
                encode_value_into(&v0, &mut scratch.seek_key);
                encode_value_into(t_lo, &mut scratch.seek_key);
                cur.seek(Bound::Included(&scratch.seek_key));
                continue;
            }
            if v1.canonical_cmp(t_hi) == Ordering::Greater {
                // Jump past every remaining entry with this v0.
                scratch.seek_key.clear();
                encode_value_into(&v0, &mut scratch.seek_key);
                scratch
                    .seek_key
                    .extend_from_slice(&crate::bounds::EXCLUSIVE_TAIL);
                cur.seek(Bound::Included(&scratch.seek_key));
                continue;
            }
            if f(&[v0, v1], rid).is_break() {
                break;
            }
        }
        ScanStats {
            keys_examined: cur.keys_examined(),
            seeks: cur.seeks(),
        }
    }

    /// Estimate entry count across the given ranges (planner support).
    pub fn estimate_ranges(&self, ranges: &[ScanRange]) -> u64 {
        ranges
            .iter()
            .map(|r| self.tree.estimate_range(&r.lower, &r.upper))
            .sum()
    }

    /// Size accounting for Fig. 14.
    pub fn size_report(&self) -> SizeReport {
        self.tree.size_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::IndexField;
    use sts_document::{doc, DateTime};

    fn point_doc(lon: f64, lat: f64, ms: i64) -> Document {
        doc! {
            "location" => doc! {
                "type" => "Point",
                "coordinates" => vec![Value::from(lon), Value::from(lat)],
            },
            "date" => DateTime::from_millis(ms),
            "hilbertIndex" => (lon * 100.0) as i64,
        }
    }

    fn hil_index() -> Index {
        Index::new(IndexSpec::new(
            "hil",
            vec![IndexField::asc("hilbertIndex"), IndexField::asc("date")],
        ))
    }

    #[test]
    fn insert_scan_remove() {
        let mut idx = hil_index();
        let docs: Vec<Document> = (0..10)
            .map(|i| point_doc(23.0 + f64::from(i) * 0.01, 37.9, i64::from(i) * 100))
            .collect();
        for (rid, d) in docs.iter().enumerate() {
            assert!(idx.insert_doc(d, rid as u64));
        }
        assert_eq!(idx.len(), 10);
        let mut seen = Vec::new();
        let stats = idx.scan_ranges(&[ScanRange::whole()], |vals, rid| {
            assert_eq!(vals.len(), 2);
            seen.push(rid);
            ControlFlow::Continue(())
        });
        assert_eq!(seen.len(), 10);
        assert_eq!(stats.keys_examined, 10);
        assert_eq!(stats.seeks, 1);
        assert!(idx.remove_doc(&docs[3], 3));
        assert_eq!(idx.len(), 9);
        assert!(!idx.remove_doc(&docs[3], 3));
    }

    #[test]
    fn duplicate_key_values_coexist() {
        let mut idx = hil_index();
        let d = point_doc(23.0, 37.9, 500);
        assert!(idx.insert_doc(&d, 1));
        assert!(idx.insert_doc(&d, 2));
        assert_eq!(idx.len(), 2, "record-id suffix disambiguates duplicates");
    }

    #[test]
    fn geo_index_rejects_bad_documents() {
        let mut idx = Index::new(IndexSpec::new(
            "st",
            vec![IndexField::geo("location"), IndexField::asc("date")],
        ));
        let bad = doc! {"date" => DateTime::from_millis(0)};
        assert!(!idx.insert_doc(&bad, 0));
        assert!(idx.is_empty());
    }

    #[test]
    fn scan_decodes_values_for_index_filters() {
        let mut idx = hil_index();
        for (rid, ms) in [(0u64, 100i64), (1, 200), (2, 300)] {
            idx.insert_doc(&point_doc(23.0, 37.9, ms), rid);
        }
        // Scan all hilbert values; filter date at index level.
        let mut matched = Vec::new();
        let stats = idx.scan_ranges(&[ScanRange::whole()], |vals, rid| {
            let dt = vals[1].as_datetime().unwrap();
            if dt.millis() >= 200 {
                matched.push(rid);
            }
            ControlFlow::Continue(())
        });
        assert_eq!(stats.keys_examined, 3);
        assert_eq!(matched, vec![1, 2]);
    }

    #[test]
    fn skip_scan_examines_far_fewer_keys() {
        // 100 hilbert cells × 100 timestamps; query a wide hilbert range
        // with a narrow time window.
        let mut idx = hil_index();
        let mut rid = 0u64;
        for h in 0..100i64 {
            for t in 0..100i64 {
                let mut d = point_doc(23.0, 37.9, t * 10);
                d.set("hilbertIndex", h);
                idx.insert_doc(&d, rid);
                rid += 1;
            }
        }
        let leading = ScanRange::with_prefix(
            &[],
            Some((&Value::Int64(10), true)),
            Some((&Value::Int64(89), true)),
        );
        let (t_lo, t_hi) = (
            Value::DateTime(DateTime::from_millis(200)),
            Value::DateTime(DateTime::from_millis(290)),
        );
        let mut hits = 0u64;
        let stats = idx.skip_scan_2d(&leading, &t_lo, &t_hi, |vals, _| {
            let h = vals[0].as_f64().unwrap() as i64;
            let t = vals[1].as_datetime().unwrap().millis();
            assert!((10..=89).contains(&h));
            assert!((200..=290).contains(&t));
            hits += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(hits, 80 * 10);
        // Sequential would examine 80 × 100 = 8,000 keys; skip-scan stays
        // near matches + seek overhead.
        assert!(
            stats.keys_examined < 2_000,
            "keys {} seeks {}",
            stats.keys_examined,
            stats.seeks
        );
        assert!(stats.seeks >= 80, "one seek per leading value at least");
    }

    #[test]
    fn skip_scan_empty_interval_returns_nothing() {
        let mut idx = hil_index();
        for i in 0..50u64 {
            idx.insert_doc(&point_doc(23.0, 37.9, i as i64), i);
        }
        let stats = idx.skip_scan_2d(
            &ScanRange::whole(),
            &Value::DateTime(DateTime::from_millis(1_000)),
            &Value::DateTime(DateTime::from_millis(500)),
            |_, _| -> ControlFlow<()> { panic!("no matches expected") },
        );
        assert!(stats.keys_examined <= 100);
    }

    #[test]
    fn estimate_ranges_tracks_size() {
        let mut idx = hil_index();
        for i in 0..5_000u64 {
            idx.insert_doc(&point_doc(23.0 + (i % 50) as f64 * 0.01, 37.9, i as i64), i);
        }
        let est = idx.estimate_ranges(&[ScanRange::whole()]);
        assert!(est > 2_500 && est <= 5_000, "{est}");
    }
}
