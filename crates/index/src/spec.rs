//! Index specifications.

use std::fmt;

/// How one index field treats its document values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FieldKind {
    /// Plain ascending order on the (BSON-comparable) value.
    Asc,
    /// 2dsphere: the field holds a GeoJSON point (or legacy `[lon, lat]`
    /// pair) and is indexed as a GeoHash cell id of `bits` precision.
    Geo2dSphere {
        /// GeoHash precision; MongoDB's default is 26 (§3.2).
        bits: u32,
    },
    /// Hashed: indexed by a 64-bit hash of the value (hashed sharding).
    Hashed,
}

/// One field of an index.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IndexField {
    /// Dotted path into the document.
    pub path: String,
    /// Treatment of the field's values.
    pub kind: FieldKind,
}

impl IndexField {
    /// Ascending field.
    pub fn asc(path: impl Into<String>) -> Self {
        IndexField {
            path: path.into(),
            kind: FieldKind::Asc,
        }
    }

    /// 2dsphere field at MongoDB's default 26-bit precision.
    pub fn geo(path: impl Into<String>) -> Self {
        IndexField {
            path: path.into(),
            kind: FieldKind::Geo2dSphere {
                bits: sts_geo::DEFAULT_GEOHASH_BITS,
            },
        }
    }

    /// 2dsphere field at explicit precision.
    pub fn geo_bits(path: impl Into<String>, bits: u32) -> Self {
        IndexField {
            path: path.into(),
            kind: FieldKind::Geo2dSphere { bits },
        }
    }

    /// Hashed field.
    pub fn hashed(path: impl Into<String>) -> Self {
        IndexField {
            path: path.into(),
            kind: FieldKind::Hashed,
        }
    }
}

/// A (possibly compound) index definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IndexSpec {
    /// Index name, unique within a collection.
    pub name: String,
    /// Fields in declaration order (up to 32, like MongoDB).
    pub fields: Vec<IndexField>,
}

impl IndexSpec {
    /// Build a spec; panics on empty or oversized field lists.
    pub fn new(name: impl Into<String>, fields: Vec<IndexField>) -> Self {
        assert!(!fields.is_empty(), "index needs at least one field");
        assert!(
            fields.len() <= 32,
            "MongoDB caps compound indexes at 32 fields"
        );
        IndexSpec {
            name: name.into(),
            fields,
        }
    }

    /// Single ascending field shorthand.
    pub fn single(path: &str) -> Self {
        IndexSpec::new(path, vec![IndexField::asc(path)])
    }

    /// The leading field's path.
    pub fn leading_path(&self) -> &str {
        &self.fields[0].path
    }
}

impl fmt::Display for IndexSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.name)?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match field.kind {
                FieldKind::Asc => write!(f, "{}: 1", field.path)?,
                FieldKind::Geo2dSphere { .. } => write!(f, "{}: \"2dsphere\"", field.path)?,
                FieldKind::Hashed => write!(f, "{}: \"hashed\"", field.path)?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let spec = IndexSpec::new(
            "st",
            vec![IndexField::geo("location"), IndexField::asc("date")],
        );
        assert_eq!(spec.to_string(), "st{location: \"2dsphere\", date: 1}");
        assert_eq!(spec.leading_path(), "location");
    }

    #[test]
    #[should_panic(expected = "at least one field")]
    fn rejects_empty() {
        IndexSpec::new("x", vec![]);
    }
}
