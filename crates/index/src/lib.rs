//! Secondary indexes over documents.
//!
//! MongoDB-style indexing (§3.1–3.2 of the paper): every index is a
//! B+tree over composite keys extracted from documents. Supported field
//! kinds:
//!
//! * ascending value fields (`{date: 1}`, `{hilbertIndex: 1}`),
//! * 2dsphere fields — the document's GeoJSON point is encoded as a
//!   26-bit GeoHash cell id, reproducing MongoDB's built-in spatial
//!   indexing,
//! * hashed fields (for hashed sharding).
//!
//! Compound indexes concatenate per-field encodings in declaration
//! order, which is precisely why `{location, date}` and
//! `{date, location}` behave so differently in the paper's evaluation.

mod bounds;
mod extract;
mod index;
mod manager;
mod spec;

pub use bounds::{key_for_values, ScanRange, EXCLUSIVE_TAIL};
pub use extract::{extract_key_values, geo_point_of};
pub use index::{Index, ScanScratch, ScanStats};
pub use manager::IndexManager;
pub use spec::{FieldKind, IndexField, IndexSpec};
