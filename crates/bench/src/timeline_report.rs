//! Live-ingest telemetry-timeline collection for `obs-report --timeline`.
//!
//! Runs an `ingestsmoke`-style live workload per approach — batched
//! `insert_batch` ingest with the online balancer enabled, interleaved
//! with dispatcher queries — with the store's telemetry timeline armed:
//! windowed metric deltas ride the virtual clock, balancer
//! splits/migrations land as event annotations, query latencies feed a
//! p99 SLO whose burn rate is tracked per window, and every query's
//! stage breakdown folds into a cross-query flamegraph.
//!
//! The collected [`TimelineReport`] renders a time-series dashboard and
//! exports all four artifact formats (Prometheus text, `sts-timeline/1`
//! JSON, Perfetto counter tracks, folded stacks), with a [`verify`]
//! gate that re-checks every invariant the exporters rely on —
//! `obs-report --timeline` exits non-zero when it fails.
//!
//! [`verify`]: TimelineReport::verify

use std::sync::Arc;
use std::time::Duration;

use serde::Json;
use sts_core::{Approach, StQuery, StStore, StoreConfig};
use sts_obs::{
    perfetto_timeline, prometheus_text, timeline_json, validate_timeline_json, BurnRule,
    FoldedStacks, Registry, RegistrySnapshot, SloPolicy, Timeline, TimelineConfig, TIMELINE_SCHEMA,
};
use sts_workload::fleet::{FleetConfig, FleetStream};
use sts_workload::Record;

use crate::{small_query_batch, utc_date_string, Dataset, HarnessConfig};

/// Knobs for the live-ingest timeline run.
#[derive(Clone, Copy, Debug)]
pub struct TimelineReportConfig {
    /// Documents per ingest batch.
    pub batch_size: usize,
    /// Queries interleaved after each committed batch.
    pub queries_per_batch: usize,
    /// Timeline window width (virtual clock).
    pub window: Duration,
    /// Ring capacity (windows retained).
    pub capacity: usize,
    /// SLO latency threshold: a query counts against the error budget
    /// when its end-to-end virtual latency exceeds this.
    pub threshold: Duration,
    /// SLO objective (fraction of queries that must meet `threshold`).
    pub objective: f64,
}

impl Default for TimelineReportConfig {
    fn default() -> Self {
        TimelineReportConfig {
            batch_size: 250,
            queries_per_batch: 8,
            window: Duration::from_millis(2),
            capacity: 512,
            threshold: Duration::from_micros(500),
            objective: 0.95,
        }
    }
}

impl TimelineReportConfig {
    /// The burn-rate policy the run tracks: a fast-burn rule over
    /// (2, 8) windows and a slow-burn rule over (4, 16) windows, both
    /// multi-window (alert iff short *and* long views exceed the
    /// factor) so a single bad window cannot page.
    pub fn policy(&self) -> SloPolicy {
        SloPolicy {
            name: "query-p99".into(),
            objective: self.objective,
            threshold: self.threshold,
            rules: vec![
                BurnRule {
                    short_windows: 2,
                    long_windows: 8,
                    factor: 10.0,
                },
                BurnRule {
                    short_windows: 4,
                    long_windows: 16,
                    factor: 4.0,
                },
            ],
        }
    }
}

/// One approach's finished timeline run.
pub struct ApproachTimeline {
    /// Which §5.1 approach ran.
    pub approach: Approach,
    /// The finished (sealed) timeline.
    pub timeline: Timeline,
    /// Cross-query aggregate stage flamegraph.
    pub folded: FoldedStacks,
    /// Final cumulative registry snapshot.
    pub metrics: RegistrySnapshot,
    /// Total query results over the interleaved workload.
    pub results: u64,
    /// Documents ingested.
    pub docs: u64,
}

/// The `--timeline` mode's collected report.
pub struct TimelineReport {
    /// Curve family the curve approaches ran on.
    pub curve: String,
    /// Workload seed.
    pub seed: u64,
    /// Collection knobs (window width, SLO policy…).
    pub cfg: TimelineReportConfig,
    /// One finished run per approach, in `Approach::ALL` order.
    pub approaches: Vec<ApproachTimeline>,
}

impl TimelineReport {
    /// Run the live-ingest workload per approach with telemetry armed
    /// and collect the finished timelines.
    pub fn collect(cfg: &TimelineReportConfig, harness: &HarnessConfig) -> TimelineReport {
        let fleet = FleetConfig {
            records: harness.r_records(1),
            vehicles: 500,
            seed: harness.seed,
            ..Default::default()
        };
        // Fit data-adaptive curves on a deterministic prefix of the
        // same stream, as a deployment would before going live.
        let sample_records = sts_workload::fleet::generate(&FleetConfig {
            records: fleet.records.min(2_048),
            ..fleet.clone()
        });
        let approaches = Approach::ALL
            .iter()
            .map(|&approach| run_one(approach, &fleet, &sample_records, cfg, harness))
            .collect();
        TimelineReport {
            curve: harness.curve.name().to_string(),
            seed: harness.seed,
            cfg: *cfg,
            approaches,
        }
    }

    /// Render the time-series dashboard: per approach, the windowed
    /// p99 series, SLO budget burn, alerts, and correlated balancer /
    /// ingest events.
    pub fn dashboard(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "== telemetry timeline (window {:.1} ms, SLO p99 \u{2264} {} \u{00b5}s @ {:.0}%) ==\n",
            self.cfg.window.as_secs_f64() * 1e3,
            self.cfg.threshold.as_micros(),
            self.cfg.objective * 100.0
        ));
        s.push_str(&format!(
            "{:<6} {:>7} {:>7} {:>8} {:>6} {:>8} {:>7} {:>7} {:>8}\n",
            "appr", "windows", "dropped", "queries", "bad", "budget%", "alerts", "events", "docs"
        ));
        for a in &self.approaches {
            let tl = &a.timeline;
            let (total, bad, budget, alerts) = match tl.slo() {
                Some(slo) => {
                    let (t, b) = slo.totals();
                    (t, b, slo.budget_consumed() * 100.0, slo.alerts().len())
                }
                None => (0, 0, 0.0, 0),
            };
            let events: usize = tl.windows().map(|w| w.events.len()).sum();
            s.push_str(&format!(
                "{:<6} {:>7} {:>7} {:>8} {:>6} {:>8.1} {:>7} {:>7} {:>8}\n",
                a.approach.name(),
                tl.len(),
                tl.dropped(),
                total,
                bad,
                budget,
                alerts,
                events,
                a.docs
            ));
        }
        for a in &self.approaches {
            s.push_str(&format!("\n-- {} --\n", a.approach.name()));
            s.push_str(&series_line(&a.timeline));
            s.push_str(&event_lines(&a.timeline));
        }
        s
    }

    /// The `sts-timeline/1` JSON bundle: one run document per approach
    /// (each individually valid under [`validate_timeline_json`])
    /// under `"runs"`, with sorted keys throughout.
    pub fn bundle_json(&self) -> Json {
        let window_us = format!("{}", self.cfg.window.as_micros());
        let runs: Vec<Json> = self
            .approaches
            .iter()
            .map(|a| {
                timeline_json(
                    &a.timeline,
                    &[
                        ("approach", a.approach.name()),
                        ("curve", self.curve.as_str()),
                        ("dataset", Dataset::R.label()),
                        ("windowMicros", window_us.as_str()),
                    ],
                )
            })
            .collect();
        sts_obs::sort_json_keys(Json::Obj(vec![
            ("schema".into(), Json::Str(TIMELINE_SCHEMA.into())),
            ("generatedAt".into(), Json::Str(utc_date_string())),
            ("curve".into(), Json::Str(self.curve.clone())),
            ("seed".into(), Json::UInt(self.seed)),
            ("runs".into(), Json::Arr(runs)),
        ]))
    }

    /// Prometheus text exposition of every approach's final cumulative
    /// registry, labelled `{approach,curve}`. `# TYPE`/`# HELP` lines
    /// are deduplicated across approaches so the output stays valid
    /// exposition format.
    pub fn prometheus(&self) -> String {
        let mut seen = std::collections::HashSet::new();
        let mut out = String::new();
        for a in &self.approaches {
            let text = prometheus_text(
                &a.metrics,
                &[
                    ("approach", a.approach.name()),
                    ("curve", self.curve.as_str()),
                ],
            );
            for line in text.lines() {
                if line.starts_with("# ") && !seen.insert(line.to_string()) {
                    continue;
                }
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    /// A single Perfetto (Chrome trace-event) document overlaying all
    /// approaches: each approach's counter tracks and event instants
    /// keep their own `pid` so Perfetto renders them as separate
    /// process groups on the shared virtual-clock axis.
    pub fn perfetto(&self) -> Json {
        let mut events = Vec::new();
        for (i, a) in self.approaches.iter().enumerate() {
            let pid = i as u64 + 1;
            let doc = perfetto_timeline(
                &a.timeline,
                &format!("{} ({})", a.approach.name(), self.curve),
            );
            if let Some(Json::Arr(evs)) = doc.get("traceEvents") {
                for ev in evs {
                    events.push(retag_pid(ev.clone(), pid));
                }
            }
        }
        sts_obs::sort_json_keys(Json::Obj(vec![
            ("displayTimeUnit".into(), Json::Str("ms".into())),
            (
                "otherData".into(),
                Json::Obj(vec![
                    (
                        "schema".into(),
                        Json::Str(format!("{TIMELINE_SCHEMA}+perfetto")),
                    ),
                    ("virtualClock".into(), Json::Bool(true)),
                ]),
            ),
            ("traceEvents".into(), Json::Arr(events)),
        ]))
    }

    /// The cross-approach folded-stacks aggregate: every approach's
    /// flamegraph with the approach name as the root frame, rendered
    /// in the format `flamegraph.pl` / inferno consume.
    pub fn folded(&self) -> String {
        let mut merged = FoldedStacks::new();
        for a in &self.approaches {
            for (stack, nanos) in a.folded.iter() {
                merged.add(&format!("{};{stack}", a.approach.name()), nanos);
            }
        }
        merged.render()
    }

    /// Re-check every invariant the exports rely on: each timeline's
    /// structural validation (window tiling, delta telescoping, SLO
    /// accounting), the JSON round-trip through the schema validator,
    /// and non-empty flamegraphs for runs that executed queries.
    pub fn verify(&self) -> Result<(), String> {
        if self.approaches.is_empty() {
            return Err("no approaches collected".into());
        }
        for a in &self.approaches {
            let name = a.approach.name();
            a.timeline
                .validate()
                .map_err(|e| format!("{name}: timeline invariant: {e}"))?;
            if !a.timeline.is_finished() {
                return Err(format!("{name}: timeline was not finished"));
            }
            let doc = timeline_json(&a.timeline, &[("approach", name)]);
            let text =
                serde_json::to_string(&doc).map_err(|e| format!("{name}: serialize: {e}"))?;
            let parsed = serde_json::from_str(&text)
                .map_err(|e| format!("{name}: round-trip parse: {e}"))?;
            validate_timeline_json(&parsed).map_err(|e| format!("{name}: schema: {e}"))?;
            if a.results > 0 && a.folded.is_empty() {
                return Err(format!("{name}: queries ran but the flamegraph is empty"));
            }
            let merged = a.timeline.merged_counter("ingest.docs");
            if a.timeline.dropped() == 0 && merged != a.docs {
                return Err(format!(
                    "{name}: windowed ingest.docs deltas sum to {merged}, ingested {}",
                    a.docs
                ));
            }
        }
        validate_bundle(&self.bundle_json())
    }
}

/// Validate the bundle document `obs-report --timeline` writes: the
/// schema tag plus every per-approach run under `"runs"`.
pub fn validate_bundle(v: &Json) -> Result<(), String> {
    if v.get("schema").and_then(Json::as_str) != Some(TIMELINE_SCHEMA) {
        return Err(format!("bundle schema tag != {TIMELINE_SCHEMA:?}"));
    }
    let runs = v
        .get("runs")
        .and_then(Json::as_array)
        .ok_or("bundle has no runs array")?;
    if runs.is_empty() {
        return Err("bundle has zero runs".into());
    }
    for (i, run) in runs.iter().enumerate() {
        validate_timeline_json(run).map_err(|e| format!("run {i}: {e}"))?;
    }
    Ok(())
}

fn run_one(
    approach: Approach,
    fleet: &FleetConfig,
    sample_records: &[Record],
    cfg: &TimelineReportConfig,
    harness: &HarnessConfig,
) -> ApproachTimeline {
    let mut store = StStore::new(StoreConfig {
        approach,
        num_shards: harness.num_shards,
        max_chunk_bytes: harness.max_chunk_bytes(),
        data_mbr: crate::dataset_mbr(Dataset::R),
        curve: harness.curve,
        curve_sample: crate::curve_training_sample(sample_records),
        ..Default::default()
    });
    store.set_metrics_registry(Arc::new(Registry::new()));
    store.enable_timeline(
        TimelineConfig {
            window: cfg.window,
            capacity: cfg.capacity,
        },
        Some(cfg.policy()),
    );

    // One endless deterministic query stream, drawn down between
    // batches so queries and ingest interleave on the virtual clock.
    let est_batches = (fleet.records as usize).div_ceil(cfg.batch_size.max(1));
    let queries: Vec<StQuery> =
        small_query_batch(est_batches * cfg.queries_per_batch + 1, harness.seed);
    let mut next_q = 0usize;

    let mut docs = 0u64;
    let mut results = 0u64;
    for batch in FleetStream::new(fleet, cfg.batch_size) {
        docs += store
            .insert_batch(batch.iter().map(Record::to_document))
            .expect("generated records are always ingestible");
        for _ in 0..cfg.queries_per_batch {
            let q = &queries[next_q % queries.len()];
            next_q += 1;
            let (found, report) = store.st_query(q);
            assert!(!report.cluster.partial, "no faults armed, never partial");
            results += found.len() as u64;
        }
    }
    let metrics = store.metrics_registry().snapshot();
    let (timeline, folded) = store
        .finish_timeline()
        .expect("timeline was enabled before the run");
    ApproachTimeline {
        approach,
        timeline,
        folded,
        metrics,
        results,
        docs,
    }
}

/// The windowed `query.total` p99 series as one dashboard line,
/// elided in the middle when the run spans many windows.
fn series_line(tl: &Timeline) -> String {
    let p99s: Vec<String> = tl
        .windows()
        .map(|w| match w.histogram("query.total") {
            Some(h) if !h.is_empty() => format!("{}", h.percentile(0.99).as_micros()),
            _ => "-".into(),
        })
        .collect();
    const SHOWN: usize = 24;
    let series = if p99s.len() > SHOWN {
        let head = p99s[..SHOWN / 2].join(" ");
        let tail = p99s[p99s.len() - SHOWN / 2..].join(" ");
        format!("{head} \u{2026} {tail}")
    } else {
        p99s.join(" ")
    };
    format!("p99/window (\u{00b5}s): {series}\n")
}

/// Event annotations grouped by kind, with the windows they landed in.
fn event_lines(tl: &Timeline) -> String {
    let mut by_kind: std::collections::BTreeMap<&str, Vec<u64>> = Default::default();
    for w in tl.windows() {
        for e in &w.events {
            by_kind.entry(e.kind.as_str()).or_default().push(w.index);
        }
    }
    let mut s = String::new();
    for (kind, mut windows) in by_kind {
        windows.dedup();
        let shown: Vec<String> = windows.iter().take(12).map(|w| format!("w{w}")).collect();
        let ell = if windows.len() > 12 { " \u{2026}" } else { "" };
        s.push_str(&format!(
            "{kind}: \u{00d7}{} ({}{ell})\n",
            windows.len(),
            shown.join(" ")
        ));
    }
    for a in tl.slo().map(|s| s.alerts()).unwrap_or_default() {
        s.push_str(&format!(
            "burn-alert @w{}: short {:.1}x / long {:.1}x over factor {:.1}\n",
            a.window, a.short_burn, a.long_burn, a.rule.factor
        ));
    }
    s
}

fn retag_pid(ev: Json, pid: u64) -> Json {
    match ev {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| {
                    if k == "pid" {
                        (k, Json::UInt(pid))
                    } else {
                        (k, v)
                    }
                })
                .collect(),
        ),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (TimelineReportConfig, HarnessConfig) {
        (
            TimelineReportConfig {
                batch_size: 120,
                queries_per_batch: 4,
                window: Duration::from_micros(500),
                threshold: Duration::from_micros(300),
                ..Default::default()
            },
            HarnessConfig {
                scale: 0.0003,
                num_shards: 4,
                ..Default::default()
            },
        )
    }

    #[test]
    fn live_run_collects_and_verifies() {
        let (cfg, harness) = small();
        let report = TimelineReport::collect(&cfg, &harness);
        assert_eq!(report.approaches.len(), Approach::ALL.len());
        report.verify().expect("all invariants hold");
        for a in &report.approaches {
            assert!(a.docs > 0, "{}: ingested nothing", a.approach.name());
            assert!(!a.timeline.is_empty(), "{}: no windows", a.approach.name());
            let (total, _) = a.timeline.slo().unwrap().totals();
            assert!(total > 0, "{}: SLO saw no queries", a.approach.name());
            assert!(
                a.timeline
                    .windows()
                    .any(|w| w.events.iter().any(|e| e.kind == "ingest.commit")),
                "{}: no ingest.commit annotations",
                a.approach.name()
            );
        }
        let dash = report.dashboard();
        assert!(dash.contains("telemetry timeline"));
        assert!(dash.contains("p99/window"));
        assert!(dash.contains("ingest.commit"));
    }

    #[test]
    fn exports_are_coherent() {
        let (cfg, harness) = small();
        let report = TimelineReport::collect(&cfg, &harness);

        let bundle = report.bundle_json();
        validate_bundle(&bundle).expect("bundle validates");
        let text = serde_json::to_string_pretty(&bundle).unwrap();
        let parsed: Json = serde_json::from_str(&text).unwrap();
        validate_bundle(&parsed).expect("bundle survives a round trip");

        let prom = report.prometheus();
        assert!(prom.contains("sts_router_queries_total"));
        assert!(prom.contains("approach=\"hil\""));
        let type_lines: Vec<&str> = prom.lines().filter(|l| l.starts_with("# TYPE")).collect();
        let mut dedup = type_lines.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(type_lines.len(), dedup.len(), "TYPE lines are unique");

        let perfetto = report.perfetto();
        let evs = perfetto
            .get("traceEvents")
            .and_then(Json::as_array)
            .unwrap();
        let pids: std::collections::BTreeSet<u64> = evs
            .iter()
            .filter_map(|e| e.get("pid").and_then(Json::as_u64))
            .collect();
        assert_eq!(pids.len(), Approach::ALL.len(), "one pid per approach");
        assert!(
            evs.iter()
                .any(|e| { e.get("name").and_then(Json::as_str) == Some("ingest.commit") }),
            "ingest annotations survive the merge"
        );

        let folded = report.folded();
        assert!(folded.contains("hil;stQuery;"));
        assert!(folded.lines().all(|l| l.rsplit_once(' ').is_some()));
    }

    #[test]
    fn broken_bundles_are_rejected() {
        let (cfg, harness) = small();
        let report = TimelineReport::collect(&cfg, &harness);
        let bundle = report.bundle_json();
        // Tamper with the schema tag.
        if let Json::Obj(mut fields) = bundle.clone() {
            for (k, v) in &mut fields {
                if k == "schema" {
                    *v = Json::Str("sts-timeline/0".into());
                }
            }
            assert!(validate_bundle(&Json::Obj(fields)).is_err());
        } else {
            panic!("bundle is an object");
        }
        // Empty runs are rejected too.
        if let Json::Obj(mut fields) = bundle {
            for (k, v) in &mut fields {
                if k == "runs" {
                    *v = Json::Arr(Vec::new());
                }
            }
            assert!(validate_bundle(&Json::Obj(fields)).is_err());
        }
    }
}
