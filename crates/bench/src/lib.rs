//! Shared harness: dataset construction, store deployment, workload
//! execution and table rendering for the reproduction binaries.
//!
//! Binaries:
//! * `tables`  — regenerates Tables 2–8,
//! * `figures` — regenerates Figures 5–14,
//!
//! both accepting `--scale` (fraction of the paper's data volume,
//! default 0.01), `--shards` (default 12) and `--seed`. Results print as
//! aligned text and are archived as JSON under `results/`.

pub mod obsreport;
pub mod timeline_report;

use serde::Serialize;
use std::time::Duration;
use sts_core::{Approach, StQuery, StStore, StoreConfig};
use sts_curve::CurveFamily;
use sts_document::DateTime;
use sts_geo::{GeoPoint, GeoRect};
use sts_workload::fleet::{self, FleetConfig};
use sts_workload::queries::{paper_query, QuerySize};
use sts_workload::synth::{self, SynthConfig};
use sts_workload::Record;

/// Which data set an experiment runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dataset {
    /// Fleet-trajectory set (stand-in for the paper's proprietary R).
    R,
    /// Uniform synthetic set S.
    S,
}

impl Dataset {
    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            Dataset::R => "R",
            Dataset::S => "S",
        }
    }
}

/// Harness-wide knobs.
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Fraction of the paper's record counts (1.0 = full 15.2M R set).
    pub scale: f64,
    /// Shards in the simulated cluster.
    pub num_shards: usize,
    /// Seed for data generation.
    pub seed: u64,
    /// Curve family the curve-based approaches run on (`--curve`).
    pub curve: CurveFamily,
    /// Query repetitions measured (paper: 30 runs, last 10 averaged).
    pub warmup_runs: usize,
    /// Measured repetitions after warm-up.
    pub measured_runs: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale: sts_workload::DEFAULT_SCALE,
            num_shards: 12,
            seed: 0x5137_2021,
            curve: CurveFamily::default(),
            warmup_runs: 2,
            measured_runs: 5,
        }
    }
}

impl HarnessConfig {
    /// Chunk size scaled with data volume so per-shard chunk counts
    /// match the paper's regime (64 MB at full scale).
    pub fn max_chunk_bytes(&self) -> u64 {
        ((64.0 * 1024.0 * 1024.0 * self.scale) as u64).max(64 * 1024)
    }

    /// Record count for the R set at this scale (×`factor` for §5.4).
    pub fn r_records(&self, factor: u32) -> u64 {
        ((sts_workload::PAPER_R_RECORDS as f64 * self.scale) as u64) * u64::from(factor)
    }

    /// Record count for the S set at this scale.
    pub fn s_records(&self) -> u64 {
        2 * self.r_records(1)
    }

    /// Parse `--scale`, `--shards`, `--seed`, `--runs` style CLI args;
    /// returns leftover (unconsumed) args.
    pub fn from_args(args: &[String]) -> (HarnessConfig, Vec<String>) {
        let mut cfg = HarnessConfig::default();
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut grab = |name: &str| -> Option<String> {
                if a == name {
                    it.next().cloned()
                } else {
                    a.strip_prefix(&format!("{name}=")).map(str::to_string)
                }
            };
            if let Some(v) = grab("--scale") {
                cfg.scale = v.parse().expect("--scale takes a float");
            } else if let Some(v) = grab("--shards") {
                cfg.num_shards = v.parse().expect("--shards takes an integer");
            } else if let Some(v) = grab("--seed") {
                cfg.seed = v.parse().expect("--seed takes an integer");
            } else if let Some(v) = grab("--curve") {
                cfg.curve = v
                    .parse()
                    .expect("--curve takes hilbert|zorder|onion|skewgh");
            } else if let Some(v) = grab("--runs") {
                cfg.measured_runs = v.parse().expect("--runs takes an integer");
            } else {
                rest.push(a.clone());
            }
        }
        (cfg, rest)
    }
}

/// Generate a data set's records.
pub fn dataset_records(dataset: Dataset, cfg: &HarnessConfig, scale_factor: u32) -> Vec<Record> {
    match dataset {
        Dataset::R => fleet::generate(&FleetConfig {
            records: cfg.r_records(scale_factor),
            vehicles: 500 * scale_factor,
            seed: cfg.seed,
            ..Default::default()
        }),
        Dataset::S => synth::generate(&SynthConfig {
            records: cfg.s_records(),
            seed: cfg.seed ^ 0x5EED_0002,
            ..Default::default()
        }),
    }
}

/// Dataset start timestamp (both sets start 2018-07-01).
pub fn dataset_start() -> DateTime {
    DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0)
}

/// The data MBR `hil*` fits its curve to, per data set (§5.1).
pub fn dataset_mbr(dataset: Dataset) -> sts_geo::GeoRect {
    match dataset {
        Dataset::R => sts_workload::R_MBR,
        Dataset::S => sts_workload::S_MBR,
    }
}

/// Deterministic curve-fitting sample from the generated records: an
/// even stride capped at 2048 points. The skew-adaptive GeoHash needs a
/// sketch of the spatial distribution, not the full corpus; the
/// analytic families ignore the sample entirely.
pub fn curve_training_sample(records: &[Record]) -> Vec<GeoPoint> {
    let stride = (records.len() / 2048).max(1);
    records
        .iter()
        .step_by(stride)
        .map(|r| GeoPoint::new(r.lon, r.lat))
        .collect()
}

/// Deploy a store for `approach` on `dataset` and load `records`
/// (optionally applying §4.2.4 zones afterwards). The curve-based
/// approaches run on `cfg.curve`, fitted against a stride sample of
/// the records when the family is data-adaptive.
pub fn build_store(
    approach: Approach,
    dataset: Dataset,
    records: &[Record],
    cfg: &HarnessConfig,
    zones: bool,
) -> StStore {
    let mut store = StStore::new(StoreConfig {
        approach,
        num_shards: cfg.num_shards,
        max_chunk_bytes: cfg.max_chunk_bytes(),
        data_mbr: dataset_mbr(dataset),
        curve: cfg.curve,
        curve_sample: curve_training_sample(records),
        ..Default::default()
    });
    store
        .bulk_load(records.iter().map(Record::to_document))
        .expect("generated records are always loadable");
    if zones {
        store.apply_zones();
    }
    store
}

/// One measured cell of a figure: a (approach, query) execution.
#[derive(Clone, Debug, Serialize)]
pub struct Measurement {
    /// Approach name (`bslST`…).
    pub approach: String,
    /// Query label (`Qs1`, `Qb4`, …).
    pub query: String,
    /// Max keys examined on any node (panel a).
    pub keys: u64,
    /// Max documents examined on any node (panel b).
    pub docs: u64,
    /// Nodes accessed (panel c).
    pub nodes: usize,
    /// Execution time in ms — the slowest shard, i.e. cluster latency
    /// (panel d; shards run concurrently on the paper's testbed).
    pub time_ms: f64,
    /// Matching documents.
    pub results: u64,
    /// Hilbert decomposition time in µs (Table 8; 0 for baselines).
    pub hilbert_us: f64,
    /// Hilbert ranges produced.
    pub hilbert_ranges: usize,
    /// Indexes used per shard, deduplicated (Table 7).
    pub indexes_used: Vec<String>,
}

/// Run one query `warmup + measured` times; averages over the measured
/// runs (the paper's §5.1 methodology, scaled down via `HarnessConfig`).
pub fn measure(store: &StStore, label: &str, query: &StQuery, cfg: &HarnessConfig) -> Measurement {
    for _ in 0..cfg.warmup_runs {
        let _ = store.st_query(query);
    }
    let mut time = Duration::ZERO;
    let mut hilbert = Duration::ZERO;
    let mut last = None;
    let runs = cfg.measured_runs.max(1);
    for _ in 0..runs {
        let (_, report) = store.st_query(query);
        time += report.cluster.max_shard_time();
        hilbert += report.hilbert_time;
        last = Some(report);
    }
    let report = last.unwrap();
    let mut indexes: Vec<String> = report
        .cluster
        .indexes_used()
        .into_iter()
        .map(|(_, name)| name)
        .collect();
    indexes.sort();
    indexes.dedup();
    Measurement {
        approach: store.approach().name().to_string(),
        query: label.to_string(),
        keys: report.cluster.max_keys_examined(),
        docs: report.cluster.max_docs_examined(),
        nodes: report.cluster.nodes(),
        time_ms: time.as_secs_f64() * 1_000.0 / runs as f64,
        results: report.cluster.n_returned(),
        hilbert_us: hilbert.as_secs_f64() * 1e6 / runs as f64,
        hilbert_ranges: report.hilbert_ranges,
        indexes_used: indexes,
    }
}

/// Run the four Q₁..Q₄ queries of one size class.
pub fn run_query_ladder(store: &StStore, size: QuerySize, cfg: &HarnessConfig) -> Vec<Measurement> {
    (1..=4)
        .map(|n| {
            let q = paper_query(size, n, dataset_start());
            measure(store, &format!("{}{n}", size.label()), &q, cfg)
        })
        .collect()
}

/// Render measurements as an aligned text table.
pub fn render_table(title: &str, rows: &[Measurement]) -> String {
    let mut s = String::new();
    s.push_str(&format!("\n== {title} ==\n"));
    s.push_str(&format!(
        "{:<8} {:<6} {:>12} {:>12} {:>6} {:>10} {:>10}\n",
        "approach", "query", "maxKeys", "maxDocs", "nodes", "time(ms)", "results"
    ));
    for m in rows {
        s.push_str(&format!(
            "{:<8} {:<6} {:>12} {:>12} {:>6} {:>10.3} {:>10}\n",
            m.approach, m.query, m.keys, m.docs, m.nodes, m.time_ms, m.results
        ));
    }
    s
}

/// Archive measurements as JSON under `results/`.
pub fn save_json(name: &str, value: &impl Serialize) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(path, json);
    }
}

/// Write JSON to an explicit path, creating parent directories.
pub fn save_json_to(path: &std::path::Path, value: &impl Serialize) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let json =
        serde_json::to_string_pretty(value).map_err(|e| std::io::Error::other(e.to_string()))?;
    std::fs::write(path, json + "\n")
}

/// Today's civil date as `YYYY-MM-DD` (UTC), for `BENCH_<date>.json`
/// file names. Uses Howard Hinnant's days-to-civil algorithm — no
/// calendar crate in the offline toolchain.
pub fn utc_date_string() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// The R set's urban hotspot centers the query batches sample around.
const HOTSPOT_CENTERS: [(f64, f64); 5] = [
    (23.7275, 37.9838),
    (22.9446, 40.6401),
    (21.7346, 38.2466),
    (25.1442, 35.3387),
    (22.4191, 39.6390),
];

/// A SplitMix64 draw stream (the workload generators' PRNG).
fn splitmix64_stream(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed;
    move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// City-sized rectangles around the R set's urban hotspots with
/// week-long windows — a plausible concurrent dispatcher workload.
/// Deterministic in `seed` (SplitMix64), shared by the `throughput`
/// and `perfsmoke` binaries.
pub fn small_query_batch(n: usize, seed: u64) -> Vec<StQuery> {
    let mut next = splitmix64_stream(seed);
    (0..n)
        .map(|_| {
            let (clon, clat) = HOTSPOT_CENTERS[(next() % HOTSPOT_CENTERS.len() as u64) as usize];
            let dx = (next() % 1_000) as f64 / 10_000.0 - 0.05;
            let dy = (next() % 1_000) as f64 / 10_000.0 - 0.05;
            let w = 0.02 + (next() % 600) as f64 / 10_000.0;
            let start_day = (next() % 140) as i64;
            let t0 = dataset_start().plus_millis(start_day * 86_400_000);
            StQuery {
                rect: GeoRect::new(clon + dx, clat + dy, clon + dx + w, clat + dy + w),
                t0,
                t1: DateTime::from_millis(t0.millis() + 7 * 86_400_000),
            }
        })
        .collect()
}

/// A *temporally clustered* workload: the same spatially varied
/// hotspot rectangles as [`small_query_batch`], but every query asks
/// about the same hot three-day window. This is the regime that
/// exposes the baselines' load skew: sharding by `date` routes every
/// query to whichever shards own those three days, while Hilbert
/// sharding spreads the spatially varied queries across the cluster
/// (§4.2's locality claim — `obs-report` quantifies it).
pub fn clustered_query_batch(n: usize, seed: u64) -> Vec<StQuery> {
    let mut next = splitmix64_stream(seed);
    let t0 = dataset_start().plus_millis(90 * 86_400_000);
    let t1 = DateTime::from_millis(t0.millis() + 3 * 86_400_000);
    (0..n)
        .map(|_| {
            let (clon, clat) = HOTSPOT_CENTERS[(next() % HOTSPOT_CENTERS.len() as u64) as usize];
            let dx = (next() % 1_000) as f64 / 10_000.0 - 0.05;
            let dy = (next() % 1_000) as f64 / 10_000.0 - 0.05;
            let w = 0.02 + (next() % 600) as f64 / 10_000.0;
            StQuery {
                rect: GeoRect::new(clon + dx, clat + dy, clon + dx + w, clat + dy + w),
                t0,
                t1,
            }
        })
        .collect()
}

/// A Zipf(s=1) draw sequence over `k` distinct shapes: rank `r`
/// (0-based) is drawn with probability ∝ 1/(r+1), so a handful of hot
/// shapes dominate — the repeated-shape regime a result cache exists
/// for. Deterministic in `seed` (SplitMix64), shared by
/// `perfsmoke --router`.
pub fn zipf_sequence(n: usize, k: usize, seed: u64) -> Vec<usize> {
    assert!(k > 0, "need at least one shape");
    let weights: Vec<f64> = (0..k).map(|r| 1.0 / (r + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut next = splitmix64_stream(seed ^ 0x21F0_CAFE);
    (0..n)
        .map(|_| {
            // 53 uniform bits → [0, total).
            let mut u = (next() >> 11) as f64 / (1u64 << 53) as f64 * total;
            for (i, w) in weights.iter().enumerate() {
                if u < *w {
                    return i;
                }
                u -= w;
            }
            k - 1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_core::Approach;
    use sts_workload::queries::QuerySize;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn cli_parsing() {
        let (cfg, rest) =
            HarnessConfig::from_args(&args(&["--scale", "0.5", "--shards=6", "--fig", "13"]));
        assert_eq!(cfg.scale, 0.5);
        assert_eq!(cfg.num_shards, 6);
        assert_eq!(cfg.curve, CurveFamily::Hilbert, "default curve");
        assert_eq!(rest, args(&["--fig", "13"]));
        let (cfg, rest) = HarnessConfig::from_args(&args(&["--curve=onion"]));
        assert_eq!(cfg.curve, CurveFamily::Onion);
        assert!(rest.is_empty());
    }

    #[test]
    fn training_sample_is_strided_and_capped() {
        let cfg = HarnessConfig {
            scale: 0.002,
            ..Default::default()
        };
        let records = dataset_records(Dataset::R, &cfg, 1);
        let sample = curve_training_sample(&records);
        assert!(!sample.is_empty());
        assert!(sample.len() <= 4096, "sample stays bounded");
        assert_eq!(sample, curve_training_sample(&records), "deterministic");
    }

    #[test]
    fn chunk_size_scales_with_data() {
        let full = HarnessConfig {
            scale: 1.0,
            ..Default::default()
        };
        assert_eq!(full.max_chunk_bytes(), 64 * 1024 * 1024);
        let tiny = HarnessConfig {
            scale: 1e-6,
            ..Default::default()
        };
        assert_eq!(tiny.max_chunk_bytes(), 64 * 1024, "floor applies");
    }

    #[test]
    fn record_counts_follow_paper_ratios() {
        let cfg = HarnessConfig {
            scale: 0.01,
            ..Default::default()
        };
        assert_eq!(cfg.s_records(), 2 * cfg.r_records(1));
        assert_eq!(cfg.r_records(4), 4 * cfg.r_records(1));
    }

    #[test]
    fn date_string_is_civil() {
        let d = utc_date_string();
        assert_eq!(d.len(), 10);
        assert_eq!(d.as_bytes()[4], b'-');
        assert_eq!(d.as_bytes()[7], b'-');
        let year: i32 = d[..4].parse().unwrap();
        assert!(year >= 2024, "{d}");
    }

    #[test]
    fn query_batch_is_deterministic() {
        let a = small_query_batch(16, 42);
        let b = small_query_batch(16, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        let c = small_query_batch(16, 43);
        assert_ne!(a, c, "seed changes the batch");
        assert!(a.iter().all(|q| q.t1 > q.t0));
    }

    #[test]
    fn zipf_sequence_is_skewed_and_deterministic() {
        let a = zipf_sequence(4096, 32, 7);
        assert_eq!(a, zipf_sequence(4096, 32, 7));
        assert!(a.iter().all(|&i| i < 32));
        // Rank 0 carries weight 1/H(32) ≈ 0.25 of the mass; rank 31
        // carries ~1/32 of that. The skew must actually show up.
        let hot = a.iter().filter(|&&i| i == 0).count();
        let cold = a.iter().filter(|&&i| i == 31).count();
        assert!(hot > 6 * cold.max(1), "hot {hot} vs cold {cold}");
        assert_ne!(a, zipf_sequence(4096, 32, 8), "seed changes the draw");
    }

    #[test]
    fn measure_small_store_smoke() {
        let cfg = HarnessConfig {
            scale: 0.0005,
            num_shards: 3,
            warmup_runs: 1,
            measured_runs: 2,
            ..Default::default()
        };
        let records = dataset_records(Dataset::R, &cfg, 1);
        assert!(!records.is_empty());
        let store = build_store(Approach::Hil, Dataset::R, &records, &cfg, false);
        let ladder = run_query_ladder(&store, QuerySize::Big, &cfg);
        assert_eq!(ladder.len(), 4);
        assert!(ladder.iter().all(|m| m.nodes >= 1));
        // Q4's month window subsumes more data than Q1's hour.
        assert!(ladder[3].results >= ladder[0].results);
        let table = render_table("smoke", &ladder);
        assert!(table.contains("hil") && table.contains("Qb1"));
    }
}
