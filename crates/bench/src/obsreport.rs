//! Observability collection for the `obs-report` binary.
//!
//! Runs the same fixed-seed workload against every approach in the
//! paper's evaluation matrix with a *private* metrics registry and an
//! always-on slow-query profiler per store, then packages what came
//! back three ways:
//!
//! * [`ObsReport::dashboard`] — a human-readable cluster-health table
//!   (per-shard load skew, hottest chunks, balancer history),
//! * [`ObsReport::to_json`] — the same data machine-readable,
//! * [`ObsReport::slowest`] — the slowest profiled query, whose
//!   [`ProfileEntry::trace`] exports as Chrome trace-event JSON.
//!
//! [`verify_chrome_trace`] is the CI gate: it re-parses an exported
//! trace through the `serde_json` shim and checks the structural
//! invariants Perfetto relies on (one root, complete events with
//! `ts`/`dur`, metadata present).

use crate::{
    build_store, clustered_query_batch, dataset_records, small_query_batch, Dataset, HarnessConfig,
};
use serde::Json;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;
use sts_core::{Approach, HealthSnapshot, ProfileEntry, ProfilerConfig, Skew};
use sts_obs::{Registry, RegistrySnapshot};

/// Knobs for one `obs-report` collection run.
#[derive(Clone, Copy, Debug)]
pub struct ObsReportConfig {
    /// Queries per approach.
    pub queries: usize,
    /// Slow-query profiler threshold (0 profiles everything).
    pub threshold: Duration,
    /// Use the temporally clustered hot-window workload
    /// ([`clustered_query_batch`]) instead of the uniform dispatcher
    /// batch ([`small_query_batch`]).
    pub clustered: bool,
}

impl Default for ObsReportConfig {
    fn default() -> Self {
        ObsReportConfig {
            queries: 40,
            threshold: Duration::ZERO,
            clustered: true,
        }
    }
}

/// Everything one approach's store observed over the workload.
pub struct ApproachObservability {
    /// Which approach ran.
    pub approach: Approach,
    /// The slow-query profile (every query over the threshold).
    pub profiled: Vec<ProfileEntry>,
    /// Cluster-health snapshot after the workload.
    pub health: HealthSnapshot,
    /// The store's private metrics registry, snapshotted.
    pub metrics: RegistrySnapshot,
    /// Total documents the workload returned.
    pub results: u64,
}

/// One full collection run across [`Approach::ALL`].
pub struct ObsReport {
    /// Queries each approach ran.
    pub queries: usize,
    /// Curve family the curve-based approaches ran on.
    pub curve: String,
    /// Whether the clustered hot-window workload was used.
    pub clustered: bool,
    /// Profiler threshold used.
    pub threshold: Duration,
    /// Per-approach observations, in [`Approach::ALL`] order.
    pub approaches: Vec<ApproachObservability>,
}

impl ObsReport {
    /// Build each approach's store on the fixed-seed R set, give it a
    /// private metrics registry and an always-sampling profiler, run
    /// the workload, and snapshot what the store observed.
    pub fn collect(cfg: &ObsReportConfig, harness: &HarnessConfig) -> ObsReport {
        let records = dataset_records(Dataset::R, harness, 1);
        let batch = if cfg.clustered {
            clustered_query_batch(cfg.queries, harness.seed)
        } else {
            small_query_batch(cfg.queries, harness.seed)
        };
        let approaches = Approach::ALL
            .iter()
            .map(|&approach| {
                let mut store = build_store(approach, Dataset::R, &records, harness, false);
                store.set_metrics_registry(Arc::new(Registry::new()));
                store.set_profiler(ProfilerConfig {
                    enabled: true,
                    threshold: cfg.threshold,
                    sample_rate: 1.0,
                    capacity: cfg.queries.max(16),
                });
                let mut results = 0u64;
                for q in &batch {
                    let (docs, _) = store.st_query(q);
                    results += docs.len() as u64;
                }
                ApproachObservability {
                    approach,
                    profiled: store.profiler().entries(),
                    health: store.health_snapshot(),
                    metrics: store.metrics_registry().snapshot(),
                    results,
                }
            })
            .collect();
        ObsReport {
            queries: cfg.queries,
            curve: harness.curve.name().to_string(),
            clustered: cfg.clustered,
            threshold: cfg.threshold,
            approaches,
        }
    }

    /// The slowest profiled query across all approaches (ties broken
    /// by op id, mirroring `Profiler::slowest`).
    pub fn slowest(&self) -> Option<(&ApproachObservability, &ProfileEntry)> {
        self.approaches
            .iter()
            .flat_map(|a| a.profiled.iter().map(move |e| (a, e)))
            .max_by_key(|(_, e)| (e.latency, e.op))
    }

    /// Human-readable cluster-health dashboard.
    pub fn dashboard(&self) -> String {
        let mut out = String::new();
        let workload = if self.clustered {
            "clustered hot-window"
        } else {
            "uniform dispatcher"
        };
        let _ = writeln!(
            out,
            "cluster observability — {} queries/approach ({workload} workload, {} curve), \
             profiler threshold {} µs",
            self.queries,
            self.curve,
            self.threshold.as_micros()
        );
        let _ = writeln!(
            out,
            "{:<9} {:>7} {:>9} {:>8} {:>7} {:>8} {:>10} {:>10} {:>9} {:>12} {:>7}",
            "approach",
            "routed",
            "max/shard",
            "mean",
            "imbal",
            "gini(q)",
            "gini(keys)",
            "gini(docs)",
            "profiled",
            "slowest(µs)",
            "events"
        );
        for a in &self.approaches {
            let q = a.health.queries_skew();
            let slowest = a
                .profiled
                .iter()
                .map(|e| e.latency)
                .max()
                .unwrap_or(Duration::ZERO);
            let _ = writeln!(
                out,
                "{:<9} {:>7} {:>9.0} {:>8.1} {:>7.2} {:>8.3} {:>10.3} {:>10.3} {:>9} {:>12} {:>7}",
                a.approach.name(),
                a.health.total_queries(),
                q.max,
                q.mean,
                q.imbalance,
                q.gini,
                a.health.keys_skew().gini,
                a.health.docs_skew().gini,
                a.profiled.len(),
                slowest.as_micros(),
                a.health.events.len()
            );
        }
        for a in &self.approaches {
            let hot: Vec<String> = a
                .health
                .hottest_chunks(5)
                .iter()
                .filter(|c| c.queries_routed > 0)
                .map(|c| format!("s{}×{}", c.shard, c.queries_routed))
                .collect();
            if !hot.is_empty() {
                let _ = writeln!(
                    out,
                    "hottest chunks — {:<6} {}",
                    a.approach.name(),
                    hot.join("  ")
                );
            }
        }
        for a in &self.approaches {
            let allocs = a.metrics.counter("shard.exec_allocs").unwrap_or(0);
            if let Some(h) = a.metrics.histogram("query.covering_ranges") {
                let (p50, p95, _, _, max) = h.value_percentiles();
                let _ = writeln!(
                    out,
                    "covering ranges — {:<6} n={} p50={} p95={} max={}  exec allocs {}",
                    a.approach.name(),
                    h.count,
                    p50,
                    p95,
                    max,
                    allocs
                );
            } else {
                let _ = writeln!(
                    out,
                    "covering ranges — {:<6} (no decomposition)  exec allocs {}",
                    a.approach.name(),
                    allocs
                );
            }
        }
        if let Some((a, e)) = self.slowest() {
            let _ = writeln!(
                out,
                "slowest query: op {} on {} ({}, {} µs, {} shard(s), {} returned)",
                e.op,
                a.approach.name(),
                e.kind.name(),
                e.latency.as_micros(),
                e.report.cluster.nodes(),
                e.report.cluster.n_returned()
            );
        }
        out
    }

    /// Machine-readable counterpart of [`Self::dashboard`].
    pub fn to_json(&self) -> Json {
        let approaches: Vec<Json> = self
            .approaches
            .iter()
            .map(|a| {
                let shards: Vec<Json> = a
                    .health
                    .shards
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("shard".into(), Json::UInt(s.shard as u64)),
                            ("queriesRouted".into(), Json::UInt(s.queries_routed)),
                            ("keysExamined".into(), Json::UInt(s.keys_examined)),
                            ("docsExamined".into(), Json::UInt(s.docs_examined)),
                            ("docsReturned".into(), Json::UInt(s.docs_returned)),
                            ("docsStored".into(), Json::UInt(s.docs_stored)),
                        ])
                    })
                    .collect();
                let hottest: Vec<Json> = a
                    .health
                    .hottest_chunks(5)
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("shard".into(), Json::UInt(c.shard as u64)),
                            ("queriesRouted".into(), Json::UInt(c.queries_routed)),
                            ("docs".into(), Json::UInt(c.docs)),
                            ("jumbo".into(), Json::Bool(c.jumbo)),
                        ])
                    })
                    .collect();
                let slowest = a
                    .profiled
                    .iter()
                    .map(|e| e.latency)
                    .max()
                    .unwrap_or(Duration::ZERO);
                Json::Obj(vec![
                    ("approach".into(), Json::Str(a.approach.name().into())),
                    ("results".into(), Json::UInt(a.results)),
                    (
                        "routedExecutions".into(),
                        Json::UInt(a.health.total_queries()),
                    ),
                    (
                        "skew".into(),
                        Json::Obj(vec![
                            ("queries".into(), skew_json(&a.health.queries_skew())),
                            ("keysExamined".into(), skew_json(&a.health.keys_skew())),
                            ("docsExamined".into(), skew_json(&a.health.docs_skew())),
                        ]),
                    ),
                    ("shards".into(), Json::Arr(shards)),
                    ("hottestChunks".into(), Json::Arr(hottest)),
                    (
                        "balancerEvents".into(),
                        Json::UInt(a.health.events.len() as u64),
                    ),
                    ("profiled".into(), Json::UInt(a.profiled.len() as u64)),
                    (
                        "slowestMicros".into(),
                        Json::UInt(slowest.as_micros() as u64),
                    ),
                    (
                        "routerQueries".into(),
                        Json::UInt(a.metrics.counter("router.queries").unwrap_or(0)),
                    ),
                    (
                        "execAllocs".into(),
                        Json::UInt(a.metrics.counter("shard.exec_allocs").unwrap_or(0)),
                    ),
                    (
                        "coveringRanges".into(),
                        match a.metrics.histogram("query.covering_ranges") {
                            None => Json::Null,
                            Some(h) => {
                                let (p50, p95, p99, mean, max) = h.value_percentiles();
                                Json::Obj(vec![
                                    ("count".into(), Json::UInt(h.count)),
                                    ("p50".into(), Json::UInt(p50)),
                                    ("p95".into(), Json::UInt(p95)),
                                    ("p99".into(), Json::UInt(p99)),
                                    ("mean".into(), Json::UInt(mean)),
                                    ("max".into(), Json::UInt(max)),
                                ])
                            }
                        },
                    ),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("sts-obsreport/1".into())),
            ("queries".into(), Json::UInt(self.queries as u64)),
            ("curve".into(), Json::Str(self.curve.clone())),
            ("clustered".into(), Json::Bool(self.clustered)),
            (
                "thresholdMicros".into(),
                Json::UInt(self.threshold.as_micros() as u64),
            ),
            ("approaches".into(), Json::Arr(approaches)),
        ]);
        // Canonical form: recursively sorted keys, so exported reports
        // diff cleanly run-to-run and across schema consumers.
        sts_obs::sort_json_keys(doc)
    }
}

fn skew_json(s: &Skew) -> Json {
    Json::Obj(vec![
        ("max".into(), Json::Float(s.max)),
        ("mean".into(), Json::Float(s.mean)),
        ("imbalance".into(), Json::Float(s.imbalance)),
        ("gini".into(), Json::Float(s.gini)),
    ])
}

/// Re-parse an exported Chrome trace through the `serde_json` shim and
/// check the structural invariants `chrome://tracing`/Perfetto rely on:
/// `expected_spans` complete (`ph: "X"`) events carrying `name`, float
/// `ts`/`dur`, `pid`/`tid` and an `args` object; exactly one root span
/// (no `parent` arg); `displayTimeUnit` and the virtual-clock marker
/// present. This is the CI round-trip gate.
pub fn verify_chrome_trace(json: &str, expected_spans: usize) -> Result<(), String> {
    let v = serde_json::from_str(json).map_err(|e| format!("trace JSON does not parse: {e}"))?;
    let events = v
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing `traceEvents` array")?;
    let mut spans = 0usize;
    let mut roots = 0usize;
    for e in events {
        match e.get("ph").and_then(Json::as_str) {
            Some("X") => {}
            Some("M") => continue,
            other => return Err(format!("unexpected event phase {other:?}")),
        }
        spans += 1;
        if e.get("name").and_then(Json::as_str).is_none() {
            return Err("span event missing `name`".into());
        }
        for key in ["ts", "dur"] {
            if e.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("span event missing numeric `{key}`"));
            }
        }
        for key in ["pid", "tid"] {
            if e.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("span event missing integer `{key}`"));
            }
        }
        let args = e.get("args").ok_or("span event missing `args`")?;
        if args.as_object().is_none() {
            return Err("span `args` is not an object".into());
        }
        if args.get("spanId").and_then(Json::as_u64).is_none() {
            return Err("span `args` missing `spanId`".into());
        }
        if args.get("parent").is_none() {
            roots += 1;
        }
    }
    if spans != expected_spans {
        return Err(format!("expected {expected_spans} spans, found {spans}"));
    }
    if roots != 1 {
        return Err(format!("expected exactly one root span, found {roots}"));
    }
    if v.get("displayTimeUnit").and_then(Json::as_str) != Some("ms") {
        return Err("missing `displayTimeUnit: \"ms\"`".into());
    }
    let virtual_clock = v
        .get("otherData")
        .and_then(|o| o.get("virtualClock"))
        .and_then(Json::as_bool);
    if virtual_clock != Some(true) {
        return Err("missing `otherData.virtualClock: true` marker".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_harness(num_shards: usize) -> HarnessConfig {
        HarnessConfig {
            scale: 0.0005,
            num_shards,
            ..Default::default()
        }
    }

    /// Satellite: per-store registries keep approach metrics isolated —
    /// running a workload on one store must not move another store's
    /// counters or histograms (the perfsmoke metric-bleed fix).
    #[test]
    fn metrics_registries_do_not_bleed_across_stores() {
        let cfg = HarnessConfig {
            scale: 0.0002,
            num_shards: 3,
            ..Default::default()
        };
        let records = dataset_records(Dataset::R, &cfg, 1);
        let reg_a = Arc::new(Registry::new());
        let reg_b = Arc::new(Registry::new());
        let mut store_a = build_store(Approach::Hil, Dataset::R, &records, &cfg, false);
        store_a.set_metrics_registry(reg_a.clone());
        let mut store_b = build_store(Approach::BslST, Dataset::R, &records, &cfg, false);
        store_b.set_metrics_registry(reg_b.clone());

        let batch = small_query_batch(10, cfg.seed);
        for q in &batch {
            store_a.st_query(q);
        }
        let snap_a = reg_a.snapshot();
        assert_eq!(snap_a.counter("router.queries"), Some(10));
        let planning = snap_a
            .histogram("shard.planning")
            .expect("store A recorded shard stages");
        assert!(planning.count > 0);
        // Store B's registry saw nothing — including the worker-thread
        // shard histograms.
        let snap_b = reg_b.snapshot();
        assert_eq!(snap_b.counter("router.queries"), None);
        assert!(snap_b.histogram("shard.planning").is_none());

        // And the reverse direction leaves A's totals untouched.
        for q in &batch {
            store_b.st_query(q);
        }
        let snap_a2 = reg_a.snapshot();
        assert_eq!(snap_a2.counter("router.queries"), Some(10));
        assert_eq!(
            snap_a2.histogram("shard.planning").map(|h| h.count),
            Some(planning.count)
        );
        assert_eq!(reg_b.snapshot().counter("router.queries"), Some(10));
    }

    /// The PR's acceptance criteria on a fixed seed: (a) the slowest
    /// profiled query's trace validates and round-trips as Chrome
    /// trace-event JSON, (b) the profiler captured every query with
    /// exact stage breakdowns, (c) the Hilbert methods spread the
    /// clustered workload measurably more evenly than the baselines.
    #[test]
    fn obs_report_meets_acceptance_criteria() {
        let harness = small_harness(6);
        let report = ObsReport::collect(
            &ObsReportConfig {
                queries: 40,
                threshold: Duration::ZERO,
                clustered: true,
            },
            &harness,
        );
        assert_eq!(report.approaches.len(), Approach::ALL.len());

        // (b) Every query lands in the profile, with the entry latency
        // equal to the report's total virtual-clock time and the stage
        // breakdown partitioning each shard's execution exactly.
        for a in &report.approaches {
            assert_eq!(
                a.profiled.len(),
                40,
                "{} profile incomplete",
                a.approach.name()
            );
            let mut routed = 0u64;
            for e in &a.profiled {
                assert_eq!(e.latency, e.report.total_time());
                for s in &e.report.cluster.per_shard {
                    assert_eq!(s.stage_breakdown().total(), s.total_time());
                }
                routed += e.report.cluster.nodes() as u64;
            }
            // Health counters agree with the profiled shard executions.
            assert_eq!(a.health.total_queries(), routed, "{}", a.approach.name());
            assert_eq!(
                a.metrics.counter("router.queries"),
                Some(40),
                "{}",
                a.approach.name()
            );
        }

        // Covering-size visibility: the Hilbert methods record one
        // histogram sample per query; baselines never decompose, so the
        // histogram must not exist on their registries.
        for a in &report.approaches {
            let h = a.metrics.histogram("query.covering_ranges");
            if a.approach.uses_hilbert() {
                let h = h.expect("hilbert approaches record covering sizes");
                assert_eq!(h.count, 40, "{}", a.approach.name());
                let (p50, p95, _, _, max) = h.value_percentiles();
                assert!(p50 >= 1 && p50 <= p95 && p95 <= max);
            } else {
                assert!(h.is_none(), "{} should not decompose", a.approach.name());
            }
        }

        // (a) Slowest trace validates and survives the chrome round-trip.
        let (_, slowest) = report.slowest().expect("profile is non-empty");
        let trace = slowest.trace();
        trace.validate().expect("span nesting invariants");
        verify_chrome_trace(&trace.to_chrome_json(), trace.len()).expect("chrome trace round-trip");

        // (c) Hilbert sharding beats date sharding on shard-load
        // imbalance for the clustered workload.
        let gini = |name: &str| {
            report
                .approaches
                .iter()
                .find(|a| a.approach.name() == name)
                .unwrap()
                .health
                .queries_skew()
                .gini
        };
        for hil in ["hil", "hil*"] {
            for bsl in ["bslST", "bslTS"] {
                assert!(
                    gini(hil) + 0.05 < gini(bsl),
                    "gini({hil}) = {:.3} not measurably below gini({bsl}) = {:.3}",
                    gini(hil),
                    gini(bsl)
                );
            }
        }

        // The machine-readable dump round-trips through the shim too.
        let json = serde_json::to_string_pretty(&report.to_json()).unwrap();
        let parsed = serde_json::from_str(&json).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("sts-obsreport/1")
        );
        assert_eq!(
            parsed
                .get("approaches")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(4)
        );
        let dash = report.dashboard();
        for a in Approach::ALL {
            assert!(dash.contains(a.name()), "dashboard missing {}", a.name());
        }
    }

    /// A hand-broken trace fails the round-trip gate.
    #[test]
    fn verify_chrome_trace_rejects_malformed_input() {
        assert!(verify_chrome_trace("not json", 1).is_err());
        assert!(verify_chrome_trace(r#"{"traceEvents": 3}"#, 0).is_err());
        // Two roots.
        let two_roots = r#"{
            "traceEvents": [
                {"ph":"X","name":"a","ts":0.0,"dur":1.0,"pid":1,"tid":0,"args":{"spanId":0}},
                {"ph":"X","name":"b","ts":0.0,"dur":1.0,"pid":1,"tid":0,"args":{"spanId":1}}
            ],
            "displayTimeUnit": "ms",
            "otherData": {"virtualClock": true}
        }"#;
        let err = verify_chrome_trace(two_roots, 2).unwrap_err();
        assert!(err.contains("one root"), "{err}");
    }
}
