//! Ingest-throughput smoke bench: feed the fleet workload through the
//! batched live-ingest path (`StStore::insert_batch`) with the live
//! balancer enabled, per approach, and report sustained throughput,
//! per-batch latency percentiles and the balancer's activity (splits,
//! two-phase migrations committed/retried/aborted).
//!
//! This is *not* part of the bench-diff gate — ingest throughput is a
//! new axis with its own schema (`sts-ingest/1`); the query-latency
//! gate keeps running on `perfsmoke`, whose bulk-loaded stores are
//! unaffected by idle ingest machinery.
//!
//! ```text
//! cargo run -p sts-bench --release --bin ingestsmoke -- \
//!     --scale 0.002 --batch 500 --json results/INGEST_ci.json \
//!     --timeline-json results/TIMELINE_ingest.json
//! ```
//!
//! With `--timeline-json` the telemetry timeline rides the whole run:
//! windowed metric deltas on the virtual clock, balancer
//! splits/migrations as event annotations, and the post-ingest
//! workload's latencies against the default query SLO. The bundle is
//! validated (`sts-timeline/1`) before writing; a validation failure
//! exits non-zero.

use serde::{Json, Serialize};
use std::time::Instant;
use sts_bench::timeline_report::{validate_bundle, TimelineReportConfig};
use sts_bench::{save_json_to, utc_date_string, Dataset, HarnessConfig};
use sts_core::{Approach, StQuery, StStore, StoreConfig, TimelineConfig};
use sts_document::DateTime;
use sts_obs::{timeline_json, Histogram, Registry, TIMELINE_SCHEMA};
use sts_workload::fleet::{FleetConfig, FleetStream};
use sts_workload::queries::full_workload;
use sts_workload::Record;

/// Bump when the report layout changes incompatibly.
const SCHEMA: &str = "sts-ingest/1";

#[derive(Serialize)]
struct IngestReport {
    schema: String,
    generated_at: String,
    scale: f64,
    shards: usize,
    seed: u64,
    /// Curve family the curve-based approaches ingested under.
    curve: String,
    batch_size: usize,
    records: u64,
    approaches: Vec<ApproachRow>,
}

#[derive(Serialize)]
struct ApproachRow {
    approach: String,
    /// Documents ingested per second over the whole run (staging +
    /// commits + live balancing, the realistic write-path cost).
    ingest_docs_per_sec: f64,
    /// Per-batch commit-to-commit latency percentiles, microseconds.
    batch_p50_us: f64,
    batch_p95_us: f64,
    batch_p99_us: f64,
    /// Total wall time of the ingest run, milliseconds.
    ingest_ms: f64,
    /// Live-balancer activity during ingest.
    chunks: usize,
    splits_observed: usize,
    migrations_committed: u64,
    migration_retries: u64,
    migrations_aborted: u64,
    /// Post-ingest verification: total matches over the paper's query
    /// workload — identical across approaches, or the ingest path
    /// dropped or duplicated records.
    workload_results: u64,
    doc_count: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, rest) = HarnessConfig::from_args(&args);
    let mut batch_size = 500usize;
    let mut json_path: Option<String> = None;
    let mut timeline_path: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| -> Option<String> {
            if a == name {
                it.next().cloned()
            } else {
                a.strip_prefix(&format!("{name}=")).map(str::to_string)
            }
        };
        if let Some(v) = grab("--batch") {
            batch_size = v.parse().expect("--batch takes an integer");
        } else if let Some(v) = grab("--json") {
            json_path = Some(v);
        } else if let Some(v) = grab("--timeline-json") {
            timeline_path = Some(v);
        } else {
            eprintln!("unknown arg: {a}");
            std::process::exit(2);
        }
    }

    let records = cfg.r_records(1);
    let fleet = FleetConfig {
        records,
        vehicles: 500,
        seed: cfg.seed,
        ..Default::default()
    };
    let queries: Vec<StQuery> = full_workload(dataset_start())
        .into_iter()
        .map(|(_, _, q)| q)
        .collect();

    println!(
        "ingest smoke: {records} records, {} shards, batches of {batch_size}, curve {}",
        cfg.num_shards, cfg.curve
    );
    println!(
        "{:<6} {:>12} {:>10} {:>10} {:>10} {:>7} {:>6} {:>6} {:>6} {:>10}",
        "appr",
        "docs/s",
        "p50 µs",
        "p95 µs",
        "p99 µs",
        "chunks",
        "moves",
        "retry",
        "abort",
        "results"
    );

    let mut rows = Vec::new();
    let mut timeline_runs: Vec<Json> = Vec::new();
    let mut expected_results: Option<u64> = None;
    for approach in Approach::ALL {
        let row = run_one(
            approach,
            &fleet,
            &cfg,
            batch_size,
            &queries,
            timeline_path.is_some().then_some(&mut timeline_runs),
        );
        match expected_results {
            None => expected_results = Some(row.workload_results),
            Some(want) => assert_eq!(
                row.workload_results, want,
                "{approach}: ingest path changed the workload's result total"
            ),
        }
        println!(
            "{:<6} {:>12.0} {:>10.1} {:>10.1} {:>10.1} {:>7} {:>6} {:>6} {:>6} {:>10}",
            row.approach,
            row.ingest_docs_per_sec,
            row.batch_p50_us,
            row.batch_p95_us,
            row.batch_p99_us,
            row.chunks,
            row.migrations_committed,
            row.migration_retries,
            row.migrations_aborted,
            row.workload_results,
        );
        rows.push(row);
    }

    let report = IngestReport {
        schema: SCHEMA.to_string(),
        generated_at: utc_date_string(),
        scale: cfg.scale,
        shards: cfg.num_shards,
        seed: cfg.seed,
        curve: cfg.curve.name().to_string(),
        batch_size,
        records,
        approaches: rows,
    };
    let path = json_path.map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::path::PathBuf::from(format!("results/INGEST_{}.json", utc_date_string()))
    });
    save_json_to(&path, &report).expect("write ingest report");
    println!("wrote {}", path.display());

    if let Some(tpath) = timeline_path {
        let bundle = sts_obs::sort_json_keys(Json::Obj(vec![
            ("schema".into(), Json::Str(TIMELINE_SCHEMA.into())),
            ("generatedAt".into(), Json::Str(utc_date_string())),
            ("curve".into(), Json::Str(cfg.curve.name().to_string())),
            ("seed".into(), Json::UInt(cfg.seed)),
            ("runs".into(), Json::Arr(timeline_runs)),
        ]));
        if let Err(e) = validate_bundle(&bundle) {
            eprintln!("ingestsmoke: timeline bundle failed validation: {e}");
            std::process::exit(1);
        }
        let tpath = std::path::PathBuf::from(tpath);
        save_json_to(&tpath, &bundle).expect("write timeline bundle");
        println!("wrote {}", tpath.display());
    }
}

fn dataset_start() -> DateTime {
    DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0)
}

fn run_one(
    approach: Approach,
    fleet: &FleetConfig,
    cfg: &HarnessConfig,
    batch_size: usize,
    queries: &[StQuery],
    timeline_runs: Option<&mut Vec<Json>>,
) -> ApproachRow {
    // Fit data-adaptive curve families on a prefix of the same fleet
    // stream (deterministic in the seed), mirroring a deployment that
    // fits its curve before the live ingest starts.
    let sample_records = sts_workload::fleet::generate(&FleetConfig {
        records: fleet.records.min(2_048),
        ..fleet.clone()
    });
    let mut store = StStore::new(StoreConfig {
        approach,
        num_shards: cfg.num_shards,
        max_chunk_bytes: cfg.max_chunk_bytes(),
        data_mbr: sts_bench::dataset_mbr(Dataset::R),
        curve: cfg.curve,
        curve_sample: sts_bench::curve_training_sample(&sample_records),
        ..Default::default()
    });
    if timeline_runs.is_some() {
        // Private registry + timeline: windowed deltas, balancer event
        // annotations, and the post-ingest workload's query SLO.
        let tcfg = TimelineReportConfig::default();
        store.set_metrics_registry(std::sync::Arc::new(Registry::new()));
        store.enable_timeline(
            TimelineConfig {
                window: tcfg.window,
                capacity: tcfg.capacity,
            },
            Some(tcfg.policy()),
        );
    }
    let chunks0 = store.cluster().chunk_map().len();

    let batch_latency = Histogram::new();
    let mut ingested = 0u64;
    let start = Instant::now();
    for batch in FleetStream::new(fleet, batch_size) {
        let t0 = Instant::now();
        ingested += store
            .insert_batch(batch.iter().map(Record::to_document))
            .expect("generated records are always ingestible");
        batch_latency.record(t0.elapsed());
    }
    let ingest_wall = start.elapsed();

    let mut workload_results = 0u64;
    for q in queries {
        let (docs, report) = store.st_query(q);
        assert!(!report.cluster.partial, "no faults armed, never partial");
        workload_results += docs.len() as u64;
    }

    if let Some(runs) = timeline_runs {
        let (timeline, _folded) = store
            .finish_timeline()
            .expect("timeline was enabled for this run");
        if let Err(e) = timeline.validate() {
            eprintln!("ingestsmoke: {approach}: timeline invariant violated: {e}");
            std::process::exit(1);
        }
        runs.push(timeline_json(
            &timeline,
            &[
                ("approach", approach.name()),
                ("curve", cfg.curve.name()),
                ("dataset", "R"),
            ],
        ));
    }

    let stats = store.cluster().migration_stats();
    let snap = batch_latency.snapshot();
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    ApproachRow {
        approach: approach.to_string(),
        ingest_docs_per_sec: ingested as f64 / ingest_wall.as_secs_f64(),
        batch_p50_us: us(snap.p50),
        batch_p95_us: us(snap.p95),
        batch_p99_us: us(snap.p99),
        ingest_ms: ingest_wall.as_secs_f64() * 1e3,
        chunks: store.cluster().chunk_map().len(),
        splits_observed: store.cluster().chunk_map().len() - chunks0,
        migrations_committed: stats.chunks_moved,
        migration_retries: stats.migration_retries,
        migrations_aborted: stats.migrations_aborted,
        workload_results,
        doc_count: store.doc_count(),
    }
}
