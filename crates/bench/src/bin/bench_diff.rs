//! Compare two `BENCH_*.json` perfsmoke reports and print a
//! human-readable delta table; with `--check`, exit non-zero when the
//! newer report regresses past tolerance (the CI perf gate).
//!
//! ```text
//! bench-diff results/BENCH_baseline.json results/BENCH_ci.json \
//!     --check --max-latency-pct 35 --max-counter-pct 5
//! ```
//!
//! The latency gate applies to p50 **and p95**: the median catches
//! broad slowdowns, the tail catches hot-path regressions that only
//! bite the expensive queries (the multi-range descents this repo's
//! batched cursor optimises are exactly tail work). p99 and the mean
//! stay informational — at smoke scale one or two scheduler-noise
//! outliers can drag them tens of percent.
//! The router warm-path key (`warm_p50_us`, the cache-hit serve path)
//! gates separately at `--max-warm-latency-pct` (default 75%): its
//! absolute values are lookup-scale, so the ordinary tolerance would
//! gate on scheduler noise. Baselines written before the router tier
//! carry no warm keys — those rows are skipped until the baseline is
//! refreshed with a current perfsmoke.
//! Counter gates apply to keys/docs examined, mean nodes and the
//! Hilbert covering-range total — those are deterministic at a fixed
//! seed, so the tolerance is tight. `results` must match exactly: a
//! drift there is a correctness bug, not a perf regression.
//! Improvements never fail the gate.

use serde::Json;

const LATENCY_METRICS: [&str; 2] = ["p50_us", "p95_us"];
/// Router warm-path keys: the cache-hit serve path measured by the
/// perfsmoke warm window. Gated separately (`--max-warm-latency-pct`,
/// default 75%) because the absolute values are lookup-scale — a
/// fraction of a microsecond of scheduler noise is a large percentage
/// there. Reports written before the router tier carry no warm keys;
/// those rows print "(missing — skipped)" and pass, so an old
/// committed baseline keeps working until it is refreshed.
const WARM_METRICS: [&str; 1] = ["warm_p50_us"];
const INFO_METRICS: [&str; 4] = ["mean_us", "p99_us", "warm_p95_us", "cache_hit_ratio"];
const COUNTER_METRICS: [&str; 6] = [
    "max_keys_examined",
    "max_docs_examined",
    "total_keys_examined",
    "total_docs_examined",
    "mean_nodes",
    "covering_ranges_total",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut check = false;
    let mut max_latency_pct = 35.0f64;
    let mut max_warm_latency_pct = 75.0f64;
    let mut max_counter_pct = 5.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| -> Option<String> {
            if a == name {
                it.next().cloned()
            } else {
                a.strip_prefix(&format!("{name}=")).map(str::to_string)
            }
        };
        if a == "--check" {
            check = true;
        } else if let Some(v) = grab("--max-latency-pct") {
            max_latency_pct = v.parse().expect("--max-latency-pct takes a number");
        } else if let Some(v) = grab("--max-warm-latency-pct") {
            max_warm_latency_pct = v.parse().expect("--max-warm-latency-pct takes a number");
        } else if let Some(v) = grab("--max-counter-pct") {
            max_counter_pct = v.parse().expect("--max-counter-pct takes a number");
        } else if a.starts_with("--") {
            eprintln!("bench-diff: unknown flag {a}");
            std::process::exit(2);
        } else {
            files.push(a.clone());
        }
    }
    if files.len() != 2 {
        eprintln!("usage: bench-diff <baseline.json> <current.json> [--check] [--max-latency-pct N] [--max-warm-latency-pct N] [--max-counter-pct N]");
        std::process::exit(2);
    }
    let baseline = load(&files[0]);
    let current = load(&files[1]);
    for (label, report) in [("baseline", &baseline), ("current", &current)] {
        let schema = report.get("schema").and_then(Json::as_str).unwrap_or("?");
        if schema != "sts-bench/1" {
            eprintln!(
                "bench-diff: {label} {} has schema {schema:?}, expected \"sts-bench/1\"",
                files[0]
            );
            std::process::exit(2);
        }
    }

    let mut failures = 0usize;
    println!(
        "{:<14} {:<22} {:>14} {:>14} {:>9}  verdict",
        "approach", "metric", "baseline", "current", "delta"
    );
    for cur in rows(&current) {
        let approach = cur.get("approach").and_then(Json::as_str).unwrap_or("?");
        let curve = row_curve(cur);
        // Rows are keyed on (approach, curve): reports produced before
        // the curve field existed default to the approach's only
        // possible curve, so an old committed baseline keeps matching
        // a new report (and vice versa) without a refresh.
        let name = format!("{approach}/{curve}");
        let Some(base) = rows(&baseline).into_iter().find(|r| {
            r.get("approach").and_then(Json::as_str) == Some(approach) && row_curve(r) == curve
        }) else {
            println!(
                "{name:<14} (not in baseline — skipped; refresh with:\n\
                 \x20   cargo run -p sts-bench --release --bin perfsmoke -- \\\n\
                 \x20       --scale 0.002 --queries 120 --curve {curve} --json {})",
                files[0]
            );
            continue;
        };
        for m in LATENCY_METRICS {
            failures += compare(&name, m, base, cur, Some(max_latency_pct));
        }
        for m in WARM_METRICS {
            failures += compare(&name, m, base, cur, Some(max_warm_latency_pct));
        }
        for m in INFO_METRICS {
            failures += compare(&name, m, base, cur, None);
        }
        for m in COUNTER_METRICS {
            failures += compare(&name, m, base, cur, Some(max_counter_pct));
        }
        // Exact-match correctness anchor.
        let (b, c) = (
            base.get("results").and_then(Json::as_u64),
            cur.get("results").and_then(Json::as_u64),
        );
        let ok = b == c && b.is_some();
        println!(
            "{:<14} {:<22} {:>14} {:>14} {:>9}  {}",
            name,
            "results",
            b.map_or("?".into(), |v| v.to_string()),
            c.map_or("?".into(), |v| v.to_string()),
            "-",
            if ok {
                "ok (exact)"
            } else {
                "FAIL: result drift"
            }
        );
        if !ok {
            failures += 1;
        }
    }

    if failures > 0 {
        println!("\n{failures} metric(s) regressed past tolerance (latency {max_latency_pct}%, warm {max_warm_latency_pct}%, counters {max_counter_pct}%).");
        println!(
            "if the regression is intended (e.g. an accepted perf trade-off or a counter\n\
             semantics change), refresh the committed baseline and commit it:\n\
             \n\
             \x20   cargo run -p sts-bench --release --bin perfsmoke -- \\\n\
             \x20       --scale 0.002 --queries 120 --json {}\n\
             \n\
             (baselines are keyed per curve; a baseline recorded on a non-default curve\n\
             needs the matching `--curve <hilbert|zorder|onion|skewgh>` on the refresh)\n\
             \n\
             otherwise, the current change made the store slower — investigate before merging.",
            files[0]
        );
        if check {
            std::process::exit(1);
        }
        println!("(informational run: pass --check to gate)");
    } else {
        println!("\nno regressions past tolerance (latency {max_latency_pct}%, warm {max_warm_latency_pct}%, counters {max_counter_pct}%).");
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench-diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("bench-diff: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn rows(report: &Json) -> Vec<&Json> {
    report
        .get("approaches")
        .and_then(Json::as_array)
        .map(|a| a.iter().collect())
        .unwrap_or_default()
}

/// The curve key of a report row. Reports written before the curve
/// zoo carry no `curve` field; they can only have run the approach's
/// default — Hilbert for the curve-based approaches, none for the
/// baselines — so that is what a missing field means.
fn row_curve(row: &Json) -> String {
    if let Some(c) = row.get("curve").and_then(Json::as_str) {
        return c.to_string();
    }
    let approach = row.get("approach").and_then(Json::as_str).unwrap_or("?");
    if matches!(approach, "hil" | "hil*") {
        "hilbert".to_string()
    } else {
        "none".to_string()
    }
}

/// Print one metric row; return 1 if it regressed past `gate_pct`.
fn compare(approach: &str, metric: &str, base: &Json, cur: &Json, gate_pct: Option<f64>) -> usize {
    let (Some(b), Some(c)) = (
        base.get(metric).and_then(Json::as_f64),
        cur.get(metric).and_then(Json::as_f64),
    ) else {
        println!("{approach:<14} {metric:<22} (missing — skipped)");
        return 0;
    };
    let delta_pct = if b.abs() < f64::EPSILON {
        if c.abs() < f64::EPSILON {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (c - b) / b * 100.0
    };
    let (verdict, failed) = match gate_pct {
        None => ("info".to_string(), false),
        Some(tol) if delta_pct > tol => (format!("FAIL: +{delta_pct:.1}% > {tol}%"), true),
        Some(_) if delta_pct < 0.0 => ("ok (improved)".to_string(), false),
        Some(_) => ("ok".to_string(), false),
    };
    println!(
        "{:<14} {:<22} {:>14.1} {:>14.1} {:>+8.1}%  {}",
        approach, metric, b, c, delta_pct, verdict
    );
    usize::from(failed)
}
