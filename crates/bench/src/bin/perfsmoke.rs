//! Machine-readable perf smoke test: a small fixed-seed workload run
//! across all four paper approaches, emitting schema-versioned JSON
//! that CI diffs against a committed baseline (`bench-diff`).
//!
//! Per approach we report latency percentiles (p50/p95/p99 from an
//! HDR-style histogram of per-query cluster latency), throughput over
//! the query window alone (build time is measured separately and never
//! pollutes it), and the paper's work counters (keys/docs examined,
//! nodes touched).
//!
//! ```text
//! cargo run -p sts-bench --release --bin perfsmoke -- \
//!     --scale 0.002 --queries 40 --json results/BENCH_baseline.json
//! ```
//!
//! Defaults write `results/BENCH_<date>.json`.
//!
//! With `--curve-matrix` the binary instead scores every
//! (approach × curve family) cell of the zoo on the clustered
//! hot-window workload — covering-range counts, keys examined,
//! queries-routed Gini and latency percentiles — emitting
//! schema-versioned `sts-curvematrix/1` JSON and exiting non-zero if
//! any cell's result count disagrees with the in-binary full scan.
//!
//! With `--router` it instead runs the repeated-shape Zipf workload
//! against the full router tier (plan + result caches, admission
//! control): per (approach × curve) cell it reports cold/warm
//! latency percentiles, hit ratio, executor steal counts and the
//! overload-drill shed counts as schema-versioned `sts-router/1`
//! JSON, exiting non-zero when exactness, the ≥ 0.9 warm hit ratio or
//! the ≥ 5× hil/hil* warm speedup gate fails.

use serde::Serialize;
use std::time::{Duration, Instant};
use sts_bench::{
    build_store, clustered_query_batch, dataset_records, save_json_to, small_query_batch,
    utc_date_string, zipf_sequence, Dataset, HarnessConfig,
};
use sts_core::{AdmissionConfig, Approach, RouterConfig};
use sts_curve::CurveFamily;
use sts_obs::Histogram;

/// Bump when the report layout changes incompatibly.
const SCHEMA: &str = "sts-bench/1";

#[derive(Serialize)]
struct BenchReport {
    schema: String,
    generated_at: String,
    scale: f64,
    shards: usize,
    seed: u64,
    queries: usize,
    records: u64,
    approaches: Vec<ApproachRow>,
}

#[derive(Serialize)]
struct ApproachRow {
    approach: String,
    /// Curve family the approach ran on (`"none"` for the baselines,
    /// which have no curve). bench-diff keys rows on (approach, curve).
    curve: String,
    /// Latency percentiles of per-query cluster latency (slowest shard
    /// bounds each query), in microseconds.
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mean_us: f64,
    max_us: f64,
    /// Queries per second over the measured query window.
    throughput_qps: f64,
    /// Store construction (bulk load), kept apart from the query window.
    build_ms: f64,
    /// §5.1 work counters, aggregated over the whole batch.
    max_keys_examined: u64,
    max_docs_examined: u64,
    total_keys_examined: u64,
    total_docs_examined: u64,
    mean_nodes: f64,
    /// Total matching documents across the batch (a correctness anchor:
    /// this must never drift between runs at the same seed).
    results: u64,
    /// Hilbert decomposition totals (zero for the baselines).
    covering_us_total: f64,
    covering_ranges_total: usize,
    /// Router warm path: the same batch re-run with the result-page
    /// cache enabled, after one priming pass. Latency is end-to-end
    /// wall per query (min over `--runs`), since a cache hit never
    /// touches a shard. bench-diff gates `warm_p50_us` with its own
    /// (wider) tolerance — absolute values are lookup-scale.
    warm_p50_us: f64,
    warm_p95_us: f64,
    /// Result-cache hit ratio over the measured warm window (priming
    /// excluded). Informational in bench-diff; `perfsmoke --router`
    /// gates it.
    cache_hit_ratio: f64,
    /// Range-budget ablation (Hilbert methods only): the same batch
    /// re-run at budgets 16/32/64/128 against the already-loaded store,
    /// showing the seeks-vs-false-positives trade-off the default
    /// budget sits on. Empty for the baselines.
    budget_ablation: Vec<AblationRow>,
}

/// One ablation point: the workload at one covering-range budget.
#[derive(Clone, Serialize)]
struct AblationRow {
    budget: u64,
    p50_us: f64,
    covering_ranges_total: usize,
    total_keys_examined: u64,
    /// Correctness anchor: identical across budgets at a fixed seed.
    results: u64,
}

/// Budgets ablated per Hilbert approach (the default is 64).
const ABLATION_BUDGETS: [usize; 4] = [16, 32, 64, 128];

/// Standalone ablation artifact (`--ablation-json`), the CI upload.
#[derive(Serialize)]
struct AblationReport {
    schema: String,
    generated_at: String,
    scale: f64,
    seed: u64,
    queries: usize,
    approaches: Vec<AblationApproach>,
}

#[derive(Serialize)]
struct AblationApproach {
    approach: String,
    rows: Vec<AblationRow>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, rest) = HarnessConfig::from_args(&args);
    let mut n_queries = 120usize;
    let mut json_path: Option<String> = None;
    let mut ablation_path: Option<String> = None;
    let mut curve_matrix = false;
    let mut router = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| -> Option<String> {
            if a == name {
                it.next().cloned()
            } else {
                a.strip_prefix(&format!("{name}=")).map(str::to_string)
            }
        };
        if let Some(v) = grab("--queries") {
            n_queries = v.parse().expect("--queries takes an integer");
        } else if let Some(v) = grab("--json") {
            json_path = Some(v);
        } else if let Some(v) = grab("--ablation-json") {
            ablation_path = Some(v);
        } else if a == "--curve-matrix" {
            curve_matrix = true;
        } else if a == "--router" {
            router = true;
        } else {
            eprintln!("perfsmoke: unknown argument {a}");
            std::process::exit(2);
        }
    }
    if curve_matrix {
        let path = json_path.unwrap_or_else(|| "results/CURVE_matrix.json".to_string());
        std::process::exit(run_matrix(&cfg, n_queries, &path));
    }
    if router {
        let path = json_path.unwrap_or_else(|| "results/ROUTER_smoke.json".to_string());
        std::process::exit(run_router(&cfg, n_queries, &path));
    }
    let path = json_path.unwrap_or_else(|| format!("results/BENCH_{}.json", utc_date_string()));
    eprintln!(
        "# perfsmoke: scale={} shards={} seed={:#x} queries={n_queries} -> {path}",
        cfg.scale, cfg.num_shards, cfg.seed
    );

    let records = dataset_records(Dataset::R, &cfg, 1);
    let queries = small_query_batch(n_queries, cfg.seed);
    let mut approaches = Vec::new();
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>9} {:>10} {:>10} {:>8}",
        "approach",
        "p50(us)",
        "p95(us)",
        "p99(us)",
        "mean(us)",
        "qps",
        "maxKeys",
        "maxDocs",
        "results"
    );
    for approach in Approach::ALL {
        approaches.push(run_approach(approach, &records, &queries, &cfg));
    }

    let report = BenchReport {
        schema: SCHEMA.to_string(),
        generated_at: utc_date_string(),
        scale: cfg.scale,
        shards: cfg.num_shards,
        seed: cfg.seed,
        queries: n_queries,
        records: records.len() as u64,
        approaches,
    };
    if let Err(e) = save_json_to(std::path::Path::new(&path), &report) {
        eprintln!("perfsmoke: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("# wrote {path}");

    if let Some(apath) = ablation_path {
        let ablation = AblationReport {
            schema: "sts-bench-ablation/1".to_string(),
            generated_at: utc_date_string(),
            scale: cfg.scale,
            seed: cfg.seed,
            queries: n_queries,
            approaches: report
                .approaches
                .iter()
                .filter(|a| !a.budget_ablation.is_empty())
                .map(|a| AblationApproach {
                    approach: a.approach.clone(),
                    rows: a.budget_ablation.clone(),
                })
                .collect(),
        };
        if let Err(e) = save_json_to(std::path::Path::new(&apath), &ablation) {
            eprintln!("perfsmoke: cannot write {apath}: {e}");
            std::process::exit(1);
        }
        eprintln!("# wrote {apath}");
    }
}

/// The curve label a report row carries: the configured family for the
/// curve-based approaches, `"none"` for the baselines (which have no
/// curve at all).
fn curve_label(approach: Approach, curve: CurveFamily) -> String {
    if approach.uses_hilbert() {
        curve.name().to_string()
    } else {
        "none".to_string()
    }
}

// ------------------------------------------------------- curve matrix

/// Bump when the matrix layout changes incompatibly.
const MATRIX_SCHEMA: &str = "sts-curvematrix/1";

#[derive(Serialize)]
struct MatrixReport {
    schema: String,
    generated_at: String,
    scale: f64,
    shards: usize,
    seed: u64,
    queries: usize,
    records: u64,
    /// Which workload the matrix scored (always the clustered
    /// hot-window batch — the regime that separates the curves).
    workload: String,
    cells: Vec<MatrixCell>,
}

/// One (approach × curve) cell of the clustering-quality matrix.
#[derive(Serialize)]
struct MatrixCell {
    approach: String,
    curve: String,
    p50_us: f64,
    p95_us: f64,
    /// Covering ranges the decomposition produced over the batch — the
    /// paper's clustering-quality proxy (fewer ranges = better
    /// locality at equal budget).
    covering_ranges_total: usize,
    /// Index keys examined across all shards — false-positive work.
    total_keys_examined: u64,
    /// Gini of queries routed per shard — load dispersion under the
    /// hot temporal window (lower = more even).
    queries_routed_gini: f64,
    results: u64,
    /// Every query's result count matched the in-binary full scan.
    exact: bool,
}

/// Score every (approach × curve) cell on the clustered hot-window
/// workload and write the `sts-curvematrix/1` artifact. Returns the
/// process exit code: non-zero when any cell's result count disagrees
/// with the full scan (the CI correctness gate).
fn run_matrix(cfg: &HarnessConfig, n_queries: usize, path: &str) -> i32 {
    eprintln!(
        "# perfsmoke --curve-matrix: scale={} shards={} seed={:#x} queries={n_queries} -> {path}",
        cfg.scale, cfg.num_shards, cfg.seed
    );
    let records = dataset_records(Dataset::R, cfg, 1);
    let queries = clustered_query_batch(n_queries, cfg.seed);
    // Ground truth by brute force over the raw records — independent of
    // every index, curve and routing layer under test.
    let expected: Vec<u64> = queries
        .iter()
        .map(|q| {
            records
                .iter()
                .filter(|r| q.matches(r.lon, r.lat, r.date))
                .count() as u64
        })
        .collect();

    let mut cells = Vec::new();
    println!(
        "{:<8} {:<8} {:>10} {:>10} {:>8} {:>12} {:>8} {:>9} {:>6}",
        "approach",
        "curve",
        "p50(us)",
        "p95(us)",
        "ranges",
        "totalKeys",
        "gini(q)",
        "results",
        "exact"
    );
    for approach in Approach::ALL {
        let families: &[CurveFamily] = if approach.uses_hilbert() {
            &CurveFamily::ALL
        } else {
            // The baselines have no curve: one cell each, for scale
            // reference against the curve-based rows.
            &[CurveFamily::Hilbert]
        };
        for &family in families {
            let mut run_cfg = *cfg;
            run_cfg.curve = family;
            cells.push(run_matrix_cell(
                approach, family, &records, &queries, &expected, &run_cfg,
            ));
        }
    }

    let all_exact = cells.iter().all(|c| c.exact);
    let report = MatrixReport {
        schema: MATRIX_SCHEMA.to_string(),
        generated_at: utc_date_string(),
        scale: cfg.scale,
        shards: cfg.num_shards,
        seed: cfg.seed,
        queries: n_queries,
        records: records.len() as u64,
        workload: "clustered hot-window".to_string(),
        cells,
    };
    if let Err(e) = save_json_to(std::path::Path::new(path), &report) {
        eprintln!("perfsmoke: cannot write {path}: {e}");
        return 1;
    }
    eprintln!("# wrote {path}");
    if !all_exact {
        eprintln!("perfsmoke: result-count drift against the full scan — see the `exact` column");
        return 1;
    }
    0
}

fn run_matrix_cell(
    approach: Approach,
    family: CurveFamily,
    records: &[sts_workload::Record],
    queries: &[sts_core::StQuery],
    expected: &[u64],
    cfg: &HarnessConfig,
) -> MatrixCell {
    let mut store = build_store(approach, Dataset::R, records, cfg, false);
    store.set_metrics_registry(std::sync::Arc::new(sts_obs::Registry::new()));
    for q in queries {
        let _ = store.st_query(q);
    }
    let latency = Histogram::new();
    let mut ranges = 0usize;
    let mut keys = 0u64;
    let mut results = 0u64;
    let mut exact = true;
    let runs = cfg.measured_runs.max(1);
    for (q, &want) in queries.iter().zip(expected) {
        let mut best = None;
        let mut report = None;
        for _ in 0..runs {
            let (_, r) = store.st_query(q);
            let lat = r.cluster_latency();
            best = Some(best.map_or(lat, |b: std::time::Duration| b.min(lat)));
            report = Some(r);
        }
        let (best, report) = (best.expect("runs >= 1"), report.expect("runs >= 1"));
        latency.record(best);
        ranges += report.hilbert_ranges;
        keys += report.cluster.total_keys_examined();
        results += report.cluster.n_returned();
        exact &= report.cluster.n_returned() == want && !report.cluster.partial;
    }
    // Gini over the whole run (warm-up included): the batch repeats
    // identically, so per-shard routing counts scale uniformly and the
    // Gini coefficient is unaffected.
    let gini = store.health_snapshot().queries_skew().gini;
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    let snap = latency.snapshot();
    let cell = MatrixCell {
        approach: approach.name().to_string(),
        curve: curve_label(approach, family),
        p50_us: us(snap.p50),
        p95_us: us(snap.p95),
        covering_ranges_total: ranges,
        total_keys_examined: keys,
        queries_routed_gini: gini,
        results,
        exact,
    };
    println!(
        "{:<8} {:<8} {:>10.1} {:>10.1} {:>8} {:>12} {:>8.3} {:>9} {:>6}",
        cell.approach,
        cell.curve,
        cell.p50_us,
        cell.p95_us,
        cell.covering_ranges_total,
        cell.total_keys_examined,
        cell.queries_routed_gini,
        cell.results,
        cell.exact
    );
    cell
}

// ------------------------------------------------------- router smoke

/// Bump when the router report layout changes incompatibly.
const ROUTER_SCHEMA: &str = "sts-router/1";

/// Distinct query shapes the Zipf draw repeats over.
const ROUTER_SHAPES: usize = 32;

#[derive(Serialize)]
struct RouterSmokeReport {
    schema: String,
    generated_at: String,
    scale: f64,
    shards: usize,
    seed: u64,
    /// Distinct query shapes in the pool.
    shapes: usize,
    /// Zipf(s=1) draws over the pool (the measured warm window).
    queries: usize,
    records: u64,
    workload: String,
    cells: Vec<RouterCell>,
    /// The load-shedding drill: one tenant with a tiny frozen token
    /// bucket hammers the store; the excess must shed, other tenants
    /// must keep flowing.
    overload: OverloadSummary,
}

/// One (approach × curve) cell of the repeated-shape workload.
#[derive(Serialize)]
struct RouterCell {
    approach: String,
    curve: String,
    /// First execution of each shape (plan + result miss), end-to-end
    /// wall in microseconds.
    cold_p50_us: f64,
    cold_p95_us: f64,
    /// Steady-state Zipf window with the result cache primed.
    warm_p50_us: f64,
    warm_p95_us: f64,
    /// cold_p50 / warm_p50 — the headline cache win.
    speedup_p50: f64,
    /// Result-cache hit ratio over the warm window (gate: ≥ 0.9).
    hit_ratio: f64,
    plan_cache_hits: u64,
    result_cache_hits: u64,
    result_cache_misses: u64,
    executor_tasks: u64,
    executor_steals: u64,
    /// Matching documents across the warm window (exactness anchor).
    results: u64,
    /// Every execution's result count matched the in-binary full scan.
    exact: bool,
}

#[derive(Serialize)]
struct OverloadSummary {
    attempted: u64,
    admitted: u64,
    sheds: u64,
    other_tenant_admitted: bool,
}

/// Score every (approach × curve) cell on the repeated-shape Zipf
/// workload with the full router tier enabled, then run the overload
/// drill. Returns the process exit code: non-zero when any cell is
/// inexact, any cell's warm hit ratio is below 0.9, or a curve-based
/// cell's warm p50 is not at least 5× faster than cold (the CI
/// `router-perf` gates).
fn run_router(cfg: &HarnessConfig, n_queries: usize, path: &str) -> i32 {
    eprintln!(
        "# perfsmoke --router: scale={} shards={} seed={:#x} shapes={ROUTER_SHAPES} \
         queries={n_queries} -> {path}",
        cfg.scale, cfg.num_shards, cfg.seed
    );
    let records = dataset_records(Dataset::R, cfg, 1);
    let shapes = small_query_batch(ROUTER_SHAPES, cfg.seed);
    let seq = zipf_sequence(n_queries, ROUTER_SHAPES, cfg.seed);
    let expected: Vec<u64> = shapes
        .iter()
        .map(|q| {
            records
                .iter()
                .filter(|r| q.matches(r.lon, r.lat, r.date))
                .count() as u64
        })
        .collect();

    let mut cells = Vec::new();
    println!(
        "{:<8} {:<8} {:>10} {:>10} {:>10} {:>9} {:>8} {:>8} {:>9} {:>6}",
        "approach",
        "curve",
        "cold50(us)",
        "warm50(us)",
        "warm95(us)",
        "speedup",
        "hitrate",
        "steals",
        "results",
        "exact"
    );
    for approach in Approach::ALL {
        let families: &[CurveFamily] = if approach.uses_hilbert() {
            &CurveFamily::ALL
        } else {
            &[CurveFamily::Hilbert]
        };
        for &family in families {
            let mut run_cfg = *cfg;
            run_cfg.curve = family;
            cells.push(run_router_cell(
                approach, family, &records, &shapes, &seq, &expected, &run_cfg,
            ));
        }
    }

    let overload = run_overload_drill(&records, cfg);

    let mut failures = Vec::new();
    for c in &cells {
        let name = format!("{}/{}", c.approach, c.curve);
        if !c.exact {
            failures.push(format!("{name}: result-count drift against the full scan"));
        }
        if c.hit_ratio < 0.9 {
            failures.push(format!("{name}: warm hit ratio {:.3} < 0.9", c.hit_ratio));
        }
        // The 5× warm-path gate applies to the curve-based approaches —
        // the production hot path this tier exists for. The baselines'
        // cold queries are single-shard date lookups that can already
        // be lookup-scale, so a ratio gate there measures noise.
        if matches!(c.approach.as_str(), "hil" | "hil*") && c.speedup_p50 < 5.0 {
            failures.push(format!(
                "{name}: warm p50 only {:.1}× faster than cold (< 5×)",
                c.speedup_p50
            ));
        }
    }
    if overload.sheds == 0 || overload.admitted == 0 || !overload.other_tenant_admitted {
        failures.push(format!(
            "overload drill: admitted={} sheds={} other_tenant_admitted={} \
             (need all three non-degenerate)",
            overload.admitted, overload.sheds, overload.other_tenant_admitted
        ));
    }

    let report = RouterSmokeReport {
        schema: ROUTER_SCHEMA.to_string(),
        generated_at: utc_date_string(),
        scale: cfg.scale,
        shards: cfg.num_shards,
        seed: cfg.seed,
        shapes: ROUTER_SHAPES,
        queries: n_queries,
        records: records.len() as u64,
        workload: "zipf(s=1) repeated-shape over hotspot rectangles".to_string(),
        cells,
        overload,
    };
    if let Err(e) = save_json_to(std::path::Path::new(path), &report) {
        eprintln!("perfsmoke: cannot write {path}: {e}");
        return 1;
    }
    eprintln!("# wrote {path}");
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("perfsmoke --router GATE FAIL: {f}");
        }
        return 1;
    }
    0
}

fn run_router_cell(
    approach: Approach,
    family: CurveFamily,
    records: &[sts_workload::Record],
    shapes: &[sts_core::StQuery],
    seq: &[usize],
    expected: &[u64],
    cfg: &HarnessConfig,
) -> RouterCell {
    let mut store = build_store(approach, Dataset::R, records, cfg, false);
    store.set_metrics_registry(std::sync::Arc::new(sts_obs::Registry::new()));
    store.set_router_config(RouterConfig {
        result_cache_entries: 1024,
        result_cache_max_docs: 1 << 20,
        ..RouterConfig::default()
    });

    // Cold window: the first execution of every shape pays the full
    // plan + execute + fill cost. End-to-end wall, since that is what
    // the warm path is compared against.
    let cold = Histogram::new();
    let mut exact = true;
    for (q, &want) in shapes.iter().zip(expected) {
        let (docs, r) = store.st_query(q);
        cold.record(r.cluster.wall);
        exact &= docs.len() as u64 == want && !r.cluster.partial;
    }

    // Warm window: the Zipf draw over the primed shapes.
    let c0 = store.result_cache_counters();
    let warm = Histogram::new();
    let mut results = 0u64;
    for &idx in seq {
        let (docs, r) = store.st_query(&shapes[idx]);
        warm.record(r.cluster.wall);
        results += docs.len() as u64;
        exact &= docs.len() as u64 == expected[idx] && !r.cluster.partial;
    }
    let c1 = store.result_cache_counters();
    let served = c1.hits - c0.hits;
    let total = served + (c1.misses - c0.misses) + (c1.stale - c0.stale);
    let hit_ratio = if total == 0 {
        0.0
    } else {
        served as f64 / total as f64
    };

    let us = |d: Duration| d.as_secs_f64() * 1e6;
    let (cold_snap, warm_snap) = (cold.snapshot(), warm.snapshot());
    let exec = store.executor_stats();
    let cell = RouterCell {
        approach: approach.name().to_string(),
        curve: curve_label(approach, family),
        cold_p50_us: us(cold_snap.p50),
        cold_p95_us: us(cold_snap.p95),
        warm_p50_us: us(warm_snap.p50),
        warm_p95_us: us(warm_snap.p95),
        speedup_p50: us(cold_snap.p50) / us(warm_snap.p50).max(1e-9),
        hit_ratio,
        plan_cache_hits: store.plan_cache_counters().hits,
        result_cache_hits: served,
        result_cache_misses: c1.misses - c0.misses,
        executor_tasks: exec.tasks,
        executor_steals: exec.steals,
        results,
        exact,
    };
    println!(
        "{:<8} {:<8} {:>10.1} {:>10.1} {:>10.1} {:>8.1}x {:>8.3} {:>8} {:>9} {:>6}",
        cell.approach,
        cell.curve,
        cell.cold_p50_us,
        cell.warm_p50_us,
        cell.warm_p95_us,
        cell.speedup_p50,
        cell.hit_ratio,
        cell.executor_steals,
        cell.results,
        cell.exact
    );
    cell
}

/// The shed drill: one tenant with a frozen 8-token bucket fires 24
/// admitted queries — 8 must flow, 16 must shed — while a second
/// tenant's own bucket keeps it unaffected.
fn run_overload_drill(records: &[sts_workload::Record], cfg: &HarnessConfig) -> OverloadSummary {
    let mut store = build_store(Approach::Hil, Dataset::R, records, cfg, false);
    store.set_metrics_registry(std::sync::Arc::new(sts_obs::Registry::new()));
    store.set_router_config(RouterConfig {
        admission: AdmissionConfig {
            enabled: true,
            tenant_burst: 8.0,
            tenant_rate_per_sec: 0.0,
            ..AdmissionConfig::default()
        },
        ..RouterConfig::default()
    });
    let q = &small_query_batch(1, cfg.seed)[0];
    let attempted = 24u64;
    let mut admitted = 0u64;
    for _ in 0..attempted {
        if store.st_query_admitted("overload-tenant", q).is_ok() {
            admitted += 1;
        }
    }
    let other_tenant_admitted = store.st_query_admitted("background-tenant", q).is_ok();
    let summary = OverloadSummary {
        attempted,
        admitted,
        sheds: store.shed_count(),
        other_tenant_admitted,
    };
    println!(
        "overload  {:>3}/{} admitted, {} shed, other tenant admitted: {}",
        summary.admitted, summary.attempted, summary.sheds, summary.other_tenant_admitted
    );
    summary
}

fn run_approach(
    approach: Approach,
    records: &[sts_workload::Record],
    queries: &[sts_core::StQuery],
    cfg: &HarnessConfig,
) -> ApproachRow {
    let build_start = Instant::now();
    let mut store = build_store(approach, Dataset::R, records, cfg, false);
    let build_ms = build_start.elapsed().as_secs_f64() * 1_000.0;

    // Private metrics registry per approach: without this, every
    // approach's shard/router metrics land in the process-wide global
    // registry and bleed into whichever approach is inspected next.
    store.set_metrics_registry(std::sync::Arc::new(sts_obs::Registry::new()));

    // Warm-up pass over the full batch: pages in every index the
    // planner may pick and absorbs one-time process costs (thread-pool
    // spin-up hits whichever approach runs first), so the measured
    // window sees steady-state behaviour (paper §5.1 discards warm-up
    // runs the same way).
    for q in queries {
        let _ = store.st_query(q);
    }

    let latency = Histogram::new();
    let mut max_keys = 0u64;
    let mut max_docs = 0u64;
    let mut total_keys = 0u64;
    let mut total_docs = 0u64;
    let mut nodes_total = 0usize;
    let mut results = 0u64;
    let mut covering_us = 0.0f64;
    let mut covering_ranges = 0usize;
    let runs = cfg.measured_runs.max(1);
    let mut executions = 0usize;
    let query_start = Instant::now();
    for q in queries {
        // Per-query latency is the minimum over `--runs` repetitions —
        // the noise-robust estimator: scheduler interference only ever
        // adds time, so the min is the best view of the true cost. Work
        // counters are deterministic and taken from the last run.
        let mut best = None;
        let mut report = None;
        for _ in 0..runs {
            let (_, r) = store.st_query(q);
            let lat = r.cluster_latency();
            best = Some(best.map_or(lat, |b: std::time::Duration| b.min(lat)));
            report = Some(r);
            executions += 1;
        }
        let (best, report) = (best.expect("runs >= 1"), report.expect("runs >= 1"));
        latency.record(best);
        max_keys = max_keys.max(report.cluster.max_keys_examined());
        max_docs = max_docs.max(report.cluster.max_docs_examined());
        total_keys += report.cluster.total_keys_examined();
        total_docs += report
            .cluster
            .per_shard
            .iter()
            .map(|s| s.stats.docs_examined)
            .sum::<u64>();
        nodes_total += report.cluster.nodes();
        results += report.cluster.n_returned();
        covering_us += report.hilbert_time.as_secs_f64() * 1e6;
        covering_ranges += report.hilbert_ranges;
    }
    let query_secs = query_start.elapsed().as_secs_f64();
    let snap = latency.snapshot();
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;

    // Range-budget ablation: replay the batch at each budget against
    // the already-loaded store (set_range_budget swaps the covering
    // budget without rebuilding). One pass per budget — the counters
    // are deterministic, and p50 is noise-robust enough for a
    // trade-off curve.
    let budget_ablation = if approach.uses_hilbert() {
        ABLATION_BUDGETS
            .iter()
            .map(|&b| {
                store.set_range_budget(sts_curve::RangeBudget::new(b));
                let lat = Histogram::new();
                let mut cov = 0usize;
                let mut keys = 0u64;
                let mut res = 0u64;
                for q in queries {
                    let (_, r) = store.st_query(q);
                    lat.record(r.cluster_latency());
                    cov += r.hilbert_ranges;
                    keys += r.cluster.total_keys_examined();
                    res += r.cluster.n_returned();
                }
                AblationRow {
                    budget: b as u64,
                    p50_us: us(lat.snapshot().p50),
                    covering_ranges_total: cov,
                    total_keys_examined: keys,
                    results: res,
                }
            })
            .collect()
    } else {
        Vec::new()
    };

    // Warm path: re-run the batch against the result-page cache. This
    // comes after the ablation so cached pages can never leak into the
    // budget sweep, and restores the default budget first so the warm
    // plans match the cold window's. One priming pass fills the cache
    // (all misses); the measured pass is the steady-state hit path.
    store.set_range_budget(sts_curve::RangeBudget::default());
    store.set_router_config(RouterConfig {
        result_cache_entries: 4096,
        result_cache_max_docs: 1 << 20,
        ..RouterConfig::default()
    });
    for q in queries {
        let _ = store.st_query(q);
    }
    let c0 = store.result_cache_counters();
    let warm = Histogram::new();
    for q in queries {
        let mut best = None;
        for _ in 0..runs {
            let (_, r) = store.st_query(q);
            let wall = r.cluster.wall;
            best = Some(best.map_or(wall, |b: Duration| b.min(wall)));
        }
        warm.record(best.expect("runs >= 1"));
    }
    let c1 = store.result_cache_counters();
    let warm_served = c1.hits - c0.hits;
    let warm_total = warm_served + (c1.misses - c0.misses) + (c1.stale - c0.stale);
    let warm_snap = warm.snapshot();

    let row = ApproachRow {
        approach: approach.name().to_string(),
        curve: curve_label(approach, cfg.curve),
        p50_us: us(snap.p50),
        p95_us: us(snap.p95),
        p99_us: us(snap.p99),
        mean_us: us(snap.mean),
        max_us: us(snap.max),
        throughput_qps: executions as f64 / query_secs.max(1e-9),
        build_ms,
        max_keys_examined: max_keys,
        max_docs_examined: max_docs,
        total_keys_examined: total_keys,
        total_docs_examined: total_docs,
        mean_nodes: nodes_total as f64 / queries.len().max(1) as f64,
        results,
        covering_us_total: covering_us,
        covering_ranges_total: covering_ranges,
        warm_p50_us: us(warm_snap.p50),
        warm_p95_us: us(warm_snap.p95),
        cache_hit_ratio: if warm_total == 0 {
            0.0
        } else {
            warm_served as f64 / warm_total as f64
        },
        budget_ablation,
    };
    println!(
        "{:<8} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>9.1} {:>10} {:>10} {:>8}",
        row.approach,
        row.p50_us,
        row.p95_us,
        row.p99_us,
        row.mean_us,
        row.throughput_qps,
        row.max_keys_examined,
        row.max_docs_examined,
        row.results
    );
    row
}
