//! Machine-readable perf smoke test: a small fixed-seed workload run
//! across all four paper approaches, emitting schema-versioned JSON
//! that CI diffs against a committed baseline (`bench-diff`).
//!
//! Per approach we report latency percentiles (p50/p95/p99 from an
//! HDR-style histogram of per-query cluster latency), throughput over
//! the query window alone (build time is measured separately and never
//! pollutes it), and the paper's work counters (keys/docs examined,
//! nodes touched).
//!
//! ```text
//! cargo run -p sts-bench --release --bin perfsmoke -- \
//!     --scale 0.002 --queries 40 --json results/BENCH_baseline.json
//! ```
//!
//! Defaults write `results/BENCH_<date>.json`.
//!
//! With `--curve-matrix` the binary instead scores every
//! (approach × curve family) cell of the zoo on the clustered
//! hot-window workload — covering-range counts, keys examined,
//! queries-routed Gini and latency percentiles — emitting
//! schema-versioned `sts-curvematrix/1` JSON and exiting non-zero if
//! any cell's result count disagrees with the in-binary full scan.

use serde::Serialize;
use std::time::Instant;
use sts_bench::{
    build_store, clustered_query_batch, dataset_records, save_json_to, small_query_batch,
    utc_date_string, Dataset, HarnessConfig,
};
use sts_core::Approach;
use sts_curve::CurveFamily;
use sts_obs::Histogram;

/// Bump when the report layout changes incompatibly.
const SCHEMA: &str = "sts-bench/1";

#[derive(Serialize)]
struct BenchReport {
    schema: String,
    generated_at: String,
    scale: f64,
    shards: usize,
    seed: u64,
    queries: usize,
    records: u64,
    approaches: Vec<ApproachRow>,
}

#[derive(Serialize)]
struct ApproachRow {
    approach: String,
    /// Curve family the approach ran on (`"none"` for the baselines,
    /// which have no curve). bench-diff keys rows on (approach, curve).
    curve: String,
    /// Latency percentiles of per-query cluster latency (slowest shard
    /// bounds each query), in microseconds.
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mean_us: f64,
    max_us: f64,
    /// Queries per second over the measured query window.
    throughput_qps: f64,
    /// Store construction (bulk load), kept apart from the query window.
    build_ms: f64,
    /// §5.1 work counters, aggregated over the whole batch.
    max_keys_examined: u64,
    max_docs_examined: u64,
    total_keys_examined: u64,
    total_docs_examined: u64,
    mean_nodes: f64,
    /// Total matching documents across the batch (a correctness anchor:
    /// this must never drift between runs at the same seed).
    results: u64,
    /// Hilbert decomposition totals (zero for the baselines).
    covering_us_total: f64,
    covering_ranges_total: usize,
    /// Range-budget ablation (Hilbert methods only): the same batch
    /// re-run at budgets 16/32/64/128 against the already-loaded store,
    /// showing the seeks-vs-false-positives trade-off the default
    /// budget sits on. Empty for the baselines.
    budget_ablation: Vec<AblationRow>,
}

/// One ablation point: the workload at one covering-range budget.
#[derive(Clone, Serialize)]
struct AblationRow {
    budget: u64,
    p50_us: f64,
    covering_ranges_total: usize,
    total_keys_examined: u64,
    /// Correctness anchor: identical across budgets at a fixed seed.
    results: u64,
}

/// Budgets ablated per Hilbert approach (the default is 64).
const ABLATION_BUDGETS: [usize; 4] = [16, 32, 64, 128];

/// Standalone ablation artifact (`--ablation-json`), the CI upload.
#[derive(Serialize)]
struct AblationReport {
    schema: String,
    generated_at: String,
    scale: f64,
    seed: u64,
    queries: usize,
    approaches: Vec<AblationApproach>,
}

#[derive(Serialize)]
struct AblationApproach {
    approach: String,
    rows: Vec<AblationRow>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, rest) = HarnessConfig::from_args(&args);
    let mut n_queries = 120usize;
    let mut json_path: Option<String> = None;
    let mut ablation_path: Option<String> = None;
    let mut curve_matrix = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| -> Option<String> {
            if a == name {
                it.next().cloned()
            } else {
                a.strip_prefix(&format!("{name}=")).map(str::to_string)
            }
        };
        if let Some(v) = grab("--queries") {
            n_queries = v.parse().expect("--queries takes an integer");
        } else if let Some(v) = grab("--json") {
            json_path = Some(v);
        } else if let Some(v) = grab("--ablation-json") {
            ablation_path = Some(v);
        } else if a == "--curve-matrix" {
            curve_matrix = true;
        } else {
            eprintln!("perfsmoke: unknown argument {a}");
            std::process::exit(2);
        }
    }
    if curve_matrix {
        let path = json_path.unwrap_or_else(|| "results/CURVE_matrix.json".to_string());
        std::process::exit(run_matrix(&cfg, n_queries, &path));
    }
    let path = json_path.unwrap_or_else(|| format!("results/BENCH_{}.json", utc_date_string()));
    eprintln!(
        "# perfsmoke: scale={} shards={} seed={:#x} queries={n_queries} -> {path}",
        cfg.scale, cfg.num_shards, cfg.seed
    );

    let records = dataset_records(Dataset::R, &cfg, 1);
    let queries = small_query_batch(n_queries, cfg.seed);
    let mut approaches = Vec::new();
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>9} {:>10} {:>10} {:>8}",
        "approach",
        "p50(us)",
        "p95(us)",
        "p99(us)",
        "mean(us)",
        "qps",
        "maxKeys",
        "maxDocs",
        "results"
    );
    for approach in Approach::ALL {
        approaches.push(run_approach(approach, &records, &queries, &cfg));
    }

    let report = BenchReport {
        schema: SCHEMA.to_string(),
        generated_at: utc_date_string(),
        scale: cfg.scale,
        shards: cfg.num_shards,
        seed: cfg.seed,
        queries: n_queries,
        records: records.len() as u64,
        approaches,
    };
    if let Err(e) = save_json_to(std::path::Path::new(&path), &report) {
        eprintln!("perfsmoke: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("# wrote {path}");

    if let Some(apath) = ablation_path {
        let ablation = AblationReport {
            schema: "sts-bench-ablation/1".to_string(),
            generated_at: utc_date_string(),
            scale: cfg.scale,
            seed: cfg.seed,
            queries: n_queries,
            approaches: report
                .approaches
                .iter()
                .filter(|a| !a.budget_ablation.is_empty())
                .map(|a| AblationApproach {
                    approach: a.approach.clone(),
                    rows: a.budget_ablation.clone(),
                })
                .collect(),
        };
        if let Err(e) = save_json_to(std::path::Path::new(&apath), &ablation) {
            eprintln!("perfsmoke: cannot write {apath}: {e}");
            std::process::exit(1);
        }
        eprintln!("# wrote {apath}");
    }
}

/// The curve label a report row carries: the configured family for the
/// curve-based approaches, `"none"` for the baselines (which have no
/// curve at all).
fn curve_label(approach: Approach, curve: CurveFamily) -> String {
    if approach.uses_hilbert() {
        curve.name().to_string()
    } else {
        "none".to_string()
    }
}

// ------------------------------------------------------- curve matrix

/// Bump when the matrix layout changes incompatibly.
const MATRIX_SCHEMA: &str = "sts-curvematrix/1";

#[derive(Serialize)]
struct MatrixReport {
    schema: String,
    generated_at: String,
    scale: f64,
    shards: usize,
    seed: u64,
    queries: usize,
    records: u64,
    /// Which workload the matrix scored (always the clustered
    /// hot-window batch — the regime that separates the curves).
    workload: String,
    cells: Vec<MatrixCell>,
}

/// One (approach × curve) cell of the clustering-quality matrix.
#[derive(Serialize)]
struct MatrixCell {
    approach: String,
    curve: String,
    p50_us: f64,
    p95_us: f64,
    /// Covering ranges the decomposition produced over the batch — the
    /// paper's clustering-quality proxy (fewer ranges = better
    /// locality at equal budget).
    covering_ranges_total: usize,
    /// Index keys examined across all shards — false-positive work.
    total_keys_examined: u64,
    /// Gini of queries routed per shard — load dispersion under the
    /// hot temporal window (lower = more even).
    queries_routed_gini: f64,
    results: u64,
    /// Every query's result count matched the in-binary full scan.
    exact: bool,
}

/// Score every (approach × curve) cell on the clustered hot-window
/// workload and write the `sts-curvematrix/1` artifact. Returns the
/// process exit code: non-zero when any cell's result count disagrees
/// with the full scan (the CI correctness gate).
fn run_matrix(cfg: &HarnessConfig, n_queries: usize, path: &str) -> i32 {
    eprintln!(
        "# perfsmoke --curve-matrix: scale={} shards={} seed={:#x} queries={n_queries} -> {path}",
        cfg.scale, cfg.num_shards, cfg.seed
    );
    let records = dataset_records(Dataset::R, cfg, 1);
    let queries = clustered_query_batch(n_queries, cfg.seed);
    // Ground truth by brute force over the raw records — independent of
    // every index, curve and routing layer under test.
    let expected: Vec<u64> = queries
        .iter()
        .map(|q| {
            records
                .iter()
                .filter(|r| q.matches(r.lon, r.lat, r.date))
                .count() as u64
        })
        .collect();

    let mut cells = Vec::new();
    println!(
        "{:<8} {:<8} {:>10} {:>10} {:>8} {:>12} {:>8} {:>9} {:>6}",
        "approach",
        "curve",
        "p50(us)",
        "p95(us)",
        "ranges",
        "totalKeys",
        "gini(q)",
        "results",
        "exact"
    );
    for approach in Approach::ALL {
        let families: &[CurveFamily] = if approach.uses_hilbert() {
            &CurveFamily::ALL
        } else {
            // The baselines have no curve: one cell each, for scale
            // reference against the curve-based rows.
            &[CurveFamily::Hilbert]
        };
        for &family in families {
            let mut run_cfg = *cfg;
            run_cfg.curve = family;
            cells.push(run_matrix_cell(
                approach, family, &records, &queries, &expected, &run_cfg,
            ));
        }
    }

    let all_exact = cells.iter().all(|c| c.exact);
    let report = MatrixReport {
        schema: MATRIX_SCHEMA.to_string(),
        generated_at: utc_date_string(),
        scale: cfg.scale,
        shards: cfg.num_shards,
        seed: cfg.seed,
        queries: n_queries,
        records: records.len() as u64,
        workload: "clustered hot-window".to_string(),
        cells,
    };
    if let Err(e) = save_json_to(std::path::Path::new(path), &report) {
        eprintln!("perfsmoke: cannot write {path}: {e}");
        return 1;
    }
    eprintln!("# wrote {path}");
    if !all_exact {
        eprintln!("perfsmoke: result-count drift against the full scan — see the `exact` column");
        return 1;
    }
    0
}

fn run_matrix_cell(
    approach: Approach,
    family: CurveFamily,
    records: &[sts_workload::Record],
    queries: &[sts_core::StQuery],
    expected: &[u64],
    cfg: &HarnessConfig,
) -> MatrixCell {
    let mut store = build_store(approach, Dataset::R, records, cfg, false);
    store.set_metrics_registry(std::sync::Arc::new(sts_obs::Registry::new()));
    for q in queries {
        let _ = store.st_query(q);
    }
    let latency = Histogram::new();
    let mut ranges = 0usize;
    let mut keys = 0u64;
    let mut results = 0u64;
    let mut exact = true;
    let runs = cfg.measured_runs.max(1);
    for (q, &want) in queries.iter().zip(expected) {
        let mut best = None;
        let mut report = None;
        for _ in 0..runs {
            let (_, r) = store.st_query(q);
            let lat = r.cluster_latency();
            best = Some(best.map_or(lat, |b: std::time::Duration| b.min(lat)));
            report = Some(r);
        }
        let (best, report) = (best.expect("runs >= 1"), report.expect("runs >= 1"));
        latency.record(best);
        ranges += report.hilbert_ranges;
        keys += report.cluster.total_keys_examined();
        results += report.cluster.n_returned();
        exact &= report.cluster.n_returned() == want && !report.cluster.partial;
    }
    // Gini over the whole run (warm-up included): the batch repeats
    // identically, so per-shard routing counts scale uniformly and the
    // Gini coefficient is unaffected.
    let gini = store.health_snapshot().queries_skew().gini;
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    let snap = latency.snapshot();
    let cell = MatrixCell {
        approach: approach.name().to_string(),
        curve: curve_label(approach, family),
        p50_us: us(snap.p50),
        p95_us: us(snap.p95),
        covering_ranges_total: ranges,
        total_keys_examined: keys,
        queries_routed_gini: gini,
        results,
        exact,
    };
    println!(
        "{:<8} {:<8} {:>10.1} {:>10.1} {:>8} {:>12} {:>8.3} {:>9} {:>6}",
        cell.approach,
        cell.curve,
        cell.p50_us,
        cell.p95_us,
        cell.covering_ranges_total,
        cell.total_keys_examined,
        cell.queries_routed_gini,
        cell.results,
        cell.exact
    );
    cell
}

fn run_approach(
    approach: Approach,
    records: &[sts_workload::Record],
    queries: &[sts_core::StQuery],
    cfg: &HarnessConfig,
) -> ApproachRow {
    let build_start = Instant::now();
    let mut store = build_store(approach, Dataset::R, records, cfg, false);
    let build_ms = build_start.elapsed().as_secs_f64() * 1_000.0;

    // Private metrics registry per approach: without this, every
    // approach's shard/router metrics land in the process-wide global
    // registry and bleed into whichever approach is inspected next.
    store.set_metrics_registry(std::sync::Arc::new(sts_obs::Registry::new()));

    // Warm-up pass over the full batch: pages in every index the
    // planner may pick and absorbs one-time process costs (thread-pool
    // spin-up hits whichever approach runs first), so the measured
    // window sees steady-state behaviour (paper §5.1 discards warm-up
    // runs the same way).
    for q in queries {
        let _ = store.st_query(q);
    }

    let latency = Histogram::new();
    let mut max_keys = 0u64;
    let mut max_docs = 0u64;
    let mut total_keys = 0u64;
    let mut total_docs = 0u64;
    let mut nodes_total = 0usize;
    let mut results = 0u64;
    let mut covering_us = 0.0f64;
    let mut covering_ranges = 0usize;
    let runs = cfg.measured_runs.max(1);
    let mut executions = 0usize;
    let query_start = Instant::now();
    for q in queries {
        // Per-query latency is the minimum over `--runs` repetitions —
        // the noise-robust estimator: scheduler interference only ever
        // adds time, so the min is the best view of the true cost. Work
        // counters are deterministic and taken from the last run.
        let mut best = None;
        let mut report = None;
        for _ in 0..runs {
            let (_, r) = store.st_query(q);
            let lat = r.cluster_latency();
            best = Some(best.map_or(lat, |b: std::time::Duration| b.min(lat)));
            report = Some(r);
            executions += 1;
        }
        let (best, report) = (best.expect("runs >= 1"), report.expect("runs >= 1"));
        latency.record(best);
        max_keys = max_keys.max(report.cluster.max_keys_examined());
        max_docs = max_docs.max(report.cluster.max_docs_examined());
        total_keys += report.cluster.total_keys_examined();
        total_docs += report
            .cluster
            .per_shard
            .iter()
            .map(|s| s.stats.docs_examined)
            .sum::<u64>();
        nodes_total += report.cluster.nodes();
        results += report.cluster.n_returned();
        covering_us += report.hilbert_time.as_secs_f64() * 1e6;
        covering_ranges += report.hilbert_ranges;
    }
    let query_secs = query_start.elapsed().as_secs_f64();
    let snap = latency.snapshot();
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;

    // Range-budget ablation: replay the batch at each budget against
    // the already-loaded store (set_range_budget swaps the covering
    // budget without rebuilding). One pass per budget — the counters
    // are deterministic, and p50 is noise-robust enough for a
    // trade-off curve.
    let budget_ablation = if approach.uses_hilbert() {
        ABLATION_BUDGETS
            .iter()
            .map(|&b| {
                store.set_range_budget(sts_curve::RangeBudget::new(b));
                let lat = Histogram::new();
                let mut cov = 0usize;
                let mut keys = 0u64;
                let mut res = 0u64;
                for q in queries {
                    let (_, r) = store.st_query(q);
                    lat.record(r.cluster_latency());
                    cov += r.hilbert_ranges;
                    keys += r.cluster.total_keys_examined();
                    res += r.cluster.n_returned();
                }
                AblationRow {
                    budget: b as u64,
                    p50_us: us(lat.snapshot().p50),
                    covering_ranges_total: cov,
                    total_keys_examined: keys,
                    results: res,
                }
            })
            .collect()
    } else {
        Vec::new()
    };

    let row = ApproachRow {
        approach: approach.name().to_string(),
        curve: curve_label(approach, cfg.curve),
        p50_us: us(snap.p50),
        p95_us: us(snap.p95),
        p99_us: us(snap.p99),
        mean_us: us(snap.mean),
        max_us: us(snap.max),
        throughput_qps: executions as f64 / query_secs.max(1e-9),
        build_ms,
        max_keys_examined: max_keys,
        max_docs_examined: max_docs,
        total_keys_examined: total_keys,
        total_docs_examined: total_docs,
        mean_nodes: nodes_total as f64 / queries.len().max(1) as f64,
        results,
        covering_us_total: covering_us,
        covering_ranges_total: covering_ranges,
        budget_ablation,
    };
    println!(
        "{:<8} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>9.1} {:>10} {:>10} {:>8}",
        row.approach,
        row.p50_us,
        row.p95_us,
        row.p99_us,
        row.mean_us,
        row.throughput_qps,
        row.max_keys_examined,
        row.max_docs_examined,
        row.results
    );
    row
}
