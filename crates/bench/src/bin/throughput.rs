//! Multi-query throughput experiment — the claim §5.2's discussion makes
//! but never measures: *"In the case of small queries, bsl performs
//! better but at the expense of using more nodes … in a real system that
//! processes thousands of queries at the same time … all nodes need to
//! participate in the execution of each query, which is not scalable."*
//!
//! We replay a batch of independent small spatio-temporal queries
//! (random city-sized rectangles, random week-long windows), charge each
//! shard its per-query work (keys + docs examined), and report:
//!
//! * mean nodes touched per query,
//! * total cluster work vs the **hottest shard's** work — whose ratio is
//!   the cluster's achievable concurrency ("parallel headroom"): a
//!   system bottlenecked on one shard cannot scale past it.
//!
//! ```text
//! cargo run -p sts-bench --release --bin throughput -- --queries 200
//! ```

use serde::Serialize;
use std::time::Instant;
use sts_bench::{
    build_store, dataset_records, save_json, small_query_batch, Dataset, HarnessConfig,
};
use sts_core::Approach;

#[derive(Serialize)]
struct ThroughputRow {
    approach: String,
    zones: bool,
    queries: usize,
    mean_nodes: f64,
    total_work: u64,
    max_shard_work: u64,
    parallel_headroom: f64,
    /// Store construction time (bulk load + zone migration), kept
    /// strictly apart from the query window below.
    build_ms: f64,
    /// Wall time of the query replay alone.
    query_ms: f64,
    /// Queries per second over the query window.
    qps: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, rest) = HarnessConfig::from_args(&args);
    let n_queries: usize = rest
        .iter()
        .position(|a| a == "--queries")
        .and_then(|i| rest.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    eprintln!(
        "# throughput harness: scale={} shards={} queries={n_queries}",
        cfg.scale, cfg.num_shards
    );

    let records = dataset_records(Dataset::R, &cfg, 1);
    let queries = small_query_batch(n_queries, cfg.seed);
    let mut rows = Vec::new();
    println!(
        "{:<8} {:<7} {:>11} {:>12} {:>14} {:>10} {:>10} {:>10} {:>9}",
        "approach",
        "zones",
        "mean nodes",
        "total work",
        "hottest shard",
        "headroom",
        "build(ms)",
        "query(ms)",
        "qps"
    );
    for zones in [false, true] {
        for approach in [Approach::BslST, Approach::BslTS, Approach::Hil] {
            // Build and query windows are timed separately: bulk load +
            // zone migration must never pollute the throughput numbers.
            let build_start = Instant::now();
            let store = build_store(approach, Dataset::R, &records, &cfg, zones);
            let build_ms = build_start.elapsed().as_secs_f64() * 1_000.0;
            let mut per_shard = vec![0u64; cfg.num_shards];
            let mut nodes_total = 0usize;
            let query_start = Instant::now();
            for q in &queries {
                let (_, report) = store.st_query(q);
                nodes_total += report.cluster.nodes();
                for sx in &report.cluster.per_shard {
                    per_shard[sx.shard] += sx.stats.keys_examined + sx.stats.docs_examined;
                }
            }
            let query_secs = query_start.elapsed().as_secs_f64();
            let total: u64 = per_shard.iter().sum();
            let hottest = *per_shard.iter().max().unwrap();
            let row = ThroughputRow {
                approach: approach.name().into(),
                zones,
                queries: queries.len(),
                mean_nodes: nodes_total as f64 / queries.len() as f64,
                total_work: total,
                max_shard_work: hottest,
                parallel_headroom: total as f64 / hottest.max(1) as f64,
                build_ms,
                query_ms: query_secs * 1_000.0,
                qps: queries.len() as f64 / query_secs.max(1e-9),
            };
            println!(
                "{:<8} {:<7} {:>11.2} {:>12} {:>14} {:>9.2}x {:>10.1} {:>10.1} {:>9.1}",
                row.approach,
                row.zones,
                row.mean_nodes,
                row.total_work,
                row.max_shard_work,
                row.parallel_headroom,
                row.build_ms,
                row.query_ms,
                row.qps
            );
            rows.push(row);
        }
    }
    save_json("throughput", &rows);
    println!(
        "\nheadroom = total work / hottest-shard work; {}x is perfect balance.\n\
         Spatially-local partitioning lets disjoint queries land on disjoint \
         shards, which is what concurrent throughput scales with.",
        cfg.num_shards
    );
}
