//! Multi-query throughput experiment — the claim §5.2's discussion makes
//! but never measures: *"In the case of small queries, bsl performs
//! better but at the expense of using more nodes … in a real system that
//! processes thousands of queries at the same time … all nodes need to
//! participate in the execution of each query, which is not scalable."*
//!
//! We replay a batch of independent small spatio-temporal queries
//! (random city-sized rectangles, random week-long windows), charge each
//! shard its per-query work (keys + docs examined), and report:
//!
//! * mean nodes touched per query,
//! * total cluster work vs the **hottest shard's** work — whose ratio is
//!   the cluster's achievable concurrency ("parallel headroom"): a
//!   system bottlenecked on one shard cannot scale past it.
//!
//! ```text
//! cargo run -p sts-bench --release --bin throughput -- --queries 200
//! ```

use serde::Serialize;
use sts_bench::{build_store, dataset_records, dataset_start, save_json, Dataset, HarnessConfig};
use sts_core::{Approach, StQuery};
use sts_document::DateTime;
use sts_geo::GeoRect;

#[derive(Serialize)]
struct ThroughputRow {
    approach: String,
    zones: bool,
    queries: usize,
    mean_nodes: f64,
    total_work: u64,
    max_shard_work: u64,
    parallel_headroom: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, rest) = HarnessConfig::from_args(&args);
    let n_queries: usize = rest
        .iter()
        .position(|a| a == "--queries")
        .and_then(|i| rest.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    eprintln!(
        "# throughput harness: scale={} shards={} queries={n_queries}",
        cfg.scale, cfg.num_shards
    );

    let records = dataset_records(Dataset::R, &cfg, 1);
    let queries = query_batch(n_queries, cfg.seed);
    let mut rows = Vec::new();
    println!(
        "{:<8} {:<7} {:>11} {:>12} {:>14} {:>10}",
        "approach", "zones", "mean nodes", "total work", "hottest shard", "headroom"
    );
    for zones in [false, true] {
        for approach in [Approach::BslST, Approach::BslTS, Approach::Hil] {
            let store = build_store(approach, Dataset::R, &records, &cfg, zones);
            let mut per_shard = vec![0u64; cfg.num_shards];
            let mut nodes_total = 0usize;
            for q in &queries {
                let (_, report) = store.st_query(q);
                nodes_total += report.cluster.nodes();
                for sx in &report.cluster.per_shard {
                    per_shard[sx.shard] += sx.stats.keys_examined + sx.stats.docs_examined;
                }
            }
            let total: u64 = per_shard.iter().sum();
            let hottest = *per_shard.iter().max().unwrap();
            let row = ThroughputRow {
                approach: approach.name().into(),
                zones,
                queries: queries.len(),
                mean_nodes: nodes_total as f64 / queries.len() as f64,
                total_work: total,
                max_shard_work: hottest,
                parallel_headroom: total as f64 / hottest.max(1) as f64,
            };
            println!(
                "{:<8} {:<7} {:>11.2} {:>12} {:>14} {:>9.2}x",
                row.approach,
                row.zones,
                row.mean_nodes,
                row.total_work,
                row.max_shard_work,
                row.parallel_headroom
            );
            rows.push(row);
        }
    }
    save_json("throughput", &rows);
    println!(
        "\nheadroom = total work / hottest-shard work; {}x is perfect balance.\n\
         Spatially-local partitioning lets disjoint queries land on disjoint \
         shards, which is what concurrent throughput scales with.",
        cfg.num_shards
    );
}

/// City-sized rectangles around the urban hotspots, week-long windows —
/// a plausible concurrent dispatcher workload.
fn query_batch(n: usize, seed: u64) -> Vec<StQuery> {
    let centers = [
        (23.7275, 37.9838),
        (22.9446, 40.6401),
        (21.7346, 38.2466),
        (25.1442, 35.3387),
        (22.4191, 39.6390),
    ];
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| {
            let (clon, clat) = centers[(next() % centers.len() as u64) as usize];
            let dx = (next() % 1_000) as f64 / 10_000.0 - 0.05;
            let dy = (next() % 1_000) as f64 / 10_000.0 - 0.05;
            let w = 0.02 + (next() % 600) as f64 / 10_000.0;
            let start_day = (next() % 140) as i64;
            let t0 = dataset_start().plus_millis(start_day * 86_400_000);
            StQuery {
                rect: GeoRect::new(clon + dx, clat + dy, clon + dx + w, clat + dy + w),
                t0,
                t1: DateTime::from_millis(t0.millis() + 7 * 86_400_000),
            }
        })
        .collect()
}
