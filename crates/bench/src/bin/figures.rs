//! Regenerate Figures 5–14 of the paper.
//!
//! ```text
//! cargo run -p sts-bench --release --bin figures            # everything
//! cargo run -p sts-bench --release --bin figures -- --fig 6 # one figure
//! cargo run -p sts-bench --release --bin figures -- --scale 0.005
//! ```
//!
//! Figure map (panels a–d = max keys / max docs / nodes / time):
//! 5–8: default sharding (small/big × R/S), 9–12: zones,
//! 13: scalability (Q₂ᵇ on R₁–R₄), 14: total index sizes.

use serde::Serialize;
use sts_bench::{
    build_store, dataset_records, render_table, run_query_ladder, save_json, Dataset,
    HarnessConfig, Measurement,
};
use sts_core::Approach;
use sts_workload::queries::{paper_query, QuerySize};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, rest) = HarnessConfig::from_args(&args);
    let fig: Option<u32> = rest
        .iter()
        .position(|a| a == "--fig")
        .and_then(|i| rest.get(i + 1))
        .and_then(|v| v.parse().ok());
    eprintln!(
        "# figures harness: scale={} shards={} seed={} (paper volumes × scale)",
        cfg.scale, cfg.num_shards, cfg.seed
    );

    let wants = |f: u32| fig.is_none() || fig == Some(f);
    let mut index_sizes: Vec<IndexSizeRow> = Vec::new();

    // Figures 5–12 share four (dataset, zones) configurations.
    let configs: [(Dataset, bool, u32, u32); 4] = [
        (Dataset::R, false, 5, 6),
        (Dataset::S, false, 7, 8),
        (Dataset::R, true, 9, 10),
        (Dataset::S, true, 11, 12),
    ];
    for (dataset, zones, small_fig, big_fig) in configs {
        let need_for_14 = fig.is_none() || fig == Some(14);
        if !(wants(small_fig) || wants(big_fig) || need_for_14) {
            continue;
        }
        run_config(
            dataset,
            zones,
            small_fig,
            big_fig,
            &cfg,
            wants(small_fig) || wants(big_fig),
            &mut index_sizes,
        );
    }

    if wants(13) {
        fig13_scalability(&cfg);
    }
    if wants(14) {
        fig14_index_sizes(&index_sizes);
    }
}

/// Load one (dataset, zones) configuration for every relevant approach,
/// run the 8-query workload, print the two figures and harvest index
/// sizes for Fig. 14.
fn run_config(
    dataset: Dataset,
    zones: bool,
    small_fig: u32,
    big_fig: u32,
    cfg: &HarnessConfig,
    print_figs: bool,
    index_sizes: &mut Vec<IndexSizeRow>,
) {
    let records = dataset_records(dataset, cfg, 1);
    eprintln!(
        "# {} {}: {} records",
        dataset.label(),
        if zones { "zones" } else { "default" },
        records.len()
    );
    // §5.3 drops hil* ("we only use hil since we did not observe
    // significant performance improvements").
    let approaches: &[Approach] = if zones {
        &[Approach::BslST, Approach::BslTS, Approach::Hil]
    } else {
        &Approach::ALL
    };
    let mut small_rows: Vec<Measurement> = Vec::new();
    let mut big_rows: Vec<Measurement> = Vec::new();
    for &approach in approaches {
        let store = build_store(approach, dataset, &records, cfg, zones);
        if print_figs {
            small_rows.extend(run_query_ladder(&store, QuerySize::Small, cfg));
            big_rows.extend(run_query_ladder(&store, QuerySize::Big, cfg));
        }
        for (index, report) in store.index_sizes() {
            index_sizes.push(IndexSizeRow {
                dataset: dataset.label().to_string(),
                zones,
                approach: approach.name().to_string(),
                index,
                bytes: report.total_compressed(),
                entries: report.entries,
            });
        }
    }
    if print_figs {
        let mode = if zones {
            "zone ranges"
        } else {
            "default sharding"
        };
        let small_title = format!(
            "Figure {small_fig}: {mode}, small queries, {} data",
            dataset.label()
        );
        let big_title = format!(
            "Figure {big_fig}: {mode}, big queries, {} data",
            dataset.label()
        );
        print!("{}", render_table(&small_title, &small_rows));
        print!("{}", render_table(&big_title, &big_rows));
        save_json(&format!("fig{small_fig}"), &small_rows);
        save_json(&format!("fig{big_fig}"), &big_rows);
    }
}

/// Fig. 13: Q₂ᵇ over R₁–R₄ for bslST / bslTS / hil.
fn fig13_scalability(cfg: &HarnessConfig) {
    let mut rows: Vec<Measurement> = Vec::new();
    for factor in 1..=4u32 {
        let records = dataset_records(Dataset::R, cfg, factor);
        eprintln!("# R{factor}: {} records", records.len());
        for approach in [Approach::BslST, Approach::BslTS, Approach::Hil] {
            let store = build_store(approach, Dataset::R, &records, cfg, false);
            let q = paper_query(QuerySize::Big, 2, sts_bench::dataset_start());
            let mut m = sts_bench::measure(&store, &format!("R{factor}/Qb2"), &q, cfg);
            m.query = format!("R{factor}");
            rows.push(m);
        }
    }
    print!(
        "{}",
        render_table(
            "Figure 13: scalability, Qb2 on R1–R4 (default sharding)",
            &rows
        )
    );
    save_json("fig13", &rows);
}

#[derive(Clone, Debug, Serialize)]
struct IndexSizeRow {
    dataset: String,
    zones: bool,
    approach: String,
    index: String,
    bytes: u64,
    entries: u64,
}

/// Fig. 14: total index sizes per approach, R/S × default/zones.
fn fig14_index_sizes(rows: &[IndexSizeRow]) {
    println!("\n== Figure 14: total size of indexes (prefix-compressed bytes) ==");
    for (dataset, zones, panel) in [
        ("R", false, "a: R, default"),
        ("R", true, "b: R, zones"),
        ("S", false, "c: S, default"),
        ("S", true, "d: S, zones"),
    ] {
        println!("-- panel {panel} --");
        println!(
            "{:<8} {:<28} {:>14} {:>12}",
            "approach", "index", "bytes", "entries"
        );
        let mut totals: Vec<(String, u64)> = Vec::new();
        for r in rows
            .iter()
            .filter(|r| r.dataset == dataset && r.zones == zones)
        {
            println!(
                "{:<8} {:<28} {:>14} {:>12}",
                r.approach, r.index, r.bytes, r.entries
            );
            match totals.iter_mut().find(|(a, _)| *a == r.approach) {
                Some((_, t)) => *t += r.bytes,
                None => totals.push((r.approach.clone(), r.bytes)),
            }
        }
        for (a, t) in totals {
            println!("{a:<8} {:<28} {t:>14}", "TOTAL");
        }
    }
    save_json("fig14", &rows);
}
