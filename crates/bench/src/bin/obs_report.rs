//! `obs-report` — cluster-health dashboard, slow-query profile, and
//! Chrome trace export over a fixed-seed workload.
//!
//! ```text
//! obs-report [--scale F] [--shards N] [--seed S]
//!            [--queries N]        queries per approach (default 40)
//!            [--threshold-us N]   profiler threshold (default 0: profile all)
//!            [--clustered]        hot-window workload (default: uniform)
//!            [--json PATH]        write the machine-readable report
//!            [--trace PATH]       write the slowest query's Chrome trace
//!            [--dashboard PATH]   write the dashboard text
//! ```
//!
//! Exits non-zero if the slowest query's trace fails span-nesting
//! validation or does not round-trip through the `serde_json` shim —
//! CI uses that as the trace-format gate.
//!
//! ## `--timeline` mode
//!
//! ```text
//! obs-report --timeline [--scale F] [--shards N] [--seed S]
//!            [--batch N]          docs per ingest batch (default 250)
//!            [--queries N]        queries interleaved per batch (default 8)
//!            [--window-us N]      timeline window width (default 2000)
//!            [--slo-us N]         SLO latency threshold (default 500)
//!            [--timeline-json P]  write the sts-timeline/1 bundle
//!            [--prom P]           write Prometheus text exposition
//!            [--perfetto P]       write Perfetto counter tracks + events
//!            [--folded P]         write cross-query folded stacks
//!            [--dashboard P]      write the time-series dashboard text
//! ```
//!
//! Runs the live-ingest workload per approach with the telemetry
//! timeline armed, renders the time-series dashboard, and exits
//! non-zero when any timeline invariant (window tiling, delta
//! telescoping, SLO burn accounting) or the `sts-timeline/1` schema
//! validator fails — CI's timeline gate.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;
use sts_bench::obsreport::{verify_chrome_trace, ObsReport, ObsReportConfig};
use sts_bench::timeline_report::{TimelineReport, TimelineReportConfig};
use sts_bench::{save_json_to, HarnessConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--timeline") {
        return timeline_main(&args);
    }
    let (harness, rest) = HarnessConfig::from_args(&args);
    let mut cfg = ObsReportConfig {
        clustered: false,
        ..Default::default()
    };
    let mut json_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut dashboard_path: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| -> Option<String> {
            if a == name {
                it.next().cloned()
            } else {
                a.strip_prefix(&format!("{name}=")).map(str::to_string)
            }
        };
        if let Some(v) = grab("--queries") {
            cfg.queries = v.parse().expect("--queries takes an integer");
        } else if let Some(v) = grab("--threshold-us") {
            let us: u64 = v.parse().expect("--threshold-us takes an integer");
            cfg.threshold = Duration::from_micros(us);
        } else if a == "--clustered" {
            cfg.clustered = true;
        } else if let Some(v) = grab("--json") {
            json_path = Some(PathBuf::from(v));
        } else if let Some(v) = grab("--trace") {
            trace_path = Some(PathBuf::from(v));
        } else if let Some(v) = grab("--dashboard") {
            dashboard_path = Some(PathBuf::from(v));
        } else {
            eprintln!("obs-report: unknown argument `{a}`");
            return ExitCode::FAILURE;
        }
    }

    let report = ObsReport::collect(&cfg, &harness);
    let dashboard = report.dashboard();
    print!("{dashboard}");

    if let Some(path) = &json_path {
        if let Err(e) = save_json_to(path, &report.to_json()) {
            eprintln!("obs-report: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("report JSON -> {}", path.display());
    }
    if let Some(path) = &dashboard_path {
        if let Err(e) = write_text(path, &dashboard) {
            eprintln!("obs-report: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("dashboard   -> {}", path.display());
    }

    match report.slowest() {
        Some((a, entry)) => {
            let trace = entry.trace();
            if let Err(e) = trace.validate() {
                eprintln!("obs-report: slowest query's trace is malformed: {e}");
                return ExitCode::FAILURE;
            }
            let chrome = trace.to_chrome_json();
            if let Err(e) = verify_chrome_trace(&chrome, trace.len()) {
                eprintln!("obs-report: chrome trace failed the round-trip gate: {e}");
                return ExitCode::FAILURE;
            }
            if let Some(path) = &trace_path {
                if let Err(e) = write_text(path, &chrome) {
                    eprintln!("obs-report: writing {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!(
                    "trace       -> {} (op {} on {}, {} spans; load in chrome://tracing or ui.perfetto.dev)",
                    path.display(),
                    entry.op,
                    a.approach.name(),
                    trace.len()
                );
            }
        }
        None => {
            println!(
                "no query exceeded the {} µs threshold; no trace exported",
                cfg.threshold.as_micros()
            );
            if trace_path.is_some() {
                eprintln!("obs-report: --trace requested but the profile is empty");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The `--timeline` mode: live-ingest run per approach with the
/// telemetry timeline armed, all four export formats, and a hard
/// validation gate.
fn timeline_main(args: &[String]) -> ExitCode {
    let (harness, rest) = HarnessConfig::from_args(args);
    let mut cfg = TimelineReportConfig::default();
    let mut json_path: Option<PathBuf> = None;
    let mut prom_path: Option<PathBuf> = None;
    let mut perfetto_path: Option<PathBuf> = None;
    let mut folded_path: Option<PathBuf> = None;
    let mut dashboard_path: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| -> Option<String> {
            if a == name {
                it.next().cloned()
            } else {
                a.strip_prefix(&format!("{name}=")).map(str::to_string)
            }
        };
        if a == "--timeline" {
            continue;
        } else if let Some(v) = grab("--batch") {
            cfg.batch_size = v.parse().expect("--batch takes an integer");
        } else if let Some(v) = grab("--queries") {
            cfg.queries_per_batch = v.parse().expect("--queries takes an integer");
        } else if let Some(v) = grab("--window-us") {
            let us: u64 = v.parse().expect("--window-us takes an integer");
            cfg.window = Duration::from_micros(us);
        } else if let Some(v) = grab("--slo-us") {
            let us: u64 = v.parse().expect("--slo-us takes an integer");
            cfg.threshold = Duration::from_micros(us);
        } else if let Some(v) = grab("--timeline-json") {
            json_path = Some(PathBuf::from(v));
        } else if let Some(v) = grab("--prom") {
            prom_path = Some(PathBuf::from(v));
        } else if let Some(v) = grab("--perfetto") {
            perfetto_path = Some(PathBuf::from(v));
        } else if let Some(v) = grab("--folded") {
            folded_path = Some(PathBuf::from(v));
        } else if let Some(v) = grab("--dashboard") {
            dashboard_path = Some(PathBuf::from(v));
        } else {
            eprintln!("obs-report --timeline: unknown argument `{a}`");
            return ExitCode::FAILURE;
        }
    }

    let report = TimelineReport::collect(&cfg, &harness);
    let dashboard = report.dashboard();
    print!("{dashboard}");

    // The gate: every structural invariant and the schema validator,
    // before any artifact is written.
    if let Err(e) = report.verify() {
        eprintln!("obs-report --timeline: validation failed: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "timeline invariants: ok ({} approaches)",
        report.approaches.len()
    );

    let pretty = |v: &serde::Json| serde_json::to_string_pretty(v).expect("Json always serializes");
    let writes: [(&Option<PathBuf>, &str, String); 5] = [
        (&json_path, "timeline JSON", pretty(&report.bundle_json())),
        (&prom_path, "prometheus", report.prometheus()),
        (&perfetto_path, "perfetto", pretty(&report.perfetto())),
        (&folded_path, "folded stacks", report.folded()),
        (&dashboard_path, "dashboard", dashboard.clone()),
    ];
    for (path, label, body) in &writes {
        if let Some(path) = path {
            if let Err(e) = write_text(path, body) {
                eprintln!("obs-report --timeline: writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("{label:<13} -> {}", path.display());
        }
    }
    ExitCode::SUCCESS
}

fn write_text(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let body = if text.ends_with('\n') {
        text.to_string()
    } else {
        format!("{text}\n")
    };
    std::fs::write(path, body)
}
