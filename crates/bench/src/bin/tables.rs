//! Regenerate Tables 2–8 of the paper.
//!
//! ```text
//! cargo run -p sts-bench --release --bin tables              # all tables
//! cargo run -p sts-bench --release --bin tables -- --table 7
//! ```

use serde::Serialize;
use std::time::Instant;
use sts_bench::{
    build_store, dataset_mbr, dataset_records, dataset_start, save_json, Dataset, HarnessConfig,
};
use sts_core::{build_filter, Approach, StQuery};
use sts_curve::{CurveGrid, RangeBudget, PAPER_CURVE_ORDER};
use sts_document::encoded_size;
use sts_workload::queries::{paper_query, QuerySize};
use sts_workload::Record;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, rest) = HarnessConfig::from_args(&args);
    let table: Option<u32> = rest
        .iter()
        .position(|a| a == "--table")
        .and_then(|i| rest.get(i + 1))
        .and_then(|v| v.parse().ok());
    eprintln!(
        "# tables harness: scale={} shards={} seed={}",
        cfg.scale, cfg.num_shards, cfg.seed
    );
    let wants = |t: u32| table.is_none() || table == Some(t);

    let r_records = dataset_records(Dataset::R, &cfg, 1);
    let s_records = dataset_records(Dataset::S, &cfg, 1);

    if wants(2) || wants(3) {
        tables_2_3(&r_records, &s_records);
    }
    if wants(4) || wants(5) {
        tables_4_5(&cfg);
    }
    if wants(6) {
        table_6(&cfg, &r_records, &s_records);
    }
    if wants(7) {
        table_7(&cfg, &r_records, &s_records);
    }
    if wants(8) {
        table_8();
    }
}

fn count(records: &[Record], q: &StQuery) -> u64 {
    records
        .iter()
        .filter(|r| q.matches(r.lon, r.lat, r.date))
        .count() as u64
}

#[derive(Serialize)]
struct CountRow {
    dataset: String,
    query: String,
    results: u64,
}

/// Tables 2 & 3: result counts of the 8 paper queries on R and S.
fn tables_2_3(r: &[Record], s: &[Record]) {
    let mut rows = Vec::new();
    for (t, size) in [(2u32, QuerySize::Small), (3, QuerySize::Big)] {
        println!(
            "\n== Table {t}: retrieved documents, {} queries ==",
            size.label()
        );
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>10}",
            "dataset", "Q1", "Q2", "Q3", "Q4"
        );
        for (label, records) in [("R", r), ("S", s)] {
            let counts: Vec<u64> = (1..=4)
                .map(|n| count(records, &paper_query(size, n, dataset_start())))
                .collect();
            println!(
                "{:<8} {:>10} {:>10} {:>10} {:>10}",
                label, counts[0], counts[1], counts[2], counts[3]
            );
            for (n, c) in counts.iter().enumerate() {
                rows.push(CountRow {
                    dataset: label.into(),
                    query: format!("{}{}", size.label(), n + 1),
                    results: *c,
                });
            }
        }
    }
    save_json("table2_3", &rows);
}

#[derive(Serialize)]
struct ScaleRow {
    factor: u32,
    documents: u64,
    data_gb: f64,
    qb2_results: u64,
}

/// Tables 4 & 5: data set sizes and Q₂ᵇ result counts for R₁–R₄.
fn tables_4_5(cfg: &HarnessConfig) {
    let mut rows = Vec::new();
    let q = paper_query(QuerySize::Big, 2, dataset_start());
    println!("\n== Table 4 & 5: scale factors R1–R4 ==");
    println!(
        "{:<6} {:>12} {:>12} {:>12}",
        "set", "#docs", "size(GB)", "Qb2 results"
    );
    for factor in 1..=4u32 {
        let records = dataset_records(Dataset::R, cfg, factor);
        // Store-level size: documents with the hilbertIndex field, as
        // Table 4 reports the loaded (hil) collection.
        let grid = CurveGrid::world(PAPER_CURVE_ORDER);
        let bytes: u64 = records
            .iter()
            .map(|r| {
                let mut d = r.to_document();
                d.set(
                    "hilbertIndex",
                    grid.index_of(sts_geo::GeoPoint::new(r.lon, r.lat)) as i64,
                );
                encoded_size(&d) as u64
            })
            .sum();
        let row = ScaleRow {
            factor,
            documents: records.len() as u64,
            data_gb: bytes as f64 / 1e9,
            qb2_results: count(&records, &q),
        };
        println!(
            "R{:<5} {:>12} {:>12.3} {:>12}",
            row.factor, row.documents, row.data_gb, row.qb2_results
        );
        rows.push(row);
    }
    save_json("table4_5", &rows);
}

#[derive(Serialize)]
struct SizeRow {
    dataset: String,
    approach: String,
    data_gb: f64,
    storage_gb: f64,
}

/// Table 6: stored collection size, bsl vs hil, R and S.
fn table_6(cfg: &HarnessConfig, r: &[Record], s: &[Record]) {
    println!("\n== Table 6: data size in the store (GB at current scale) ==");
    println!(
        "{:<8} {:<8} {:>12} {:>14}",
        "dataset", "method", "dataSize", "storageSize"
    );
    let mut rows = Vec::new();
    for (label, dataset, records) in [("R", Dataset::R, r), ("S", Dataset::S, s)] {
        for approach in [Approach::BslST, Approach::Hil] {
            let store = build_store(approach, dataset, records, cfg, false);
            let stats = store.collection_stats();
            let row = SizeRow {
                dataset: label.into(),
                approach: if approach == Approach::BslST {
                    "bsl".into()
                } else {
                    "hil".into()
                },
                data_gb: stats.data_bytes as f64 / 1e9,
                storage_gb: stats.storage_bytes as f64 / 1e9,
            };
            println!(
                "{:<8} {:<8} {:>12.4} {:>14.4}",
                row.dataset, row.approach, row.data_gb, row.storage_gb
            );
            rows.push(row);
        }
    }
    save_json("table6", &rows);
}

#[derive(Serialize)]
struct IndexUsageRow {
    distribution: String,
    dataset: String,
    query: String,
    usage: String,
}

/// Table 7: which index the optimizer picked per query, bslST approach.
fn table_7(cfg: &HarnessConfig, r: &[Record], s: &[Record]) {
    println!("\n== Table 7: index usage, bslST approach ==");
    println!("  ● compound (location,date)   ○ date index   ◐ mixed across nodes");
    let mut rows = Vec::new();
    for (dist, zones) in [("default", false), ("zones", true)] {
        for (label, dataset, records) in [("R", Dataset::R, r), ("S", Dataset::S, s)] {
            let store = build_store(Approach::BslST, dataset, records, cfg, zones);
            for size in [QuerySize::Small, QuerySize::Big] {
                let mut cells = Vec::new();
                for n in 1..=4 {
                    let q = paper_query(size, n, dataset_start());
                    let (_, report) = store.st_query(&q);
                    let used: Vec<String> = report
                        .cluster
                        .indexes_used()
                        .into_iter()
                        .map(|(_, i)| i)
                        .collect();
                    let compound = used.iter().filter(|i| i.contains("location")).count();
                    let glyph = if compound == used.len() {
                        "●"
                    } else if compound == 0 {
                        "○"
                    } else {
                        "◐"
                    };
                    cells.push(glyph.to_string());
                    rows.push(IndexUsageRow {
                        distribution: dist.into(),
                        dataset: label.into(),
                        query: format!("{}{n}", size.label()),
                        usage: glyph.into(),
                    });
                }
                println!(
                    "{:<8} {:<3} {:<3}  Q1:{} Q2:{} Q3:{} Q4:{}",
                    dist,
                    label,
                    size.label(),
                    cells[0],
                    cells[1],
                    cells[2],
                    cells[3]
                );
            }
        }
    }
    save_json("table7", &rows);
}

#[derive(Serialize)]
struct HilbertTimeRow {
    dataset: String,
    method: String,
    query: String,
    micros: f64,
}

/// Table 8: average time of the Hilbert range-identification algorithm.
fn table_8() {
    println!("\n== Table 8: Hilbert range decomposition time (µs; paper reports ms at full precision) ==");
    println!(
        "{:<8} {:<6} {:>10} {:>10}",
        "dataset", "method", "Qs(µs)", "Qb(µs)"
    );
    let reps = 200u32;
    let mut rows = Vec::new();
    for (label, dataset) in [("R", Dataset::R), ("S", Dataset::S)] {
        for (method, grid) in [
            ("hil", CurveGrid::world(PAPER_CURVE_ORDER)),
            (
                "hil*",
                CurveGrid::fitted(dataset_mbr(dataset), PAPER_CURVE_ORDER),
            ),
        ] {
            let mut cells = Vec::new();
            for size in [QuerySize::Small, QuerySize::Big] {
                let q = paper_query(size, 2, dataset_start());
                let start = Instant::now();
                for _ in 0..reps {
                    let (f, _, _) = build_filter(&q, Some(&grid), RangeBudget::default());
                    std::hint::black_box(f);
                }
                let us = start.elapsed().as_secs_f64() * 1e6 / f64::from(reps);
                cells.push(us);
                rows.push(HilbertTimeRow {
                    dataset: label.into(),
                    method: method.into(),
                    query: size.label().into(),
                    micros: us,
                });
            }
            println!(
                "{:<8} {:<6} {:>10.2} {:>10.2}",
                label, method, cells[0], cells[1]
            );
        }
    }
    save_json("table8", &rows);
}
