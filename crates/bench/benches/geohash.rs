//! GeoHash microbenchmarks: point encoding (every 2dsphere index insert)
//! and query-rectangle covering (every `$geoWithin` plan).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sts_geo::{cells_to_ranges, cover_rect, GeoHash, GeoPoint};
use sts_workload::queries::QuerySize;

fn bench_encode(c: &mut Criterion) {
    c.bench_function("geohash_encode_26bit", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let lon = -180.0 + (x % 360_000) as f64 / 1_000.0;
            let lat = -90.0 + ((x >> 32) % 180_000) as f64 / 1_000.0;
            black_box(GeoHash::encode(GeoPoint::new(lon, lat), 26))
        })
    });
}

fn bench_covering(c: &mut Criterion) {
    let mut g = c.benchmark_group("geohash_covering");
    for size in [QuerySize::Small, QuerySize::Big] {
        let rect = size.rect();
        for budget in [20usize, 128] {
            g.bench_function(format!("{}_cells{budget}", size.label()), |b| {
                b.iter(|| {
                    let cells = cover_rect(&rect, 26, budget);
                    black_box(cells_to_ranges(&cells, 26))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_encode, bench_covering);
criterion_main!(benches);
