//! End-to-end query latency per approach on a small preloaded cluster —
//! the Criterion-grade counterpart of Figures 5–8's time panels.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sts_bench::{build_store, dataset_records, dataset_start, Dataset, HarnessConfig};
use sts_core::Approach;
use sts_workload::queries::{paper_query, QuerySize};

fn bench_queries(c: &mut Criterion) {
    let cfg = HarnessConfig {
        scale: 0.002, // keep criterion iterations snappy
        num_shards: 4,
        ..Default::default()
    };
    let records = dataset_records(Dataset::R, &cfg, 1);
    let mut g = c.benchmark_group("query_e2e_R");
    g.sample_size(20);
    for approach in Approach::EXTENDED {
        let store = build_store(approach, Dataset::R, &records, &cfg, false);
        for (size, n) in [(QuerySize::Small, 2), (QuerySize::Big, 2)] {
            let q = paper_query(size, n, dataset_start());
            g.bench_function(format!("{}/{}{n}", approach.name(), size.label()), |b| {
                b.iter(|| black_box(store.st_query(&q)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
