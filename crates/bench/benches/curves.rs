//! Microbenchmarks of the space-filling-curve layer: encode/decode and
//! the Table 8 range-decomposition algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use sts_curve::{hilbert, zorder, CurveGrid, RangeBudget, PAPER_CURVE_ORDER};
use sts_workload::queries::QuerySize;

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("curve_encode");
    for order in [13u32, 16, 24] {
        g.bench_with_input(BenchmarkId::new("hilbert_xy2d", order), &order, |b, &o| {
            let m = (1u64 << o) - 1;
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(0x9E37_79B9) & m;
                black_box(hilbert::xy2d(o, i, m - i))
            })
        });
        g.bench_with_input(BenchmarkId::new("hilbert_d2xy", order), &order, |b, &o| {
            let m = (1u64 << (2 * o)) - 1;
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(0x9E37_79B9_7F4A_7C15) & m;
                black_box(hilbert::d2xy(o, i))
            })
        });
        g.bench_with_input(BenchmarkId::new("zorder_xy2z", order), &order, |b, &o| {
            let m = (1u64 << o) - 1;
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(0x9E37_79B9) & m;
                black_box(zorder::xy2z(o, i, m - i))
            })
        });
    }
    g.finish();
}

/// Table 8's quantity: decompose the paper's query rectangles.
fn bench_decompose(c: &mut Criterion) {
    let mut g = c.benchmark_group("range_decomposition_table8");
    let world = CurveGrid::world(PAPER_CURVE_ORDER);
    let fitted_r = CurveGrid::fitted(sts_workload::R_MBR, PAPER_CURVE_ORDER);
    let fitted_s = CurveGrid::fitted(sts_workload::S_MBR, PAPER_CURVE_ORDER);
    for (name, grid) in [
        ("hil", &world),
        ("hil*_R", &fitted_r),
        ("hil*_S", &fitted_s),
    ] {
        for size in [QuerySize::Small, QuerySize::Big] {
            let rect = size.rect();
            g.bench_function(format!("{name}/{}", size.label()), |b| {
                b.iter(|| black_box(grid.decompose_rect(&rect, RangeBudget::default())))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decompose);
criterion_main!(benches);
