//! snappy-lite compressor throughput on BSON-like blocks (the Table 6
//! size model's inner loop).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use sts_document::encode_document;
use sts_storage::snappy_lite;
use sts_workload::fleet::{generate, FleetConfig};

fn block() -> Vec<u8> {
    let records = generate(&FleetConfig {
        records: 64,
        vehicles: 4,
        ..Default::default()
    });
    let mut buf = Vec::new();
    for r in &records {
        buf.extend_from_slice(&encode_document(&r.to_document()));
    }
    buf
}

fn bench_compress(c: &mut Criterion) {
    let input = block();
    let compressed = snappy_lite::compress(&input);
    eprintln!(
        "# snappy-lite ratio on fleet block: {:.3} ({} -> {})",
        compressed.len() as f64 / input.len() as f64,
        input.len(),
        compressed.len()
    );
    let mut g = c.benchmark_group("snappy_lite");
    g.throughput(Throughput::Bytes(input.len() as u64));
    g.bench_function("compress_fleet_block", |b| {
        b.iter(|| black_box(snappy_lite::compress(&input)))
    });
    g.throughput(Throughput::Bytes(input.len() as u64));
    g.bench_function("decompress_fleet_block", |b| {
        b.iter(|| black_box(snappy_lite::decompress(&compressed).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_compress);
criterion_main!(benches);
