//! B+tree microbenchmarks: the index structure behind every approach.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use std::ops::Bound;
use sts_btree::BTree;

fn key(n: u64) -> [u8; 8] {
    n.to_be_bytes()
}

fn filled(n: u64) -> BTree {
    let mut t = BTree::new();
    for i in 0..n {
        // splitmix to avoid purely-ascending insertion patterns
        let k = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        t.insert(&key(k), i);
    }
    t
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree_insert");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("random_100k", |b| {
        b.iter_batched(
            BTree::new,
            |mut t| {
                for i in 0..100_000u64 {
                    let k = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    t.insert(&key(k), i);
                }
                t
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("ascending_100k", |b| {
        b.iter_batched(
            BTree::new,
            |mut t| {
                for i in 0..100_000u64 {
                    t.insert(&key(i), i);
                }
                t
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let t = filled(200_000);
    let mut g = c.benchmark_group("btree_scan");
    g.bench_function("point_get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let k = (i % 200_000).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            black_box(t.get(&key(k)))
        })
    });
    g.bench_function("range_1k", |b| {
        b.iter(|| {
            let n: u64 = t
                .range(Bound::Included(key(1 << 40).to_vec()), Bound::Unbounded)
                .take(1_000)
                .map(|(_, v)| v)
                .sum();
            black_box(n)
        })
    });
    g.bench_function("estimate_range", |b| {
        b.iter(|| {
            black_box(t.estimate_range(
                &Bound::Included(key(1 << 40).to_vec()),
                &Bound::Excluded(key(1 << 60).to_vec()),
            ))
        })
    });
    g.finish();
}

fn bench_size_report(c: &mut Criterion) {
    let t = filled(100_000);
    c.bench_function("btree_size_report_100k", |b| {
        b.iter(|| black_box(t.size_report()))
    });
}

criterion_group!(benches, bench_insert, bench_scan, bench_size_report);
criterion_main!(benches);
