//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Hilbert vs Z-order** as the 1D mapping (the paper cites Moon et
//!    al. for Hilbert's clustering advantage — here it is, measured);
//! 2. **range-merge budget** — how many `$or` intervals a query carries
//!    trades B-tree seeks against false-positive keys.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sts_curve::locality::clusters_for_rect;
use sts_curve::{CurveGrid, CurveKind, RangeBudget, PAPER_CURVE_ORDER};
use sts_workload::queries::QuerySize;
use sts_workload::R_MBR;

fn bench_curve_choice(c: &mut Criterion) {
    let hilbert = CurveGrid::new(R_MBR, PAPER_CURVE_ORDER, CurveKind::Hilbert);
    let zorder = CurveGrid::new(R_MBR, PAPER_CURVE_ORDER, CurveKind::ZOrder);
    // Report the clustering numbers once (the quality side of the
    // ablation); then benchmark the decomposition cost side.
    for size in [QuerySize::Small, QuerySize::Big] {
        eprintln!(
            "# clusters for {}: hilbert={} zorder={}",
            size.label(),
            clusters_for_rect(&hilbert, &size.rect()),
            clusters_for_rect(&zorder, &size.rect()),
        );
    }
    let mut g = c.benchmark_group("ablation_curve_kind");
    for (name, grid) in [("hilbert", &hilbert), ("zorder", &zorder)] {
        for size in [QuerySize::Small, QuerySize::Big] {
            let rect = size.rect();
            g.bench_function(format!("{name}/{}", size.label()), |b| {
                b.iter(|| black_box(grid.decompose_rect(&rect, RangeBudget::UNLIMITED)))
            });
        }
    }
    g.finish();
}

fn bench_range_budget(c: &mut Criterion) {
    let grid = CurveGrid::new(R_MBR, PAPER_CURVE_ORDER, CurveKind::Hilbert);
    let rect = QuerySize::Big.rect();
    for budget in [4usize, 16, 64, 256, usize::MAX] {
        let n = grid
            .decompose_rect(&rect, RangeBudget::new(budget.min(1 << 20)))
            .len();
        let span: u64 = grid
            .decompose_rect(&rect, RangeBudget::new(budget.min(1 << 20)))
            .iter()
            .map(|(lo, hi)| hi - lo + 1)
            .sum();
        eprintln!("# budget {budget}: {n} ranges, {span} covered cells");
    }
    let mut g = c.benchmark_group("ablation_range_budget");
    for budget in [4usize, 16, 64, 256] {
        g.bench_function(format!("budget{budget}"), |b| {
            b.iter(|| black_box(grid.decompose_rect(&rect, RangeBudget::new(budget))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_curve_choice, bench_range_budget);
criterion_main!(benches);
