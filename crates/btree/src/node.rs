//! Tree nodes.

/// Maximum entries in a leaf before it splits.
pub const LEAF_CAPACITY: usize = 64;
/// Maximum children of an internal node before it splits.
pub const BRANCH_FACTOR: usize = 64;

/// Minimum fill after deletions (half-full invariant, root exempt).
pub(crate) const LEAF_MIN: usize = LEAF_CAPACITY / 2;
pub(crate) const BRANCH_MIN: usize = BRANCH_FACTOR / 2;

pub(crate) enum Node {
    Leaf(Leaf),
    Internal(Internal),
}

/// A leaf holds sorted `(key, record id)` entries.
#[derive(Default)]
pub(crate) struct Leaf {
    pub entries: Vec<(Box<[u8]>, u64)>,
}

/// An internal node: `keys[i]` separates `children[i]` (strictly below)
/// from `children[i+1]` (at or above).
pub(crate) struct Internal {
    pub keys: Vec<Box<[u8]>>,
    pub children: Vec<Node>,
}

impl Node {
    pub fn new_leaf() -> Node {
        Node::Leaf(Leaf::default())
    }

    /// Number of entries in this subtree (walks the tree; used by the
    /// invariant checker, not by hot paths).
    pub fn count(&self) -> usize {
        match self {
            Node::Leaf(l) => l.entries.len(),
            Node::Internal(i) => i.children.iter().map(Node::count).sum(),
        }
    }

    /// First key in this subtree, if any.
    pub fn first_key(&self) -> Option<&[u8]> {
        match self {
            Node::Leaf(l) => l.entries.first().map(|(k, _)| k.as_ref()),
            Node::Internal(i) => i.children.first().and_then(Node::first_key),
        }
    }

    /// Last key in this subtree, if any.
    pub fn last_key(&self) -> Option<&[u8]> {
        match self {
            Node::Leaf(l) => l.entries.last().map(|(k, _)| k.as_ref()),
            Node::Internal(i) => i.children.last().and_then(Node::last_key),
        }
    }
}

impl Internal {
    /// Index of the child whose subtree may contain `key`.
    pub fn child_for(&self, key: &[u8]) -> usize {
        // keys[i] is the smallest key of children[i+1]; pick the last
        // separator <= key.
        match self.keys.binary_search_by(|sep| sep.as_ref().cmp(key)) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }
}
