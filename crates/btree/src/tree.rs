//! The B+tree proper: insert, point get, delete with rebalancing, range
//! scans and cardinality estimation.

use crate::iter::RangeIter;
use crate::node::{Internal, Leaf, Node, BRANCH_FACTOR, BRANCH_MIN, LEAF_CAPACITY, LEAF_MIN};
use crate::KeyBound;
use std::ops::Bound;

/// A B+tree mapping byte-string keys to `u64` record ids.
pub struct BTree {
    root: Node,
    len: usize,
}

impl Default for BTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BTree {
    /// An empty tree.
    pub fn new() -> Self {
        BTree {
            root: Node::new_leaf(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 = a lone leaf).
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut n = &self.root;
        while let Node::Internal(i) = n {
            d += 1;
            n = &i.children[0];
        }
        d
    }

    /// Insert or replace; returns the previous value if the key existed.
    pub fn insert(&mut self, key: &[u8], value: u64) -> Option<u64> {
        let (old, split) = insert_rec(&mut self.root, key, value);
        if let Some((sep, right)) = split {
            let old_root = std::mem::replace(&mut self.root, Node::new_leaf());
            self.root = Node::Internal(Internal {
                keys: vec![sep],
                children: vec![old_root, right],
            });
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Internal(i) => node = &i.children[i.child_for(key)],
                Node::Leaf(l) => {
                    return l
                        .entries
                        .binary_search_by(|(k, _)| k.as_ref().cmp(key))
                        .ok()
                        .map(|idx| l.entries[idx].1)
                }
            }
        }
    }

    /// Remove a key, returning its value if present. Nodes are rebalanced
    /// (borrow from siblings, else merge) to keep the half-full invariant.
    pub fn remove(&mut self, key: &[u8]) -> Option<u64> {
        let removed = remove_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
        }
        // Collapse a root that shrank to a single child.
        if let Node::Internal(i) = &mut self.root {
            if i.children.len() == 1 {
                let child = i.children.pop().unwrap();
                self.root = child;
            }
        }
        removed
    }

    /// Range scan between the given bounds.
    pub fn range(&self, lower: KeyBound, upper: KeyBound) -> RangeIter<'_> {
        RangeIter::new(&self.root, lower, upper)
    }

    /// A forward cursor serving many (ideally sorted) ranges in one
    /// pass, reusing the descent path across ranges that share a node
    /// prefix. See [`BatchCursor`](crate::BatchCursor).
    pub fn batch_cursor(&self) -> crate::BatchCursor<'_> {
        crate::BatchCursor::new(&self.root)
    }

    /// Full scan in key order.
    pub fn iter(&self) -> RangeIter<'_> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// Smallest key, if any.
    pub fn first_key(&self) -> Option<&[u8]> {
        self.root.first_key()
    }

    /// Largest key, if any.
    pub fn last_key(&self) -> Option<&[u8]> {
        self.root.last_key()
    }

    /// Estimate the number of entries in `[lower, upper]` without scanning.
    ///
    /// Uses fractional tree descent (like MongoDB's plan ranking samples
    /// index bounds): accurate to roughly one node's worth of entries at
    /// each level, which is all a planner needs for choosing between plans
    /// that differ by orders of magnitude.
    pub fn estimate_range(&self, lower: &KeyBound, upper: &KeyBound) -> u64 {
        if self.len == 0 {
            return 0;
        }
        let lo = match lower {
            Bound::Unbounded => 0.0,
            Bound::Included(k) | Bound::Excluded(k) => self.position_estimate(k),
        };
        let hi = match upper {
            Bound::Unbounded => 1.0,
            Bound::Included(k) | Bound::Excluded(k) => self.position_estimate(k),
        };
        (((hi - lo).max(0.0)) * self.len as f64).round() as u64
    }

    /// Fraction of entries strictly before `key`, estimated structurally.
    fn position_estimate(&self, key: &[u8]) -> f64 {
        let mut node = &self.root;
        let mut lo = 0.0f64;
        let mut width = 1.0f64;
        loop {
            match node {
                Node::Internal(i) => {
                    let idx = i.child_for(key);
                    width /= i.children.len() as f64;
                    lo += idx as f64 * width;
                    node = &i.children[idx];
                }
                Node::Leaf(l) => {
                    if l.entries.is_empty() {
                        return lo;
                    }
                    let idx = l.entries.partition_point(|(k, _)| k.as_ref() < key);
                    return lo + width * idx as f64 / l.entries.len() as f64;
                }
            }
        }
    }

    pub(crate) fn root(&self) -> &Node {
        &self.root
    }

    /// Verify structural invariants; panics on violation. Test-support.
    pub fn check_invariants(&self) {
        fn walk(node: &Node, depth: usize, leaf_depth: &mut Option<usize>, is_root: bool) {
            match node {
                Node::Leaf(l) => {
                    match leaf_depth {
                        Some(d) => assert_eq!(*d, depth, "uneven leaf depth"),
                        None => *leaf_depth = Some(depth),
                    }
                    assert!(l.entries.len() <= LEAF_CAPACITY, "overfull leaf");
                    if !is_root {
                        assert!(l.entries.len() >= LEAF_MIN, "underfull leaf");
                    }
                    assert!(
                        l.entries.windows(2).all(|w| w[0].0 < w[1].0),
                        "leaf keys out of order"
                    );
                }
                Node::Internal(i) => {
                    assert_eq!(i.keys.len() + 1, i.children.len(), "key/child mismatch");
                    assert!(i.children.len() <= BRANCH_FACTOR, "overfull internal");
                    if !is_root {
                        assert!(i.children.len() >= BRANCH_MIN, "underfull internal");
                    } else {
                        assert!(i.children.len() >= 2, "degenerate root");
                    }
                    assert!(
                        i.keys.windows(2).all(|w| w[0] < w[1]),
                        "separators out of order"
                    );
                    for (idx, child) in i.children.iter().enumerate() {
                        if idx > 0 {
                            let sep = i.keys[idx - 1].as_ref();
                            assert!(
                                child.first_key().is_none_or(|k| k >= sep),
                                "child below separator"
                            );
                        }
                        if idx < i.keys.len() {
                            let sep = i.keys[idx].as_ref();
                            assert!(
                                child.last_key().is_none_or(|k| k < sep),
                                "child above separator"
                            );
                        }
                        walk(child, depth + 1, leaf_depth, false);
                    }
                }
            }
        }
        let mut leaf_depth = None;
        walk(&self.root, 0, &mut leaf_depth, true);
        assert_eq!(self.root.count(), self.len, "len mismatch");
    }
}

/// Result of a recursive insert: the replaced value (if any) and a
/// `(separator, right node)` pair when the child split.
type InsertOutcome = (Option<u64>, Option<(Box<[u8]>, Node)>);

fn insert_rec(node: &mut Node, key: &[u8], value: u64) -> InsertOutcome {
    match node {
        Node::Leaf(leaf) => match leaf.entries.binary_search_by(|(k, _)| k.as_ref().cmp(key)) {
            Ok(idx) => {
                let old = std::mem::replace(&mut leaf.entries[idx].1, value);
                (Some(old), None)
            }
            Err(idx) => {
                leaf.entries.insert(idx, (key.into(), value));
                if leaf.entries.len() > LEAF_CAPACITY {
                    let right_entries = leaf.entries.split_off(leaf.entries.len() / 2);
                    let sep = right_entries[0].0.clone();
                    let right = Node::Leaf(Leaf {
                        entries: right_entries,
                    });
                    (None, Some((sep, right)))
                } else {
                    (None, None)
                }
            }
        },
        Node::Internal(internal) => {
            let idx = internal.child_for(key);
            let (old, split) = insert_rec(&mut internal.children[idx], key, value);
            if let Some((sep, right)) = split {
                internal.keys.insert(idx, sep);
                internal.children.insert(idx + 1, right);
                if internal.children.len() > BRANCH_FACTOR {
                    let mid = internal.children.len() / 2;
                    // keys[mid-1] is promoted; right takes keys[mid..].
                    // Left keeps children[..mid] and keys[..mid-1]; the
                    // right node takes children[mid..] and keys[mid..];
                    // keys[mid-1] is promoted to the parent.
                    let right_children = internal.children.split_off(mid);
                    let right_keys = internal.keys.split_off(mid);
                    let promoted = internal.keys.pop().unwrap();
                    let right = Node::Internal(Internal {
                        keys: right_keys,
                        children: right_children,
                    });
                    return (old, Some((promoted, right)));
                }
            }
            (old, None)
        }
    }
}

fn remove_rec(node: &mut Node, key: &[u8]) -> Option<u64> {
    match node {
        Node::Leaf(leaf) => {
            let idx = leaf
                .entries
                .binary_search_by(|(k, _)| k.as_ref().cmp(key))
                .ok()?;
            Some(leaf.entries.remove(idx).1)
        }
        Node::Internal(internal) => {
            let idx = internal.child_for(key);
            let removed = remove_rec(&mut internal.children[idx], key)?;
            if is_underfull(&internal.children[idx]) {
                fix_underflow(internal, idx);
            }
            Some(removed)
        }
    }
}

fn is_underfull(node: &Node) -> bool {
    match node {
        Node::Leaf(l) => l.entries.len() < LEAF_MIN,
        Node::Internal(i) => i.children.len() < BRANCH_MIN,
    }
}

fn can_lend(node: &Node) -> bool {
    match node {
        Node::Leaf(l) => l.entries.len() > LEAF_MIN,
        Node::Internal(i) => i.children.len() > BRANCH_MIN,
    }
}

/// Restore the half-full invariant of `parent.children[idx]` by borrowing
/// from a sibling or merging with one.
fn fix_underflow(parent: &mut Internal, idx: usize) {
    // Try borrowing from the left sibling.
    if idx > 0 && can_lend(&parent.children[idx - 1]) {
        let (left_slice, right_slice) = parent.children.split_at_mut(idx);
        let left = left_slice.last_mut().unwrap();
        let cur = &mut right_slice[0];
        match (left, cur) {
            (Node::Leaf(l), Node::Leaf(c)) => {
                let moved = l.entries.pop().unwrap();
                parent.keys[idx - 1] = moved.0.clone();
                c.entries.insert(0, moved);
            }
            (Node::Internal(l), Node::Internal(c)) => {
                let child = l.children.pop().unwrap();
                let sep = l.keys.pop().unwrap();
                let old_sep = std::mem::replace(&mut parent.keys[idx - 1], sep);
                c.keys.insert(0, old_sep);
                c.children.insert(0, child);
            }
            _ => unreachable!("siblings at same depth share node kind"),
        }
        return;
    }
    // Try borrowing from the right sibling.
    if idx + 1 < parent.children.len() && can_lend(&parent.children[idx + 1]) {
        let (left_slice, right_slice) = parent.children.split_at_mut(idx + 1);
        let cur = left_slice.last_mut().unwrap();
        let right = &mut right_slice[0];
        match (cur, right) {
            (Node::Leaf(c), Node::Leaf(r)) => {
                let moved = r.entries.remove(0);
                c.entries.push(moved);
                parent.keys[idx] = r.entries[0].0.clone();
            }
            (Node::Internal(c), Node::Internal(r)) => {
                let child = r.children.remove(0);
                let sep = r.keys.remove(0);
                let old_sep = std::mem::replace(&mut parent.keys[idx], sep);
                c.keys.push(old_sep);
                c.children.push(child);
            }
            _ => unreachable!("siblings at same depth share node kind"),
        }
        return;
    }
    // Merge with a sibling (prefer left).
    let merge_left_idx = if idx > 0 { idx - 1 } else { idx };
    let sep = parent.keys.remove(merge_left_idx);
    let right_node = parent.children.remove(merge_left_idx + 1);
    match (&mut parent.children[merge_left_idx], right_node) {
        (Node::Leaf(l), Node::Leaf(mut r)) => {
            l.entries.append(&mut r.entries);
        }
        (Node::Internal(l), Node::Internal(mut r)) => {
            l.keys.push(sep);
            l.keys.append(&mut r.keys);
            l.children.append(&mut r.children);
        }
        _ => unreachable!("siblings at same depth share node kind"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use std::collections::BTreeMap;

    fn key(n: u64) -> Vec<u8> {
        n.to_be_bytes().to_vec()
    }

    #[test]
    fn insert_get_replace() {
        let mut t = BTree::new();
        assert_eq!(t.insert(&key(5), 50), None);
        assert_eq!(t.insert(&key(5), 51), Some(50));
        assert_eq!(t.get(&key(5)), Some(51));
        assert_eq!(t.get(&key(6)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn bulk_insert_ascending_and_descending() {
        for rev in [false, true] {
            let mut t = BTree::new();
            let mut order: Vec<u64> = (0..10_000).collect();
            if rev {
                order.reverse();
            }
            for i in order {
                t.insert(&key(i), i);
            }
            t.check_invariants();
            assert_eq!(t.len(), 10_000);
            assert!(t.depth() >= 2);
            for i in (0..10_000).step_by(97) {
                assert_eq!(t.get(&key(i)), Some(i));
            }
        }
    }

    #[test]
    fn remove_everything_random_order() {
        let mut t = BTree::new();
        let n = 5_000u64;
        for i in 0..n {
            t.insert(&key(i), i);
        }
        let mut order: Vec<u64> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(42);
        order.shuffle(&mut rng);
        for (step, i) in order.iter().enumerate() {
            assert_eq!(t.remove(&key(*i)), Some(*i));
            if step % 512 == 0 {
                t.check_invariants();
            }
        }
        assert!(t.is_empty());
        t.check_invariants();
        assert_eq!(t.remove(&key(1)), None);
    }

    #[test]
    fn range_scan_matches_model() {
        let mut t = BTree::new();
        let mut model = BTreeMap::new();
        for i in (0..2_000u64).step_by(3) {
            t.insert(&key(i), i);
            model.insert(key(i), i);
        }
        let lo = key(100);
        let hi = key(1_000);
        let got: Vec<u64> = t
            .range(Bound::Included(lo.clone()), Bound::Excluded(hi.clone()))
            .map(|(_, v)| v)
            .collect();
        let want: Vec<u64> = model
            .range::<Vec<u8>, _>((Bound::Included(&lo), Bound::Excluded(&hi)))
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn estimate_is_order_of_magnitude_correct() {
        let mut t = BTree::new();
        for i in 0..50_000u64 {
            t.insert(&key(i), i);
        }
        let est = t.estimate_range(&Bound::Included(key(10_000)), &Bound::Excluded(key(20_000)));
        let exact = 10_000f64;
        assert!(
            (est as f64) > exact * 0.5 && (est as f64) < exact * 2.0,
            "estimate {est} too far from {exact}"
        );
        // Empty range estimates near zero.
        let est0 = t.estimate_range(&Bound::Included(key(60_000)), &Bound::Unbounded);
        assert!(est0 < 500, "{est0}");
    }

    #[test]
    fn first_last_depth() {
        let mut t = BTree::new();
        assert_eq!(t.first_key(), None);
        for i in [5u64, 1, 9, 3] {
            t.insert(&key(i), i);
        }
        assert_eq!(t.first_key(), Some(&key(1)[..]));
        assert_eq!(t.last_key(), Some(&key(9)[..]));
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn variable_length_keys() {
        let mut t = BTree::new();
        let keys: Vec<Vec<u8>> = (0..1_000)
            .map(|i| format!("k{:0width$}", i, width = (i % 7) + 3).into_bytes())
            .collect();
        for (i, k) in keys.iter().enumerate() {
            t.insert(k, i as u64);
        }
        t.check_invariants();
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        let scanned: Vec<Vec<u8>> = t.iter().map(|(k, _)| k.to_vec()).collect();
        assert_eq!(scanned, sorted);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_matches_btreemap(ops in proptest::collection::vec(
            (proptest::num::u16::ANY, proptest::bool::ANY), 1..400)) {
            let mut t = BTree::new();
            let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
            for (k, is_insert) in ops {
                let kb = key(u64::from(k) % 128); // force collisions
                if is_insert {
                    prop_assert_eq!(t.insert(&kb, u64::from(k)), model.insert(kb, u64::from(k)));
                } else {
                    prop_assert_eq!(t.remove(&kb), model.remove(&kb));
                }
            }
            t.check_invariants();
            prop_assert_eq!(t.len(), model.len());
            let got: Vec<(Vec<u8>, u64)> = t.iter().map(|(k, v)| (k.to_vec(), v)).collect();
            let want: Vec<(Vec<u8>, u64)> = model.into_iter().collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_range_bounds(lo in 0u64..300, span in 0u64..300,
                             incl_lo in proptest::bool::ANY, incl_hi in proptest::bool::ANY) {
            let mut t = BTree::new();
            let mut model = BTreeMap::new();
            for i in 0..300u64 {
                t.insert(&key(i * 2), i); // gaps so bounds fall between keys
                model.insert(key(i * 2), i);
            }
            let hi = lo + span;
            let lb = if incl_lo { Bound::Included(key(lo)) } else { Bound::Excluded(key(lo)) };
            let ub = if incl_hi { Bound::Included(key(hi)) } else { Bound::Excluded(key(hi)) };
            let got: Vec<u64> = t.range(lb.clone(), ub.clone()).map(|(_, v)| v).collect();
            let lbr = match &lb { Bound::Included(k) => Bound::Included(k.clone()), Bound::Excluded(k) => Bound::Excluded(k.clone()), _ => Bound::Unbounded };
            let ubr = match &ub { Bound::Included(k) => Bound::Included(k.clone()), Bound::Excluded(k) => Bound::Excluded(k.clone()), _ => Bound::Unbounded };
            let want: Vec<u64> = model.range((lbr, ubr)).map(|(_, v)| *v).collect();
            prop_assert_eq!(got, want);
        }
    }
}
