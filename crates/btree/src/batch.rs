//! Multi-range cursor: one descent amortized across sorted ranges.
//!
//! Serving a Hilbert covering means scanning dozens of index ranges that
//! are sorted and frequently land in the same region of the tree. A
//! fresh [`RangeIter`](crate::RangeIter) per range re-descends from the
//! root and clones both bounds; this cursor instead keeps its descent
//! path and, when the next range's lower bound still falls inside the
//! current subtree, reuses the shared prefix of the path — popping only
//! the levels the target actually leaves, in the style of HOC-Tree's
//! shared-prefix range batching. Bounds are borrowed (`Bound<&[u8]>`)
//! and the path lives in a fixed-size inline stack, so a whole batch of
//! ranges is served without a single heap allocation.
//!
//! Accounting matches [`RangeIter`](crate::RangeIter) exactly: every
//! touched entry counts toward `keys_examined` (including the
//! out-of-range entry that terminates a range), and each
//! [`seek`](BatchCursor::seek) counts one `seek` regardless of how much
//! of the path it reused.

use crate::node::{Internal, Leaf, Node};
use std::ops::Bound;

/// Deepest tree this cursor can serve. With a branch factor of 64 and
/// the half-full invariant, depth 32 needs over 2^150 entries — far
/// beyond anything addressable; [`BatchCursor::seek`] would panic on a
/// deeper tree rather than corrupt its path.
const MAX_DEPTH: usize = 32;

/// One retained level of the descent path: an internal node, the child
/// index currently descended into, and the subtree's exclusive upper
/// separator (`None` = unbounded, inherited from the parent when the
/// child is the node's last).
type Level<'a> = (&'a Internal, usize, Option<&'a [u8]>);

/// A forward cursor over `(key, record id)` entries serving many ranges
/// in one pass.
///
/// ```
/// use sts_btree::BTree;
/// use std::ops::Bound;
///
/// let mut t = BTree::new();
/// for i in 0..100u64 {
///     t.insert(&i.to_be_bytes(), i);
/// }
/// let mut cur = t.batch_cursor();
/// let mut hits = Vec::new();
/// for (lo, hi) in [(5u64, 8u64), (40, 42), (97, 99)] {
///     cur.seek(Bound::Included(&lo.to_be_bytes()));
///     while let Some((_, rid)) = cur.next(Bound::Included(&hi.to_be_bytes()[..])) {
///         hits.push(rid);
///     }
/// }
/// assert_eq!(hits, vec![5, 6, 7, 8, 40, 41, 42, 97, 98, 99]);
/// ```
pub struct BatchCursor<'a> {
    root: &'a Node,
    stack: [Option<Level<'a>>; MAX_DEPTH],
    depth: usize,
    leaf: Option<(&'a Leaf, usize)>,
    /// Range-scan termination latch (mirrors `RangeIter::done`).
    done: bool,
    keys_examined: u64,
    seeks: u64,
}

impl<'a> BatchCursor<'a> {
    pub(crate) fn new(root: &'a Node) -> Self {
        BatchCursor {
            root,
            stack: [None; MAX_DEPTH],
            depth: 0,
            leaf: None,
            done: true,
            keys_examined: 0,
            seeks: 0,
        }
    }

    /// Index entries touched so far, including each range's terminating
    /// out-of-range probe — `totalKeysExamined` semantics, identical to
    /// running a fresh [`RangeIter`](crate::RangeIter) per range.
    pub fn keys_examined(&self) -> u64 {
        self.keys_examined
    }

    /// Number of repositionings ([`seek`](Self::seek) calls): the batch
    /// analogue of "one descent per range".
    pub fn seeks(&self) -> u64 {
        self.seeks
    }

    /// Position at the first entry satisfying `lower`.
    ///
    /// When the target lies at or beyond the current leaf's first key,
    /// the retained path is reused: only the levels whose subtree the
    /// target leaves are popped and re-descended. A backward target
    /// (unsorted batch) falls back to a full root descent — correct for
    /// any seek order, fast for the sorted one.
    pub fn seek(&mut self, lower: Bound<&[u8]>) {
        self.seeks += 1;
        self.done = false;
        let reusable = match (lower, self.leaf) {
            // Reuse only when the target cannot precede the current
            // leaf: its first key is this path's lower frontier.
            (Bound::Included(t) | Bound::Excluded(t), Some((leaf, _))) => {
                leaf.entries.first().is_some_and(|(k, _)| k.as_ref() <= t)
            }
            _ => false,
        };
        if !reusable {
            self.depth = 0;
            self.leaf = None;
            self.descend(self.root, lower);
            return;
        }
        let (Bound::Included(t) | Bound::Excluded(t)) = lower else {
            unreachable!("reusable path requires a bounded target");
        };
        // Pop levels until the target falls below the subtree's upper
        // separator (or the subtree is upper-unbounded).
        let mut node: &'a Node = match self.leaf {
            Some((l, _)) if upper_open(self.stack[..self.depth].last(), t) => {
                // Target still inside the current leaf's subtree.
                self.position_in_leaf(l, lower);
                return;
            }
            _ => {
                self.leaf = None;
                loop {
                    let Some(&Some((internal, idx, _))) = self.stack[..self.depth].last() else {
                        // Path exhausted: target beyond every retained
                        // subtree; restart from the root.
                        self.depth = 0;
                        self.descend(self.root, lower);
                        return;
                    };
                    if upper_open(self.stack[..self.depth - 1].last(), t) {
                        // The target re-enters at this internal node:
                        // advance the child index (forward only) and
                        // descend from there.
                        let from = idx;
                        let rel = internal.keys[from..].partition_point(|sep| sep.as_ref() <= t);
                        let child = from + rel;
                        self.depth -= 1;
                        self.push_level(internal, child);
                        break &internal.children[child];
                    }
                    self.depth -= 1;
                }
            }
        };
        loop {
            match node {
                Node::Internal(i) => {
                    let child = i.keys.partition_point(|sep| sep.as_ref() <= t);
                    self.push_level(i, child);
                    node = &i.children[child];
                }
                Node::Leaf(l) => {
                    self.position_in_leaf(l, lower);
                    return;
                }
            }
        }
    }

    /// Next entry at or below `upper`, or `None` when the range is
    /// exhausted (the probe that discovers exhaustion is counted).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self, upper: Bound<&[u8]>) -> Option<(&'a [u8], u64)> {
        if self.done {
            return None;
        }
        loop {
            let (leaf, idx) = self.leaf?;
            if idx < leaf.entries.len() {
                let (k, v) = &leaf.entries[idx];
                self.keys_examined += 1;
                let within = match upper {
                    Bound::Unbounded => true,
                    Bound::Included(u) => k.as_ref() <= u,
                    Bound::Excluded(u) => k.as_ref() < u,
                };
                if !within {
                    self.done = true;
                    return None;
                }
                self.leaf = Some((leaf, idx + 1));
                return Some((k.as_ref(), *v));
            }
            if !self.advance_leaf() {
                self.done = true;
                return None;
            }
        }
    }

    /// Full descent from `node` (initial position or backward fallback).
    fn descend(&mut self, node: &'a Node, lower: Bound<&[u8]>) {
        let mut node = node;
        loop {
            match node {
                Node::Internal(i) => {
                    let child = match lower {
                        Bound::Unbounded => 0,
                        Bound::Included(t) | Bound::Excluded(t) => {
                            i.keys.partition_point(|sep| sep.as_ref() <= t)
                        }
                    };
                    self.push_level(i, child);
                    node = &i.children[child];
                }
                Node::Leaf(l) => {
                    self.position_in_leaf(l, lower);
                    return;
                }
            }
        }
    }

    fn position_in_leaf(&mut self, leaf: &'a Leaf, lower: Bound<&[u8]>) {
        let idx = match lower {
            Bound::Unbounded => 0,
            Bound::Included(t) => leaf.entries.partition_point(|(e, _)| e.as_ref() < t),
            Bound::Excluded(t) => leaf.entries.partition_point(|(e, _)| e.as_ref() <= t),
        };
        self.leaf = Some((leaf, idx));
    }

    /// Record a level: child `idx` of `internal`, deriving the subtree's
    /// upper separator from the node or, for the last child, the parent.
    fn push_level(&mut self, internal: &'a Internal, idx: usize) {
        let inherited = match self.stack[..self.depth].last() {
            Some(&Some((_, _, upper))) => upper,
            _ => None,
        };
        let upper = internal.keys.get(idx).map(|k| k.as_ref()).or(inherited);
        assert!(self.depth < MAX_DEPTH, "tree deeper than MAX_DEPTH");
        self.stack[self.depth] = Some((internal, idx, upper));
        self.depth += 1;
    }

    /// Move to the first entry of the next leaf in key order.
    fn advance_leaf(&mut self) -> bool {
        while self.depth > 0 {
            let Some((internal, idx, _)) = self.stack[self.depth - 1] else {
                unreachable!("levels below depth are always populated");
            };
            if idx + 1 < internal.children.len() {
                self.depth -= 1;
                self.push_level(internal, idx + 1);
                let mut node = &internal.children[idx + 1];
                loop {
                    match node {
                        Node::Internal(i) => {
                            self.push_level(i, 0);
                            node = &i.children[0];
                        }
                        Node::Leaf(l) => {
                            self.leaf = Some((l, 0));
                            return true;
                        }
                    }
                }
            }
            self.depth -= 1;
        }
        self.leaf = None;
        false
    }
}

/// True when `t` is inside the open upper boundary of the level's
/// subtree (no separator, or `t` strictly below it).
fn upper_open(level: Option<&Option<Level<'_>>>, t: &[u8]) -> bool {
    match level {
        Some(&Some((_, _, Some(upper)))) => t < upper,
        Some(&Some((_, _, None))) | None => true,
        Some(&None) => unreachable!("levels below depth are always populated"),
    }
}

#[cfg(test)]
mod tests {
    use crate::BTree;
    use std::ops::Bound;

    fn key(n: u64) -> [u8; 8] {
        n.to_be_bytes()
    }

    fn tree(n: u64) -> BTree {
        let mut t = BTree::new();
        for i in 0..n {
            t.insert(&key(i), i);
        }
        t
    }

    /// Collect one range through the batch cursor.
    fn scan(cur: &mut super::BatchCursor<'_>, lo: u64, hi: u64) -> Vec<u64> {
        cur.seek(Bound::Included(&key(lo)));
        let hi = key(hi);
        let mut out = Vec::new();
        while let Some((_, v)) = cur.next(Bound::Excluded(&hi[..])) {
            out.push(v);
        }
        out
    }

    #[test]
    fn batch_equals_fresh_iterators() {
        let t = tree(10_000);
        let ranges = [
            (5u64, 40u64),
            (41, 45),
            (300, 302),
            (4_000, 4_500),
            (9_990, 10_100),
        ];
        let mut cur = t.batch_cursor();
        let mut batch_keys = 0;
        let mut batched = Vec::new();
        for &(lo, hi) in &ranges {
            batched.extend(scan(&mut cur, lo, hi));
        }
        batch_keys += cur.keys_examined();
        let mut fresh = Vec::new();
        let mut fresh_keys = 0;
        for &(lo, hi) in &ranges {
            let mut it = t.range(
                Bound::Included(key(lo).to_vec()),
                Bound::Excluded(key(hi).to_vec()),
            );
            fresh.extend(it.by_ref().map(|(_, v)| v));
            fresh_keys += it.keys_examined();
        }
        assert_eq!(batched, fresh);
        assert_eq!(batch_keys, fresh_keys, "identical totalKeysExamined");
        assert_eq!(cur.seeks(), ranges.len() as u64);
    }

    #[test]
    fn adjacent_ranges_share_the_leaf() {
        let t = tree(1_000);
        let mut cur = t.batch_cursor();
        // Consecutive tiny ranges within one leaf: after the first seek
        // the cursor only repositions within the retained path.
        let mut all = Vec::new();
        for start in (0..60u64).step_by(3) {
            all.extend(scan(&mut cur, start, start + 3));
        }
        assert_eq!(all, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn backward_seek_falls_back_correctly() {
        let t = tree(5_000);
        let mut cur = t.batch_cursor();
        assert_eq!(scan(&mut cur, 4_000, 4_003), vec![4_000, 4_001, 4_002]);
        // Unsorted batch: a backward target must still be served.
        assert_eq!(scan(&mut cur, 10, 12), vec![10, 11]);
        assert_eq!(scan(&mut cur, 4_500, 4_502), vec![4_500, 4_501]);
    }

    #[test]
    fn unbounded_and_empty_ranges() {
        let t = tree(100);
        let mut cur = t.batch_cursor();
        cur.seek(Bound::Unbounded);
        assert_eq!(cur.next(Bound::Unbounded).unwrap().1, 0);
        // Empty range between stored keys.
        let mut cur = t.batch_cursor();
        cur.seek(Bound::Excluded(&key(50)));
        let upper = key(51);
        assert!(cur.next(Bound::Excluded(&upper[..])).is_none());
        // Probing key 51 to terminate counts, like RangeIter.
        assert_eq!(cur.keys_examined(), 1);
    }

    #[test]
    fn seek_past_end_of_tree() {
        let t = tree(100);
        let mut cur = t.batch_cursor();
        assert_eq!(scan(&mut cur, 98, 200), vec![98, 99]);
        assert_eq!(scan(&mut cur, 300, 400), Vec::<u64>::new());
        assert_eq!(cur.keys_examined(), 2, "no terminator at tree end");
    }

    #[test]
    fn empty_tree() {
        let t = BTree::new();
        let mut cur = t.batch_cursor();
        cur.seek(Bound::Unbounded);
        assert!(cur.next(Bound::Unbounded).is_none());
    }

    /// Differential check across many random-ish sorted batches.
    #[test]
    fn randomized_sorted_batches_match() {
        let t = tree(20_000);
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let mut ranges: Vec<(u64, u64)> = (0..20)
                .map(|_| {
                    let lo = rnd() % 20_500;
                    (lo, lo + rnd() % 64)
                })
                .collect();
            ranges.sort_unstable();
            let mut cur = t.batch_cursor();
            let mut batched = Vec::new();
            for &(lo, hi) in &ranges {
                batched.extend(scan(&mut cur, lo, hi));
            }
            let mut fresh = Vec::new();
            let mut fresh_keys = 0;
            for &(lo, hi) in &ranges {
                let mut it = t.range(
                    Bound::Included(key(lo).to_vec()),
                    Bound::Excluded(key(hi).to_vec()),
                );
                fresh.extend(it.by_ref().map(|(_, v)| v));
                fresh_keys += it.keys_examined();
            }
            assert_eq!(batched, fresh);
            assert_eq!(cur.keys_examined(), fresh_keys);
        }
    }
}
