//! Index size accounting with WiredTiger-style prefix compression.
//!
//! MongoDB stores indexes in WiredTiger with *prefix compression*: within
//! a page, each key stores only the byte suffix that differs from the
//! previous key, plus a small header. §A.3 of the paper analyses index
//! sizes (Fig. 14) entirely in terms of this compression — e.g. `_id`
//! indexes grow after zone migrations because shuffled ObjectIds share
//! shorter prefixes. This module reproduces that accounting.

use crate::node::Node;
use crate::BTree;

/// Per-entry storage overhead besides key bytes (cell descriptor + value).
const ENTRY_OVERHEAD: usize = 2 + 8;
/// Fixed per-node page header cost.
const NODE_OVERHEAD: usize = 32;
/// Per-child pointer cost in internal pages.
const CHILD_PTR: usize = 8;

/// Size breakdown of one B+tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SizeReport {
    /// Number of key/value entries.
    pub entries: u64,
    /// Leaf bytes without prefix compression.
    pub uncompressed_bytes: u64,
    /// Leaf bytes with per-page prefix compression (WiredTiger style).
    pub prefix_compressed_bytes: u64,
    /// Internal (separator + pointer) bytes.
    pub internal_bytes: u64,
    /// Leaf page count.
    pub leaf_nodes: u64,
    /// Internal page count.
    pub internal_nodes: u64,
}

impl SizeReport {
    /// Total on-disk footprint with compression enabled.
    pub fn total_compressed(&self) -> u64 {
        self.prefix_compressed_bytes + self.internal_bytes
    }

    /// Total footprint without compression.
    pub fn total_uncompressed(&self) -> u64 {
        self.uncompressed_bytes + self.internal_bytes
    }

    /// Bytes saved by prefix compression, as a fraction of leaf bytes.
    pub fn compression_ratio(&self) -> f64 {
        if self.uncompressed_bytes == 0 {
            return 0.0;
        }
        1.0 - self.prefix_compressed_bytes as f64 / self.uncompressed_bytes as f64
    }

    /// Accumulate another report (summing indexes across shards).
    pub fn merge(&mut self, other: &SizeReport) {
        self.entries += other.entries;
        self.uncompressed_bytes += other.uncompressed_bytes;
        self.prefix_compressed_bytes += other.prefix_compressed_bytes;
        self.internal_bytes += other.internal_bytes;
        self.leaf_nodes += other.leaf_nodes;
        self.internal_nodes += other.internal_nodes;
    }
}

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

impl BTree {
    /// Compute the size report by walking every page.
    pub fn size_report(&self) -> SizeReport {
        let mut r = SizeReport::default();
        walk(self.root(), &mut r);
        r
    }
}

fn walk(node: &Node, r: &mut SizeReport) {
    match node {
        Node::Leaf(l) => {
            r.leaf_nodes += 1;
            r.uncompressed_bytes += NODE_OVERHEAD as u64;
            r.prefix_compressed_bytes += NODE_OVERHEAD as u64;
            let mut prev: Option<&[u8]> = None;
            for (k, _) in &l.entries {
                r.entries += 1;
                r.uncompressed_bytes += (k.len() + ENTRY_OVERHEAD) as u64;
                // First key on a page is stored whole (the page must be
                // self-describing); later keys store only their suffix
                // plus one byte recording the shared-prefix length.
                let stored = match prev {
                    None => k.len(),
                    Some(p) => k.len() - common_prefix_len(p, k) + 1,
                };
                r.prefix_compressed_bytes += (stored + ENTRY_OVERHEAD) as u64;
                prev = Some(k.as_ref());
            }
        }
        Node::Internal(i) => {
            r.internal_nodes += 1;
            r.internal_bytes += NODE_OVERHEAD as u64;
            r.internal_bytes += i.keys.iter().map(|k| k.len() as u64).sum::<u64>();
            r.internal_bytes += (i.children.len() * CHILD_PTR) as u64;
            for c in &i.children {
                walk(c, r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with_keys(keys: impl IntoIterator<Item = Vec<u8>>) -> BTree {
        let mut t = BTree::new();
        for (i, k) in keys.into_iter().enumerate() {
            t.insert(&k, i as u64);
        }
        t
    }

    #[test]
    fn empty_tree_report() {
        let t = BTree::new();
        let r = t.size_report();
        assert_eq!(r.entries, 0);
        assert_eq!(r.leaf_nodes, 1);
        assert_eq!(r.internal_nodes, 0);
    }

    #[test]
    fn shared_prefixes_compress_better_than_random() {
        // Keys sharing long prefixes (ObjectIds made in the same second)…
        let shared = tree_with_keys((0..5_000u32).map(|i| {
            let mut k = b"commonprefix-2018-10-01-".to_vec();
            k.extend_from_slice(&i.to_be_bytes());
            k
        }));
        // …versus keys with scattered prefixes (shuffled across shards).
        let scattered = tree_with_keys((0..5_000u32).map(|i| {
            let mut k = (i.wrapping_mul(0x9E37_79B9)).to_be_bytes().to_vec();
            k.extend_from_slice(b"commonprefix-2018-10-01-");
            k
        }));
        let rs = shared.size_report();
        let rc = scattered.size_report();
        assert!(rs.compression_ratio() > 0.5, "{}", rs.compression_ratio());
        assert!(
            rs.prefix_compressed_bytes < rc.prefix_compressed_bytes,
            "shared {} !< scattered {}",
            rs.prefix_compressed_bytes,
            rc.prefix_compressed_bytes
        );
    }

    #[test]
    fn compressed_never_exceeds_uncompressed() {
        let t = tree_with_keys((0..3_000u64).map(|i| i.to_be_bytes().to_vec()));
        let r = t.size_report();
        assert!(r.prefix_compressed_bytes <= r.uncompressed_bytes);
        assert_eq!(r.entries, 3_000);
        assert!(r.internal_nodes >= 1);
    }

    #[test]
    fn merge_sums_fields() {
        let t = tree_with_keys((0..100u64).map(|i| i.to_be_bytes().to_vec()));
        let r = t.size_report();
        let mut acc = SizeReport::default();
        acc.merge(&r);
        acc.merge(&r);
        assert_eq!(acc.entries, 200);
        assert_eq!(acc.total_compressed(), 2 * r.total_compressed());
    }
}
