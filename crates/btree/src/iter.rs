//! Range iteration with keys-examined accounting.

use crate::node::{Internal, Leaf, Node};
use crate::KeyBound;
use std::ops::Bound;

/// Iterator over `(key, record id)` entries within a key range.
///
/// Tracks [`keys_examined`](RangeIter::keys_examined): every index entry
/// the scan *touched*, including the out-of-bounds entry that terminates
/// the scan — matching MongoDB's `totalKeysExamined` semantics, which is
/// the metric plotted in Figs. 5–13 of the paper.
pub struct RangeIter<'a> {
    /// Internal nodes with the index of the next child to descend into.
    stack: Vec<(&'a Internal, usize)>,
    leaf: Option<(&'a Leaf, usize)>,
    upper: KeyBound,
    done: bool,
    keys_examined: u64,
}

impl<'a> RangeIter<'a> {
    pub(crate) fn new(root: &'a Node, lower: KeyBound, upper: KeyBound) -> Self {
        let mut it = RangeIter {
            stack: Vec::new(),
            leaf: None,
            upper,
            done: false,
            keys_examined: 0,
        };
        it.descend_for_lower(root, &lower);
        it
    }

    /// Position the cursor at the first entry >= / > the lower bound.
    fn descend_for_lower(&mut self, root: &'a Node, lower: &KeyBound) {
        let mut node = root;
        loop {
            match node {
                Node::Internal(i) => {
                    let idx = match lower {
                        Bound::Unbounded => 0,
                        Bound::Included(k) | Bound::Excluded(k) => i.child_for(k),
                    };
                    self.stack.push((i, idx + 1));
                    node = &i.children[idx];
                }
                Node::Leaf(l) => {
                    let idx = match lower {
                        Bound::Unbounded => 0,
                        Bound::Included(k) => {
                            l.entries.partition_point(|(e, _)| e.as_ref() < &k[..])
                        }
                        Bound::Excluded(k) => {
                            l.entries.partition_point(|(e, _)| e.as_ref() <= &k[..])
                        }
                    };
                    self.leaf = Some((l, idx));
                    return;
                }
            }
        }
    }

    /// Advance to the next leaf in key order (after the current one).
    fn next_leaf(&mut self) -> bool {
        while let Some((internal, idx)) = self.stack.pop() {
            if idx < internal.children.len() {
                self.stack.push((internal, idx + 1));
                // Descend along the leftmost path.
                let mut node = &internal.children[idx];
                loop {
                    match node {
                        Node::Internal(i) => {
                            self.stack.push((i, 1));
                            node = &i.children[0];
                        }
                        Node::Leaf(l) => {
                            self.leaf = Some((l, 0));
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    fn within_upper(&self, key: &[u8]) -> bool {
        match &self.upper {
            Bound::Unbounded => true,
            Bound::Included(u) => key <= &u[..],
            Bound::Excluded(u) => key < &u[..],
        }
    }

    /// Index entries touched so far (including the terminating one).
    pub fn keys_examined(&self) -> u64 {
        self.keys_examined
    }
}

impl<'a> Iterator for RangeIter<'a> {
    type Item = (&'a [u8], u64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let (leaf, idx) = self.leaf?;
            if idx < leaf.entries.len() {
                let (k, v) = &leaf.entries[idx];
                self.keys_examined += 1;
                if !self.within_upper(k) {
                    self.done = true;
                    return None;
                }
                self.leaf = Some((leaf, idx + 1));
                return Some((k.as_ref(), *v));
            }
            if !self.next_leaf() {
                self.done = true;
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::BTree;
    use std::ops::Bound;

    fn key(n: u64) -> Vec<u8> {
        n.to_be_bytes().to_vec()
    }

    fn tree(n: u64) -> BTree {
        let mut t = BTree::new();
        for i in 0..n {
            t.insert(&key(i), i);
        }
        t
    }

    #[test]
    fn full_scan_in_order() {
        let t = tree(1_000);
        let vals: Vec<u64> = t.iter().map(|(_, v)| v).collect();
        assert_eq!(vals, (0..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn keys_examined_counts_terminator() {
        let t = tree(1_000);
        let mut it = t.range(Bound::Included(key(10)), Bound::Excluded(key(20)));
        let n = it.by_ref().count();
        assert_eq!(n, 10);
        // 10 in-range entries + key 20 inspected to terminate.
        assert_eq!(it.keys_examined(), 11);
    }

    #[test]
    fn keys_examined_without_terminator_at_tree_end() {
        let t = tree(100);
        let mut it = t.range(Bound::Included(key(90)), Bound::Unbounded);
        let n = it.by_ref().count();
        assert_eq!(n, 10);
        assert_eq!(it.keys_examined(), 10);
    }

    #[test]
    fn empty_tree_scan() {
        let t = BTree::new();
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn excluded_lower_bound() {
        let t = tree(100);
        let got: Vec<u64> = t
            .range(Bound::Excluded(key(5)), Bound::Included(key(8)))
            .map(|(_, v)| v)
            .collect();
        assert_eq!(got, vec![6, 7, 8]);
    }

    #[test]
    fn scan_crossing_many_leaves() {
        let t = tree(10_000);
        let got: Vec<u64> = t
            .range(Bound::Included(key(4_000)), Bound::Excluded(key(6_000)))
            .map(|(_, v)| v)
            .collect();
        assert_eq!(got.len(), 2_000);
        assert_eq!(got[0], 4_000);
        assert_eq!(*got.last().unwrap(), 5_999);
    }

    #[test]
    fn bounds_between_keys() {
        let mut t = BTree::new();
        for i in (0..100u64).map(|i| i * 10) {
            t.insert(&key(i), i);
        }
        let got: Vec<u64> = t
            .range(Bound::Included(key(15)), Bound::Included(key(35)))
            .map(|(_, v)| v)
            .collect();
        assert_eq!(got, vec![20, 30]);
    }
}
