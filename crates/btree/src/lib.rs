//! A B+tree over byte-string keys, the store's only index structure.
//!
//! The paper's premise (§1, Table 1) is that NoSQL stores index
//! *everything* — including space-filling-curve values — through ordinary
//! B-trees. This crate provides that structure with the bookkeeping the
//! evaluation needs:
//!
//! * range scans that report **keys examined** (MongoDB's
//!   `totalKeysExamined` explain metric),
//! * cheap **range cardinality estimation** for the query planner,
//! * **prefix-compressed size** accounting in the style of WiredTiger's
//!   index block compression (drives Fig. 14),
//! * full delete support (chunk migrations remove documents from shard
//!   indexes).
//!
//! Keys are arbitrary byte strings (memcomparable encodings from
//! `sts-encoding`); values are `u64` record ids.
//!
//! # Example
//!
//! ```
//! use sts_btree::BTree;
//! use std::ops::Bound;
//!
//! let mut t = BTree::new();
//! for i in 0..100u64 {
//!     t.insert(&i.to_be_bytes(), i);
//! }
//! let mut scan = t.range(
//!     Bound::Included(10u64.to_be_bytes().to_vec()),
//!     Bound::Excluded(20u64.to_be_bytes().to_vec()),
//! );
//! let hits: Vec<u64> = scan.by_ref().map(|(_, v)| v).collect();
//! assert_eq!(hits, (10..20).collect::<Vec<_>>());
//! // `keys_examined` counts the terminating probe too, like MongoDB.
//! assert_eq!(scan.keys_examined(), 11);
//! ```

mod batch;
mod iter;
mod node;
mod size;
mod tree;

pub use batch::BatchCursor;
pub use iter::RangeIter;
pub use node::{BRANCH_FACTOR, LEAF_CAPACITY};
pub use size::SizeReport;
pub use tree::BTree;

/// Inclusive/exclusive/unbounded endpoint for range scans, by-value so
/// callers can hand over freshly-built key buffers.
pub type KeyBound = std::ops::Bound<Vec<u8>>;
