//! Physical storage layer: record heaps, block packing, compression.
//!
//! MongoDB's WiredTiger engine stores collections in **snappy-compressed
//! blocks** (§5.1 of the paper). Table 6 compares on-disk collection
//! sizes between the baseline and Hilbert approaches, so the simulator
//! needs a faithful size model: documents are packed into 32 KB blocks
//! and run through [`snappy_lite`], an LZ77-style byte compressor of the
//! same family as snappy (greedy hash-table matcher, literal/copy ops,
//! no entropy coding).

mod collection;
mod heap;
pub mod snappy_lite;

pub use collection::{CollectionStats, CollectionStore};
pub use heap::{RecordHeap, RecordId};

/// Block size used when packing documents for compression accounting.
pub const BLOCK_SIZE: usize = 32 * 1024;
