//! Collection-level storage with document (de)serialization and
//! compressed-size accounting.

use crate::heap::{RecordHeap, RecordId};
use crate::snappy_lite;
use crate::BLOCK_SIZE;
use sts_document::{decode_document, encode_document, Document};

/// One shard's slice of a collection: serialized documents in a record
/// heap, sized like a WiredTiger table.
///
/// Alongside the serialized heap the store keeps a decoded-document
/// cache, one slot per record id — the analogue of WiredTiger's
/// in-memory page images. Documents are decoded once at insert time;
/// [`get`](CollectionStore::get) serves a copy-on-write clone (a
/// reference-count bump), which is what makes the executor's fetch stage
/// allocation-free. Size accounting ([`stats`](CollectionStore::stats))
/// still measures the serialized heap only, so Table 6 numbers are
/// unaffected.
///
/// For live ingestion every record also carries an **insert epoch** —
/// a generation stamp assigned at write time. Bulk-loaded records are
/// stamped epoch 0 and are always visible; records staged by a batched
/// concurrent ingest get the batch's (not-yet-committed) epoch and stay
/// invisible to [`get_visible`](CollectionStore::get_visible) readers
/// until the owning collection publishes that epoch. Because the stamp
/// lives on the record it survives chunk migrations: a staged document
/// copied to another shard is still staged there.
#[derive(Default)]
pub struct CollectionStore {
    heap: RecordHeap,
    decoded: Vec<Option<Document>>,
    epochs: Vec<u64>,
}

/// Size statistics for a collection store (Table 6's `dataSize` /
/// `storageSize` distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CollectionStats {
    /// Live documents.
    pub documents: u64,
    /// Sum of serialized document sizes (MongoDB's `dataSize`).
    pub data_bytes: u64,
    /// Snappy-lite-compressed block footprint (`storageSize`).
    pub storage_bytes: u64,
}

impl CollectionStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serialize and store a document at epoch 0 (always visible).
    pub fn insert(&mut self, doc: &Document) -> RecordId {
        self.insert_at(doc, 0)
    }

    /// Serialize and store a document stamped with `epoch`. Records with
    /// an epoch above a reader's snapshot are invisible to
    /// [`get_visible`](Self::get_visible) and the `*_visible` iterators.
    pub fn insert_at(&mut self, doc: &Document, epoch: u64) -> RecordId {
        let bytes = encode_document(doc);
        // Cache the decode of the stored bytes (not `doc` itself), so a
        // cached fetch is indistinguishable from a cold decode.
        let decoded = decode_document(&bytes).expect("document round-trip failed");
        let id = self.heap.insert(bytes);
        debug_assert_eq!(id as usize, self.decoded.len());
        self.decoded.push(Some(decoded));
        self.epochs.push(epoch);
        id
    }

    /// Fetch a document: a copy-on-write clone of the cached decode.
    pub fn get(&self, id: RecordId) -> Option<Document> {
        self.decoded.get(id as usize)?.clone()
    }

    /// Fetch a document only if its insert epoch is within `snapshot`
    /// (i.e. `epoch <= snapshot`). Staged records read as absent — the
    /// same answer a tombstone gives — so a scan that raced a batch
    /// simply never sees the uncommitted documents.
    pub fn get_visible(&self, id: RecordId, snapshot: u64) -> Option<Document> {
        if *self.epochs.get(id as usize)? > snapshot {
            return None;
        }
        self.decoded.get(id as usize)?.clone()
    }

    /// The insert epoch a live record was stamped with.
    pub fn epoch_of(&self, id: RecordId) -> Option<u64> {
        self.decoded.get(id as usize)?.as_ref()?;
        self.epochs.get(id as usize).copied()
    }

    /// Raw serialized bytes of a document (cheaper than decoding when
    /// only shipping it elsewhere, e.g. a chunk migration).
    pub fn get_raw(&self, id: RecordId) -> Option<&[u8]> {
        self.heap.get(id)
    }

    /// Remove a document, returning it decoded.
    pub fn remove(&mut self, id: RecordId) -> Option<Document> {
        self.heap.remove(id)?;
        self.decoded.get_mut(id as usize)?.take()
    }

    /// Live document count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Iterate live `(id, decoded document)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, Document)> + '_ {
        self.decoded
            .iter()
            .enumerate()
            .filter_map(|(id, d)| Some((id as RecordId, d.clone()?)))
    }

    /// Iterate live `(id, decoded document)` pairs visible at `snapshot`.
    pub fn iter_visible(&self, snapshot: u64) -> impl Iterator<Item = (RecordId, Document)> + '_ {
        self.decoded
            .iter()
            .zip(self.epochs.iter())
            .enumerate()
            .filter_map(move |(id, (d, &epoch))| {
                if epoch > snapshot {
                    return None;
                }
                Some((id as RecordId, d.clone()?))
            })
    }

    /// Live document count visible at `snapshot`.
    pub fn visible_len(&self, snapshot: u64) -> usize {
        self.decoded
            .iter()
            .zip(self.epochs.iter())
            .filter(|(d, &epoch)| d.is_some() && epoch <= snapshot)
            .count()
    }

    /// Iterate live `(id, raw bytes)` pairs.
    pub fn iter_raw(&self) -> impl Iterator<Item = (RecordId, &[u8])> {
        self.heap.iter()
    }

    /// Compute size statistics: documents are packed into
    /// [`BLOCK_SIZE`] blocks in record order and each block is
    /// compressed independently, like WiredTiger's block manager.
    pub fn stats(&self) -> CollectionStats {
        let mut storage = 0u64;
        let mut block = Vec::with_capacity(BLOCK_SIZE * 2);
        for (_, bytes) in self.heap.iter() {
            block.extend_from_slice(bytes);
            if block.len() >= BLOCK_SIZE {
                storage += snappy_lite::compressed_size(&block) as u64;
                block.clear();
            }
        }
        if !block.is_empty() {
            storage += snappy_lite::compressed_size(&block) as u64;
        }
        CollectionStats {
            documents: self.heap.len() as u64,
            data_bytes: self.heap.live_bytes(),
            storage_bytes: storage,
        }
    }
}

impl CollectionStats {
    /// Accumulate stats across shards.
    pub fn merge(&mut self, other: &CollectionStats) {
        self.documents += other.documents;
        self.data_bytes += other.data_bytes;
        self.storage_bytes += other.storage_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_document::{doc, DateTime, Value};

    fn sample(i: i64) -> Document {
        let mut d = doc! {
            "location" => doc! {
                "type" => "Point",
                "coordinates" => vec![
                    Value::from(23.7 + i as f64 * 1e-4),
                    Value::from(37.9 + i as f64 * 1e-4),
                ],
            },
            "date" => DateTime::from_millis(1_538_000_000_000 + i * 30_000),
            "vehicleId" => format!("veh-{}", i % 50),
        };
        d.ensure_id(1_538_000_000 + (i / 1000) as u32);
        d
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = CollectionStore::new();
        let d = sample(1);
        let id = c.insert(&d);
        assert_eq!(c.get(id).unwrap(), d);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_returns_document() {
        let mut c = CollectionStore::new();
        let d = sample(2);
        let id = c.insert(&d);
        assert_eq!(c.remove(id).unwrap(), d);
        assert!(c.get(id).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn cached_fetch_matches_cold_decode() {
        let mut c = CollectionStore::new();
        let d = sample(7);
        let id = c.insert(&d);
        // The cached document must equal a decode of the raw bytes —
        // byte-for-byte the same view a cacheless store would serve.
        let cold = sts_document::decode_document(c.get_raw(id).unwrap()).unwrap();
        assert_eq!(c.get(id).unwrap(), cold);
        // Mutating a fetched copy never leaks back into the cache.
        let mut fetched = c.get(id).unwrap();
        fetched.set("vehicleId", "hacked");
        assert_eq!(c.get(id).unwrap(), cold);
        // Tombstoned slots serve nothing.
        c.remove(id);
        assert!(c.get(id).is_none());
        assert!(c.iter().next().is_none());
    }

    #[test]
    fn staged_records_invisible_until_snapshot_advances() {
        let mut c = CollectionStore::new();
        let base = c.insert(&sample(0));
        let staged = c.insert_at(&sample(1), 3);
        assert_eq!(c.epoch_of(base), Some(0));
        assert_eq!(c.epoch_of(staged), Some(3));
        // Plain `get` is snapshot-blind (used by migrations/debug).
        assert!(c.get(staged).is_some());
        // Snapshot 2 sees only the bulk-loaded record.
        assert!(c.get_visible(base, 2).is_some());
        assert!(c.get_visible(staged, 2).is_none());
        assert_eq!(c.visible_len(2), 1);
        assert_eq!(c.iter_visible(2).count(), 1);
        // Snapshot 3 (epoch committed) sees both.
        assert!(c.get_visible(staged, 3).is_some());
        assert_eq!(c.visible_len(3), 2);
        assert_eq!(c.iter_visible(3).count(), 2);
    }

    #[test]
    fn epoch_of_respects_tombstones() {
        let mut c = CollectionStore::new();
        let id = c.insert_at(&sample(4), 7);
        c.remove(id);
        assert_eq!(c.epoch_of(id), None);
        assert!(c.get_visible(id, u64::MAX).is_none());
        assert_eq!(c.visible_len(u64::MAX), 0);
    }

    #[test]
    fn stats_compress_structured_documents() {
        let mut c = CollectionStore::new();
        for i in 0..2_000 {
            c.insert(&sample(i));
        }
        let s = c.stats();
        assert_eq!(s.documents, 2_000);
        assert!(s.data_bytes > 0);
        assert!(
            s.storage_bytes < s.data_bytes,
            "compression must help on shared-field documents: {s:?}"
        );
    }

    #[test]
    fn stats_merge() {
        let mut c = CollectionStore::new();
        c.insert(&sample(0));
        let s = c.stats();
        let mut total = CollectionStats::default();
        total.merge(&s);
        total.merge(&s);
        assert_eq!(total.documents, 2);
        assert_eq!(total.data_bytes, 2 * s.data_bytes);
    }

    #[test]
    fn extra_field_grows_data_size() {
        let mut with = CollectionStore::new();
        let mut without = CollectionStore::new();
        for i in 0..100 {
            let mut d = sample(i);
            without.insert(&d);
            d.set("hilbertIndex", 59_207_919i64 + i);
            with.insert(&d);
        }
        // Table 6's effect: the hil collections are marginally larger.
        assert!(with.stats().data_bytes > without.stats().data_bytes);
    }
}
