//! Record heap: record-id → document bytes.

/// Identifier of a stored record within one shard's heap.
///
/// Record ids are never reused; a migrated-away document leaves a
/// tombstone slot behind (compaction is not modelled — the paper's
/// experiments never shrink collections).
pub type RecordId = u64;

/// Append-mostly store of serialized documents.
#[derive(Default)]
pub struct RecordHeap {
    slots: Vec<Option<Box<[u8]>>>,
    live: usize,
    live_bytes: u64,
}

impl RecordHeap {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a record, returning its id.
    pub fn insert(&mut self, bytes: Vec<u8>) -> RecordId {
        let id = self.slots.len() as RecordId;
        self.live += 1;
        self.live_bytes += bytes.len() as u64;
        self.slots.push(Some(bytes.into_boxed_slice()));
        id
    }

    /// Fetch a record's bytes.
    pub fn get(&self, id: RecordId) -> Option<&[u8]> {
        self.slots.get(id as usize)?.as_deref()
    }

    /// Remove a record, returning its bytes.
    pub fn remove(&mut self, id: RecordId) -> Option<Box<[u8]>> {
        let slot = self.slots.get_mut(id as usize)?;
        let bytes = slot.take()?;
        self.live -= 1;
        self.live_bytes -= bytes.len() as u64;
        Some(bytes)
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live records remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total bytes of live records.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Iterate live `(id, bytes)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, &[u8])> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_deref().map(|b| (i as RecordId, b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut h = RecordHeap::new();
        let a = h.insert(vec![1, 2, 3]);
        let b = h.insert(vec![4]);
        assert_eq!(h.len(), 2);
        assert_eq!(h.live_bytes(), 4);
        assert_eq!(h.get(a), Some(&[1u8, 2, 3][..]));
        assert_eq!(h.remove(a).as_deref(), Some(&[1u8, 2, 3][..]));
        assert_eq!(h.get(a), None);
        assert_eq!(h.remove(a), None);
        assert_eq!(h.len(), 1);
        assert_eq!(h.live_bytes(), 1);
        assert_eq!(h.get(b), Some(&[4u8][..]));
    }

    #[test]
    fn ids_are_not_reused() {
        let mut h = RecordHeap::new();
        let a = h.insert(vec![1]);
        h.remove(a);
        let b = h.insert(vec![2]);
        assert_ne!(a, b);
    }

    #[test]
    fn iter_skips_tombstones() {
        let mut h = RecordHeap::new();
        let ids: Vec<_> = (0..5).map(|i| h.insert(vec![i])).collect();
        h.remove(ids[1]);
        h.remove(ids[3]);
        let live: Vec<RecordId> = h.iter().map(|(id, _)| id).collect();
        assert_eq!(live, vec![ids[0], ids[2], ids[4]]);
    }

    #[test]
    fn get_out_of_range() {
        let h = RecordHeap::new();
        assert_eq!(h.get(99), None);
    }
}
