//! `snappy-lite`: a small LZ77 byte compressor.
//!
//! Same design family as Google's snappy (which WiredTiger uses for
//! block compression): a greedy matcher over a hash table of 4-byte
//! sequences, emitting literal runs and back-reference copies, no
//! entropy coding. Compression ratios on BSON-like data land in the same
//! ballpark as snappy, which is what the Table 6 size model needs.
//!
//! Stream format (all varints LEB128):
//!
//! ```text
//! stream  := uncompressed_len | op*
//! op      := 0x00 len bytes…          (literal run)
//!          | 0x01 distance len        (copy, distance ≥ 1, len ≥ 4)
//! ```

use sts_encoding::{read_uvarint, write_uvarint};

/// Minimum match length worth encoding as a copy.
const MIN_MATCH: usize = 4;
/// Hash table size (power of two).
const HASH_BITS: u32 = 14;
/// Maximum back-reference window.
const WINDOW: usize = 32 * 1024;

const OP_LITERAL: u8 = 0x00;
const OP_COPY: u8 = 0x01;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compress `input`, returning the encoded stream.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    write_uvarint(input.len() as u64, &mut out);
    if input.is_empty() {
        return out;
    }
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0usize;
    let mut literal_start = 0usize;
    while i + MIN_MATCH <= input.len() {
        let h = hash4(input, i);
        let cand = table[h];
        table[h] = i;
        let matched = cand != usize::MAX
            && i - cand <= WINDOW
            && input[cand..cand + MIN_MATCH] == input[i..i + MIN_MATCH];
        if matched {
            // Extend the match as far as possible.
            let mut len = MIN_MATCH;
            while i + len < input.len() && input[cand + len] == input[i + len] {
                len += 1;
            }
            flush_literals(input, literal_start, i, &mut out);
            out.push(OP_COPY);
            write_uvarint((i - cand) as u64, &mut out);
            write_uvarint(len as u64, &mut out);
            // Seed the table sparsely inside the match to keep the
            // compressor O(n) while still finding overlapping repeats.
            let end = i + len;
            let mut j = i + 1;
            while j + MIN_MATCH <= input.len() && j < end {
                table[hash4(input, j)] = j;
                j += 3;
            }
            i = end;
            literal_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(input, literal_start, input.len(), &mut out);
    out
}

fn flush_literals(input: &[u8], start: usize, end: usize, out: &mut Vec<u8>) {
    if start >= end {
        return;
    }
    out.push(OP_LITERAL);
    write_uvarint((end - start) as u64, out);
    out.extend_from_slice(&input[start..end]);
}

/// Decompress a stream produced by [`compress`]. Returns `None` on any
/// malformed input.
pub fn decompress(stream: &[u8]) -> Option<Vec<u8>> {
    let mut pos = 0usize;
    let total = read_uvarint(stream, &mut pos)? as usize;
    // Guard absurd headers before allocating.
    if total > (1 << 31) {
        return None;
    }
    let mut out = Vec::with_capacity(total);
    while pos < stream.len() {
        let op = stream[pos];
        pos += 1;
        match op {
            OP_LITERAL => {
                let len = read_uvarint(stream, &mut pos)? as usize;
                let bytes = stream.get(pos..pos + len)?;
                pos += len;
                out.extend_from_slice(bytes);
            }
            OP_COPY => {
                let dist = read_uvarint(stream, &mut pos)? as usize;
                let len = read_uvarint(stream, &mut pos)? as usize;
                if dist == 0 || dist > out.len() || len < MIN_MATCH {
                    return None;
                }
                // Overlapping copies are legal (RLE-style); copy bytewise.
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            _ => return None,
        }
        if out.len() > total {
            return None;
        }
    }
    (out.len() == total).then_some(out)
}

/// Compressed size without materializing the stream contents beyond
/// necessity (convenience for size accounting).
pub fn compressed_size(input: &[u8]) -> usize {
    compress(input).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_empty_and_tiny() {
        for input in [&b""[..], b"a", b"abc", b"abcd"] {
            assert_eq!(decompress(&compress(input)).unwrap(), input);
        }
    }

    #[test]
    fn roundtrip_repetitive() {
        let input: Vec<u8> = b"hilbertIndex".repeat(500);
        let c = compress(&input);
        assert!(c.len() < input.len() / 5, "{} vs {}", c.len(), input.len());
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn roundtrip_overlapping_rle() {
        let input = vec![7u8; 10_000];
        let c = compress(&input);
        assert!(c.len() < 100);
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn incompressible_data_grows_little() {
        // Pseudo-random bytes: no matches, overhead stays tiny.
        let mut state = 1u64;
        let input: Vec<u8> = (0..20_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        let c = compress(&input);
        assert!(c.len() <= input.len() + input.len() / 64 + 16);
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn bson_like_data_compresses() {
        // Documents share field names — the realistic case for Table 6.
        let mut input = Vec::new();
        for i in 0..200 {
            input.extend_from_slice(b"\x01location\x00\x03type\x00Point\x00\x04coordinates\x00");
            input.extend_from_slice(&(23.7 + f64::from(i) * 1e-4).to_le_bytes());
            input.extend_from_slice(&(37.9 + f64::from(i) * 1e-4).to_le_bytes());
            input.extend_from_slice(b"\x09date\x00");
            input.extend_from_slice(&(1_538_000_000_000i64 + i64::from(i) * 30_000).to_le_bytes());
        }
        let c = compress(&input);
        assert!(
            (c.len() as f64) < input.len() as f64 * 0.6,
            "ratio {}",
            c.len() as f64 / input.len() as f64
        );
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn rejects_corrupt_streams() {
        let c = compress(b"hello world hello world hello world");
        assert!(decompress(&c[..c.len() - 1]).is_none());
        let mut bad = c.clone();
        bad[1] = 0x7E; // bogus op tag
        assert!(decompress(&bad).is_none());
        assert!(decompress(&[]).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_roundtrip(input in proptest::collection::vec(proptest::num::u8::ANY, 0..4096)) {
            prop_assert_eq!(decompress(&compress(&input)).unwrap(), input);
        }

        #[test]
        fn prop_roundtrip_structured(n in 1usize..50, word in "[a-d]{1,6}") {
            let input: Vec<u8> = word.as_bytes().repeat(n);
            prop_assert_eq!(decompress(&compress(&input)).unwrap(), input);
        }
    }
}
