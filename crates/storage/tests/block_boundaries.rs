//! Storage-layer edge cases: block boundaries and compression behaviour
//! around the 32 KB packing size.

use sts_document::{doc, Document};
use sts_storage::{snappy_lite, CollectionStore, BLOCK_SIZE};

fn doc_of_size(i: usize, approx_bytes: usize) -> Document {
    let mut d = doc! {
        "seq" => i as i64,
        "pad" => "x".repeat(approx_bytes.saturating_sub(40)),
    };
    d.ensure_id(i as u32);
    d
}

#[test]
fn single_document_larger_than_block() {
    let mut c = CollectionStore::new();
    c.insert(&doc_of_size(0, 3 * BLOCK_SIZE));
    let s = c.stats();
    assert_eq!(s.documents, 1);
    assert!(s.data_bytes as usize > 2 * BLOCK_SIZE);
    // Highly repetitive padding compresses massively.
    assert!(s.storage_bytes < s.data_bytes / 10);
}

#[test]
fn stats_on_exact_block_multiples() {
    let mut c = CollectionStore::new();
    // ~64 docs of ~1KB ≈ two blocks.
    for i in 0..64 {
        c.insert(&doc_of_size(i, 1024));
    }
    let s = c.stats();
    assert_eq!(s.documents, 64);
    assert!(s.storage_bytes > 0);
    assert!(s.storage_bytes <= s.data_bytes);
}

#[test]
fn tombstones_do_not_count() {
    let mut c = CollectionStore::new();
    let ids: Vec<_> = (0..10).map(|i| c.insert(&doc_of_size(i, 500))).collect();
    for id in &ids[..5] {
        c.remove(*id).unwrap();
    }
    let s = c.stats();
    assert_eq!(s.documents, 5);
    let full_bytes = {
        let mut c2 = CollectionStore::new();
        for i in 0..10 {
            c2.insert(&doc_of_size(i, 500));
        }
        c2.stats().data_bytes
    };
    assert!(s.data_bytes < full_bytes);
}

#[test]
fn compressor_window_spanning_matches() {
    // A repeated motif longer than the 32 KB back-reference window: the
    // compressor must stay correct (roundtrip) even when matches can't
    // reach the previous occurrence.
    let motif: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
    let mut input = motif.clone();
    input.extend_from_slice(&motif);
    let c = snappy_lite::compress(&input);
    assert_eq!(snappy_lite::decompress(&c).unwrap(), input);
}
