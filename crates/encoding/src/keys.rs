//! Memcomparable encoding of [`Value`]s.
//!
//! Guarantee: for values `a`, `b` of any (possibly different) types,
//! `encode(a).cmp(encode(b)) == a.canonical_cmp(b)` — bytewise comparison
//! of encodings equals BSON canonical comparison. Composite keys written
//! through [`KeyWriter`] preserve this field-by-field, which is exactly
//! the ordering contract a compound index needs.
//!
//! Numeric caveat: all numeric types are compared (and therefore encoded)
//! through `f64`, like MongoDB's cross-type numeric comparison. Integers
//! with magnitude above 2^53 would collide with their neighbours; the
//! store's numeric index keys (Hilbert values ≤ 2^32, coordinates,
//! speeds) are far below that.

use crate::varint::{read_uvarint, write_uvarint};
use sts_document::{DateTime, Document, ObjectId, Value, ValueKind};

/// Sentinel rank that sorts before every encoded value (open lower bound).
pub const RANK_MIN: u8 = 0x00;
/// Sentinel rank that sorts after every encoded value (open upper bound).
pub const RANK_MAX: u8 = 0xFF;

const RANK_NULL: u8 = 0x08;
const RANK_NUMBER: u8 = 0x10;
const RANK_STRING: u8 = 0x18;
const RANK_DOCUMENT: u8 = 0x20;
const RANK_ARRAY: u8 = 0x28;
const RANK_OBJECT_ID: u8 = 0x30;
const RANK_BOOL: u8 = 0x38;
const RANK_DATETIME: u8 = 0x40;

fn rank_byte(kind: ValueKind) -> u8 {
    match kind {
        ValueKind::Null => RANK_NULL,
        ValueKind::Number => RANK_NUMBER,
        ValueKind::String => RANK_STRING,
        ValueKind::Document => RANK_DOCUMENT,
        ValueKind::Array => RANK_ARRAY,
        ValueKind::ObjectId => RANK_OBJECT_ID,
        ValueKind::Bool => RANK_BOOL,
        ValueKind::DateTime => RANK_DATETIME,
    }
}

/// Encode one value, appending to `out`.
pub fn encode_value_into(v: &Value, out: &mut Vec<u8>) {
    out.push(rank_byte(v.kind()));
    match v {
        Value::Null => {}
        Value::Bool(b) => out.push(u8::from(*b)),
        Value::Int32(_) | Value::Int64(_) | Value::Double(_) => {
            let x = v.as_f64().unwrap();
            out.extend_from_slice(&encode_f64(x).to_be_bytes());
        }
        Value::DateTime(d) => {
            out.extend_from_slice(&flip_i64(d.millis()).to_be_bytes());
        }
        Value::ObjectId(id) => out.extend_from_slice(id.bytes()),
        Value::String(s) => encode_terminated_bytes(s.as_bytes(), out),
        Value::Document(d) => {
            for (k, val) in d.iter() {
                out.push(0x01);
                encode_terminated_bytes(k.as_bytes(), out);
                encode_value_into(val, out);
            }
            out.push(0x00);
        }
        Value::Array(a) => {
            for val in a {
                out.push(0x01);
                encode_value_into(val, out);
            }
            out.push(0x00);
        }
    }
}

/// Encode one value to a fresh buffer.
pub fn encode_value(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    encode_value_into(v, &mut out);
    out
}

/// Map an `f64` to a `u64` whose unsigned order equals the numeric order,
/// with NaN canonicalized to sort below `-inf` (MongoDB's rule).
fn encode_f64(x: f64) -> u64 {
    if x.is_nan() {
        return 0;
    }
    // Canonicalize -0.0: the comparison order treats the zeros as equal
    // (MongoDB semantics), so their index keys must be identical too.
    let bits = if x == 0.0 { 0 } else { x.to_bits() };
    if bits >> 63 == 1 {
        // Negative: flip all bits. -inf → 0x000FFF… (> 0, above NaN).
        !bits
    } else {
        // Positive (incl. +0): set the sign bit.
        bits | (1 << 63)
    }
}

fn flip_i64(x: i64) -> u64 {
    (x as u64) ^ (1 << 63)
}

/// Escape 0x00 as 0x00 0xFF and terminate with 0x00 0x00 so that prefix
/// strings sort before their extensions.
fn encode_terminated_bytes(bytes: &[u8], out: &mut Vec<u8>) {
    for &b in bytes {
        out.push(b);
        if b == 0 {
            out.push(0xFF);
        }
    }
    out.push(0x00);
    out.push(0x00);
}

fn decode_terminated_bytes(buf: &[u8], pos: &mut usize) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        if b != 0 {
            out.push(b);
            continue;
        }
        let next = *buf.get(*pos)?;
        *pos += 1;
        match next {
            0x00 => return Some(out),
            0xFF => out.push(0x00),
            _ => return None,
        }
    }
}

/// Decode one value from `buf` starting at `pos`, advancing it.
///
/// NaN-canonicalized doubles decode as NaN; numeric types all decode to
/// `Double` (their type identity is not part of the ordering contract).
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Option<Value> {
    let rank = *buf.get(*pos)?;
    *pos += 1;
    Some(match rank {
        RANK_NULL => Value::Null,
        RANK_BOOL => {
            let b = *buf.get(*pos)?;
            *pos += 1;
            Value::Bool(b != 0)
        }
        RANK_NUMBER => {
            let raw = read_be_u64(buf, pos)?;
            Value::Double(decode_f64(raw))
        }
        RANK_DATETIME => {
            let raw = read_be_u64(buf, pos)?;
            Value::DateTime(DateTime::from_millis((raw ^ (1 << 63)) as i64))
        }
        RANK_OBJECT_ID => {
            let s = buf.get(*pos..*pos + 12)?;
            *pos += 12;
            Value::ObjectId(ObjectId::from_bytes(s.try_into().ok()?))
        }
        RANK_STRING => {
            let bytes = decode_terminated_bytes(buf, pos)?;
            Value::String(String::from_utf8(bytes).ok()?)
        }
        RANK_DOCUMENT => {
            let mut d = Document::new();
            loop {
                let marker = *buf.get(*pos)?;
                *pos += 1;
                if marker == 0x00 {
                    break;
                }
                let name = decode_terminated_bytes(buf, pos)?;
                let val = decode_value(buf, pos)?;
                d.set(String::from_utf8(name).ok()?, val);
            }
            Value::Document(d)
        }
        RANK_ARRAY => {
            let mut a = Vec::new();
            loop {
                let marker = *buf.get(*pos)?;
                *pos += 1;
                if marker == 0x00 {
                    break;
                }
                a.push(decode_value(buf, pos)?);
            }
            Value::Array(a)
        }
        _ => return None,
    })
}

fn decode_f64(raw: u64) -> f64 {
    if raw == 0 {
        return f64::NAN;
    }
    if raw >> 63 == 1 {
        f64::from_bits(raw & !(1 << 63))
    } else {
        f64::from_bits(!raw)
    }
}

fn read_be_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let s = buf.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_be_bytes(s.try_into().ok()?))
}

/// Incrementally builds a composite (multi-field) key.
#[derive(Default, Clone)]
pub struct KeyWriter {
    buf: Vec<u8>,
}

impl KeyWriter {
    /// Start an empty key.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one field value.
    pub fn push(&mut self, v: &Value) -> &mut Self {
        encode_value_into(v, &mut self.buf);
        self
    }

    /// Append a sentinel that sorts before any value in this position.
    pub fn push_min(&mut self) -> &mut Self {
        self.buf.push(RANK_MIN);
        self
    }

    /// Append a sentinel that sorts after any value in this position.
    pub fn push_max(&mut self) -> &mut Self {
        self.buf.push(RANK_MAX);
        self
    }

    /// Append a raw big-endian u64 (used for record-id suffixes that make
    /// duplicate index keys unique).
    pub fn push_raw_u64(&mut self, v: u64) -> &mut Self {
        // Varint-framing is unnecessary here: the suffix is always the
        // final component and fixed width keeps order.
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a length-prefixed blob (kept for framed payloads in tests).
    pub fn push_framed(&mut self, bytes: &[u8]) -> &mut Self {
        write_uvarint(bytes.len() as u64, &mut self.buf);
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Finish, returning the key bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Borrow the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Reads composite keys produced by [`KeyWriter`].
pub struct KeyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> KeyReader<'a> {
    /// Wrap a key buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        KeyReader { buf, pos: 0 }
    }

    /// Read the next field value.
    pub fn next_value(&mut self) -> Option<Value> {
        decode_value(self.buf, &mut self.pos)
    }

    /// Read a raw big-endian u64 suffix.
    pub fn next_raw_u64(&mut self) -> Option<u64> {
        let s = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_be_bytes(s.try_into().ok()?))
    }

    /// Read a length-prefixed blob.
    pub fn next_framed(&mut self) -> Option<&'a [u8]> {
        let len = read_uvarint(self.buf, &mut self.pos)? as usize;
        let s = self.buf.get(self.pos..self.pos + len)?;
        self.pos += len;
        Some(s)
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Ordering;
    use sts_document::doc;

    fn assert_order(a: &Value, b: &Value) {
        let (ea, eb) = (encode_value(a), encode_value(b));
        assert_eq!(
            ea.cmp(&eb),
            a.canonical_cmp(b),
            "encode order mismatch for {a:?} vs {b:?}"
        );
    }

    #[test]
    fn cross_type_order_matches_canonical() {
        let vals = [
            Value::Null,
            Value::Double(f64::NAN),
            Value::Double(f64::NEG_INFINITY),
            Value::Int64(-5),
            Value::Int32(0),
            Value::Double(0.5),
            Value::Int64(7),
            Value::Double(f64::INFINITY),
            Value::from(""),
            Value::from("abc"),
            Value::from("abd"),
            Value::Document(doc! {"a" => 1}),
            Value::Array(vec![Value::Int32(1)]),
            Value::ObjectId(ObjectId::with_timestamp(3)),
            Value::Bool(false),
            Value::Bool(true),
            Value::DateTime(DateTime::from_millis(-1)),
            Value::DateTime(DateTime::from_millis(1)),
        ];
        for a in &vals {
            for b in &vals {
                assert_order(a, b);
            }
        }
    }

    #[test]
    fn string_prefix_sorts_first() {
        assert_order(&Value::from("ab"), &Value::from("abc"));
        // Embedded NULs must not break ordering.
        let a = Value::from("a\0");
        let b = Value::from("a\0\0");
        let c = Value::from("a\u{1}");
        assert_order(&a, &b);
        assert_order(&b, &c);
        assert_order(&a, &c);
    }

    #[test]
    fn sentinels_bracket_everything() {
        let v = encode_value(&Value::from("zzz"));
        assert!(vec![RANK_MIN] < v);
        assert!(vec![RANK_MAX] > v);
        let dt = encode_value(&Value::DateTime(DateTime::from_millis(i64::MAX)));
        assert!(vec![RANK_MAX] > dt);
    }

    #[test]
    fn composite_key_field_order() {
        // (hilbertIndex, date) compound ordering.
        let key = |h: i64, t: i64| {
            let mut w = KeyWriter::new();
            w.push(&Value::Int64(h))
                .push(&Value::DateTime(DateTime::from_millis(t)));
            w.finish()
        };
        assert!(key(5, 999) < key(6, 0));
        assert!(key(5, 1) < key(5, 2));
        let mut lower = KeyWriter::new();
        lower.push(&Value::Int64(5)).push_min();
        let mut upper = KeyWriter::new();
        upper.push(&Value::Int64(5)).push_max();
        assert!(lower.finish() < key(5, i64::MIN));
        assert!(upper.finish() > key(5, i64::MAX));
    }

    #[test]
    fn record_id_suffix_keeps_order() {
        let mut a = KeyWriter::new();
        a.push(&Value::Int64(1)).push_raw_u64(9);
        let mut b = KeyWriter::new();
        b.push(&Value::Int64(1)).push_raw_u64(10);
        assert!(a.finish() < b.finish());
    }

    #[test]
    fn decode_roundtrip() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Double(1.25),
            Value::from("hello\0world"),
            Value::DateTime(DateTime::from_millis(1_538_383_680_067)),
            Value::ObjectId(ObjectId::with_timestamp(77)),
            Value::Array(vec![Value::from("x"), Value::Double(2.0)]),
            Value::Document(doc! {"k" => "v", "n" => 4.0}),
        ];
        for v in &vals {
            let enc = encode_value(v);
            let mut pos = 0;
            let back = decode_value(&enc, &mut pos).unwrap();
            assert_eq!(pos, enc.len());
            assert_eq!(back.canonical_cmp(v), Ordering::Equal, "{v:?}");
        }
    }

    #[test]
    fn reader_walks_composite() {
        let mut w = KeyWriter::new();
        w.push(&Value::Int64(42))
            .push(&Value::from("k"))
            .push_raw_u64(7);
        let key = w.finish();
        let mut r = KeyReader::new(&key);
        assert_eq!(r.next_value().unwrap().as_f64(), Some(42.0));
        assert_eq!(r.next_value().unwrap().as_str(), Some("k"));
        assert_eq!(r.next_raw_u64(), Some(7));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn framed_roundtrip() {
        let mut w = KeyWriter::new();
        w.push_framed(b"abc").push_framed(b"");
        let key = w.finish();
        let mut r = KeyReader::new(&key);
        assert_eq!(r.next_framed(), Some(&b"abc"[..]));
        assert_eq!(r.next_framed(), Some(&b""[..]));
    }

    proptest! {
        #[test]
        fn prop_f64_order(a in proptest::num::f64::NORMAL | proptest::num::f64::ZERO,
                          b in proptest::num::f64::NORMAL | proptest::num::f64::ZERO) {
            assert_order(&Value::Double(a), &Value::Double(b));
        }

        #[test]
        fn prop_i64_order(a in -(1i64 << 52)..(1i64 << 52), b in -(1i64 << 52)..(1i64 << 52)) {
            assert_order(&Value::Int64(a), &Value::Int64(b));
        }

        #[test]
        fn prop_string_order(a in ".{0,12}", b in ".{0,12}") {
            assert_order(&Value::from(a.as_str()), &Value::from(b.as_str()));
        }

        #[test]
        fn prop_datetime_order(a in proptest::num::i64::ANY, b in proptest::num::i64::ANY) {
            assert_order(
                &Value::DateTime(DateTime::from_millis(a)),
                &Value::DateTime(DateTime::from_millis(b)),
            );
        }

        #[test]
        fn prop_varint_roundtrip(v in proptest::num::u64::ANY) {
            let mut buf = Vec::new();
            write_uvarint(v, &mut buf);
            let mut pos = 0;
            prop_assert_eq!(read_uvarint(&buf, &mut pos), Some(v));
        }
    }
}
