//! The GeoHash base32 alphabet (`0-9`, `b-z` minus `a i l o`).
//!
//! Used to render GeoHash cell ids the way §2.1 of the paper presents
//! them (e.g. Athens → `"swbb5"` at 5-character precision).

/// The 32-character GeoHash alphabet.
pub const GEOHASH_ALPHABET: &[u8; 32] = b"0123456789bcdefghjkmnpqrstuvwxyz";

/// Encode the top `5 * chars` bits of `bits` (a left-aligned bit string of
/// length `nbits`) into GeoHash base32 characters.
///
/// `bits` carries its payload in the **most significant** `nbits` bits of
/// the `u64`. This matches how interleaved GeoHash bit strings are built.
pub fn base32_encode(bits: u64, nbits: u32, chars: usize) -> String {
    let mut s = String::with_capacity(chars);
    for i in 0..chars {
        let shift = 64 - 5 * (i as u32 + 1);
        let idx = if 5 * (i as u32 + 1) <= nbits {
            ((bits >> shift) & 0x1F) as usize
        } else {
            // Pad missing low bits with zeros, as geohash truncation does.
            let have = nbits.saturating_sub(5 * i as u32).min(5);
            if have == 0 {
                0
            } else {
                (((bits >> (64 - nbits)) << (5 - have)) & 0x1F) as usize
            }
        };
        s.push(GEOHASH_ALPHABET[idx] as char);
    }
    s
}

/// Render a curve cell index (the `hilbertIndex` value of any curve
/// family: Hilbert, Z-order, onion or skew GeoHash) as a GeoHash-style
/// base32 code.
///
/// The index's `2 * order` significant bits are left-aligned and
/// encoded at the natural precision `ceil(2 * order / 5)` characters.
/// For Z-order-topology curves truncating the code truncates the cell
/// bit string, so codes inherit GeoHash's prefix-containment reading;
/// for other curves the code is an opaque but stable label (dashboards,
/// explain output, chunk annotations).
pub fn curve_cell_code(index: u64, order: u32) -> String {
    let nbits = 2 * order;
    assert!((1..=62).contains(&nbits), "unsupported curve order {order}");
    assert!(index < 1 << nbits, "index {index} exceeds {nbits} bits");
    let chars = nbits.div_ceil(5) as usize;
    base32_encode(index << (64 - nbits), nbits, chars)
}

/// Decode a base32 GeoHash string into a left-aligned bit string and its
/// length in bits. Returns `None` on characters outside the alphabet.
pub fn base32_decode(s: &str) -> Option<(u64, u32)> {
    let mut bits = 0u64;
    let mut n = 0u32;
    for ch in s.bytes() {
        let idx = GEOHASH_ALPHABET.iter().position(|&c| c == ch)? as u64;
        if n + 5 > 64 {
            return None;
        }
        bits |= idx << (64 - n - 5);
        n += 5;
    }
    Some((bits, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let (bits, n) = base32_decode("swbb5").unwrap();
        assert_eq!(n, 25);
        assert_eq!(base32_encode(bits, n, 5), "swbb5");
    }

    #[test]
    fn rejects_excluded_letters() {
        for s in ["a", "i", "l", "o", "A"] {
            assert!(base32_decode(s).is_none(), "{s}");
        }
    }

    #[test]
    fn prefix_property() {
        // Truncating the bit string yields the character prefix (paper §2.1).
        let (bits, _) = base32_decode("swbb5ftzes").unwrap();
        assert_eq!(base32_encode(bits, 25, 5), "swbb5");
    }

    #[test]
    fn zero_bits_encode_as_zero_chars() {
        assert_eq!(base32_encode(0, 0, 3), "000");
    }

    #[test]
    fn curve_cell_codes_are_stable_and_distinct() {
        // Order 13 → 26 bits → 6 characters, zero-padded like geohash
        // truncation.
        let a = curve_cell_code(0, 13);
        assert_eq!(a.len(), 6);
        assert_eq!(a, "000000");
        let b = curve_cell_code((1 << 26) - 1, 13);
        assert_ne!(a, b);
        // Round-trips through the decoder to the same leading bits.
        let (bits, n) = base32_decode(&b).unwrap();
        assert_eq!(n, 30);
        assert_eq!(bits >> (64 - 26), (1 << 26) - 1);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn curve_cell_code_rejects_out_of_range_index() {
        curve_cell_code(1 << 26, 13);
    }
}
