//! Order-preserving key encodings for the store's B+tree indexes.
//!
//! Every index in the store is a B+tree over raw byte strings; this crate
//! defines the *memcomparable* encoding that maps typed index keys to
//! bytes such that `encode(a) < encode(b)` (bytewise) iff `a < b` under
//! BSON canonical ordering. Composite keys concatenate per-field
//! encodings, each prefixed with the value's type rank, so compound
//! indexes order exactly like MongoDB's.
//!
//! Also provided: LEB128-style varints (used by the snappy-lite block
//! compressor) and the GeoHash base32 alphabet.

mod base32;
mod keys;
mod varint;

pub use base32::{base32_decode, base32_encode, curve_cell_code, GEOHASH_ALPHABET};
pub use keys::{
    decode_value, encode_value, encode_value_into, KeyReader, KeyWriter, RANK_MAX, RANK_MIN,
};
pub use varint::{read_uvarint, write_uvarint};
