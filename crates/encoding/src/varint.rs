//! LEB128 unsigned varints.

/// Append `v` as a LEB128 varint.
pub fn write_uvarint(v: u64, out: &mut Vec<u8>) {
    let mut v = v;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint starting at `pos`, advancing it.
///
/// Returns `None` on truncation or overflow (more than 10 bytes).
pub fn read_uvarint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7F)
            .checked_shl(shift)
            .filter(|_| shift < 63 || byte & 0x7E == 0)?;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(v, &mut buf);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_returns_none() {
        let mut buf = Vec::new();
        write_uvarint(300, &mut buf);
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf[..1], &mut pos), None);
    }

    #[test]
    fn sequence_decodes_in_order() {
        let mut buf = Vec::new();
        for v in [5u64, 1_000_000, 0] {
            write_uvarint(v, &mut buf);
        }
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos), Some(5));
        assert_eq!(read_uvarint(&buf, &mut pos), Some(1_000_000));
        assert_eq!(read_uvarint(&buf, &mut pos), Some(0));
        assert_eq!(pos, buf.len());
    }
}
