//! Edge cases of the memcomparable encoding that the in-module tests
//! don't reach: reader misuse, deep nesting, sentinel interactions.

use sts_document::{doc, DateTime, Document, Value};
use sts_encoding::{decode_value, encode_value, KeyReader, KeyWriter, RANK_MAX, RANK_MIN};

#[test]
fn reader_on_truncated_key_returns_none() {
    let enc = encode_value(&Value::from("hello"));
    for cut in 0..enc.len() {
        let mut r = KeyReader::new(&enc[..cut]);
        assert!(r.next_value().is_none(), "cut={cut}");
    }
}

#[test]
fn reader_raw_u64_needs_eight_bytes() {
    let mut w = KeyWriter::new();
    w.push_raw_u64(7);
    let key = w.finish();
    let mut r = KeyReader::new(&key[..7]);
    assert!(r.next_raw_u64().is_none());
}

#[test]
fn deeply_nested_values_roundtrip() {
    let mut v = Value::Int32(1);
    for _ in 0..12 {
        let mut d = Document::new();
        d.set("k", v);
        v = Value::Document(d);
    }
    let enc = encode_value(&v);
    let mut pos = 0;
    let back = decode_value(&enc, &mut pos).unwrap();
    assert_eq!(pos, enc.len());
    assert_eq!(back.canonical_cmp(&v), std::cmp::Ordering::Equal);
}

#[test]
fn sentinel_bytes_are_extreme() {
    // No encoded value may start with the sentinel ranks.
    for v in [
        Value::Null,
        Value::Bool(true),
        Value::Int64(i64::MAX),
        Value::Double(f64::INFINITY),
        Value::from("\u{10FFFF}"),
        Value::DateTime(DateTime::from_millis(i64::MAX)),
        Value::Array(vec![]),
        Value::Document(doc! {}),
    ] {
        let enc = encode_value(&v);
        assert_ne!(enc[0], RANK_MIN, "{v:?}");
        assert_ne!(enc[0], RANK_MAX, "{v:?}");
    }
}

#[test]
fn empty_collections_order_before_populated() {
    let empty_arr = encode_value(&Value::Array(vec![]));
    let one_arr = encode_value(&Value::Array(vec![Value::Null]));
    assert!(empty_arr < one_arr);
    let empty_doc = encode_value(&Value::Document(doc! {}));
    let one_doc = encode_value(&Value::Document(doc! {"a" => 1}));
    assert!(empty_doc < one_doc);
}

#[test]
fn writer_accessors() {
    let mut w = KeyWriter::new();
    assert!(w.is_empty());
    w.push(&Value::Int64(1));
    assert!(!w.is_empty());
    assert_eq!(w.as_bytes().len(), w.len());
    let snapshot = w.as_bytes().to_vec();
    assert_eq!(w.finish(), snapshot);
}
