//! Cross-cutting value semantics: ObjectId generation under load-order
//! stamping, datetime arithmetic, document path quirks.

use sts_document::{doc, DateTime, Document, ObjectId, Value};

#[test]
fn objectid_prefix_compression_premise() {
    // §A.3's premise: ids generated in the same second share a 9-byte
    // prefix; ids from different seconds diverge in the first 4 bytes.
    let a = ObjectId::with_timestamp(1_000);
    let b = ObjectId::with_timestamp(1_000);
    let c = ObjectId::with_timestamp(2_000);
    let common = |x: &ObjectId, y: &ObjectId| {
        x.bytes()
            .iter()
            .zip(y.bytes())
            .take_while(|(p, q)| p == q)
            .count()
    };
    assert!(common(&a, &b) >= 9);
    assert!(common(&a, &c) < 4);
}

#[test]
fn datetime_day_arithmetic_is_exact() {
    let start = DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0);
    let plus_153 = start.plus_millis(153 * 86_400_000);
    assert_eq!(plus_153.to_civil(), (2018, 12, 1, 0, 0, 0, 0));
    // Month boundaries.
    let jul31 = DateTime::from_ymd_hms(2018, 7, 31, 23, 59, 59);
    assert_eq!(jul31.plus_millis(1_000).to_civil().1, 8);
}

#[test]
fn dotted_paths_with_numeric_field_names() {
    // A document field literally named "0" is reachable; array indexing
    // still works one level deeper.
    let d = doc! {
        "outer" => doc! {"0" => "field-not-index"},
        "arr" => vec![Value::from("a"), Value::from("b")],
    };
    assert_eq!(
        d.get_path("outer.0").unwrap().as_str(),
        Some("field-not-index")
    );
    assert_eq!(d.get_path("arr.1").unwrap().as_str(), Some("b"));
    assert!(d.get_path("arr.x").is_none());
    assert!(d.get_path("").is_none());
}

#[test]
fn document_field_replacement_keeps_position() {
    let mut d = Document::new();
    d.set("a", 1i32);
    d.set("b", 2i32);
    d.set("a", 9i32); // replace in place
    let order: Vec<&str> = d.iter().map(|(k, _)| k).collect();
    assert_eq!(order, vec!["a", "b"]);
    assert_eq!(d.get("a").unwrap().as_i64(), Some(9));
}

#[test]
fn iso_formatting_is_stable_under_roundtrip() {
    for iso in [
        "2018-07-01T00:00:00.000Z",
        "2018-12-31T23:59:59.999Z",
        "1970-01-01T00:00:00.001Z",
    ] {
        let dt = DateTime::parse_iso(iso).unwrap();
        assert_eq!(dt.to_iso(), iso);
        assert_eq!(DateTime::parse_iso(&dt.to_iso()).unwrap(), dt);
    }
}
