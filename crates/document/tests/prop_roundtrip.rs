//! Property tests over arbitrary document trees: serialization
//! roundtrips, size accounting, and ordering consistency.

use proptest::prelude::*;
use sts_document::{
    decode_document, encode_document, encoded_size, DateTime, Document, ObjectId, Value,
};

/// Arbitrary scalar values.
fn scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(Value::Int32),
        any::<i64>().prop_map(Value::Int64),
        // Finite doubles only: NaN breaks PartialEq-based roundtrip
        // comparison (the encoding itself preserves the NaN bit pattern).
        prop_oneof![
            any::<f64>().prop_filter("finite", |x| x.is_finite()),
            Just(0.0),
            Just(-0.0)
        ]
        .prop_map(Value::Double),
        "[a-zA-Z0-9 _.-]{0,24}".prop_map(Value::from),
        any::<i64>().prop_map(|ms| Value::DateTime(DateTime::from_millis(ms))),
        any::<[u8; 12]>().prop_map(|b| Value::ObjectId(ObjectId::from_bytes(b))),
    ]
}

/// Arbitrary value trees up to depth 3.
fn value_tree() -> impl Strategy<Value = Value> {
    scalar().prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..5).prop_map(Value::Array),
            proptest::collection::vec(("[a-z]{1,8}", inner), 0..5).prop_map(|fields| {
                let mut d = Document::new();
                for (k, v) in fields {
                    d.set(k, v);
                }
                Value::Document(d)
            }),
        ]
    })
}

fn document() -> impl Strategy<Value = Document> {
    proptest::collection::vec(("[a-zA-Z][a-zA-Z0-9_]{0,11}", value_tree()), 0..10).prop_map(
        |fields| {
            let mut d = Document::new();
            for (k, v) in fields {
                d.set(k, v);
            }
            d
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_roundtrip(d in document()) {
        let bytes = encode_document(&d);
        let back = decode_document(&bytes).expect("own encoding must decode");
        prop_assert_eq!(&back, &d);
    }

    #[test]
    fn encoded_size_is_exact(d in document()) {
        prop_assert_eq!(encoded_size(&d), encode_document(&d).len());
    }

    #[test]
    fn truncation_never_panics(d in document(), cut_frac in 0.0f64..1.0) {
        let bytes = encode_document(&d);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        // Must return an error or — only when the cut kept everything —
        // the document; never panic.
        if let Ok(back) = decode_document(&bytes[..cut]) {
            prop_assert_eq!(cut, bytes.len());
            prop_assert_eq!(back, d);
        }
    }

    #[test]
    fn single_byte_corruption_never_panics(d in document(), pos in any::<prop::sample::Index>(), flip in 1u8..=255) {
        let mut bytes = encode_document(&d);
        if bytes.len() > 5 {
            let i = pos.index(bytes.len());
            bytes[i] ^= flip;
            // Any outcome but a panic is acceptable; a successful decode
            // must at least produce *some* document.
            let _ = decode_document(&bytes);
        }
    }

    #[test]
    fn canonical_cmp_is_consistent_with_equality(a in value_tree(), b in value_tree()) {
        use std::cmp::Ordering;
        let ord = a.canonical_cmp(&b);
        let rev = b.canonical_cmp(&a);
        prop_assert_eq!(ord, rev.reverse(), "antisymmetry");
        if a == b {
            prop_assert_eq!(ord, Ordering::Equal);
        }
    }

    #[test]
    fn canonical_cmp_is_transitive(a in scalar(), b in scalar(), c in scalar()) {
        use std::cmp::Ordering::*;
        let (ab, bc, ac) = (a.canonical_cmp(&b), b.canonical_cmp(&c), a.canonical_cmp(&c));
        if ab != Greater && bc != Greater {
            prop_assert_ne!(ac, Greater, "{:?} <= {:?} <= {:?}", a, b, c);
        }
    }
}
