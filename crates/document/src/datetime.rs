//! Millisecond-precision UTC datetimes with a small ISO-8601 parser.
//!
//! The store does not need a full calendar library: documents carry UTC
//! instants ("ISODate" in MongoDB terms) and queries compare them as
//! integers. Conversion to and from civil dates uses Howard Hinnant's
//! `days_from_civil` algorithm, which is exact over the entire proleptic
//! Gregorian calendar.

use crate::error::{DocError, Result};
use std::fmt;

/// Milliseconds in one second/minute/hour/day, used throughout the repo.
pub const MS_PER_SEC: i64 = 1_000;
/// Milliseconds per minute.
pub const MS_PER_MIN: i64 = 60 * MS_PER_SEC;
/// Milliseconds per hour.
pub const MS_PER_HOUR: i64 = 60 * MS_PER_MIN;
/// Milliseconds per day.
pub const MS_PER_DAY: i64 = 24 * MS_PER_HOUR;

/// A UTC instant with millisecond precision (like BSON's ISODate).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DateTime(i64);

impl DateTime {
    /// Create from raw milliseconds since the Unix epoch.
    pub const fn from_millis(ms: i64) -> Self {
        DateTime(ms)
    }

    /// Milliseconds since the Unix epoch.
    pub const fn millis(self) -> i64 {
        self.0
    }

    /// Build from civil date/time components (UTC).
    ///
    /// `month` is 1..=12, `day` is 1..=31. Components are not range-checked
    /// beyond what arithmetic requires; out-of-range days simply roll over,
    /// matching the behaviour of the arithmetic conversion.
    pub fn from_ymd_hms(y: i32, m: u32, d: u32, hh: u32, mm: u32, ss: u32) -> Self {
        let days = days_from_civil(y, m, d);
        let ms = days * MS_PER_DAY
            + i64::from(hh) * MS_PER_HOUR
            + i64::from(mm) * MS_PER_MIN
            + i64::from(ss) * MS_PER_SEC;
        DateTime(ms)
    }

    /// Decompose into `(year, month, day, hour, minute, second, millis)`.
    pub fn to_civil(self) -> (i32, u32, u32, u32, u32, u32, u32) {
        let ms = self.0;
        let days = ms.div_euclid(MS_PER_DAY);
        let rem = ms.rem_euclid(MS_PER_DAY);
        let (y, m, d) = civil_from_days(days);
        let hh = (rem / MS_PER_HOUR) as u32;
        let mm = ((rem % MS_PER_HOUR) / MS_PER_MIN) as u32;
        let ss = ((rem % MS_PER_MIN) / MS_PER_SEC) as u32;
        let msec = (rem % MS_PER_SEC) as u32;
        (y, m, d, hh, mm, ss, msec)
    }

    /// Parse the ISO-8601 subset `YYYY-MM-DDTHH:MM:SS[.mmm]Z`
    /// (also accepts a space instead of `T`, and a missing trailing `Z`).
    pub fn parse_iso(s: &str) -> Result<Self> {
        let bad = || DocError::BadDateTime(s.to_string());
        let b = s.as_bytes();
        if b.len() < 19 {
            return Err(bad());
        }
        let num = |r: std::ops::Range<usize>| -> Result<i64> {
            s.get(r).and_then(|t| t.parse::<i64>().ok()).ok_or_else(bad)
        };
        if b[4] != b'-' || b[7] != b'-' || (b[10] != b'T' && b[10] != b' ') {
            return Err(bad());
        }
        if b[13] != b':' || b[16] != b':' {
            return Err(bad());
        }
        let y = num(0..4)? as i32;
        let mo = num(5..7)? as u32;
        let d = num(8..10)? as u32;
        let hh = num(11..13)? as u32;
        let mm = num(14..16)? as u32;
        let ss = num(17..19)? as u32;
        if mo == 0 || mo > 12 || d == 0 || d > 31 || hh > 23 || mm > 59 || ss > 60 {
            return Err(bad());
        }
        let mut ms = 0i64;
        let mut idx = 19;
        if b.len() > idx && b[idx] == b'.' {
            let start = idx + 1;
            let mut end = start;
            while end < b.len() && b[end].is_ascii_digit() {
                end += 1;
            }
            if end == start {
                return Err(bad());
            }
            // Normalize fractional digits to milliseconds (first 3 digits).
            let frac = &s[start..end.min(start + 3)];
            let mut v: i64 = frac.parse().map_err(|_| bad())?;
            for _ in frac.len()..3 {
                v *= 10;
            }
            ms = v;
            idx = end;
        }
        if idx < b.len() && &s[idx..] != "Z" {
            return Err(bad());
        }
        Ok(DateTime(
            DateTime::from_ymd_hms(y, mo, d, hh, mm, ss).0 + ms,
        ))
    }

    /// Format as `YYYY-MM-DDTHH:MM:SS.mmmZ`.
    pub fn to_iso(self) -> String {
        let (y, mo, d, hh, mm, ss, ms) = self.to_civil();
        format!("{y:04}-{mo:02}-{d:02}T{hh:02}:{mm:02}:{ss:02}.{ms:03}Z")
    }

    /// Add a number of milliseconds.
    pub fn plus_millis(self, ms: i64) -> Self {
        DateTime(self.0 + ms)
    }
}

impl fmt::Debug for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ISODate({})", self.to_iso())
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_iso())
    }
}

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m as u32, d as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(DateTime::from_ymd_hms(1970, 1, 1, 0, 0, 0).millis(), 0);
    }

    #[test]
    fn roundtrip_civil() {
        let dt = DateTime::from_ymd_hms(2018, 10, 1, 8, 34, 40);
        assert_eq!(dt.to_civil(), (2018, 10, 1, 8, 34, 40, 0));
    }

    #[test]
    fn parse_paper_example() {
        let dt = DateTime::parse_iso("2018-10-01T08:34:40.067Z").unwrap();
        assert_eq!(dt.to_iso(), "2018-10-01T08:34:40.067Z");
    }

    #[test]
    fn parse_without_fraction_or_z() {
        let a = DateTime::parse_iso("2018-07-15T00:00:00Z").unwrap();
        let b = DateTime::parse_iso("2018-07-15 00:00:00").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "2018", "2018-13-01T00:00:00Z", "2018-10-01X00:00:00Z"] {
            assert!(DateTime::parse_iso(s).is_err(), "{s}");
        }
    }

    #[test]
    fn fraction_normalization() {
        let a = DateTime::parse_iso("2018-10-01T00:00:00.5Z").unwrap();
        assert_eq!(a.millis() % 1000, 500);
        let b = DateTime::parse_iso("2018-10-01T00:00:00.123456Z").unwrap();
        assert_eq!(b.millis() % 1000, 123);
    }

    #[test]
    fn leap_year_handling() {
        let feb29 = DateTime::from_ymd_hms(2020, 2, 29, 12, 0, 0);
        assert_eq!(feb29.to_civil().0..=feb29.to_civil().0, 2020..=2020);
        assert_eq!(feb29.to_civil().1, 2);
        assert_eq!(feb29.to_civil().2, 29);
    }

    #[test]
    fn negative_epoch_dates() {
        let dt = DateTime::from_ymd_hms(1969, 12, 31, 23, 59, 59);
        assert_eq!(dt.millis(), -1000);
        assert_eq!(dt.to_civil(), (1969, 12, 31, 23, 59, 59, 0));
    }

    #[test]
    fn ordering_matches_time() {
        let a = DateTime::parse_iso("2018-07-01T00:00:00Z").unwrap();
        let b = DateTime::parse_iso("2018-11-30T23:59:59Z").unwrap();
        assert!(a < b);
    }
}
