//! Ordered field maps ("documents").

use crate::{ObjectId, Value};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// An ordered set of `(field, value)` pairs, like a BSON document.
///
/// Field order is preserved (it matters for canonical comparison and for
/// serialized size), and lookup is linear — documents in this workload have
/// at most ~75 fields, where linear scans beat hashing.
///
/// Field storage is copy-on-write behind an [`Arc`]: `clone()` is a
/// reference-count bump (the query hot path clones every fetched
/// document out of the store's decoded cache), and the first mutation of
/// a shared document copies the fields once. Readers never observe
/// another handle's mutations.
#[derive(Clone, PartialEq, Default)]
pub struct Document {
    fields: Arc<Vec<(String, Value)>>,
}

impl Document {
    /// Create an empty document.
    pub fn new() -> Self {
        Document::default()
    }

    /// Create with pre-allocated capacity for `n` fields.
    pub fn with_capacity(n: usize) -> Self {
        Document {
            fields: Arc::new(Vec::with_capacity(n)),
        }
    }

    /// Number of top-level fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the document has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Set a field, replacing any existing value under the same name.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        let key = key.into();
        let value = value.into();
        let fields = Arc::make_mut(&mut self.fields);
        if let Some(slot) = fields.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            fields.push((key, value));
        }
    }

    /// Remove a field, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.fields.iter().position(|(k, _)| k == key)?;
        Some(Arc::make_mut(&mut self.fields).remove(idx).1)
    }

    /// Get a top-level field.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// Get by dotted path, e.g. `"location.coordinates.0"`.
    ///
    /// Numeric path segments index into arrays.
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut segments = path.split('.');
        let first = segments.next()?;
        let mut cur = self.get(first)?;
        for seg in segments {
            cur = match cur {
                Value::Document(d) => d.get(seg)?,
                Value::Array(a) => a.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Iterate `(field, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The `_id` field, if present and an ObjectId.
    pub fn object_id(&self) -> Option<ObjectId> {
        match self.get("_id") {
            Some(Value::ObjectId(id)) => Some(*id),
            _ => None,
        }
    }

    /// Ensure an `_id` ObjectId exists (generated with `ts_secs` if absent),
    /// returning it. Mirrors the MongoDB client driver behaviour the paper
    /// describes in §A.1.
    pub fn ensure_id(&mut self, ts_secs: u32) -> ObjectId {
        if let Some(id) = self.object_id() {
            return id;
        }
        let id = ObjectId::with_timestamp(ts_secs);
        // `_id` conventionally leads the document.
        Arc::make_mut(&mut self.fields).insert(0, ("_id".to_string(), Value::ObjectId(id)));
        id
    }

    /// BSON-style canonical comparison: field-by-field in stored order.
    pub fn canonical_cmp(&self, other: &Document) -> Ordering {
        for ((ka, va), (kb, vb)) in self.fields.iter().zip(other.fields.iter()) {
            let o = ka.cmp(kb).then_with(|| va.canonical_cmp(vb));
            if o != Ordering::Equal {
                return o;
            }
        }
        self.fields.len().cmp(&other.fields.len())
    }
}

impl fmt::Debug for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut m = f.debug_map();
        for (k, v) in self.fields.iter() {
            m.entry(&format_args!("{k}"), v);
        }
        m.finish()
    }
}

impl FromIterator<(String, Value)> for Document {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut d = Document::new();
        for (k, v) in iter {
            d.set(k, v);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    #[test]
    fn set_get_replace() {
        let mut d = Document::new();
        d.set("a", 1i32);
        d.set("b", "x");
        d.set("a", 2i32);
        assert_eq!(d.len(), 2);
        assert_eq!(d.get("a").unwrap().as_i64(), Some(2));
        assert_eq!(d.get("missing"), None);
    }

    #[test]
    fn dotted_path_into_geojson() {
        let d = doc! {
            "location" => doc! {
                "type" => "Point",
                "coordinates" => vec![Value::from(23.72), Value::from(37.98)],
            }
        };
        assert_eq!(
            d.get_path("location.coordinates.1").unwrap().as_f64(),
            Some(37.98)
        );
        assert!(d.get_path("location.coordinates.7").is_none());
        assert!(d.get_path("location.type.x").is_none());
    }

    #[test]
    fn ensure_id_is_idempotent_and_leading() {
        let mut d = doc! {"x" => 1};
        let id = d.ensure_id(100);
        assert_eq!(d.ensure_id(200), id);
        assert_eq!(d.iter().next().unwrap().0, "_id");
        assert_eq!(id.timestamp(), 100);
    }

    #[test]
    fn remove_field() {
        let mut d = doc! {"a" => 1, "b" => 2};
        assert_eq!(d.remove("a").unwrap().as_i64(), Some(1));
        assert!(d.remove("a").is_none());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn clone_is_shared_until_mutation() {
        let mut a = doc! {"x" => 1, "y" => 2};
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.fields, &b.fields), "clone shares storage");
        a.set("x", 9i32);
        assert!(!Arc::ptr_eq(&a.fields, &b.fields), "mutation copies");
        assert_eq!(b.get("x").unwrap().as_i64(), Some(1));
        assert_eq!(a.get("x").unwrap().as_i64(), Some(9));
    }

    #[test]
    fn canonical_cmp_orders_by_fields() {
        let a = doc! {"a" => 1};
        let b = doc! {"a" => 2};
        let c = doc! {"a" => 1, "b" => 0};
        assert_eq!(a.canonical_cmp(&b), Ordering::Less);
        assert_eq!(a.canonical_cmp(&c), Ordering::Less);
        assert_eq!(a.canonical_cmp(&a.clone()), Ordering::Equal);
    }
}
