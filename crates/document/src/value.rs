//! Dynamically typed field values with BSON-style canonical ordering.

use crate::{DateTime, Document, ObjectId};
use std::cmp::Ordering;
use std::fmt;

/// A field value. Mirrors the BSON subset the store needs.
#[derive(Clone, PartialEq)]
pub enum Value {
    /// Explicit null.
    Null,
    /// Boolean.
    Bool(bool),
    /// 32-bit integer.
    Int32(i32),
    /// 64-bit integer (used for `hilbertIndex`).
    Int64(i64),
    /// IEEE-754 double (used for coordinates).
    Double(f64),
    /// UTF-8 string.
    String(String),
    /// Ordered array of values.
    Array(Vec<Value>),
    /// Nested document (used for GeoJSON points).
    Document(Document),
    /// UTC datetime ("ISODate").
    DateTime(DateTime),
    /// 12-byte unique id.
    ObjectId(ObjectId),
}

/// Discriminant of a [`Value`], in BSON canonical comparison order.
///
/// BSON compares values of different types by a fixed type ranking
/// (Null < Numbers < String < Object < Array < ObjectId < Boolean < Date).
/// The store relies on this for index key ordering of mixed-type fields.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum ValueKind {
    /// Null rank.
    Null = 0,
    /// All numeric types share one rank and compare numerically.
    Number = 1,
    /// String rank.
    String = 2,
    /// Embedded document rank.
    Document = 3,
    /// Array rank.
    Array = 4,
    /// ObjectId rank.
    ObjectId = 5,
    /// Boolean rank.
    Bool = 6,
    /// Datetime rank.
    DateTime = 7,
}

impl Value {
    /// Canonical comparison rank of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Null => ValueKind::Null,
            Value::Int32(_) | Value::Int64(_) | Value::Double(_) => ValueKind::Number,
            Value::String(_) => ValueKind::String,
            Value::Document(_) => ValueKind::Document,
            Value::Array(_) => ValueKind::Array,
            Value::ObjectId(_) => ValueKind::ObjectId,
            Value::Bool(_) => ValueKind::Bool,
            Value::DateTime(_) => ValueKind::DateTime,
        }
    }

    /// Human-readable type name (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int32(_) => "int32",
            Value::Int64(_) => "int64",
            Value::Double(_) => "double",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Document(_) => "document",
            Value::DateTime(_) => "datetime",
            Value::ObjectId(_) => "objectId",
        }
    }

    /// Numeric view (int32/int64/double), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int32(v) => Some(f64::from(*v)),
            Value::Int64(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view, if an integer type.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int32(v) => Some(i64::from(*v)),
            Value::Int64(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Datetime view.
    pub fn as_datetime(&self) -> Option<DateTime> {
        match self {
            Value::DateTime(d) => Some(*d),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Embedded document view.
    pub fn as_document(&self) -> Option<&Document> {
        match self {
            Value::Document(d) => Some(d),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// BSON canonical ordering across types; total (NaN sorts below all
    /// other numbers, like MongoDB).
    pub fn canonical_cmp(&self, other: &Value) -> Ordering {
        let (ka, kb) = (self.kind(), other.kind());
        if ka != kb {
            return ka.cmp(&kb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (a, b) if ka == ValueKind::Number => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                total_f64_cmp(x, y)
            }
            (Value::String(a), Value::String(b)) => a.cmp(b),
            (Value::Document(a), Value::Document(b)) => a.canonical_cmp(b),
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.canonical_cmp(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::ObjectId(a), Value::ObjectId(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::DateTime(a), Value::DateTime(b)) => a.cmp(b),
            _ => unreachable!("kinds matched above"),
        }
    }
}

/// Total order on doubles: NaN < -inf < … < +inf (MongoDB sorts NaN lowest
/// among numbers).
fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.partial_cmp(&b).unwrap(),
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}L"),
            Value::Double(v) => write!(f, "{v}"),
            Value::String(v) => write!(f, "{v:?}"),
            Value::Array(v) => f.debug_list().entries(v).finish(),
            Value::Document(v) => write!(f, "{v:?}"),
            Value::DateTime(v) => write!(f, "{v:?}"),
            Value::ObjectId(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int64(i64::from(v))
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int64(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}
impl From<Document> for Value {
    fn from(v: Document) -> Self {
        Value::Document(v)
    }
}
impl From<DateTime> for Value {
    fn from(v: DateTime) -> Self {
        Value::DateTime(v)
    }
}
impl From<ObjectId> for Value {
    fn from(v: ObjectId) -> Self {
        Value::ObjectId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    #[test]
    fn type_ranking_order() {
        let vals = [
            Value::Null,
            Value::Int32(999),
            Value::String("a".into()),
            Value::Document(doc! {"x" => 1}),
            Value::Array(vec![Value::Int32(1)]),
            Value::ObjectId(ObjectId::with_timestamp(0)),
            Value::Bool(false),
            Value::DateTime(DateTime::from_millis(0)),
        ];
        for w in vals.windows(2) {
            assert_eq!(w[0].canonical_cmp(&w[1]), Ordering::Less);
        }
    }

    #[test]
    fn numbers_compare_across_types() {
        assert_eq!(
            Value::Int32(2).canonical_cmp(&Value::Double(2.0)),
            Ordering::Equal
        );
        assert_eq!(
            Value::Int64(3).canonical_cmp(&Value::Double(2.5)),
            Ordering::Greater
        );
    }

    #[test]
    fn nan_sorts_below_numbers() {
        assert_eq!(
            Value::Double(f64::NAN).canonical_cmp(&Value::Double(f64::NEG_INFINITY)),
            Ordering::Less
        );
    }

    #[test]
    fn array_lexicographic() {
        let a = Value::Array(vec![Value::Int32(1), Value::Int32(2)]);
        let b = Value::Array(vec![Value::Int32(1), Value::Int32(3)]);
        let c = Value::Array(vec![Value::Int32(1)]);
        assert_eq!(a.canonical_cmp(&b), Ordering::Less);
        assert_eq!(c.canonical_cmp(&a), Ordering::Less);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int32(5).as_f64(), Some(5.0));
        assert_eq!(Value::Int64(5).as_i64(), Some(5));
        assert_eq!(Value::Double(5.0).as_i64(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.as_f64().is_none());
    }
}
