//! MongoDB-compatible 12-byte object identifiers.
//!
//! Layout (as the paper describes in §3.1): a 4-byte big-endian timestamp,
//! a 5-byte per-process random value, and a 3-byte incrementing counter
//! initialized to a random value. The timestamp prefix is what makes `_id`
//! indexes prefix-compressible when documents are inserted in time order —
//! an effect the paper measures in Fig. 14.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

/// A 12-byte unique document identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId([u8; 12]);

struct Generator {
    process_random: [u8; 5],
    counter: AtomicU32,
}

fn generator() -> &'static Generator {
    static GEN: OnceLock<Generator> = OnceLock::new();
    GEN.get_or_init(|| {
        let mut pr = [0u8; 5];
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed)
            ^ (std::process::id() as u64).rotate_left(32);
        // splitmix64 to whiten the seed; avoids pulling `rand` into the
        // hot ObjectId path.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let r = next();
        pr.copy_from_slice(&r.to_be_bytes()[..5]);
        Generator {
            process_random: pr,
            counter: AtomicU32::new((next() & 0x00FF_FFFF) as u32),
        }
    })
}

impl ObjectId {
    /// Generate a fresh id stamped with the current wall-clock second.
    pub fn new() -> Self {
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs() as u32)
            .unwrap_or(0);
        Self::with_timestamp(secs)
    }

    /// Generate an id carrying an explicit timestamp (seconds since epoch).
    ///
    /// Workload generators use this to reproduce insertion-time ordering of
    /// `_id` values deterministically.
    pub fn with_timestamp(secs: u32) -> Self {
        let g = generator();
        let ctr = g.counter.fetch_add(1, Ordering::Relaxed) & 0x00FF_FFFF;
        let mut b = [0u8; 12];
        b[..4].copy_from_slice(&secs.to_be_bytes());
        b[4..9].copy_from_slice(&g.process_random);
        b[9..].copy_from_slice(&ctr.to_be_bytes()[1..]);
        ObjectId(b)
    }

    /// Construct from raw bytes.
    pub const fn from_bytes(b: [u8; 12]) -> Self {
        ObjectId(b)
    }

    /// The raw 12 bytes.
    pub const fn bytes(&self) -> &[u8; 12] {
        &self.0
    }

    /// The embedded timestamp (seconds since epoch).
    pub fn timestamp(&self) -> u32 {
        u32::from_be_bytes([self.0[0], self.0[1], self.0[2], self.0[3]])
    }

    /// Parse a 24-character lowercase/uppercase hex string.
    pub fn parse_hex(s: &str) -> crate::Result<Self> {
        let bad = || crate::DocError::BadObjectId(s.to_string());
        if s.len() != 24 {
            return Err(bad());
        }
        let mut b = [0u8; 12];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16).ok_or_else(bad)?;
            let lo = (chunk[1] as char).to_digit(16).ok_or_else(bad)?;
            b[i] = ((hi << 4) | lo) as u8;
        }
        Ok(ObjectId(b))
    }

    /// Hex representation (24 chars).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(24);
        for b in &self.0 {
            s.push(char::from_digit(u32::from(b >> 4), 16).unwrap());
            s.push(char::from_digit(u32::from(b & 0xf), 16).unwrap());
        }
        s
    }
}

impl Default for ObjectId {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectId({})", self.to_hex())
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn unique_ids() {
        let ids: HashSet<_> = (0..10_000).map(|_| ObjectId::new()).collect();
        assert_eq!(ids.len(), 10_000);
    }

    #[test]
    fn timestamp_roundtrip() {
        let id = ObjectId::with_timestamp(1_538_383_680);
        assert_eq!(id.timestamp(), 1_538_383_680);
    }

    #[test]
    fn hex_roundtrip() {
        let id = ObjectId::new();
        assert_eq!(ObjectId::parse_hex(&id.to_hex()).unwrap(), id);
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert!(ObjectId::parse_hex("zz").is_err());
        assert!(ObjectId::parse_hex(&"g".repeat(24)).is_err());
    }

    #[test]
    fn ids_with_same_timestamp_share_prefix() {
        let a = ObjectId::with_timestamp(42);
        let b = ObjectId::with_timestamp(42);
        assert_eq!(a.bytes()[..9], b.bytes()[..9]);
        assert_ne!(a.bytes()[9..], b.bytes()[9..]);
    }

    #[test]
    fn counter_orders_ids_within_second() {
        let a = ObjectId::with_timestamp(42);
        let b = ObjectId::with_timestamp(42);
        // Counter wraps at 2^24; consecutive calls almost always ascend.
        if b.bytes()[9..] != [0, 0, 0] {
            assert!(a < b);
        }
    }
}
