//! Binary serialization of documents (a compact BSON dialect).
//!
//! The wire/storage format matters for two experiments in the paper: the
//! stored collection sizes of Table 6 (bsl documents lack the
//! `hilbertIndex` field and are marginally smaller) and the compressed
//! block accounting in `sts-storage`. The layout follows BSON closely:
//!
//! ```text
//! document := u32 total_len | element* | 0x00
//! element  := type_tag u8 | cstring field_name | payload
//! ```
//!
//! Payloads: doubles/i32/i64/datetime are little-endian fixed width;
//! strings are `u32 len | bytes | 0x00`; arrays serialize as documents with
//! index keys, exactly like BSON.

use crate::error::{DocError, Result};
use crate::{DateTime, Document, ObjectId, Value};

const TAG_DOUBLE: u8 = 0x01;
const TAG_STRING: u8 = 0x02;
const TAG_DOCUMENT: u8 = 0x03;
const TAG_ARRAY: u8 = 0x04;
const TAG_OBJECT_ID: u8 = 0x07;
const TAG_BOOL: u8 = 0x08;
const TAG_DATETIME: u8 = 0x09;
const TAG_NULL: u8 = 0x0A;
const TAG_INT32: u8 = 0x10;
const TAG_INT64: u8 = 0x12;

/// Serialize a document to bytes.
pub fn encode_document(doc: &Document) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    write_document(doc, &mut out);
    out
}

/// Serialized size in bytes without materializing the encoding.
pub fn encoded_size(doc: &Document) -> usize {
    document_size(doc)
}

fn document_size(doc: &Document) -> usize {
    // 4-byte length prefix + elements + trailing 0x00.
    5 + doc
        .iter()
        .map(|(k, v)| 1 + k.len() + 1 + value_size(v))
        .sum::<usize>()
}

fn value_size(v: &Value) -> usize {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int32(_) => 4,
        Value::Int64(_) | Value::Double(_) | Value::DateTime(_) => 8,
        Value::ObjectId(_) => 12,
        Value::String(s) => 4 + s.len() + 1,
        Value::Document(d) => document_size(d),
        Value::Array(a) => {
            5 + a
                .iter()
                .enumerate()
                .map(|(i, v)| 1 + index_key_len(i) + 1 + value_size(v))
                .sum::<usize>()
        }
    }
}

fn index_key_len(i: usize) -> usize {
    if i == 0 {
        1
    } else {
        (i.ilog10() + 1) as usize
    }
}

fn write_document(doc: &Document, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&0u32.to_le_bytes()); // patched below
    for (k, v) in doc.iter() {
        write_element(k, v, out);
    }
    out.push(0);
    let len = (out.len() - start) as u32;
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

fn write_element(key: &str, v: &Value, out: &mut Vec<u8>) {
    out.push(tag_of(v));
    out.extend_from_slice(key.as_bytes());
    out.push(0);
    match v {
        Value::Null => {}
        Value::Bool(b) => out.push(u8::from(*b)),
        Value::Int32(x) => out.extend_from_slice(&x.to_le_bytes()),
        Value::Int64(x) => out.extend_from_slice(&x.to_le_bytes()),
        Value::Double(x) => out.extend_from_slice(&x.to_le_bytes()),
        Value::DateTime(d) => out.extend_from_slice(&d.millis().to_le_bytes()),
        Value::ObjectId(id) => out.extend_from_slice(id.bytes()),
        Value::String(s) => {
            out.extend_from_slice(&((s.len() + 1) as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
            out.push(0);
        }
        Value::Document(d) => write_document(d, out),
        Value::Array(a) => {
            let as_doc: Document = a
                .iter()
                .enumerate()
                .map(|(i, v)| (i.to_string(), v.clone()))
                .collect();
            write_document(&as_doc, out);
        }
    }
}

fn tag_of(v: &Value) -> u8 {
    match v {
        Value::Null => TAG_NULL,
        Value::Bool(_) => TAG_BOOL,
        Value::Int32(_) => TAG_INT32,
        Value::Int64(_) => TAG_INT64,
        Value::Double(_) => TAG_DOUBLE,
        Value::String(_) => TAG_STRING,
        Value::Array(_) => TAG_ARRAY,
        Value::Document(_) => TAG_DOCUMENT,
        Value::DateTime(_) => TAG_DATETIME,
        Value::ObjectId(_) => TAG_OBJECT_ID,
    }
}

/// Deserialize a document from bytes.
pub fn decode_document(bytes: &[u8]) -> Result<Document> {
    let mut pos = 0usize;
    let doc = read_document(bytes, &mut pos)?;
    Ok(doc)
}

fn corrupt(offset: usize, what: &'static str) -> DocError {
    DocError::Corrupt { offset, what }
}

fn read_u32(b: &[u8], pos: &mut usize) -> Result<u32> {
    let s = b
        .get(*pos..*pos + 4)
        .ok_or_else(|| corrupt(*pos, "truncated u32"))?;
    *pos += 4;
    Ok(u32::from_le_bytes(s.try_into().unwrap()))
}

fn read_i64(b: &[u8], pos: &mut usize) -> Result<i64> {
    let s = b
        .get(*pos..*pos + 8)
        .ok_or_else(|| corrupt(*pos, "truncated i64"))?;
    *pos += 8;
    Ok(i64::from_le_bytes(s.try_into().unwrap()))
}

fn read_cstring<'a>(b: &'a [u8], pos: &mut usize) -> Result<&'a str> {
    let rest = &b[*pos..];
    let nul = rest
        .iter()
        .position(|&c| c == 0)
        .ok_or_else(|| corrupt(*pos, "unterminated cstring"))?;
    let s = std::str::from_utf8(&rest[..nul]).map_err(|_| corrupt(*pos, "non-utf8 cstring"))?;
    *pos += nul + 1;
    Ok(s)
}

fn read_document(b: &[u8], pos: &mut usize) -> Result<Document> {
    let start = *pos;
    let total = read_u32(b, pos)? as usize;
    let end = start
        .checked_add(total)
        .filter(|&e| e <= b.len() && total >= 5)
        .ok_or_else(|| corrupt(start, "bad document length"))?;
    let mut doc = Document::new();
    while *pos < end - 1 {
        let tag = b[*pos];
        *pos += 1;
        let key = read_cstring(b, pos)?.to_string();
        let v = read_value(tag, b, pos)?;
        doc.set(key, v);
    }
    if b.get(end - 1) != Some(&0) {
        return Err(corrupt(end - 1, "missing document terminator"));
    }
    *pos = end;
    Ok(doc)
}

fn read_value(tag: u8, b: &[u8], pos: &mut usize) -> Result<Value> {
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL => {
            let v = *b.get(*pos).ok_or_else(|| corrupt(*pos, "truncated bool"))?;
            *pos += 1;
            Value::Bool(v != 0)
        }
        TAG_INT32 => {
            let v = read_u32(b, pos)? as i32;
            Value::Int32(v)
        }
        TAG_INT64 => Value::Int64(read_i64(b, pos)?),
        TAG_DOUBLE => Value::Double(f64::from_bits(read_i64(b, pos)? as u64)),
        TAG_DATETIME => Value::DateTime(DateTime::from_millis(read_i64(b, pos)?)),
        TAG_OBJECT_ID => {
            let s = b
                .get(*pos..*pos + 12)
                .ok_or_else(|| corrupt(*pos, "truncated objectid"))?;
            *pos += 12;
            Value::ObjectId(ObjectId::from_bytes(s.try_into().unwrap()))
        }
        TAG_STRING => {
            let len = read_u32(b, pos)? as usize;
            if len == 0 {
                return Err(corrupt(*pos, "zero string length"));
            }
            let s = b
                .get(*pos..*pos + len - 1)
                .ok_or_else(|| corrupt(*pos, "truncated string"))?;
            let s = std::str::from_utf8(s).map_err(|_| corrupt(*pos, "non-utf8 string"))?;
            *pos += len;
            Value::String(s.to_string())
        }
        TAG_DOCUMENT => Value::Document(read_document(b, pos)?),
        TAG_ARRAY => {
            let d = read_document(b, pos)?;
            Value::Array(d.iter().map(|(_, v)| v.clone()).collect())
        }
        _ => return Err(corrupt(*pos, "unknown type tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    fn sample() -> Document {
        let mut d = doc! {
            "location" => doc! {
                "type" => "Point",
                "coordinates" => vec![Value::from(23.727539), Value::from(37.983810)],
            },
            "date" => DateTime::parse_iso("2018-10-01T08:34:40.067Z").unwrap(),
            "hilbertIndex" => 59_207_919i64,
            "speed" => 54.5f64,
            "flag" => true,
            "note" => Value::Null,
        };
        d.ensure_id(1_538_383_680);
        d
    }

    #[test]
    fn roundtrip() {
        let d = sample();
        let bytes = encode_document(&d);
        let back = decode_document(&bytes).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn encoded_size_matches_encoding() {
        let d = sample();
        assert_eq!(encoded_size(&d), encode_document(&d).len());
    }

    #[test]
    fn size_grows_with_hilbert_field() {
        let mut without = sample();
        without.remove("hilbertIndex");
        // `hilbertIndex` costs tag(1) + name(12+1) + i64(8) = 22 bytes.
        assert_eq!(encoded_size(&sample()) - encoded_size(&without), 22);
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = encode_document(&sample());
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(decode_document(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let mut bytes = encode_document(&doc! {"a" => 1});
        bytes[4] = 0x7F; // clobber the element tag
        assert!(decode_document(&bytes).is_err());
    }

    #[test]
    fn empty_document() {
        let d = Document::new();
        let bytes = encode_document(&d);
        assert_eq!(bytes.len(), 5);
        assert_eq!(decode_document(&bytes).unwrap(), d);
    }

    #[test]
    fn nested_arrays_roundtrip() {
        let d = doc! {
            "a" => vec![
                Value::Array(vec![Value::Int32(1), Value::Int32(2)]),
                Value::from("x"),
            ]
        };
        let back = decode_document(&encode_document(&d)).unwrap();
        assert_eq!(d, back);
    }
}
