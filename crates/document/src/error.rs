//! Error type for document operations.

use std::fmt;

/// Errors produced while building, parsing or serializing documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocError {
    /// A datetime string did not match the supported ISO-8601 subset.
    BadDateTime(String),
    /// A serialized document was malformed at the given byte offset.
    Corrupt { offset: usize, what: &'static str },
    /// An ObjectId hex string was malformed.
    BadObjectId(String),
    /// A path lookup failed (reported by callers that require presence).
    MissingField(String),
    /// A value had an unexpected type for the requested operation.
    TypeMismatch {
        expected: &'static str,
        found: &'static str,
    },
}

impl fmt::Display for DocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocError::BadDateTime(s) => write!(f, "invalid ISO-8601 datetime: {s:?}"),
            DocError::Corrupt { offset, what } => {
                write!(f, "corrupt document at byte {offset}: {what}")
            }
            DocError::BadObjectId(s) => write!(f, "invalid ObjectId hex: {s:?}"),
            DocError::MissingField(p) => write!(f, "missing field: {p}"),
            DocError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for DocError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, DocError>;
