//! BSON-like document model for the spatio-temporal NoSQL store.
//!
//! This crate provides the data model that every other layer of the store
//! builds on: dynamically-typed [`Value`]s, ordered field maps
//! ([`Document`]), MongoDB-compatible [`ObjectId`]s (4-byte timestamp,
//! 5-byte random, 3-byte counter), millisecond-precision [`DateTime`]s and
//! a compact binary serialization used for on-"disk" size accounting.
//!
//! The model intentionally mirrors the subset of BSON that the EDBT 2021
//! paper exercises: scalar types, arrays, nested documents, GeoJSON-style
//! point values and ISO dates.
//!
//! # Example
//!
//! ```
//! use sts_document::{doc, Document, Value, DateTime};
//!
//! let d = doc! {
//!     "location" => doc! {
//!         "type" => "Point",
//!         "coordinates" => vec![Value::from(23.727539), Value::from(37.983810)],
//!     },
//!     "date" => DateTime::parse_iso("2018-10-01T08:34:40Z").unwrap(),
//! };
//! assert_eq!(d.get_path("location.type").unwrap().as_str(), Some("Point"));
//! ```

mod datetime;
mod document;
mod error;
mod object_id;
mod ser;
mod value;

pub use datetime::DateTime;
pub use document::Document;
pub use error::{DocError, Result};
pub use object_id::ObjectId;
pub use ser::{decode_document, encode_document, encoded_size};
pub use value::{Value, ValueKind};

/// Construct a [`Document`] from `key => value` pairs.
///
/// Values may be anything convertible via [`Value::from`].
#[macro_export]
macro_rules! doc {
    () => { $crate::Document::new() };
    ( $( $k:expr => $v:expr ),+ $(,)? ) => {{
        let mut d = $crate::Document::new();
        $( d.set($k, $crate::Value::from($v)); )+
        d
    }};
}
