//! Simple polygons — the paper's §6 future-work data type.
//!
//! The store's query path needs exactly two things from a polygon: its
//! bounding box (for index covering / Hilbert decomposition) and exact
//! point containment (for residual refinement). Both are here; rings are
//! simple (non-self-intersecting) and implicitly closed.

use crate::point::GeoPoint;
use crate::rect::GeoRect;

/// A simple polygon on the lon/lat plane (exterior ring only, implicitly
/// closed, vertices in any winding order).
#[derive(Clone, Debug, PartialEq)]
pub struct GeoPolygon {
    vertices: Vec<GeoPoint>,
    bbox: GeoRect,
}

impl GeoPolygon {
    /// Build from at least three vertices. Returns `None` for degenerate
    /// input (fewer than 3 points or invalid coordinates).
    pub fn new(vertices: Vec<GeoPoint>) -> Option<Self> {
        if vertices.len() < 3 || !vertices.iter().all(GeoPoint::is_valid) {
            return None;
        }
        let mut bbox = GeoRect::new(
            vertices[0].lon,
            vertices[0].lat,
            vertices[0].lon,
            vertices[0].lat,
        );
        for v in &vertices[1..] {
            bbox.min_lon = bbox.min_lon.min(v.lon);
            bbox.min_lat = bbox.min_lat.min(v.lat);
            bbox.max_lon = bbox.max_lon.max(v.lon);
            bbox.max_lat = bbox.max_lat.max(v.lat);
        }
        Some(GeoPolygon { vertices, bbox })
    }

    /// A rectangle as a polygon (for interop tests).
    pub fn from_rect(r: &GeoRect) -> Self {
        GeoPolygon::new(vec![
            GeoPoint::new(r.min_lon, r.min_lat),
            GeoPoint::new(r.max_lon, r.min_lat),
            GeoPoint::new(r.max_lon, r.max_lat),
            GeoPoint::new(r.min_lon, r.max_lat),
        ])
        .expect("valid rectangle")
    }

    /// Vertices of the exterior ring.
    pub fn vertices(&self) -> &[GeoPoint] {
        &self.vertices
    }

    /// Precomputed bounding box — what the index layer covers.
    pub fn bbox(&self) -> &GeoRect {
        &self.bbox
    }

    /// Exact containment via even–odd ray casting, with boundary points
    /// treated as inside (matching `$geoWithin`'s closed semantics for
    /// `GeoRect`).
    pub fn contains(&self, p: GeoPoint) -> bool {
        if !self.bbox.contains(p) {
            return false;
        }
        let n = self.vertices.len();
        let mut inside = false;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            // On-edge check: collinear and within the segment's box.
            let cross = (b.lon - a.lon) * (p.lat - a.lat) - (b.lat - a.lat) * (p.lon - a.lon);
            if cross.abs() < 1e-12
                && p.lon >= a.lon.min(b.lon) - 1e-12
                && p.lon <= a.lon.max(b.lon) + 1e-12
                && p.lat >= a.lat.min(b.lat) - 1e-12
                && p.lat <= a.lat.max(b.lat) + 1e-12
            {
                return true;
            }
            // Even–odd rule on a horizontal ray to +∞.
            if (a.lat > p.lat) != (b.lat > p.lat) {
                let x_hit = a.lon + (p.lat - a.lat) / (b.lat - a.lat) * (b.lon - a.lon);
                if p.lon < x_hit {
                    inside = !inside;
                }
            }
        }
        inside
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> GeoPolygon {
        GeoPolygon::new(vec![
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(4.0, 0.0),
            GeoPoint::new(2.0, 4.0),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_degenerate() {
        assert!(GeoPolygon::new(vec![]).is_none());
        assert!(GeoPolygon::new(vec![GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0)]).is_none());
        assert!(GeoPolygon::new(vec![
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(1.0, 1.0),
            GeoPoint::new(200.0, 0.0), // invalid lon
        ])
        .is_none());
    }

    #[test]
    fn triangle_containment() {
        let t = triangle();
        assert!(t.contains(GeoPoint::new(2.0, 1.0)));
        assert!(!t.contains(GeoPoint::new(0.1, 3.0)));
        assert!(!t.contains(GeoPoint::new(5.0, 0.5)));
        // Vertices and edges count as inside.
        assert!(t.contains(GeoPoint::new(0.0, 0.0)));
        assert!(t.contains(GeoPoint::new(2.0, 0.0)));
    }

    #[test]
    fn bbox_wraps_polygon() {
        let t = triangle();
        assert_eq!(*t.bbox(), GeoRect::new(0.0, 0.0, 4.0, 4.0));
        // Everything inside the polygon is inside the bbox.
        for (x, y) in [(1.0, 0.5), (2.0, 3.9), (3.0, 1.0)] {
            let p = GeoPoint::new(x, y);
            if t.contains(p) {
                assert!(t.bbox().contains(p));
            }
        }
    }

    #[test]
    fn rect_polygon_equals_rect_semantics() {
        let r = GeoRect::new(23.7, 37.9, 23.8, 38.0);
        let poly = GeoPolygon::from_rect(&r);
        for (lon, lat) in [
            (23.75, 37.95),
            (23.7, 37.9),
            (23.8, 38.0),
            (23.69, 37.95),
            (23.81, 38.01),
        ] {
            let p = GeoPoint::new(lon, lat);
            assert_eq!(r.contains(p), poly.contains(p), "{p:?}");
        }
    }

    #[test]
    fn concave_polygon() {
        // A "U" shape: the notch is outside.
        let u = GeoPolygon::new(vec![
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(6.0, 0.0),
            GeoPoint::new(6.0, 5.0),
            GeoPoint::new(4.0, 5.0),
            GeoPoint::new(4.0, 2.0),
            GeoPoint::new(2.0, 2.0),
            GeoPoint::new(2.0, 5.0),
            GeoPoint::new(0.0, 5.0),
        ])
        .unwrap();
        assert!(u.contains(GeoPoint::new(1.0, 4.0)));
        assert!(u.contains(GeoPoint::new(5.0, 4.0)));
        assert!(!u.contains(GeoPoint::new(3.0, 4.0)), "the notch");
        assert!(u.contains(GeoPoint::new(3.0, 1.0)), "the base");
    }
}
