//! Positions on the lon/lat plane.

use std::fmt;

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A WGS-84 position, longitude first (GeoJSON order).
#[derive(Clone, Copy, PartialEq, Default)]
pub struct GeoPoint {
    /// Longitude in degrees, −180..180.
    pub lon: f64,
    /// Latitude in degrees, −90..90.
    pub lat: f64,
}

impl GeoPoint {
    /// Construct from longitude/latitude degrees.
    pub const fn new(lon: f64, lat: f64) -> Self {
        GeoPoint { lon, lat }
    }

    /// True when both coordinates are finite and within the valid domain.
    pub fn is_valid(&self) -> bool {
        self.lon.is_finite()
            && self.lat.is_finite()
            && (-180.0..=180.0).contains(&self.lon)
            && (-90.0..=90.0).contains(&self.lat)
    }
}

impl fmt::Debug for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lon, self.lat)
    }
}

/// Great-circle distance between two points, in kilometres.
pub fn haversine_km(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lat1, lat2) = (a.lat.to_radians(), b.lat.to_radians());
    let dlat = (b.lat - a.lat).to_radians();
    let dlon = (b.lon - a.lon).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn athens_thessaloniki_distance() {
        let athens = GeoPoint::new(23.727539, 37.983810);
        let thessaloniki = GeoPoint::new(22.944608, 40.640063);
        let d = haversine_km(athens, thessaloniki);
        assert!((d - 302.0).abs() < 5.0, "got {d}");
    }

    #[test]
    fn zero_distance() {
        let p = GeoPoint::new(10.0, 10.0);
        assert!(haversine_km(p, p) < 1e-9);
    }

    #[test]
    fn validity() {
        assert!(GeoPoint::new(23.7, 37.9).is_valid());
        assert!(!GeoPoint::new(181.0, 0.0).is_valid());
        assert!(!GeoPoint::new(0.0, 91.0).is_valid());
        assert!(!GeoPoint::new(f64::NAN, 0.0).is_valid());
    }
}
