//! GeoHash cells: hierarchical bit-interleaved subdivision of lon/lat.

use crate::point::GeoPoint;
use crate::rect::GeoRect;
use crate::WORLD;
use std::fmt;
use sts_encoding::base32_encode;

/// A GeoHash cell: `level` interleaved bits (longitude first), stored
/// right-aligned in `bits`.
///
/// Level 0 is the whole world; each extra bit halves the cell along the
/// next dimension (lon, lat, lon, …), exactly the hierarchical
/// subdivision §2.1 of the paper describes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GeoHash {
    bits: u64,
    level: u32,
}

impl GeoHash {
    /// Maximum supported precision in bits.
    pub const MAX_LEVEL: u32 = 60;

    /// The root cell (whole world).
    pub const ROOT: GeoHash = GeoHash { bits: 0, level: 0 };

    /// Construct from raw parts. Panics if `level` exceeds
    /// [`MAX_LEVEL`](Self::MAX_LEVEL) or `bits` has stray high bits.
    pub fn from_parts(bits: u64, level: u32) -> Self {
        assert!(level <= Self::MAX_LEVEL, "geohash level {level} too deep");
        assert!(
            level == 64 || bits >> level == 0,
            "bits beyond level {level}"
        );
        GeoHash { bits, level }
    }

    /// Encode a point at the given bit precision.
    pub fn encode(p: GeoPoint, level: u32) -> Self {
        assert!(level <= Self::MAX_LEVEL, "geohash level {level} too deep");
        let mut bits = 0u64;
        let (mut lon_lo, mut lon_hi) = (WORLD.min_lon, WORLD.max_lon);
        let (mut lat_lo, mut lat_hi) = (WORLD.min_lat, WORLD.max_lat);
        for i in 0..level {
            bits <<= 1;
            if i % 2 == 0 {
                let mid = (lon_lo + lon_hi) / 2.0;
                if p.lon >= mid {
                    bits |= 1;
                    lon_lo = mid;
                } else {
                    lon_hi = mid;
                }
            } else {
                let mid = (lat_lo + lat_hi) / 2.0;
                if p.lat >= mid {
                    bits |= 1;
                    lat_lo = mid;
                } else {
                    lat_hi = mid;
                }
            }
        }
        GeoHash { bits, level }
    }

    /// The raw interleaved bits (right-aligned).
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Precision in bits.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The cell's bounding box.
    pub fn bbox(&self) -> GeoRect {
        let (mut lon_lo, mut lon_hi) = (WORLD.min_lon, WORLD.max_lon);
        let (mut lat_lo, mut lat_hi) = (WORLD.min_lat, WORLD.max_lat);
        for i in 0..self.level {
            let bit = (self.bits >> (self.level - 1 - i)) & 1;
            if i % 2 == 0 {
                let mid = (lon_lo + lon_hi) / 2.0;
                if bit == 1 {
                    lon_lo = mid;
                } else {
                    lon_hi = mid;
                }
            } else {
                let mid = (lat_lo + lat_hi) / 2.0;
                if bit == 1 {
                    lat_lo = mid;
                } else {
                    lat_hi = mid;
                }
            }
        }
        GeoRect::new(lon_lo, lat_lo, lon_hi, lat_hi)
    }

    /// The two child cells (next dimension split).
    pub fn children(&self) -> [GeoHash; 2] {
        let level = self.level + 1;
        [
            GeoHash {
                bits: self.bits << 1,
                level,
            },
            GeoHash {
                bits: (self.bits << 1) | 1,
                level,
            },
        ]
    }

    /// Parent cell (one bit coarser); `None` at the root.
    pub fn parent(&self) -> Option<GeoHash> {
        if self.level == 0 {
            return None;
        }
        Some(GeoHash {
            bits: self.bits >> 1,
            level: self.level - 1,
        })
    }

    /// True when `other` is this cell or a descendant of it.
    pub fn contains_cell(&self, other: &GeoHash) -> bool {
        other.level >= self.level && (other.bits >> (other.level - self.level)) == self.bits
    }

    /// The inclusive range `[lo, hi]` this cell occupies in the key space
    /// of full-precision (`total_bits`) GeoHash values. This is how a
    /// coarse covering cell becomes a B-tree scan range.
    pub fn range_at(&self, total_bits: u32) -> (u64, u64) {
        assert!(total_bits >= self.level, "cell finer than key space");
        let shift = total_bits - self.level;
        let lo = self.bits << shift;
        let hi = lo + ((1u64 << shift) - 1);
        (lo, hi)
    }

    /// Base32 rendering (5 bits per character, zero-padded), e.g. Athens
    /// at 25 bits is `"swbb5"`.
    pub fn to_base32(&self) -> String {
        let chars = self.level.div_ceil(5) as usize;
        base32_encode(self.bits << (64 - self.level.max(1)), self.level, chars)
    }
}

impl fmt::Debug for GeoHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GeoHash({:0width$b}/{})",
            self.bits,
            self.level,
            width = self.level as usize
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ATHENS: GeoPoint = GeoPoint::new(23.727539, 37.983810);

    #[test]
    fn athens_matches_paper_base32() {
        // §2.1: Athens at 5-character precision is "swbb5".
        let cell = GeoHash::encode(ATHENS, 25);
        assert_eq!(cell.to_base32(), "swbb5");
        // The paper prints "swbb5ftzes" at 10 characters; reference
        // implementations (and ours) produce "swbb5ftzex" for these exact
        // coordinates — the paper's final character is off by one cell.
        let cell = GeoHash::encode(ATHENS, 50);
        assert_eq!(cell.to_base32(), "swbb5ftzex");
    }

    #[test]
    fn bbox_contains_encoded_point() {
        for level in [1, 2, 5, 13, 26] {
            let cell = GeoHash::encode(ATHENS, level);
            assert!(cell.bbox().contains(ATHENS), "level {level}");
        }
    }

    #[test]
    fn deeper_levels_nest() {
        let coarse = GeoHash::encode(ATHENS, 10);
        let fine = GeoHash::encode(ATHENS, 26);
        assert!(coarse.contains_cell(&fine));
        assert!(!fine.contains_cell(&coarse));
        assert!(coarse.bbox().contains_rect(&fine.bbox()));
    }

    #[test]
    fn children_partition_parent() {
        let cell = GeoHash::encode(ATHENS, 8);
        let [a, b] = cell.children();
        assert_eq!(a.parent(), Some(cell));
        assert_eq!(b.parent(), Some(cell));
        let pb = cell.bbox();
        let u = a.bbox().union(&b.bbox());
        assert!((u.min_lon - pb.min_lon).abs() < 1e-12);
        assert!((u.max_lat - pb.max_lat).abs() < 1e-12);
        assert!(!a.bbox().contains(b.bbox().center()));
    }

    #[test]
    fn range_at_full_precision() {
        let cell = GeoHash::encode(ATHENS, 26);
        assert_eq!(cell.range_at(26), (cell.bits(), cell.bits()));
        let parent = cell.parent().unwrap();
        let (lo, hi) = parent.range_at(26);
        assert!(lo <= cell.bits() && cell.bits() <= hi);
        assert_eq!(hi - lo, 1);
    }

    #[test]
    fn root_covers_everything() {
        assert_eq!(GeoHash::ROOT.range_at(26), (0, (1 << 26) - 1));
        assert!(GeoHash::ROOT.bbox().contains(ATHENS));
        assert!(GeoHash::ROOT.parent().is_none());
    }

    #[test]
    #[should_panic(expected = "too deep")]
    fn rejects_excessive_level() {
        GeoHash::encode(ATHENS, 61);
    }
}
