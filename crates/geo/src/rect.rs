//! Axis-aligned query rectangles.

use crate::point::{GeoPoint, EARTH_RADIUS_KM};
use std::fmt;

/// An axis-aligned rectangle on the lon/lat plane — the shape of every
/// `$geoWithin` constraint in the paper's query workload.
#[derive(Clone, Copy, PartialEq)]
pub struct GeoRect {
    /// Western edge (degrees).
    pub min_lon: f64,
    /// Southern edge (degrees).
    pub min_lat: f64,
    /// Eastern edge (degrees).
    pub max_lon: f64,
    /// Northern edge (degrees).
    pub max_lat: f64,
}

impl GeoRect {
    /// Build from `(lower, upper)` corners, as the paper specifies query
    /// rectangles: `[(min_lon, min_lat), (max_lon, max_lat)]`.
    pub const fn new(min_lon: f64, min_lat: f64, max_lon: f64, max_lat: f64) -> Self {
        GeoRect {
            min_lon,
            min_lat,
            max_lon,
            max_lat,
        }
    }

    /// Build from two corner points.
    pub fn from_corners(lower: GeoPoint, upper: GeoPoint) -> Self {
        GeoRect::new(lower.lon, lower.lat, upper.lon, upper.lat)
    }

    /// True when the rectangle is non-degenerate and within the domain.
    pub fn is_valid(&self) -> bool {
        GeoPoint::new(self.min_lon, self.min_lat).is_valid()
            && GeoPoint::new(self.max_lon, self.max_lat).is_valid()
            && self.min_lon <= self.max_lon
            && self.min_lat <= self.max_lat
    }

    /// Closed-boundary containment (MongoDB's `$geoWithin` on a box treats
    /// boundary points as inside).
    pub fn contains(&self, p: GeoPoint) -> bool {
        p.lon >= self.min_lon
            && p.lon <= self.max_lon
            && p.lat >= self.min_lat
            && p.lat <= self.max_lat
    }

    /// Closed-boundary rectangle intersection.
    pub fn intersects(&self, other: &GeoRect) -> bool {
        self.min_lon <= other.max_lon
            && other.min_lon <= self.max_lon
            && self.min_lat <= other.max_lat
            && other.min_lat <= self.max_lat
    }

    /// True when `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &GeoRect) -> bool {
        other.min_lon >= self.min_lon
            && other.max_lon <= self.max_lon
            && other.min_lat >= self.min_lat
            && other.max_lat <= self.max_lat
    }

    /// Centre point.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new(
            (self.min_lon + self.max_lon) / 2.0,
            (self.min_lat + self.max_lat) / 2.0,
        )
    }

    /// Width in degrees of longitude.
    pub fn lon_span(&self) -> f64 {
        self.max_lon - self.min_lon
    }

    /// Height in degrees of latitude.
    pub fn lat_span(&self) -> f64 {
        self.max_lat - self.min_lat
    }

    /// Spherical surface area in km²:
    /// `R² · Δλ · (sin φ₂ − sin φ₁)`.
    pub fn area_km2(&self) -> f64 {
        let dlon = self.lon_span().to_radians();
        let band = self.max_lat.to_radians().sin() - self.min_lat.to_radians().sin();
        EARTH_RADIUS_KM * EARTH_RADIUS_KM * dlon * band
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: &GeoRect) -> GeoRect {
        GeoRect::new(
            self.min_lon.min(other.min_lon),
            self.min_lat.min(other.min_lat),
            self.max_lon.max(other.max_lon),
            self.max_lat.max(other.max_lat),
        )
    }
}

impl fmt::Debug for GeoRect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[({:.6}, {:.6}), ({:.6}, {:.6})]",
            self.min_lon, self.min_lat, self.max_lon, self.max_lat
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's small-query rectangle (§5.1).
    fn small_query_rect() -> GeoRect {
        GeoRect::new(23.757495, 37.987295, 23.766958, 37.992997)
    }

    /// The paper's big-query rectangle (§5.1).
    fn big_query_rect() -> GeoRect {
        GeoRect::new(23.606039, 38.023982, 24.032754, 38.353926)
    }

    #[test]
    fn containment_is_closed() {
        let r = small_query_rect();
        assert!(r.contains(GeoPoint::new(23.757495, 37.987295)));
        assert!(r.contains(r.center()));
        assert!(!r.contains(GeoPoint::new(23.75, 37.99)));
    }

    #[test]
    fn intersection_cases() {
        let a = small_query_rect();
        let b = big_query_rect();
        assert!(!a.intersects(&b)); // paper's small/big rects are disjoint
        assert!(a.intersects(&a));
        let shifted = GeoRect::new(a.max_lon, a.min_lat, a.max_lon + 1.0, a.max_lat);
        assert!(a.intersects(&shifted)); // shared edge counts
    }

    #[test]
    fn big_rect_much_larger_than_small() {
        // Paper: big rect ≈ 2,603× the area of the small rect.
        let ratio = big_query_rect().area_km2() / small_query_rect().area_km2();
        assert!(
            (2_000.0..3_200.0).contains(&ratio),
            "area ratio {ratio} out of the paper's ballpark"
        );
    }

    #[test]
    fn union_and_contains_rect() {
        let a = small_query_rect();
        let b = big_query_rect();
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert!(!a.contains_rect(&b));
    }

    #[test]
    fn validity() {
        assert!(small_query_rect().is_valid());
        assert!(!GeoRect::new(2.0, 0.0, 1.0, 1.0).is_valid());
        assert!(!GeoRect::new(-200.0, 0.0, 1.0, 1.0).is_valid());
    }
}
