//! Geometry primitives and GeoHash cells for the store's spatial support.
//!
//! MongoDB's spatial indexing (as the paper describes in §3.2) maps 2D
//! points to hierarchical **GeoHash** cells — bit-interleaved subdivision
//! of the lon/lat domain — and stores the resulting 26-bit values in an
//! ordinary B-tree. This crate implements:
//!
//! * [`GeoPoint`] / [`GeoRect`] — positions and query rectangles with the
//!   paper's `$geoWithin` semantics,
//! * [`GeoHash`] — encode/decode at arbitrary bit precision plus base32
//!   rendering (`"swbb5"` for Athens at 25 bits),
//! * [`cover_rect`] — decompose a query rectangle into GeoHash cells, the
//!   first phase of every 2dsphere index scan,
//! * [`cells_to_ranges`] — turn a cell cover into sorted, merged 1D index
//!   key ranges.

mod cell;
mod covering;
mod point;
mod polygon;
mod rect;

pub use cell::GeoHash;
pub use covering::{cells_to_ranges, cover_rect};
pub use point::{haversine_km, GeoPoint};
pub use polygon::GeoPolygon;
pub use rect::GeoRect;

/// Default GeoHash precision MongoDB stores in 2dsphere indexes (§3.2).
pub const DEFAULT_GEOHASH_BITS: u32 = 26;

/// The full lon/lat domain.
pub const WORLD: GeoRect = GeoRect {
    min_lon: -180.0,
    min_lat: -90.0,
    max_lon: 180.0,
    max_lat: 90.0,
};
