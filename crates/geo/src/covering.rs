//! Decomposing query rectangles into GeoHash cell covers.
//!
//! A 2dsphere index scan starts by covering the `$geoWithin` rectangle
//! with GeoHash cells; each cover cell becomes one contiguous scan range
//! over the stored (full-precision) GeoHash keys. The covering is
//! adaptive: cells fully inside the rectangle stop subdividing early,
//! partial cells refine down to `max_level`, and a `max_cells` budget
//! bounds the number of B-tree seeks (MongoDB bounds its S2 coverings the
//! same way).

use crate::cell::GeoHash;
use crate::rect::GeoRect;
use std::collections::VecDeque;

/// Cover `rect` with GeoHash cells of at most `max_level` bits, using at
/// most roughly `max_cells` cells.
///
/// Every point inside `rect` is inside some returned cell (the cover is
/// conservative / complete); returned cells may overlap the outside of
/// `rect` (false-positive area is resolved by document-level refinement).
pub fn cover_rect(rect: &GeoRect, max_level: u32, max_cells: usize) -> Vec<GeoHash> {
    assert!(rect.is_valid(), "invalid query rectangle {rect:?}");
    let mut result = Vec::new();
    let mut queue = VecDeque::new();
    queue.push_back(GeoHash::ROOT);
    while let Some(cell) = queue.pop_front() {
        let bbox = cell.bbox();
        if !bbox.intersects(rect) {
            continue;
        }
        if rect.contains_rect(&bbox) || cell.level() >= max_level {
            result.push(cell);
            continue;
        }
        // Stop refining when the budget would overflow: keep the cell
        // coarse rather than drop coverage.
        if result.len() + queue.len() + 2 > max_cells {
            result.push(cell);
            continue;
        }
        let [a, b] = cell.children();
        queue.push_back(a);
        queue.push_back(b);
    }
    result.sort_unstable();
    result
}

/// Convert a set of covering cells into sorted, merged inclusive ranges
/// over the `total_bits` key space.
pub fn cells_to_ranges(cells: &[GeoHash], total_bits: u32) -> Vec<(u64, u64)> {
    let mut ranges: Vec<(u64, u64)> = cells.iter().map(|c| c.range_at(total_bits)).collect();
    ranges.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
    for (lo, hi) in ranges {
        match merged.last_mut() {
            Some((_, prev_hi)) if lo <= prev_hi.saturating_add(1) => {
                *prev_hi = (*prev_hi).max(hi);
            }
            _ => merged.push((lo, hi)),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::GeoPoint;
    use proptest::prelude::*;

    fn small_rect() -> GeoRect {
        GeoRect::new(23.757495, 37.987295, 23.766958, 37.992997)
    }

    fn big_rect() -> GeoRect {
        GeoRect::new(23.606039, 38.023982, 24.032754, 38.353926)
    }

    #[test]
    fn cover_is_complete() {
        let rect = small_rect();
        let cells = cover_rect(&rect, 26, 64);
        assert!(!cells.is_empty());
        // Sample points inside the rect must be inside some cover cell.
        for i in 0..20 {
            for j in 0..20 {
                let p = GeoPoint::new(
                    rect.min_lon + rect.lon_span() * f64::from(i) / 19.0,
                    rect.min_lat + rect.lat_span() * f64::from(j) / 19.0,
                );
                let enc = GeoHash::encode(p, 26);
                assert!(
                    cells.iter().any(|c| c.contains_cell(&enc)),
                    "point {p:?} not covered"
                );
            }
        }
    }

    #[test]
    fn budget_bounds_cell_count() {
        for budget in [4usize, 16, 64, 256] {
            let cells = cover_rect(&big_rect(), 26, budget);
            assert!(
                cells.len() <= budget.max(4),
                "budget {budget}: {} cells",
                cells.len()
            );
        }
    }

    #[test]
    fn bigger_rect_needs_more_or_coarser_cells() {
        let small = cover_rect(&small_rect(), 26, 1_024);
        let big = cover_rect(&big_rect(), 26, 1_024);
        let span = |cells: &[GeoHash]| -> u64 {
            cells_to_ranges(cells, 26)
                .iter()
                .map(|(lo, hi)| hi - lo + 1)
                .sum()
        };
        // The paper's big rect has ~2,600× the area, but at 26-bit cell
        // granularity the tiny small rect still costs a few whole cells,
        // so the covered-key-span ratio is an order of magnitude, not three.
        assert!(span(&big) > span(&small) * 10);
    }

    #[test]
    fn ranges_are_sorted_and_disjoint() {
        let cells = cover_rect(&big_rect(), 26, 128);
        let ranges = cells_to_ranges(&cells, 26);
        for w in ranges.windows(2) {
            assert!(w[0].1 + 1 < w[1].0, "{w:?} should be disjoint with a gap");
        }
        assert!(ranges.iter().all(|(lo, hi)| lo <= hi));
    }

    #[test]
    fn adjacent_cells_merge() {
        let cell = GeoHash::encode(GeoPoint::new(23.7, 37.9), 10);
        let [a, b] = cell.children();
        let ranges = cells_to_ranges(&[a, b], 26);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0], cell.range_at(26));
    }

    #[test]
    fn full_world_is_root_range() {
        let cells = cover_rect(&crate::WORLD, 26, 64);
        let ranges = cells_to_ranges(&cells, 26);
        assert_eq!(ranges, vec![(0, (1 << 26) - 1)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_cover_contains_random_inner_points(
            lon in -170.0f64..170.0, lat in -80.0f64..80.0,
            dlon in 0.001f64..3.0, dlat in 0.001f64..3.0,
            fx in 0.0f64..1.0, fy in 0.0f64..1.0,
        ) {
            let rect = GeoRect::new(lon, lat, lon + dlon, lat + dlat);
            let cells = cover_rect(&rect, 26, 64);
            let p = GeoPoint::new(lon + dlon * fx, lat + dlat * fy);
            let enc = GeoHash::encode(p, 26);
            prop_assert!(cells.iter().any(|c| c.contains_cell(&enc)));
        }
    }
}
