//! Geometry edge cases: domain borders, degenerate shapes, covering at
//! extreme precisions.

use sts_geo::{cells_to_ranges, cover_rect, GeoHash, GeoPoint, GeoPolygon, GeoRect, WORLD};

#[test]
fn domain_corner_points_encode() {
    for (lon, lat) in [
        (-180.0, -90.0),
        (180.0, 90.0),
        (-180.0, 90.0),
        (180.0, -90.0),
        (0.0, 0.0),
    ] {
        let p = GeoPoint::new(lon, lat);
        assert!(p.is_valid());
        let cell = GeoHash::encode(p, 26);
        assert!(cell.bits() < (1 << 26));
    }
}

#[test]
fn degenerate_rect_is_a_point() {
    let r = GeoRect::new(23.7, 37.9, 23.7, 37.9);
    assert!(r.is_valid());
    assert!(r.contains(GeoPoint::new(23.7, 37.9)));
    assert_eq!(r.area_km2(), 0.0);
    let cells = cover_rect(&r, 26, 16);
    assert_eq!(cells.len(), 1, "a point needs exactly one cell");
}

#[test]
fn covering_at_level_zero_is_root() {
    let r = GeoRect::new(10.0, 10.0, 20.0, 20.0);
    let cells = cover_rect(&r, 0, 16);
    assert_eq!(cells.len(), 1);
    assert_eq!(cells[0].level(), 0);
    assert_eq!(cells_to_ranges(&cells, 26), vec![(0, (1 << 26) - 1)]);
}

#[test]
fn world_rect_properties() {
    assert!(WORLD.is_valid());
    // Earth's surface ≈ 510M km².
    let area = WORLD.area_km2();
    assert!((5.0e8..5.2e8).contains(&area), "{area}");
}

#[test]
fn rect_touching_but_disjoint() {
    let a = GeoRect::new(0.0, 0.0, 1.0, 1.0);
    let b = GeoRect::new(1.0, 0.0, 2.0, 1.0); // shares an edge
    assert!(a.intersects(&b), "closed boundaries touch");
    let c = GeoRect::new(1.0001, 0.0, 2.0, 1.0);
    assert!(!a.intersects(&c));
}

#[test]
fn polygon_collinear_vertices_ok() {
    // A "triangle" with an extra collinear vertex along one edge.
    let p = GeoPolygon::new(vec![
        GeoPoint::new(0.0, 0.0),
        GeoPoint::new(2.0, 0.0),
        GeoPoint::new(4.0, 0.0),
        GeoPoint::new(2.0, 3.0),
    ])
    .unwrap();
    assert!(p.contains(GeoPoint::new(2.0, 1.0)));
    assert!(p.contains(GeoPoint::new(2.0, 0.0)), "on the split edge");
    assert!(!p.contains(GeoPoint::new(5.0, 0.0)));
}

#[test]
fn geohash_sibling_ranges_are_adjacent() {
    let cell = GeoHash::encode(GeoPoint::new(23.7, 37.9), 20);
    let [a, b] = cell.children();
    let (alo, ahi) = a.range_at(26);
    let (blo, bhi) = b.range_at(26);
    assert_eq!(ahi + 1, blo);
    assert_eq!(cell.range_at(26), (alo, bhi));
}
