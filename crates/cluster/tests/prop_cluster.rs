//! Property tests over randomized cluster lifecycles: any mix of
//! inserts, chunk sizes, zone applications and queries must preserve the
//! routing invariants and brute-force equivalence.

use proptest::prelude::*;
use sts_cluster::{Cluster, ClusterConfig, ShardKey};
use sts_document::{doc, DateTime, Document};
use sts_query::Filter;

fn point_doc(i: u32, h: i64, ms: i64) -> Document {
    let mut d = doc! {
        "hilbertIndex" => h,
        "date" => DateTime::from_millis(ms),
        "payload" => format!("rec-{i:06}"),
    };
    d.ensure_id(i);
    d
}

fn check_invariants(c: &Cluster, expected_docs: u64) {
    assert_eq!(c.doc_count(), expected_docs);
    let chunks = c.chunk_map().chunks();
    assert!(chunks[0].min.is_empty());
    assert!(chunks.last().unwrap().max.is_none());
    for w in chunks.windows(2) {
        assert_eq!(w[0].max.as_ref(), Some(&w[1].min));
    }
    let total: u64 = chunks.iter().map(|ch| ch.docs).sum();
    assert_eq!(total, expected_docs, "chunk counters must sum exactly");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lifecycle_preserves_invariants(
        n_docs in 200u32..1_200,
        shards in 2usize..6,
        chunk_kb in 2u64..32,
        h_mod in 1i64..200,
        zone_at in proptest::option::of(100u32..1_000),
        q_lo in 0i64..150, q_span in 1i64..100,
    ) {
        let mut c = Cluster::new(
            ClusterConfig {
                num_shards: shards,
                max_chunk_bytes: chunk_kb * 1024,
                ..Default::default()
            },
            ShardKey::range(&["hilbertIndex", "date"]),
            vec![],
        );
        let mut inserted = Vec::new();
        for i in 0..n_docs {
            // Deterministic pseudo-random payload derived from i.
            let h = (i64::from(i).wrapping_mul(0x9E37_79B9) >> 7).rem_euclid(h_mod);
            let ms = i64::from(i % 997) * 13_337;
            let d = point_doc(i, h, ms);
            c.insert(&d).unwrap();
            inserted.push(d);
            if Some(i) == zone_at {
                let b = c.bucket_auto_boundaries("hilbertIndex", shards);
                c.apply_zones(&b);
            }
        }
        check_invariants(&c, u64::from(n_docs));

        // Query a random hilbert interval; compare against brute force.
        let q_hi = (q_lo + q_span).min(h_mod);
        let f = Filter::Or(vec![Filter::And(vec![
            Filter::gte("hilbertIndex", q_lo),
            Filter::lte("hilbertIndex", q_hi),
        ])]);
        let (docs, report) = c.query(&f);
        let truth = inserted
            .iter()
            .filter(|d| {
                let h = d.get("hilbertIndex").unwrap().as_i64().unwrap();
                (q_lo..=q_hi).contains(&h)
            })
            .count();
        prop_assert_eq!(docs.len(), truth);
        prop_assert!(!report.broadcast);
        prop_assert!(report.nodes() <= shards);
    }
}
