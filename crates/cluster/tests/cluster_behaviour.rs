//! End-to-end behaviour of the sharded cluster simulator.

use sts_cluster::{Cluster, ClusterConfig, ShardKey};
use sts_document::{doc, DateTime, Document, Value};
use sts_geo::GeoRect;
use sts_index::{IndexField, IndexSpec};
use sts_query::Filter;

fn point_doc(id: u32, lon: f64, lat: f64, ms: i64, hilbert: i64) -> Document {
    let mut d = doc! {
        "location" => doc! {
            "type" => "Point",
            "coordinates" => vec![Value::from(lon), Value::from(lat)],
        },
        "date" => DateTime::from_millis(ms),
        "hilbertIndex" => hilbert,
    };
    d.ensure_id(id);
    d
}

/// A small hil-style cluster: shard key (hilbertIndex, date).
fn hil_cluster(num_shards: usize, max_chunk_bytes: u64) -> Cluster {
    Cluster::new(
        ClusterConfig {
            num_shards,
            max_chunk_bytes,
            ..Default::default()
        },
        ShardKey::range(&["hilbertIndex", "date"]),
        vec![],
    )
}

/// Deterministic synthetic data: `n` docs spread over 64 hilbert cells
/// and a [0, n*1000) time range.
fn load(cluster: &mut Cluster, n: u32) {
    for i in 0..n {
        let h = i64::from(i % 64);
        let lon = 20.0 + (i % 64) as f64 * 0.1;
        let lat = 35.0 + (i % 32) as f64 * 0.1;
        cluster
            .insert(&point_doc(i, lon, lat, i64::from(i) * 1_000, h))
            .unwrap();
    }
}

#[test]
fn auto_creates_shard_key_index() {
    let c = hil_cluster(4, 1 << 20);
    assert_eq!(c.shard_key_index(), "hilbertIndex_1_date_1");
    assert!(c.shards()[0]
        .collection()
        .indexes()
        .get("hilbertIndex_1_date_1")
        .is_some());
    assert!(c.shards()[0].collection().indexes().get("_id").is_some());
}

#[test]
fn chunks_split_and_balance() {
    let mut c = hil_cluster(4, 24 * 1024);
    load(&mut c, 6_000);
    assert!(c.chunk_map().len() > 4, "chunks: {}", c.chunk_map().len());
    let counts = c.chunk_map().counts_per_shard(4);
    let max = counts.iter().max().unwrap();
    let min = counts.iter().min().unwrap();
    assert!(max - min <= 1, "balanced counts: {counts:?}");
    assert_eq!(c.doc_count(), 6_000);
    // Every shard holds something once there are enough chunks.
    assert!(c.docs_per_shard().iter().all(|&n| n > 0));
}

#[test]
fn routed_query_equals_broadcast_truth() {
    let mut c = hil_cluster(4, 24 * 1024);
    load(&mut c, 4_000);
    let f = Filter::And(vec![
        Filter::gte("date", DateTime::from_millis(100_000)),
        Filter::lte("date", DateTime::from_millis(900_000)),
        Filter::Or(vec![Filter::And(vec![
            Filter::gte("hilbertIndex", 10i64),
            Filter::lte("hilbertIndex", 30i64),
        ])]),
    ]);
    let (docs, report) = c.query(&f);
    // Ground truth by brute force across shards.
    let truth: usize = c
        .shards()
        .iter()
        .map(|s| s.collection().find_collscan(&f).len())
        .sum();
    assert_eq!(docs.len(), truth);
    assert!(truth > 0);
    assert!(!report.broadcast, "hilbert constraint must target");
    assert!(report.nodes() <= 4);
    assert_eq!(report.n_returned() as usize, truth);
}

#[test]
fn query_without_shard_key_broadcasts() {
    let mut c = hil_cluster(4, 24 * 1024);
    load(&mut c, 2_000);
    let f = Filter::gte("date", DateTime::from_millis(0));
    // date is not the leading shard-key field → broadcast.
    let (_, report) = c.query(&f);
    assert!(report.broadcast);
    assert_eq!(report.nodes(), 4);
}

#[test]
fn temporal_sharding_targets_by_date() {
    let mut c = Cluster::new(
        ClusterConfig {
            num_shards: 4,
            max_chunk_bytes: 24 * 1024,
            ..Default::default()
        },
        ShardKey::range(&["date"]),
        vec![IndexSpec::new(
            "location_2dsphere_date_1",
            vec![IndexField::geo("location"), IndexField::asc("date")],
        )],
    );
    // Shard key (date) is not covered by the 2dsphere compound → an
    // extra date index is auto-created (the paper's §4.1.2 observation).
    assert_eq!(c.shard_key_index(), "date_1");
    load(&mut c, 4_000);
    let narrow = Filter::And(vec![
        Filter::gte("date", DateTime::from_millis(0)),
        Filter::lte("date", DateTime::from_millis(50_000)),
    ]);
    let (_, report) = c.query(&narrow);
    assert!(!report.broadcast);
    assert!(
        report.nodes() < 4,
        "narrow time range should touch a subset: {}",
        report.nodes()
    );
    let wide = Filter::And(vec![
        Filter::gte("date", DateTime::from_millis(0)),
        Filter::lte("date", DateTime::from_millis(4_000_000)),
    ]);
    let (_, report) = c.query(&wide);
    assert_eq!(report.nodes(), 4, "wide range touches all shards");
}

#[test]
fn zones_improve_locality() {
    let mut c = hil_cluster(4, 16 * 1024);
    load(&mut c, 6_000);
    let f = Filter::Or(vec![Filter::And(vec![
        Filter::gte("hilbertIndex", 0i64),
        Filter::lte("hilbertIndex", 15i64),
    ])]);
    let (docs_before, before) = c.query(&f);

    // Zones on the hilbertIndex prefix, one per shard (§4.2.4).
    let boundaries = c.bucket_auto_boundaries("hilbertIndex", 4);
    c.apply_zones(&boundaries);
    let (docs_after, after) = c.query(&f);

    assert_eq!(
        docs_before.len(),
        docs_after.len(),
        "zones preserve results"
    );
    assert_eq!(c.doc_count(), 6_000);
    assert!(
        after.nodes() <= before.nodes(),
        "zones group ranges: {} -> {}",
        before.nodes(),
        after.nodes()
    );
    // A contiguous quarter of the hilbert space lands on one zone — or
    // two when a $bucketAuto boundary falls exactly on the query's edge
    // value (boundaries are data quantiles, not midpoints).
    assert!(after.nodes() <= 2, "nodes after zoning: {}", after.nodes());
}

#[test]
fn jumbo_chunks_on_degenerate_keys() {
    // Every document shares one shard-key value → unsplittable chunk.
    let mut c = Cluster::new(
        ClusterConfig {
            num_shards: 2,
            max_chunk_bytes: 4 * 1024,
            ..Default::default()
        },
        ShardKey::range(&["hilbertIndex"]),
        vec![],
    );
    for i in 0..500 {
        c.insert(&point_doc(i, 20.0, 35.0, i64::from(i), 7))
            .unwrap();
    }
    assert!(c.chunk_map().chunks().iter().any(|ch| ch.jumbo));
    assert_eq!(c.doc_count(), 500);
}

#[test]
fn compound_shard_key_splits_on_date_instead() {
    // Same degenerate spatial value, but (hilbertIndex, date) splits on
    // the temporal part (§4.2.2).
    let mut c = hil_cluster(2, 4 * 1024);
    for i in 0..500 {
        c.insert(&point_doc(i, 20.0, 35.0, i64::from(i) * 1_000, 7))
            .unwrap();
    }
    assert!(c.chunk_map().len() > 1);
    assert!(!c.chunk_map().chunks().iter().any(|ch| ch.jumbo));
}

#[test]
fn geo_query_routes_and_matches_truth() {
    let mut c = Cluster::new(
        ClusterConfig {
            num_shards: 3,
            max_chunk_bytes: 24 * 1024,
            ..Default::default()
        },
        ShardKey::range(&["date"]),
        vec![IndexSpec::new(
            "st",
            vec![IndexField::geo("location"), IndexField::asc("date")],
        )],
    );
    load(&mut c, 3_000);
    let f = Filter::And(vec![
        Filter::GeoWithin {
            path: "location".into(),
            rect: GeoRect::new(21.0, 35.5, 23.0, 37.0),
        },
        Filter::gte("date", DateTime::from_millis(0)),
        Filter::lte("date", DateTime::from_millis(1_500_000)),
    ]);
    let (docs, report) = c.query(&f);
    let truth: usize = c
        .shards()
        .iter()
        .map(|s| s.collection().find_collscan(&f).len())
        .sum();
    assert_eq!(docs.len(), truth);
    assert!(truth > 0);
    assert!(report.max_keys_examined() > 0);
    assert!(report.max_docs_examined() >= docs.len() as u64 / report.nodes() as u64 / 2);
}

#[test]
fn hashed_sharding_scatters_and_broadcasts() {
    let mut c = Cluster::new(
        ClusterConfig {
            num_shards: 4,
            max_chunk_bytes: 8 * 1024,
            ..Default::default()
        },
        ShardKey::hashed("date"),
        vec![],
    );
    for i in 0..2_000 {
        c.insert(&point_doc(i, 20.0, 35.0, i64::from(i) * 1_000, 1))
            .unwrap();
    }
    assert_eq!(c.doc_count(), 2_000);
    // Hashing spreads consecutive timestamps across shards.
    let per_shard = c.docs_per_shard();
    assert!(per_shard.iter().all(|&n| n > 100), "{per_shard:?}");
    // Range constraints cannot target hashed keys → broadcast (§3.3:
    // "hashed sharding … may serve well for cases where broadcast
    // operations are preferable").
    let f = Filter::And(vec![
        Filter::gte("date", DateTime::from_millis(0)),
        Filter::lte("date", DateTime::from_millis(10_000)),
    ]);
    let (docs, report) = c.query(&f);
    assert!(report.broadcast);
    assert_eq!(report.nodes(), 4);
    assert_eq!(docs.len(), 11);
}

#[test]
fn migration_preserves_queryability() {
    // Force lots of splits + migrations, then verify every record is
    // still indexed and fetchable through the router.
    let mut c = hil_cluster(3, 4 * 1024);
    load(&mut c, 1_500);
    let f = Filter::Or(vec![Filter::And(vec![
        Filter::gte("hilbertIndex", 0i64),
        Filter::lte("hilbertIndex", 63i64),
    ])]);
    let (docs, _) = c.query(&f);
    assert_eq!(docs.len(), 1_500);
    // Index consistency per shard: entry counts equal doc counts.
    for s in c.shards() {
        let n = s.len();
        assert_eq!(s.collection().indexes().get("_id").unwrap().len(), n);
        assert_eq!(
            s.collection()
                .indexes()
                .get("hilbertIndex_1_date_1")
                .unwrap()
                .len(),
            n
        );
    }
}

#[test]
fn migration_stats_track_balancer_and_zones() {
    let mut c = hil_cluster(4, 16 * 1024);
    load(&mut c, 4_000);
    let after_load = c.migration_stats();
    assert!(
        after_load.chunks_moved > 0 && after_load.docs_moved > 0,
        "default balancing must have migrated: {after_load:?}"
    );
    let boundaries = c.bucket_auto_boundaries("hilbertIndex", 4);
    c.apply_zones(&boundaries);
    let after_zones = c.migration_stats();
    assert!(
        after_zones.docs_moved > after_load.docs_moved,
        "zone application shuffles data: {after_zones:?}"
    );
    assert_eq!(c.doc_count(), 4_000, "migrations lose nothing");
}

#[test]
fn collection_stats_and_index_sizes_aggregate() {
    let mut c = hil_cluster(3, 24 * 1024);
    load(&mut c, 2_000);
    let stats = c.collection_stats();
    assert_eq!(stats.documents, 2_000);
    assert!(stats.storage_bytes > 0 && stats.storage_bytes < stats.data_bytes);
    let sizes = c.index_sizes();
    assert_eq!(sizes.len(), 2); // _id + shard-key compound
    for (name, r) in &sizes {
        assert_eq!(r.entries, 2_000, "{name}");
        assert!(r.total_compressed() > 0);
    }
}
