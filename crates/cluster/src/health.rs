//! Cluster-health telemetry: per-shard / per-chunk load counters,
//! skew metrics and balancer event history.
//!
//! The paper's Hilbert-sharding claim is a *locality* claim: a
//! spatio-temporal workload should spread across shards instead of
//! hammering whichever shard owns the hot time window (§4.2, and the
//! load-balance concern the related GeoHash/HOC-Tree systems
//! optimize). This module gives that claim numbers: every routed
//! query bumps per-shard and per-chunk access counters, the balancer
//! logs every split/migration/jumbo event, and a [`HealthSnapshot`]
//! aggregates the counters into max/mean shard load and a Gini-style
//! imbalance coefficient.
//!
//! Recording is `&self` (atomics + a short-lived mutex for the chunk
//! heat map) so the router's read path can report without exclusive
//! access to the cluster.

use crate::chunk::ChunkMap;
use crate::report::ClusterQueryReport;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Live per-shard load counters (wait-free to bump).
#[derive(Default)]
struct ShardLoad {
    queries: AtomicU64,
    keys: AtomicU64,
    docs: AtomicU64,
    returned: AtomicU64,
}

/// One balancer action, in the order it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BalancerEvent {
    /// Position in the event history (0-based).
    pub seq: u64,
    /// Lower bound (shard-key bytes) of the chunk acted on.
    pub chunk_min: Vec<u8>,
    /// What happened.
    pub kind: BalancerEventKind,
}

/// The kinds of balancer action the cluster records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BalancerEventKind {
    /// An oversized chunk was split at its median shard key.
    Split,
    /// A chunk's documents physically moved between shards.
    Migrate {
        /// Donor shard.
        from: usize,
        /// Recipient shard.
        to: usize,
        /// Documents moved.
        docs: u64,
    },
    /// A migration rolled back after exhausting its fault-retry budget
    /// (the chunk stayed on its donor; no documents moved).
    MigrateAborted {
        /// Donor shard the chunk stayed on.
        from: usize,
        /// Intended recipient.
        to: usize,
    },
    /// A chunk was marked jumbo (unsplittable at one shard key).
    Jumbo,
}

impl BalancerEventKind {
    /// Dotted event name for timeline annotations and trace overlays.
    pub fn name(&self) -> &'static str {
        match self {
            BalancerEventKind::Split => "balancer.split",
            BalancerEventKind::Migrate { .. } => "balancer.migrate",
            BalancerEventKind::MigrateAborted { .. } => "balancer.migrate-aborted",
            BalancerEventKind::Jumbo => "balancer.jumbo",
        }
    }
}

impl BalancerEvent {
    /// Human-readable one-line detail for timeline annotations, e.g.
    /// `chunk 1a2b…: shard 0 → 2 (17 docs)`.
    pub fn detail(&self) -> String {
        let min = self
            .chunk_min
            .iter()
            .take(4)
            .map(|b| format!("{b:02x}"))
            .collect::<String>();
        match &self.kind {
            BalancerEventKind::Split => format!("chunk {min}: split"),
            BalancerEventKind::Migrate { from, to, docs } => {
                format!("chunk {min}: shard {from} → {to} ({docs} docs)")
            }
            BalancerEventKind::MigrateAborted { from, to } => {
                format!("chunk {min}: shard {from} → {to} aborted")
            }
            BalancerEventKind::Jumbo => format!("chunk {min}: jumbo"),
        }
    }
}

/// Interior-mutable health ledger owned by the cluster.
pub(crate) struct ClusterHealth {
    shards: Vec<ShardLoad>,
    /// Chunk access counts keyed by chunk *min* — the stable identity
    /// of a chunk across splits (a split keeps the left half's min)
    /// and migrations (which do not change bounds).
    chunk_heat: Mutex<BTreeMap<Vec<u8>, u64>>,
    events: Mutex<Vec<BalancerEvent>>,
    /// Per-query cluster latency (slowest shard's total cost, virtual
    /// recovery delay included) — the tail signal the router tier's
    /// shed/hedge decision reads as "health-ledger p99".
    latency: sts_obs::Histogram,
}

impl ClusterHealth {
    pub(crate) fn new(num_shards: usize) -> Self {
        ClusterHealth {
            shards: (0..num_shards).map(|_| ShardLoad::default()).collect(),
            chunk_heat: Mutex::new(BTreeMap::new()),
            events: Mutex::new(Vec::new()),
            latency: sts_obs::Histogram::new(),
        }
    }

    /// Fold one gathered query into the per-shard counters.
    pub(crate) fn record_query(&self, report: &ClusterQueryReport) {
        self.latency.record(report.max_shard_total_time());
        for s in &report.per_shard {
            let Some(load) = self.shards.get(s.shard) else {
                continue;
            };
            load.queries.fetch_add(1, Ordering::Relaxed);
            load.keys
                .fetch_add(s.stats.keys_examined, Ordering::Relaxed);
            load.docs
                .fetch_add(s.stats.docs_examined, Ordering::Relaxed);
            load.returned
                .fetch_add(s.stats.n_returned, Ordering::Relaxed);
        }
    }

    /// A percentile of the ledger's per-query cluster latency, and how
    /// many queries back it. `(Duration::ZERO, 0)` before any query.
    pub(crate) fn latency_percentile(&self, q: f64) -> (std::time::Duration, u64) {
        (self.latency.percentile(q), self.latency.count())
    }

    /// Bump the heat counter of every chunk a query's routing touched.
    pub(crate) fn record_chunk_access<'a>(&self, mins: impl IntoIterator<Item = &'a [u8]>) {
        let mut heat = self.chunk_heat.lock().unwrap();
        for min in mins {
            *heat.entry(min.to_vec()).or_insert(0) += 1;
        }
    }

    /// Append a balancer event.
    pub(crate) fn record_event(&self, chunk_min: Vec<u8>, kind: BalancerEventKind) {
        let mut events = self.events.lock().unwrap();
        let seq = events.len() as u64;
        events.push(BalancerEvent {
            seq,
            chunk_min,
            kind,
        });
    }

    /// Total balancer events recorded so far (== the next `seq`).
    pub(crate) fn event_count(&self) -> u64 {
        self.events.lock().unwrap().len() as u64
    }

    /// Events with `seq >= from`, in order — the incremental read the
    /// timeline uses to annotate new balancer activity without cloning
    /// the whole history at every batch commit.
    pub(crate) fn events_since(&self, from: u64) -> Vec<BalancerEvent> {
        let events = self.events.lock().unwrap();
        let start = (from as usize).min(events.len());
        events[start..].to_vec()
    }

    /// Point-in-time aggregation against the current routing table.
    pub(crate) fn snapshot(&self, chunks: &ChunkMap, docs_per_shard: &[usize]) -> HealthSnapshot {
        let heat = self.chunk_heat.lock().unwrap();
        HealthSnapshot {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| ShardLoadSnapshot {
                    shard: i,
                    queries_routed: s.queries.load(Ordering::Relaxed),
                    keys_examined: s.keys.load(Ordering::Relaxed),
                    docs_examined: s.docs.load(Ordering::Relaxed),
                    docs_returned: s.returned.load(Ordering::Relaxed),
                    docs_stored: docs_per_shard.get(i).copied().unwrap_or(0) as u64,
                })
                .collect(),
            chunks: chunks
                .chunks()
                .iter()
                .map(|c| ChunkHeatSnapshot {
                    min: c.min.clone(),
                    shard: c.shard,
                    docs: c.docs,
                    queries_routed: heat.get(&c.min).copied().unwrap_or(0),
                    jumbo: c.jumbo,
                })
                .collect(),
            events: self.events.lock().unwrap().clone(),
        }
    }
}

/// One shard's accumulated load.
#[derive(Clone, Debug)]
pub struct ShardLoadSnapshot {
    /// Shard id.
    pub shard: usize,
    /// Queries the router sent this shard.
    pub queries_routed: u64,
    /// Index keys this shard examined.
    pub keys_examined: u64,
    /// Documents this shard fetched and filtered.
    pub docs_examined: u64,
    /// Documents this shard returned.
    pub docs_returned: u64,
    /// Documents currently stored on this shard.
    pub docs_stored: u64,
}

/// One chunk's heat against the current routing table.
#[derive(Clone, Debug)]
pub struct ChunkHeatSnapshot {
    /// Chunk lower bound (shard-key bytes).
    pub min: Vec<u8>,
    /// Owning shard.
    pub shard: usize,
    /// Documents in the chunk (estimate after splits, §3.3).
    pub docs: u64,
    /// Queries whose routing touched this chunk.
    pub queries_routed: u64,
    /// Whether the chunk is marked jumbo.
    pub jumbo: bool,
}

/// Point-in-time cluster-health dump.
#[derive(Clone, Debug)]
pub struct HealthSnapshot {
    /// Per-shard load, indexed by shard id.
    pub shards: Vec<ShardLoadSnapshot>,
    /// Per-chunk heat, in routing-table order.
    pub chunks: Vec<ChunkHeatSnapshot>,
    /// Balancer history, in the order it happened.
    pub events: Vec<BalancerEvent>,
}

impl HealthSnapshot {
    /// Skew of queries routed per shard.
    pub fn queries_skew(&self) -> Skew {
        skew(&self.loads(|s| s.queries_routed))
    }

    /// Skew of index keys examined per shard.
    pub fn keys_skew(&self) -> Skew {
        skew(&self.loads(|s| s.keys_examined))
    }

    /// Skew of documents examined per shard.
    pub fn docs_skew(&self) -> Skew {
        skew(&self.loads(|s| s.docs_examined))
    }

    /// Total queries routed (shard executions, summed over shards).
    pub fn total_queries(&self) -> u64 {
        self.shards.iter().map(|s| s.queries_routed).sum()
    }

    /// The `n` hottest chunks by routed queries, hottest first.
    pub fn hottest_chunks(&self, n: usize) -> Vec<&ChunkHeatSnapshot> {
        let mut sorted: Vec<&ChunkHeatSnapshot> = self.chunks.iter().collect();
        sorted.sort_by(|a, b| {
            b.queries_routed
                .cmp(&a.queries_routed)
                .then(a.min.cmp(&b.min))
        });
        sorted.truncate(n);
        sorted
    }

    fn loads(&self, f: impl Fn(&ShardLoadSnapshot) -> u64) -> Vec<u64> {
        self.shards.iter().map(f).collect()
    }
}

/// Imbalance summary of a load vector.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Skew {
    /// Largest per-shard load.
    pub max: f64,
    /// Mean per-shard load.
    pub mean: f64,
    /// `max / mean` — 1.0 is perfectly even; `num_shards` is
    /// everything-on-one-shard.
    pub imbalance: f64,
    /// Gini coefficient in `[0, 1)`: 0 is perfectly even,
    /// `(n-1)/n` is everything on one shard.
    pub gini: f64,
}

/// Compute the [`Skew`] of a load vector. A zero-total vector (no
/// load yet) reports all zeros.
pub fn skew(loads: &[u64]) -> Skew {
    let n = loads.len();
    let total: u64 = loads.iter().sum();
    if n == 0 || total == 0 {
        return Skew::default();
    }
    let max = *loads.iter().max().unwrap() as f64;
    let mean = total as f64 / n as f64;
    let mut sorted: Vec<u64> = loads.to_vec();
    sorted.sort_unstable();
    // Gini over the sorted vector (1-indexed ranks):
    //   G = 2·Σᵢ i·xᵢ / (n·Σ x) − (n+1)/n
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    let gini = 2.0 * weighted / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64;
    Skew {
        max,
        mean,
        imbalance: max / mean,
        gini: gini.max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_of_even_load_is_zero() {
        let s = skew(&[10, 10, 10, 10]);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.mean, 10.0);
        assert_eq!(s.imbalance, 1.0);
        assert!(s.gini.abs() < 1e-12);
    }

    #[test]
    fn skew_of_concentrated_load_approaches_the_bound() {
        // Everything on one of four shards: imbalance = n, gini = (n-1)/n.
        let s = skew(&[0, 0, 40, 0]);
        assert_eq!(s.imbalance, 4.0);
        assert!((s.gini - 0.75).abs() < 1e-12);
    }

    #[test]
    fn skew_is_monotone_in_concentration() {
        let even = skew(&[25, 25, 25, 25]).gini;
        let mild = skew(&[40, 30, 20, 10]).gini;
        let harsh = skew(&[70, 20, 5, 5]).gini;
        assert!(even < mild && mild < harsh);
    }

    #[test]
    fn empty_or_idle_loads_report_zeros() {
        assert_eq!(skew(&[]), Skew::default());
        assert_eq!(skew(&[0, 0, 0]), Skew::default());
    }
}
