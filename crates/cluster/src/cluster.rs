//! The cluster: shards + routing table + balancer + mongos front-end.

use crate::chunk::ChunkMap;
use crate::executor::{ExecutorConfig, ExecutorStats, ShardExecutor};
use crate::faults::{AttemptCtx, FailPoint, FaultInjector, FaultKind};
use crate::health::{skew, BalancerEventKind, ClusterHealth, HealthSnapshot};
use crate::report::{ClusterQueryReport, ShardExecution};
use crate::retry::{run_with_recovery, RecoveryPolicy, ShardRecovery};
use crate::shard::Shard;
use crate::shardkey::{ShardKey, ShardStrategy};
use crate::zones::{zones_from_boundaries, Zone};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use sts_btree::SizeReport;
use sts_document::{encoded_size, Document, Value};
use sts_index::{IndexField, IndexSpec};
use sts_obs::Registry;
use sts_query::{ExecutionStats, Filter, Planner, QueryError, QueryShape};
use sts_storage::CollectionStats;

/// Cluster-wide configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of shards (the paper deploys 12).
    pub num_shards: usize,
    /// Chunk split threshold in bytes. MongoDB defaults to 64 MB; the
    /// harness scales this with the data so chunk counts per shard match
    /// the paper's regime.
    pub max_chunk_bytes: u64,
    /// Planner used by every shard (per-shard planning, like MongoDB).
    pub planner: Planner,
    /// Router fault tolerance: timeouts, retries, hedged reads.
    pub recovery: RecoveryPolicy,
    /// Seed for the failpoint registry's deterministic draws.
    pub fault_seed: u64,
    /// Live-balancer policy applied at every batch commit.
    pub balancer: LiveBalancerConfig,
    /// Work-stealing shard-executor tunables (worker count, per-shard
    /// queue depth).
    pub executor: ExecutorConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_shards: 12,
            max_chunk_bytes: 640 * 1024,
            planner: Planner::default(),
            recovery: RecoveryPolicy::default(),
            fault_seed: 0x5EED_FA17,
            balancer: LiveBalancerConfig::default(),
            executor: ExecutorConfig::default(),
        }
    }
}

/// A routing decision a plan cache can hold and replay: the target
/// shards, the broadcast flag, the routing-table chunk indices the
/// decision touched, and the routing generation it was computed
/// against. A plan whose `generation` no longer matches
/// [`Cluster::routing_generation`] is stale — the chunk map changed
/// under it (split, migration, zone application) — and must be
/// recomputed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutePlan {
    /// Shards the query must visit, ascending.
    pub targets: Vec<usize>,
    /// Whether that is a broadcast (no shard-key constraint).
    pub broadcast: bool,
    /// Chunk indices the routing decision touched (heat accounting).
    pub touched: Vec<usize>,
    /// The routing generation this plan is valid for.
    pub generation: u64,
}

/// Per-query execution overrides for [`Cluster::query_exec`]: an
/// optional cached routing decision and an optional recovery-policy
/// override (the router's shed/hedge machinery forces hedged reads
/// through the latter).
#[derive(Clone, Copy, Default)]
pub struct QueryExecOptions<'a> {
    /// A previously computed routing decision; used only while its
    /// generation matches the live routing table.
    pub route: Option<&'a RoutePlan>,
    /// Recovery-policy override for this query alone.
    pub recovery: Option<RecoveryPolicy>,
}

/// Policy for the live balancer that runs at batch-commit time,
/// turning the health ledger's chunk-heat and document-skew signals
/// into splits and migrations while ingest is in flight.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LiveBalancerConfig {
    /// Master switch. Off reduces [`Cluster::commit_batch`] to the
    /// epoch publish alone.
    pub enabled: bool,
    /// Split the hottest chunk when it absorbed more than this share of
    /// all chunk-routing decisions (query heat, PR-3 ledger).
    pub heat_split_ratio: f64,
    /// Minimum routed-query observations before heat splitting engages
    /// (avoids reacting to the first few queries).
    pub heat_min_queries: u64,
    /// Migrate from the document-heaviest shard while the per-shard
    /// document Gini coefficient exceeds this.
    pub docs_gini_threshold: f64,
    /// Upper bound on skew-driven migrations per commit — the balancer
    /// does bounded work per batch so ingest latency stays predictable.
    pub max_moves_per_round: usize,
}

impl Default for LiveBalancerConfig {
    fn default() -> Self {
        LiveBalancerConfig {
            enabled: true,
            heat_split_ratio: 0.5,
            heat_min_queries: 16,
            docs_gini_threshold: 0.4,
            max_moves_per_round: 2,
        }
    }
}

/// A sharded collection: the whole deployment the paper evaluates.
pub struct Cluster {
    config: ClusterConfig,
    shard_key: ShardKey,
    shard_key_index: String,
    shards: Vec<Shard>,
    chunks: ChunkMap,
    zones: Option<Vec<Zone>>,
    migrations: MigrationStats,
    faults: FaultInjector,
    health: ClusterHealth,
    /// The shared committed-epoch counter every shard's collection is
    /// bound to. One atomic store here is the cluster-wide commit point
    /// of a staged ingest batch.
    epoch: Arc<AtomicU64>,
    /// Routing generation: bumped whenever the chunk map changes shape
    /// or ownership (split, committed migration, zone application).
    /// Cached [`RoutePlan`]s are valid only while their generation
    /// matches.
    routing_gen: AtomicU64,
    /// Write generation: bumped on every synchronous insert, staged
    /// insert and delete. Together with the committed epoch it stamps
    /// result-cache entries, so a cached page is invalidated by *any*
    /// mutation that could change a result set — epoch-published
    /// batches and non-epoch writes alike.
    writes: AtomicU64,
    /// The work-stealing shard executor behind every scatter/gather.
    executor: ShardExecutor,
    /// Metric sink for router/shard observables. Defaults to the
    /// process-wide registry; [`Cluster::set_metrics_registry`] rescopes
    /// the whole deployment (router + every shard) onto a private one.
    obs: Arc<Registry>,
}

/// Balancer bookkeeping: how much data the cluster has shuffled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Chunk migrations performed (committed; aborted ones don't count).
    pub chunks_moved: u64,
    /// Documents physically moved between shards.
    pub docs_moved: u64,
    /// Migration attempts retried after a transient mid-transfer fault.
    pub migration_retries: u64,
    /// Migrations rolled back for good (hard failure, or transient
    /// faults exhausting the retry budget). The chunk stayed put.
    pub migrations_aborted: u64,
}

impl Cluster {
    /// Create a sharded collection.
    ///
    /// `index_specs` are the user-defined indexes created on every shard
    /// (e.g. the baseline's `(location 2dsphere, date)` compound). If no
    /// index has the shard-key fields as an ascending prefix, one is
    /// auto-created — exactly MongoDB's behaviour, and the reason the
    /// baseline methods carry an extra `date` index (§4.1.2).
    pub fn new(
        config: ClusterConfig,
        shard_key: ShardKey,
        mut index_specs: Vec<IndexSpec>,
    ) -> Self {
        assert!(config.num_shards >= 1, "need at least one shard");
        if !index_specs.iter().any(|s| s.name == "_id") {
            index_specs.insert(0, IndexSpec::single("_id"));
        }
        let shard_key_index = match index_specs.iter().find(|s| covers_shard_key(s, &shard_key)) {
            Some(s) => s.name.clone(),
            None => {
                // Auto-create the backing index. Its key space must match
                // the chunk key space: ascending fields for range keys,
                // hashed fields for hashed keys (MongoDB does the same).
                let (name, fields) = match shard_key.strategy {
                    ShardStrategy::Range => (
                        shard_key
                            .fields
                            .iter()
                            .map(|f| format!("{f}_1"))
                            .collect::<Vec<_>>()
                            .join("_"),
                        shard_key
                            .fields
                            .iter()
                            .map(IndexField::asc)
                            .collect::<Vec<_>>(),
                    ),
                    ShardStrategy::Hashed => (
                        format!("{}_hashed", shard_key.fields[0]),
                        shard_key.fields.iter().map(IndexField::hashed).collect(),
                    ),
                };
                index_specs.push(IndexSpec::new(name.clone(), fields));
                name
            }
        };
        let mut shards: Vec<Shard> = (0..config.num_shards)
            .map(|id| Shard::new(id, &index_specs))
            .collect();
        // Bind every shard to one committed-epoch counter so a staged
        // batch spanning shards commits at a single atomic store.
        let epoch = shards[0].collection().share_epoch();
        for shard in shards.iter_mut().skip(1) {
            shard.collection_mut().set_epoch_handle(Arc::clone(&epoch));
        }
        let faults = FaultInjector::new(config.fault_seed);
        let health = ClusterHealth::new(config.num_shards);
        let executor = ShardExecutor::new(config.executor);
        Cluster {
            config,
            shard_key,
            shard_key_index,
            shards,
            chunks: ChunkMap::new_single(0),
            zones: None,
            migrations: MigrationStats::default(),
            faults,
            health,
            epoch,
            routing_gen: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            executor,
            obs: sts_obs::global_handle(),
        }
    }

    /// The work-stealing executor's tunables.
    pub fn executor_config(&self) -> ExecutorConfig {
        self.executor.config()
    }

    /// Replace the executor tunables (takes effect on the next query).
    pub fn set_executor_config(&mut self, config: ExecutorConfig) {
        self.config.executor = config;
        self.executor.set_config(config);
    }

    /// Cumulative executor counters: tasks, steals, overflow spills,
    /// inline fan-outs.
    pub fn executor_stats(&self) -> ExecutorStats {
        self.executor.stats()
    }

    /// Rescope every metric this deployment records — the router's
    /// scatter/gather observables and every shard's stage timers —
    /// onto `obs` instead of the process-wide registry. Benchmarks use
    /// this so one approach's counters can never bleed into another's.
    pub fn set_metrics_registry(&mut self, obs: Arc<Registry>) {
        for shard in &mut self.shards {
            shard.collection_mut().set_obs(obs.clone());
        }
        self.obs = obs;
    }

    /// The registry this deployment records metrics into.
    pub fn metrics_registry(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// Point-in-time cluster-health telemetry: per-shard and per-chunk
    /// load counters plus the balancer event history, aggregated
    /// against the current routing table.
    pub fn health_snapshot(&self) -> HealthSnapshot {
        self.health.snapshot(&self.chunks, &self.docs_per_shard())
    }

    /// A percentile of the health ledger's per-query cluster latency
    /// (slowest shard's total cost, virtual recovery delay included)
    /// plus the number of queries backing it — the tail signal the
    /// router tier's shed/hedge decision consumes.
    pub fn health_latency_percentile(&self, q: f64) -> (Duration, u64) {
        self.health.latency_percentile(q)
    }

    /// Balancer events with `seq >= from`, in order — the incremental
    /// read the telemetry timeline uses to annotate splits/migrations
    /// right after a batch commit without cloning the whole ledger.
    pub fn balancer_events_since(&self, from: u64) -> Vec<crate::health::BalancerEvent> {
        self.health.events_since(from)
    }

    /// Total balancer events recorded so far (the next event's `seq`).
    pub fn balancer_event_count(&self) -> u64 {
        self.health.event_count()
    }

    /// The failpoint registry. Arming takes `&self` (interior
    /// mutability), like `configureFailPoint` against a live server.
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.faults
    }

    /// Arm (or re-arm) a named failpoint.
    pub fn arm_failpoint(&self, name: impl Into<String>, point: FailPoint) {
        self.faults.arm(name, point);
    }

    /// Disarm one failpoint; `true` if it was armed.
    pub fn disarm_failpoint(&self, name: &str) -> bool {
        self.faults.disarm(name)
    }

    /// Disarm every failpoint.
    pub fn disarm_all_failpoints(&self) {
        self.faults.disarm_all();
    }

    /// The active recovery policy.
    pub fn recovery_policy(&self) -> &RecoveryPolicy {
        &self.config.recovery
    }

    /// Replace the recovery policy.
    pub fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        self.config.recovery = policy;
    }

    /// The shard key.
    pub fn shard_key(&self) -> &ShardKey {
        &self.shard_key
    }

    /// Name of the index backing the shard key.
    pub fn shard_key_index(&self) -> &str {
        &self.shard_key_index
    }

    /// The routing table.
    pub fn chunk_map(&self) -> &ChunkMap {
        &self.chunks
    }

    /// The shards.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Active zones, if configured.
    pub fn zones(&self) -> Option<&[Zone]> {
        self.zones.as_deref()
    }

    /// Total live documents.
    pub fn doc_count(&self) -> u64 {
        self.shards.iter().map(|s| s.len() as u64).sum()
    }

    /// The routing generation cached [`RoutePlan`]s are checked against.
    pub fn routing_generation(&self) -> u64 {
        self.routing_gen.load(Ordering::Acquire)
    }

    /// The write generation result-cache entries are stamped with (see
    /// the field docs: every insert/stage/delete bumps it).
    pub fn write_generation(&self) -> u64 {
        self.writes.load(Ordering::Acquire)
    }

    /// Route a document and insert it, splitting/balancing as needed.
    pub fn insert(&mut self, doc: &Document) -> Result<(), String> {
        self.writes.fetch_add(1, Ordering::Release);
        let key = self.shard_key.key_bytes(doc);
        let cidx = self.chunks.route(&key);
        let shard_id = self.chunks.chunks()[cidx].shard;
        self.shards[shard_id].insert(doc)?;
        let size = encoded_size(doc) as u64;
        {
            let c = &mut self.chunks.chunks_mut()[cidx];
            c.bytes += size;
            c.docs += 1;
        }
        let c = &self.chunks.chunks()[cidx];
        if c.bytes > self.config.max_chunk_bytes && !c.jumbo {
            self.try_split(cidx);
            self.balance();
        }
        Ok(())
    }

    /// Bulk insertion in batches (the paper loads with 15k-document
    /// batches, §A.1 — batching here just amortizes the balancer checks).
    pub fn bulk_insert<I: IntoIterator<Item = Document>>(
        &mut self,
        docs: I,
    ) -> Result<u64, String> {
        let mut n = 0u64;
        for doc in docs {
            self.insert(&doc)?;
            n += 1;
        }
        Ok(n)
    }

    /// The committed epoch — the snapshot queries starting now read at.
    pub fn snapshot_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Stage one document into the in-flight ingest batch: routed and
    /// physically inserted (stored + indexed, chunk counters bumped)
    /// but stamped `committed + 1`, so concurrent snapshot readers do
    /// not see it until [`commit_batch`](Self::commit_batch). Returns
    /// the `(shard, record id)` the document landed on, which
    /// [`ingest`](Self::ingest) uses to roll a failed batch back.
    pub fn stage(&mut self, doc: &Document) -> Result<(usize, u64), String> {
        self.writes.fetch_add(1, Ordering::Release);
        let key = self.shard_key.key_bytes(doc);
        let cidx = self.chunks.route(&key);
        let shard_id = self.chunks.chunks()[cidx].shard;
        let epoch = self.snapshot_epoch() + 1;
        let rid = self.shards[shard_id]
            .collection_mut()
            .insert_at_epoch(doc, epoch)?;
        let size = encoded_size(doc) as u64;
        let c = &mut self.chunks.chunks_mut()[cidx];
        c.bytes += size;
        c.docs += 1;
        self.obs.counter("ingest.docs").inc();
        Ok((shard_id, rid))
    }

    /// Publish the in-flight batch: one atomic store on the shared
    /// epoch counter flips every staged record — on every shard —
    /// visible at once, then the live balancer reacts to the new state.
    /// A scan overlapping the commit observes the batch entirely or
    /// not at all, never a torn prefix.
    pub fn commit_batch(&mut self) {
        let next = self.snapshot_epoch() + 1;
        self.epoch.store(next, Ordering::Release);
        self.obs.counter("ingest.batches").inc();
        self.maybe_rebalance();
    }

    /// Batched concurrent ingest: stage every document, then commit.
    /// All-or-nothing — if any document fails validation the batch's
    /// staged records are physically removed (they were never visible)
    /// and the epoch does not advance. Returns the number ingested.
    pub fn ingest<I: IntoIterator<Item = Document>>(&mut self, docs: I) -> Result<u64, String> {
        let mut staged: Vec<(usize, u64, Document)> = Vec::new();
        for doc in docs {
            match self.stage(&doc) {
                Ok((shard, rid)) => staged.push((shard, rid, doc)),
                Err(e) => {
                    for (shard, rid, doc) in staged.drain(..) {
                        self.shards[shard].collection_mut().remove(rid);
                        let cidx = self.chunks.route(&self.shard_key.key_bytes(&doc));
                        let c = &mut self.chunks.chunks_mut()[cidx];
                        c.docs = c.docs.saturating_sub(1);
                        c.bytes = c.bytes.saturating_sub(encoded_size(&doc) as u64);
                    }
                    return Err(e);
                }
            }
        }
        let n = staged.len() as u64;
        self.commit_batch();
        Ok(n)
    }

    /// The live balancer, run at every batch commit: size splits for
    /// overflowing chunks, a heat split when the health ledger shows
    /// one chunk absorbing most of the query routing, then bounded
    /// skew-driven migrations (chunk-count spread + document Gini).
    fn maybe_rebalance(&mut self) {
        if !self.config.balancer.enabled {
            return;
        }
        // 1. Size splits — same overflow rule the synchronous insert
        // path applies, swept across the whole map because staging
        // defers them to the commit point.
        while let Some(cidx) = self
            .chunks
            .chunks()
            .iter()
            .position(|c| c.bytes > self.config.max_chunk_bytes && !c.jumbo)
        {
            self.try_split(cidx);
        }
        // 2. Heat split: one chunk soaking up more than the configured
        // share of routing decisions gets split so its halves can then
        // migrate apart.
        let policy = self.config.balancer;
        let snap = self.health_snapshot();
        let total_heat: u64 = snap.chunks.iter().map(|c| c.queries_routed).sum();
        if total_heat >= policy.heat_min_queries {
            if let Some(hot) = snap.hottest_chunks(1).first() {
                let share = hot.queries_routed as f64 / total_heat as f64;
                if share > policy.heat_split_ratio && !hot.jumbo {
                    if let Some(cidx) = self.chunks.chunks().iter().position(|c| c.min == hot.min) {
                        self.try_split(cidx);
                    }
                }
            }
        }
        // 3. Chunk-count spread, as the background balancer round.
        self.balance();
        // 4. Document-skew migrations: while the per-shard document
        // Gini stays above threshold, move chunks off the heaviest
        // shard — bounded per round so a commit does bounded work.
        let mut moves = 0usize;
        while moves < policy.max_moves_per_round {
            let docs: Vec<u64> = self.docs_per_shard().iter().map(|&d| d as u64).collect();
            if skew(&docs).gini < policy.docs_gini_threshold {
                break;
            }
            let donor = (0..docs.len()).max_by_key(|&i| docs[i]).unwrap();
            let recipient = (0..docs.len()).min_by_key(|&i| docs[i]).unwrap();
            if donor == recipient {
                break;
            }
            let donor_chunks: Vec<usize> = (0..self.chunks.len())
                .filter(|&i| self.chunks.chunks()[i].shard == donor)
                .collect();
            let idx = match donor_chunks.len() {
                0 => break,
                1 => {
                    // A one-chunk donor must split before it can shed
                    // load; a jumbo chunk cannot, so give up.
                    let only = donor_chunks[0];
                    self.try_split(only);
                    if self.chunks.chunks()[only].jumbo {
                        break;
                    }
                    only + 1
                }
                _ => *donor_chunks.last().unwrap(),
            };
            if !self.migrate(idx, recipient) {
                break;
            }
            moves += 1;
        }
    }

    /// Split chunk `cidx` at its median shard key (public hook for
    /// schedule-driven tests; jumbo marking applies as usual).
    pub fn split_chunk(&mut self, cidx: usize) {
        assert!(cidx < self.chunks.len(), "chunk index out of range");
        self.try_split(cidx);
    }

    /// Migrate chunk `cidx` to shard `dst` through the fault-aware
    /// two-phase protocol. Returns whether the migration committed
    /// (`false` = rolled back; the chunk stayed on its donor).
    pub fn migrate_chunk(&mut self, cidx: usize, dst: usize) -> bool {
        assert!(cidx < self.chunks.len(), "chunk index out of range");
        assert!(dst < self.config.num_shards, "shard out of range");
        self.migrate(cidx, dst)
    }

    /// Split an oversized chunk at its median shard key.
    fn try_split(&mut self, cidx: usize) {
        let (min, max, shard_id) = {
            let c = &self.chunks.chunks()[cidx];
            (c.min.clone(), c.max.clone(), c.shard)
        };
        let keys = self.shards[shard_id].shard_keys_in_range(
            &self.shard_key,
            &self.shard_key_index,
            &min,
            max.as_deref(),
        );
        if keys.len() < 2 {
            self.mark_jumbo(cidx);
            return;
        }
        let mut split = keys[keys.len() / 2].clone();
        if split == keys[0] {
            // Median collides with the lowest key — advance to the first
            // distinct key; if none exists the chunk is jumbo (§4.1.2).
            match keys.iter().find(|k| **k > split) {
                Some(k) => split = k.clone(),
                None => {
                    self.mark_jumbo(cidx);
                    return;
                }
            }
        }
        if split <= min {
            self.mark_jumbo(cidx);
            return;
        }
        // A rejected split (key outside the chunk after a concurrent
        // map change) is routed, not fatal: the chunk is left whole
        // and flagged jumbo so the balancer stops retrying it.
        if self.chunks.split(cidx, split).is_err() {
            self.mark_jumbo(cidx);
            return;
        }
        self.routing_gen.fetch_add(1, Ordering::Release);
        self.health.record_event(min, BalancerEventKind::Split);
        self.obs.counter("balancer.splits").inc();
    }

    /// Flag a chunk as unsplittable and log the event.
    fn mark_jumbo(&mut self, cidx: usize) {
        let c = &mut self.chunks.chunks_mut()[cidx];
        c.jumbo = true;
        let min = c.min.clone();
        self.health.record_event(min, BalancerEventKind::Jumbo);
    }

    /// Even out chunk counts (and enforce zone pinning when configured)
    /// by migrating chunks — physically moving their documents.
    pub fn balance(&mut self) {
        // Zone enforcement first: every chunk must live on its zone's shard.
        if let Some(zones) = self.zones.clone() {
            loop {
                let misplaced = self.chunks.chunks().iter().position(|c| {
                    zones
                        .iter()
                        .find(|z| z.contains(&c.min))
                        .is_some_and(|z| z.shard != c.shard)
                });
                match misplaced {
                    Some(idx) => {
                        let dst = zones
                            .iter()
                            .find(|z| z.contains(&self.chunks.chunks()[idx].min))
                            .unwrap()
                            .shard;
                        if !self.migrate(idx, dst) {
                            // Migration rolled back (injected fault);
                            // leave enforcement to a later round rather
                            // than spinning on the same chunk.
                            break;
                        }
                    }
                    None => break,
                }
            }
            // With one zone per shard there is nothing further to even out.
            return;
        }
        // Default balancer: migrate from the most- to the least-loaded
        // shard while the spread exceeds one chunk.
        loop {
            let counts = self.chunks.counts_per_shard(self.config.num_shards);
            let (max_shard, &max_count) =
                counts.iter().enumerate().max_by_key(|(_, c)| **c).unwrap();
            let (min_shard, &min_count) =
                counts.iter().enumerate().min_by_key(|(_, c)| **c).unwrap();
            if max_count <= min_count + 1 {
                break;
            }
            // Move the donor's last chunk (MongoDB picks from the top of
            // the range; any deterministic choice works for the model).
            let idx = self
                .chunks
                .chunks()
                .iter()
                .rposition(|c| c.shard == max_shard)
                .expect("max shard has chunks");
            if !self.migrate(idx, min_shard) {
                break;
            }
        }
    }

    /// Move one chunk's documents to another shard through a two-phase
    /// protocol that survives injected faults:
    ///
    /// 1. **Copy**: every record in the chunk's key range is inserted on
    ///    the recipient, *preserving its insert-epoch stamp* (a staged
    ///    document stays staged on the new shard).
    /// 2. **Commit or roll back**: the transfer then draws from the
    ///    failpoint registry. A transient fault rolls the copies back
    ///    and retries (up to the recovery policy's retry budget); a hard
    ///    failure rolls back and aborts. On success the originals are
    ///    deleted and the routing table flips ownership — the only point
    ///    where queries start routing the range to the recipient.
    ///
    /// Returns whether the migration committed. Aborted migrations
    /// leave the cluster exactly as before (no lost or duplicated
    /// records) and count in `migrations_aborted`, not `chunks_moved`.
    fn migrate(&mut self, chunk_idx: usize, dst: usize) -> bool {
        let (min, max, src) = {
            let c = &self.chunks.chunks()[chunk_idx];
            (c.min.clone(), c.max.clone(), c.shard)
        };
        if src == dst {
            return true;
        }
        let start = Instant::now();
        let records =
            self.shards[src].records_in_key_range(&self.shard_key_index, &min, max.as_deref());
        let migration_id = self.faults.begin_query();
        let max_attempts = 1 + self.config.recovery.max_retries;
        for attempt in 0..max_attempts {
            if attempt > 0 {
                self.migrations.migration_retries += 1;
                self.obs.counter("balancer.migration_retries").inc();
            }
            // Phase 1: copy. Epoch stamps ride along so a staged batch
            // straddling the migration still commits atomically.
            let mut copied = Vec::with_capacity(records.len());
            for (_, doc, epoch) in &records {
                let rid = self.shards[dst]
                    .collection_mut()
                    .insert_at_epoch(doc, *epoch)
                    .expect("migrated documents were already validated");
                copied.push(rid);
            }
            // Phase 2: the transfer itself may fault.
            let fault = self.faults.draw(&AttemptCtx {
                query_id: migration_id,
                shard: src,
                attempt,
                replica: false,
            });
            match fault {
                Some(FaultKind::TransientError) | Some(FaultKind::HardFailure) => {
                    // Mid-transfer loss: undo the copies. The donor
                    // still holds every original, so no record is lost;
                    // removing the copies means none is duplicated.
                    for rid in copied {
                        self.shards[dst].collection_mut().remove(rid);
                    }
                    if matches!(fault, Some(FaultKind::HardFailure)) {
                        break; // node down: retrying cannot help
                    }
                    continue;
                }
                // Injected latency is virtual time: the transfer is
                // slow, not wrong.
                Some(FaultKind::Latency(_)) | None => {}
            }
            // Commit: drop the originals, flip routing-table ownership.
            for (rid, _, _) in &records {
                self.shards[src].collection_mut().remove(*rid);
            }
            self.chunks.assign(chunk_idx, dst);
            self.routing_gen.fetch_add(1, Ordering::Release);
            self.migrations.chunks_moved += 1;
            self.migrations.docs_moved += records.len() as u64;
            self.health.record_event(
                min,
                BalancerEventKind::Migrate {
                    from: src,
                    to: dst,
                    docs: records.len() as u64,
                },
            );
            self.obs.counter("balancer.migrations").inc();
            self.obs.record("balancer.migrations", start.elapsed());
            return true;
        }
        self.migrations.migrations_aborted += 1;
        self.obs.counter("balancer.migrations_aborted").inc();
        self.health.record_event(
            min,
            BalancerEventKind::MigrateAborted { from: src, to: dst },
        );
        false
    }

    /// Balancer bookkeeping so far.
    pub fn migration_stats(&self) -> MigrationStats {
        self.migrations
    }

    /// Compute `$bucketAuto` boundaries over one document field: the
    /// encoded field values split into `n` near-equal-count buckets
    /// (§4.2.4's zone construction).
    pub fn bucket_auto_boundaries(&self, path: &str, n: usize) -> Vec<Vec<u8>> {
        let mut keys = Vec::with_capacity(self.doc_count() as usize);
        for shard in &self.shards {
            for (_, doc) in shard.collection().iter() {
                let v = doc.get_path(path).cloned().unwrap_or(Value::Null);
                keys.push(sts_encoding::encode_value(&v));
            }
        }
        crate::zones::bucket_boundaries(keys, n)
    }

    /// Weighted `$bucketAuto` boundaries over one field: each document
    /// contributes `weight(doc)` instead of 1 — the workload-aware
    /// partitioning hook (§6 future work).
    pub fn bucket_auto_weighted_boundaries(
        &self,
        path: &str,
        n: usize,
        weight: impl Fn(&sts_document::Document) -> u64,
    ) -> Vec<Vec<u8>> {
        let mut pairs = Vec::with_capacity(self.doc_count() as usize);
        for shard in &self.shards {
            for (_, doc) in shard.collection().iter() {
                let v = doc.get_path(path).cloned().unwrap_or(Value::Null);
                pairs.push((sts_encoding::encode_value(&v), weight(&doc)));
            }
        }
        crate::zones::weighted_bucket_boundaries(pairs, n)
    }

    /// Define one zone per shard from interior boundaries (in shard-key
    /// space), split chunks at the boundaries, and migrate data to its
    /// pinned shard.
    pub fn apply_zones(&mut self, boundaries: &[Vec<u8>]) {
        let zones = zones_from_boundaries(boundaries, self.config.num_shards);
        self.chunks.split_at_boundaries(boundaries);
        self.routing_gen.fetch_add(1, Ordering::Release);
        self.zones = Some(zones);
        self.balance();
    }

    /// Which shards a query must visit, and whether that's a broadcast.
    pub fn target_shards(&self, filter: &Filter) -> (Vec<usize>, bool) {
        let (shards, broadcast, _) = self.route(filter);
        (shards, broadcast)
    }

    /// Full routing decision: target shards, broadcast flag, and the
    /// routing-table chunk indices the decision touched (all chunks on
    /// a broadcast — the router consults the whole table).
    fn route(&self, filter: &Filter) -> (Vec<usize>, bool, Vec<usize>) {
        let shape = QueryShape::analyze(filter);
        let lead = &self.shard_key.fields[0];
        let intervals: Option<Vec<KeyInterval>> = match self.shard_key.strategy {
            ShardStrategy::Hashed => None, // ranges cannot target hashed keys
            ShardStrategy::Range => {
                if let Some((path, ivs)) = &shape.int_intervals {
                    (path == lead).then(|| {
                        ivs.iter()
                            .map(|&(lo, hi)| {
                                (
                                    sts_encoding::encode_value(&Value::Int64(lo)),
                                    Some(upper_bytes(&Value::Int64(hi))),
                                )
                            })
                            .collect()
                    })
                } else if let Some(iv) = shape.range_for(lead) {
                    iv.is_constrained().then(|| {
                        let lo = iv
                            .lo
                            .as_ref()
                            .map(sts_encoding::encode_value)
                            .unwrap_or_default();
                        let hi = iv.hi.as_ref().map(upper_bytes);
                        vec![(lo, hi)]
                    })
                } else {
                    None
                }
            }
        };
        match intervals {
            None => (
                (0..self.config.num_shards).collect(),
                true,
                (0..self.chunks.chunks().len()).collect(),
            ),
            Some(ivs) => {
                let mut shards = BTreeSet::new();
                let mut touched = BTreeSet::new();
                for (lo, hi) in ivs {
                    for idx in self.chunks.overlapping(&lo, hi.as_deref()) {
                        shards.insert(self.chunks.chunks()[idx].shard);
                        touched.insert(idx);
                    }
                }
                (
                    shards.into_iter().collect(),
                    false,
                    touched.into_iter().collect(),
                )
            }
        }
    }

    /// Compute (and stamp) a reusable routing decision for `filter` —
    /// what the router tier's plan cache holds next to the covering.
    pub fn route_plan(&self, filter: &Filter) -> RoutePlan {
        // Read the generation *before* routing: if the map changes
        // mid-computation the plan self-invalidates rather than
        // claiming a freshness it doesn't have.
        let generation = self.routing_generation();
        let (targets, broadcast, touched) = self.route(filter);
        RoutePlan {
            targets,
            broadcast,
            touched,
            generation,
        }
    }

    /// The unified scatter/gather: route (or replay a cached,
    /// generation-checked [`RoutePlan`]), fan out on the work-stealing
    /// shard executor under the recovery policy (failpoint draws,
    /// timeouts, backoff retries, hedged reads), gather in shard
    /// order. Abandoned shards contribute an incomplete
    /// [`ShardExecution`] and flip the report's `partial` flag instead
    /// of losing the whole query.
    fn scatter_gather<R: Send>(
        &self,
        filter: &Filter,
        opts: QueryExecOptions,
        run: impl Fn(usize) -> (R, ExecutionStats) + Sync,
    ) -> (Vec<R>, ClusterQueryReport) {
        /// One gathered row: shard id, its answer (`None` once the
        /// recovery policy gave the shard up), and the recovery record.
        type GatherRow<R> = (usize, Option<(R, ExecutionStats)>, ShardRecovery);
        let start = Instant::now();
        let cached_route = opts
            .route
            .filter(|p| p.generation == self.routing_generation());
        let computed;
        let (targets, broadcast, touched_chunks): (&[usize], bool, &[usize]) = match cached_route {
            Some(p) => {
                self.obs.counter("router.route_reused").inc();
                (&p.targets, p.broadcast, &p.touched)
            }
            None => {
                if opts.route.is_some() {
                    // A plan was offered but the chunk map moved on.
                    self.obs.counter("router.route_stale").inc();
                }
                computed = self.route(filter);
                (&computed.0, computed.1, &computed.2)
            }
        };
        let routing = start.elapsed();
        let query_id = self.faults.begin_query();
        let policy = opts.recovery.unwrap_or(self.config.recovery);
        let mut results: Vec<GatherRow<R>> = self
            .executor
            .execute(
                &self.obs,
                targets,
                |&sid| sid,
                |&sid| {
                    let (out, recovery) =
                        run_with_recovery(&policy, &self.faults, query_id, sid, || run(sid));
                    (sid, out, recovery)
                },
            )
            .into_iter()
            .map(|(_, row)| row)
            .collect();
        results.sort_by_key(|(sid, _, _)| *sid);
        let mut payloads = Vec::with_capacity(results.len());
        let mut per_shard = Vec::with_capacity(results.len());
        let mut partial = false;
        for (sid, out, recovery) in results {
            let stats = match out {
                Some((payload, stats)) => {
                    payloads.push(payload);
                    stats
                }
                None => {
                    partial = true;
                    ExecutionStats {
                        completed: false,
                        ..ExecutionStats::default()
                    }
                }
            };
            per_shard.push(ShardExecution {
                shard: sid,
                stats,
                recovery,
            });
        }
        let report = ClusterQueryReport {
            per_shard,
            broadcast,
            partial,
            wall: start.elapsed(),
            routing,
            merge: Duration::ZERO,
        };
        self.health.record_query(&report);
        self.health.record_chunk_access(
            touched_chunks
                .iter()
                .map(|&idx| self.chunks.chunks()[idx].min.as_slice()),
        );
        record_scatter_metrics(&self.obs, &report);
        (payloads, report)
    }

    /// Route, scatter, execute in parallel, gather.
    pub fn query(&self, filter: &Filter) -> (Vec<Document>, ClusterQueryReport) {
        self.query_exec(filter, QueryExecOptions::default())
    }

    /// [`Cluster::query`] with per-query overrides: a cached routing
    /// decision to replay and/or a recovery-policy override (the
    /// router tier's hedge escalation).
    pub fn query_exec(
        &self,
        filter: &Filter,
        opts: QueryExecOptions,
    ) -> (Vec<Document>, ClusterQueryReport) {
        let planner = self.config.planner;
        let (chunks, mut report) = self.scatter_gather(filter, opts, |sid| {
            self.shards[sid]
                .collection()
                .find_with_planner(&planner, filter)
        });
        let merge_start = Instant::now();
        // `Flatten` has no useful size hint; pre-size the merge vector
        // from the per-shard counts so the gather does one allocation.
        let total: usize = chunks.iter().map(Vec::len).sum();
        let mut docs: Vec<Document> = Vec::with_capacity(total);
        for chunk in chunks {
            docs.extend(chunk);
        }
        finish_merge(&self.obs, &mut report, merge_start.elapsed());
        (docs, report)
    }

    /// Like [`Cluster::query`], but an abandoned shard is an error
    /// instead of a silently partial result set.
    pub fn try_query(
        &self,
        filter: &Filter,
    ) -> Result<(Vec<Document>, ClusterQueryReport), QueryError> {
        let (docs, report) = self.query(filter);
        check_complete(report).map(|report| (docs, report))
    }

    /// Route, scatter, execute, shape: every shard returns its own
    /// sorted top-k, the router merge-shapes the union — distributed
    /// top-k semantics.
    pub fn query_with_options(
        &self,
        filter: &Filter,
        options: &sts_query::FindOptions,
    ) -> (Vec<Document>, ClusterQueryReport) {
        let planner = self.config.planner;
        let (chunks, mut report) =
            self.scatter_gather(filter, QueryExecOptions::default(), |sid| {
                let coll = self.shards[sid].collection();
                let (mut docs, stats) = coll.find_with_planner(&planner, filter);
                options.shape(&mut docs);
                (docs, stats)
            });
        let merge_start = Instant::now();
        let total: usize = chunks.iter().map(Vec::len).sum();
        let mut docs: Vec<Document> = Vec::with_capacity(total);
        for chunk in chunks {
            docs.extend(chunk);
        }
        options.shape(&mut docs);
        finish_merge(&self.obs, &mut report, merge_start.elapsed());
        (docs, report)
    }

    /// Like [`Cluster::query_with_options`], erroring on partial results.
    pub fn try_query_with_options(
        &self,
        filter: &Filter,
        options: &sts_query::FindOptions,
    ) -> Result<(Vec<Document>, ClusterQueryReport), QueryError> {
        let (docs, report) = self.query_with_options(filter, options);
        check_complete(report).map(|report| (docs, report))
    }

    /// Delete every document matching `filter` across the targeted
    /// shards, keeping indexes and chunk counters consistent. Returns
    /// the number removed.
    pub fn delete(&mut self, filter: &Filter) -> u64 {
        self.writes.fetch_add(1, Ordering::Release);
        let (targets, _) = self.target_shards(filter);
        let mut removed_docs: Vec<Document> = Vec::new();
        for sid in targets {
            removed_docs.extend(self.shards[sid].collection_mut().delete_matching(filter));
        }
        // Maintain routing metadata: each removed document decrements
        // its chunk's counters (saturating — counters after splits are
        // estimates, §3.3).
        for d in &removed_docs {
            let key = self.shard_key.key_bytes(d);
            let cidx = self.chunks.route(&key);
            let c = &mut self.chunks.chunks_mut()[cidx];
            c.docs = c.docs.saturating_sub(1);
            c.bytes = c.bytes.saturating_sub(encoded_size(d) as u64);
        }
        removed_docs.len() as u64
    }

    /// Distributed aggregation: `$match` + `$group` scattered to the
    /// targeted shards; partials merge exactly at the router.
    pub fn aggregate(
        &self,
        filter: &Filter,
        spec: &sts_query::GroupBy,
    ) -> (Vec<Document>, ClusterQueryReport) {
        let (partials, mut report) =
            self.scatter_gather(filter, QueryExecOptions::default(), |sid| {
                sts_query::aggregate_local(self.shards[sid].collection(), filter, spec)
            });
        let merge_start = Instant::now();
        let mut merged = sts_query::PartialAggregation::default();
        for partial in partials {
            merged.merge(partial);
        }
        let docs = merged.finalize(spec);
        finish_merge(&self.obs, &mut report, merge_start.elapsed());
        (docs, report)
    }

    /// Like [`Cluster::aggregate`], erroring on partial results.
    pub fn try_aggregate(
        &self,
        filter: &Filter,
        spec: &sts_query::GroupBy,
    ) -> Result<(Vec<Document>, ClusterQueryReport), QueryError> {
        let (docs, report) = self.aggregate(filter, spec);
        check_complete(report).map(|report| (docs, report))
    }

    /// Aggregated collection statistics (Table 6).
    pub fn collection_stats(&self) -> CollectionStats {
        let mut total = CollectionStats::default();
        for s in &self.shards {
            total.merge(&s.stats());
        }
        total
    }

    /// Per-index total sizes across shards: `(index name, merged
    /// report)` — Fig. 14's breakdown.
    pub fn index_sizes(&self) -> Vec<(String, SizeReport)> {
        let mut acc: Vec<(String, SizeReport)> = Vec::new();
        for shard in &self.shards {
            for (name, report) in shard.index_sizes() {
                match acc.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, r)) => r.merge(&report),
                    None => acc.push((name, report)),
                }
            }
        }
        acc
    }

    /// Per-shard document counts (load-balance diagnostics).
    pub fn docs_per_shard(&self) -> Vec<usize> {
        self.shards.iter().map(Shard::len).collect()
    }
}

/// A `[lo, hi)` interval in shard-key byte space (`None` = +∞).
type KeyInterval = (Vec<u8>, Option<Vec<u8>>);

/// Record router-level observables for one scatter/gather into the
/// cluster's metrics registry: routing latency, per-query fan-out and
/// the recovery counters. Virtual recovery delay goes to its own
/// histogram — it is injected, not measured, time.
fn record_scatter_metrics(obs: &Registry, report: &ClusterQueryReport) {
    obs.counter("router.queries").inc();
    if report.broadcast {
        obs.counter("router.broadcasts").inc();
    }
    if report.partial {
        obs.counter("router.partials").inc();
    }
    obs.counter("router.shard_executions")
        .add(report.per_shard.len() as u64);
    obs.counter("router.retries")
        .add(u64::from(report.total_retries()));
    obs.counter("router.hedges")
        .add(u64::from(report.total_hedges()));
    obs.counter("router.timeouts")
        .add(u64::from(report.total_timeouts()));
    obs.record("router.routing", report.routing);
    let recovery = report.stage_totals().recovery;
    if recovery > Duration::ZERO {
        obs.record("router.recovery_virtual", recovery);
    }
}

/// Fold the router-side merge stage into the report: the merge runs
/// after the scatter wall-clock window closed, so it extends `wall`.
fn finish_merge(obs: &Registry, report: &mut ClusterQueryReport, merge: Duration) {
    report.merge = merge;
    report.wall += merge;
    obs.record("router.merge", merge);
    obs.record("router.wall", report.wall);
}

/// Turn a partial gather into `QueryError::ShardsUnavailable`.
fn check_complete(report: ClusterQueryReport) -> Result<ClusterQueryReport, QueryError> {
    if report.partial {
        Err(QueryError::ShardsUnavailable {
            shards: report.failed_shards(),
        })
    } else {
        Ok(report)
    }
}

/// Bytes sorting strictly after every key whose leading value is `v`.
fn upper_bytes(v: &Value) -> Vec<u8> {
    let mut b = sts_encoding::encode_value(v);
    b.push(0xFF);
    b
}

/// Does `spec` start with the shard key's fields as plain ascending
/// columns? (2dsphere fields cannot back a shard key — §4.1.2.)
fn covers_shard_key(spec: &IndexSpec, key: &ShardKey) -> bool {
    if key.strategy != ShardStrategy::Range || spec.fields.len() < key.fields.len() {
        return false;
    }
    key.fields
        .iter()
        .zip(&spec.fields)
        .all(|(path, field)| field.path == *path && matches!(field.kind, sts_index::FieldKind::Asc))
}
