//! Shard keys: how documents map into the partitioning key space.

use sts_document::{Document, Value};
use sts_encoding::KeyWriter;

/// Partitioning strategy (§3.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShardStrategy {
    /// Contiguous key ranges — similar keys co-locate (enables targeted
    /// range queries; the strategy every approach in the paper uses).
    Range,
    /// Keys are hashed first — spreads writes, forces broadcasts.
    Hashed,
}

/// A (possibly compound) shard key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardKey {
    /// Dotted field paths, in order.
    pub fields: Vec<String>,
    /// Range or hashed.
    pub strategy: ShardStrategy,
}

impl ShardKey {
    /// Range-sharded key over the given fields.
    pub fn range(fields: &[&str]) -> Self {
        assert!(!fields.is_empty(), "shard key needs at least one field");
        ShardKey {
            fields: fields.iter().map(|s| s.to_string()).collect(),
            strategy: ShardStrategy::Range,
        }
    }

    /// Hash-sharded key over one field.
    pub fn hashed(field: &str) -> Self {
        ShardKey {
            fields: vec![field.to_string()],
            strategy: ShardStrategy::Hashed,
        }
    }

    /// The document's position in the partitioning key space, as
    /// memcomparable bytes. Missing fields partition as `Null` (MongoDB
    /// allows this for non-`_id` keys).
    pub fn key_bytes(&self, doc: &Document) -> Vec<u8> {
        let mut w = KeyWriter::new();
        for path in &self.fields {
            let v = doc.get_path(path).cloned().unwrap_or(Value::Null);
            match self.strategy {
                ShardStrategy::Range => {
                    w.push(&v);
                }
                ShardStrategy::Hashed => {
                    w.push(&Value::Int64(hash_value(&v)));
                }
            }
        }
        w.finish()
    }

    /// Encode explicit values into key-space bytes (for building zone
    /// boundaries and routing intervals). Values are a *prefix* of the
    /// key fields.
    pub fn encode_prefix(&self, values: &[Value]) -> Vec<u8> {
        assert!(values.len() <= self.fields.len(), "too many key values");
        let mut w = KeyWriter::new();
        for v in values {
            w.push(v);
        }
        w.finish()
    }
}

/// FNV-1a over the memcomparable encoding (same as hashed indexes).
fn hash_value(v: &Value) -> i64 {
    let enc = sts_encoding::encode_value(v);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in enc {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_document::{doc, DateTime};

    #[test]
    fn range_keys_order_like_values() {
        let sk = ShardKey::range(&["hilbertIndex", "date"]);
        let d = |h: i64, t: i64| {
            doc! {"hilbertIndex" => h, "date" => DateTime::from_millis(t)}
        };
        assert!(sk.key_bytes(&d(1, 99)) < sk.key_bytes(&d(2, 0)));
        assert!(sk.key_bytes(&d(1, 1)) < sk.key_bytes(&d(1, 2)));
    }

    #[test]
    fn missing_field_partitions_as_null() {
        let sk = ShardKey::range(&["date"]);
        let with = doc! {"date" => DateTime::from_millis(1)};
        let without = doc! {"x" => 1};
        assert!(sk.key_bytes(&without) < sk.key_bytes(&with));
    }

    #[test]
    fn hashed_scatters_consecutive_values() {
        let sk = ShardKey::hashed("date");
        let keys: Vec<Vec<u8>> = (0..16)
            .map(|t| sk.key_bytes(&doc! {"date" => DateTime::from_millis(t)}))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_ne!(keys, sorted, "hashing should destroy temporal order");
    }

    #[test]
    fn prefix_encoding_matches_document_encoding() {
        let sk = ShardKey::range(&["hilbertIndex", "date"]);
        let d = doc! {"hilbertIndex" => 7i64, "date" => DateTime::from_millis(5)};
        let full = sk.key_bytes(&d);
        let prefix = sk.encode_prefix(&[Value::Int64(7)]);
        assert!(full.starts_with(&prefix));
    }
}
