//! Deterministic fault injection for the router — MongoDB-style
//! failpoints (`configureFailPoint`).
//!
//! A [`FailPoint`] describes a fault (latency, transient error, hard
//! failure), which shard it afflicts, and a firing [`FailPointMode`].
//! The [`FaultInjector`] holds the armed points and answers one
//! question per shard attempt: *does this attempt fault, and how?*
//!
//! # Determinism
//!
//! Every probabilistic decision is a **pure function** of
//! `(injector seed, query id, shard, attempt, replica, point name)` —
//! hashed through SplitMix64, never drawn from a shared RNG stream —
//! so outcomes are identical across runs regardless of how the rayon
//! scheduler interleaves shards. `Times(n)` counters are kept **per
//! (failpoint, shard)**; within one query a shard's attempts are
//! sequential, so those counters are race-free too. No wall clock is
//! consulted anywhere: injected latency is virtual time, accounted in
//! the recovery records (see [`crate::retry`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What an armed failpoint does to one shard attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Delay the attempt by this much *virtual* time. If it exceeds the
    /// recovery policy's per-shard timeout the attempt times out.
    Latency(Duration),
    /// The attempt fails with a retryable error (network reset,
    /// not-primary, interrupted-due-to-step-down...).
    TransientError,
    /// The node is down: no attempt against it can ever answer. Only a
    /// hedge to its replica can serve the read.
    HardFailure,
}

/// When an armed failpoint fires — mirrors MongoDB's failpoint modes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FailPointMode {
    /// Armed but inert.
    Off,
    /// Fires on the first `n` matching attempts **per shard**, then
    /// stays quiet (the per-shard scope keeps broadcasts deterministic).
    Times(u32),
    /// Fires on every matching attempt.
    AlwaysOn,
    /// Fires with this probability, decided by a deterministic hash of
    /// the attempt coordinates (not a shared RNG).
    Random {
        /// Probability in `[0, 1]`.
        probability: f64,
    },
}

/// One armed fault: kind + scope + firing mode.
#[derive(Clone, Debug, PartialEq)]
pub struct FailPoint {
    /// Afflicted shard, or `None` for every shard.
    pub shard: Option<usize>,
    /// The injected fault.
    pub kind: FaultKind,
    /// When it fires.
    pub mode: FailPointMode,
    /// Whether hedged (replica) attempts are afflicted too. Defaults to
    /// `false`: the replica is healthy, so hedging can succeed.
    pub on_replica: bool,
}

impl FailPoint {
    /// An always-on latency fault on one shard.
    pub fn latency(shard: usize, delay: Duration) -> Self {
        FailPoint {
            shard: Some(shard),
            kind: FaultKind::Latency(delay),
            mode: FailPointMode::AlwaysOn,
            on_replica: false,
        }
    }

    /// An always-on transient-error fault on one shard.
    pub fn transient(shard: usize) -> Self {
        FailPoint {
            shard: Some(shard),
            kind: FaultKind::TransientError,
            mode: FailPointMode::AlwaysOn,
            on_replica: false,
        }
    }

    /// A hard failure of one shard's primary.
    pub fn hard_failure(shard: usize) -> Self {
        FailPoint {
            shard: Some(shard),
            kind: FaultKind::HardFailure,
            mode: FailPointMode::AlwaysOn,
            on_replica: false,
        }
    }

    /// Replace the firing mode.
    pub fn with_mode(mut self, mode: FailPointMode) -> Self {
        self.mode = mode;
        self
    }

    /// Afflict every shard instead of one.
    pub fn on_all_shards(mut self) -> Self {
        self.shard = None;
        self
    }

    /// Afflict hedged (replica) attempts too.
    pub fn on_replica_too(mut self) -> Self {
        self.on_replica = true;
        self
    }
}

/// Coordinates of one shard attempt, the sole input (besides the seed)
/// to every firing decision.
#[derive(Clone, Copy, Debug)]
pub struct AttemptCtx {
    /// Router-assigned query sequence number.
    pub query_id: u64,
    /// Target shard.
    pub shard: usize,
    /// 0-based attempt index *on this node* (primary and replica count
    /// separately).
    pub attempt: u32,
    /// Whether this is a hedged read against the replica.
    pub replica: bool,
}

struct ArmedPoint {
    name: String,
    point: FailPoint,
    /// `Times(n)` bookkeeping: how often this point fired per shard.
    fired: HashMap<usize, u32>,
}

/// The registry of armed failpoints; lives inside the cluster router.
///
/// Arming and disarming take `&self` (interior mutability) — like
/// `configureFailPoint` against a live server — so tests can inject
/// faults through the read-only store facade.
pub struct FaultInjector {
    seed: u64,
    queries: AtomicU64,
    armed: Mutex<Vec<ArmedPoint>>,
}

impl FaultInjector {
    /// An injector with nothing armed.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed,
            queries: AtomicU64::new(0),
            armed: Mutex::new(Vec::new()),
        }
    }

    /// The determinism seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Assign the next query id (called once per routed query).
    pub fn begin_query(&self) -> u64 {
        self.queries.fetch_add(1, Ordering::Relaxed)
    }

    /// Arm (or re-arm, resetting its counters) a named failpoint.
    pub fn arm(&self, name: impl Into<String>, point: FailPoint) {
        let name = name.into();
        let mut armed = self.armed.lock().unwrap();
        armed.retain(|p| p.name != name);
        armed.push(ArmedPoint {
            name,
            point,
            fired: HashMap::new(),
        });
    }

    /// Disarm one failpoint; `true` if it was armed.
    pub fn disarm(&self, name: &str) -> bool {
        let mut armed = self.armed.lock().unwrap();
        let before = armed.len();
        armed.retain(|p| p.name != name);
        armed.len() != before
    }

    /// Disarm everything.
    pub fn disarm_all(&self) {
        self.armed.lock().unwrap().clear();
    }

    /// Names of currently armed failpoints, in arming order.
    pub fn armed(&self) -> Vec<String> {
        self.armed
            .lock()
            .unwrap()
            .iter()
            .map(|p| p.name.clone())
            .collect()
    }

    /// Fast path: is any failpoint armed?
    pub fn is_active(&self) -> bool {
        !self.armed.lock().unwrap().is_empty()
    }

    /// Decide whether `ctx` faults. The first armed point (in arming
    /// order) that matches and fires wins.
    pub fn draw(&self, ctx: &AttemptCtx) -> Option<FaultKind> {
        let mut armed = self.armed.lock().unwrap();
        if armed.is_empty() {
            return None;
        }
        for p in armed.iter_mut() {
            if p.point.shard.is_some_and(|s| s != ctx.shard) {
                continue;
            }
            if ctx.replica && !p.point.on_replica {
                continue;
            }
            let fires = match p.point.mode {
                FailPointMode::Off => false,
                FailPointMode::AlwaysOn => true,
                FailPointMode::Times(n) => {
                    let count = p.fired.entry(ctx.shard).or_insert(0);
                    if *count < n {
                        *count += 1;
                        true
                    } else {
                        false
                    }
                }
                FailPointMode::Random { probability } => {
                    let h = mix(
                        self.seed,
                        &[
                            fnv1a(&p.name),
                            ctx.query_id,
                            ctx.shard as u64,
                            u64::from(ctx.attempt),
                            u64::from(ctx.replica),
                        ],
                    );
                    unit_f64(h) < probability
                }
            };
            if fires {
                return Some(p.point.kind);
            }
        }
        None
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("seed", &self.seed)
            .field("armed", &self.armed())
            .finish()
    }
}

/// SplitMix64 finalizer — a strong 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fold the parts into the seed, one SplitMix64 round each.
fn mix(seed: u64, parts: &[u64]) -> u64 {
    let mut h = splitmix64(seed);
    for &p in parts {
        h = splitmix64(h ^ p);
    }
    h
}

/// FNV-1a over the name, so draws don't depend on arming order.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Map a hash to `[0, 1)` using its top 53 bits.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(shard: usize, attempt: u32) -> AttemptCtx {
        AttemptCtx {
            query_id: 7,
            shard,
            attempt,
            replica: false,
        }
    }

    #[test]
    fn nothing_armed_never_faults() {
        let inj = FaultInjector::new(1);
        assert!(!inj.is_active());
        assert_eq!(inj.draw(&ctx(0, 0)), None);
    }

    #[test]
    fn shard_scope_is_respected() {
        let inj = FaultInjector::new(1);
        inj.arm("t", FailPoint::transient(3));
        assert_eq!(inj.draw(&ctx(3, 0)), Some(FaultKind::TransientError));
        assert_eq!(inj.draw(&ctx(2, 0)), None);
    }

    #[test]
    fn replica_attempts_skip_primary_only_points() {
        let inj = FaultInjector::new(1);
        inj.arm("down", FailPoint::hard_failure(0));
        let mut c = ctx(0, 0);
        assert_eq!(inj.draw(&c), Some(FaultKind::HardFailure));
        c.replica = true;
        assert_eq!(inj.draw(&c), None);

        inj.arm("down", FailPoint::hard_failure(0).on_replica_too());
        assert_eq!(inj.draw(&c), Some(FaultKind::HardFailure));
    }

    #[test]
    fn times_mode_counts_per_shard() {
        let inj = FaultInjector::new(1);
        inj.arm(
            "t2",
            FailPoint::transient(0)
                .on_all_shards()
                .with_mode(FailPointMode::Times(2)),
        );
        for shard in 0..3 {
            assert!(inj.draw(&ctx(shard, 0)).is_some());
            assert!(inj.draw(&ctx(shard, 1)).is_some());
            assert!(inj.draw(&ctx(shard, 2)).is_none(), "shard {shard} third");
        }
    }

    #[test]
    fn rearming_resets_times_counters() {
        let inj = FaultInjector::new(1);
        let p = FailPoint::transient(0).with_mode(FailPointMode::Times(1));
        inj.arm("t", p.clone());
        assert!(inj.draw(&ctx(0, 0)).is_some());
        assert!(inj.draw(&ctx(0, 1)).is_none());
        inj.arm("t", p);
        assert!(inj.draw(&ctx(0, 0)).is_some());
    }

    #[test]
    fn random_mode_is_deterministic_and_plausible() {
        let draws = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::new(seed);
            inj.arm(
                "r",
                FailPoint::transient(0).with_mode(FailPointMode::Random { probability: 0.3 }),
            );
            (0..2_000)
                .map(|q| {
                    inj.draw(&AttemptCtx {
                        query_id: q,
                        shard: 0,
                        attempt: 0,
                        replica: false,
                    })
                    .is_some()
                })
                .collect()
        };
        let a = draws(42);
        assert_eq!(a, draws(42), "same seed, same outcomes");
        assert_ne!(a, draws(43), "different seed, different outcomes");
        let rate = a.iter().filter(|&&b| b).count() as f64 / a.len() as f64;
        assert!((0.25..0.35).contains(&rate), "rate {rate}");
    }

    #[test]
    fn off_mode_is_inert_and_disarm_works() {
        let inj = FaultInjector::new(1);
        inj.arm("off", FailPoint::transient(0).with_mode(FailPointMode::Off));
        assert_eq!(inj.draw(&ctx(0, 0)), None);
        assert!(inj.disarm("off"));
        assert!(!inj.disarm("off"));
        inj.arm("a", FailPoint::transient(0));
        inj.arm("b", FailPoint::transient(1));
        assert_eq!(inj.armed(), vec!["a".to_string(), "b".to_string()]);
        inj.disarm_all();
        assert!(!inj.is_active());
    }

    #[test]
    fn first_armed_matching_point_wins() {
        let inj = FaultInjector::new(1);
        inj.arm("slow", FailPoint::latency(0, Duration::from_millis(5)));
        inj.arm("down", FailPoint::hard_failure(0));
        assert_eq!(
            inj.draw(&ctx(0, 0)),
            Some(FaultKind::Latency(Duration::from_millis(5)))
        );
    }

    #[test]
    fn query_ids_are_sequential() {
        let inj = FaultInjector::new(1);
        assert_eq!(inj.begin_query(), 0);
        assert_eq!(inj.begin_query(), 1);
    }
}
