//! Work-stealing shard executor: the router's fan-out engine.
//!
//! Replaces the global `rayon` pool with an explicit, tunable executor
//! so per-shard concurrency is an observable knob instead of ambient
//! process state:
//!
//! * every target shard gets its **own FIFO queue** of tasks (one task
//!   per shard for a plain scatter, several for batched descents);
//! * a queue whose depth exceeds [`ExecutorConfig::queue_depth`] spills
//!   the excess into a shared **overflow injector** (counted, never
//!   dropped);
//! * **workers** are pinned to queues round-robin (`queue % workers`);
//!   each drains its own queues first, then **steals** from the others,
//!   then drains the overflow injector — so one slow shard never idles
//!   the rest of the fleet;
//! * a single-task (or single-worker) fan-out runs **inline** on the
//!   caller thread: no spawn cost on the paths caching has already
//!   collapsed to sub-queue work.
//!
//! Tasks are claimed with one `fetch_add` per queue cursor, so each
//! task executes exactly once regardless of which worker wins it.
//! Steal and overflow counts are recorded both in the executor's
//! cumulative [`ExecutorStats`] and in the metrics registry the caller
//! passes per execution — the registry a store scoped via
//! `set_metrics_registry`, which is what keeps worker-thread metrics
//! attributed to the owning deployment even for stolen work.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use sts_obs::Registry;

/// Tunables for the shard executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Worker threads per fan-out. `0` = one per available core,
    /// always capped by the number of tasks.
    pub workers: usize,
    /// Per-shard queue capacity; tasks beyond it go to the shared
    /// overflow injector (minimum 1).
    pub queue_depth: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            workers: 0,
            queue_depth: 64,
        }
    }
}

/// Cumulative executor observables (mirrored as `executor.*` metrics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Tasks executed, over all fan-outs.
    pub tasks: u64,
    /// Tasks a worker claimed from a queue it does not own.
    pub steals: u64,
    /// Tasks that spilled past a full per-shard queue into the shared
    /// overflow injector.
    pub overflows: u64,
    /// Fan-outs that ran inline on the caller thread (single task or
    /// single worker).
    pub inline_runs: u64,
}

/// One per-shard task queue: the task indices bound for that shard and
/// an atomic claim cursor.
struct ShardQueue {
    tasks: Vec<usize>,
    cursor: AtomicUsize,
}

impl ShardQueue {
    fn claim(&self) -> Option<usize> {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        self.tasks.get(i).copied()
    }
}

/// The work-stealing shard executor. Owned by a `Cluster`; stateless
/// between fan-outs apart from its cumulative counters.
pub struct ShardExecutor {
    config: ExecutorConfig,
    tasks: AtomicU64,
    steals: AtomicU64,
    overflows: AtomicU64,
    inline_runs: AtomicU64,
}

impl ShardExecutor {
    /// Build an executor with the given tunables.
    pub fn new(config: ExecutorConfig) -> Self {
        ShardExecutor {
            config,
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            overflows: AtomicU64::new(0),
            inline_runs: AtomicU64::new(0),
        }
    }

    /// The active tunables.
    pub fn config(&self) -> ExecutorConfig {
        self.config
    }

    /// Replace the tunables (takes effect on the next fan-out).
    pub fn set_config(&mut self, config: ExecutorConfig) {
        self.config = config;
    }

    /// Cumulative counters since construction.
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            tasks: self.tasks.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            overflows: self.overflows.load(Ordering::Relaxed),
            inline_runs: self.inline_runs.load(Ordering::Relaxed),
        }
    }

    /// Execute every task, shard-queued and work-stolen, and return
    /// `(task index, result)` pairs in unspecified order.
    ///
    /// `shard_of` assigns each task to its queue; `work` runs on
    /// whichever worker claims the task. Metrics land in `obs` — the
    /// caller's scoped registry — regardless of which thread executed.
    pub fn execute<T: Sync, R: Send>(
        &self,
        obs: &Registry,
        tasks: &[T],
        shard_of: impl Fn(&T) -> usize,
        work: impl Fn(&T) -> R + Sync,
    ) -> Vec<(usize, R)> {
        if tasks.is_empty() {
            return Vec::new();
        }
        let depth = self.config.queue_depth.max(1);
        // Build per-shard queues in first-appearance order; spill past
        // `queue_depth` into the overflow injector.
        let mut queues: Vec<(usize, ShardQueue)> = Vec::new();
        let mut overflow_tasks: Vec<usize> = Vec::new();
        for (idx, t) in tasks.iter().enumerate() {
            let shard = shard_of(t);
            let q = match queues.iter_mut().find(|(s, _)| *s == shard) {
                Some((_, q)) => q,
                None => {
                    queues.push((
                        shard,
                        ShardQueue {
                            tasks: Vec::new(),
                            cursor: AtomicUsize::new(0),
                        },
                    ));
                    &mut queues.last_mut().unwrap().1
                }
            };
            if q.tasks.len() < depth {
                q.tasks.push(idx);
            } else {
                overflow_tasks.push(idx);
            }
        }
        let overflow = ShardQueue {
            tasks: overflow_tasks,
            cursor: AtomicUsize::new(0),
        };
        let n = tasks.len();
        self.tasks.fetch_add(n as u64, Ordering::Relaxed);
        obs.counter("executor.tasks").add(n as u64);
        if !overflow.tasks.is_empty() {
            let spilled = overflow.tasks.len() as u64;
            self.overflows.fetch_add(spilled, Ordering::Relaxed);
            obs.counter("executor.overflows").add(spilled);
        }
        let workers = self.worker_count(n);
        obs.gauge("executor.workers").set(workers as i64);
        if workers <= 1 || n == 1 {
            // Inline fast path: no spawn cost for what one thread will
            // execute serially anyway.
            self.inline_runs.fetch_add(1, Ordering::Relaxed);
            obs.counter("executor.inline").inc();
            let mut out = Vec::with_capacity(n);
            for (_, q) in &queues {
                while let Some(idx) = q.claim() {
                    out.push((idx, work(&tasks[idx])));
                }
            }
            while let Some(idx) = overflow.claim() {
                out.push((idx, work(&tasks[idx])));
            }
            return out;
        }
        let queues = &queues;
        let overflow = &overflow;
        let tasks_ref = tasks;
        let work = &work;
        let steals = AtomicU64::new(0);
        let steals_ref = &steals;
        let mut out: Vec<(usize, R)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                handles.push(scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    // Own queues first (queue index mod workers).
                    for (qi, (_, q)) in queues.iter().enumerate() {
                        if qi % workers != w {
                            continue;
                        }
                        while let Some(idx) = q.claim() {
                            local.push((idx, work(&tasks_ref[idx])));
                        }
                    }
                    // Steal from everyone else's queues, round-robin
                    // from the next queue over.
                    let nq = queues.len();
                    for off in 0..nq {
                        let qi = (w + 1 + off) % nq;
                        if qi % workers == w {
                            continue;
                        }
                        let (_, q) = &queues[qi];
                        while let Some(idx) = q.claim() {
                            steals_ref.fetch_add(1, Ordering::Relaxed);
                            local.push((idx, work(&tasks_ref[idx])));
                        }
                    }
                    // Shared overflow injector last; draining it is not
                    // a steal (nobody owns it).
                    while let Some(idx) = overflow.claim() {
                        local.push((idx, work(&tasks_ref[idx])));
                    }
                    local
                }));
            }
            for h in handles {
                out.extend(h.join().expect("executor worker panicked"));
            }
        });
        let stolen = steals.load(Ordering::Relaxed);
        if stolen > 0 {
            self.steals.fetch_add(stolen, Ordering::Relaxed);
            obs.counter("executor.steals").add(stolen);
        }
        out
    }

    /// Effective worker count for a fan-out of `n` tasks.
    fn worker_count(&self, n: usize) -> usize {
        let configured = if self.config.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.config.workers
        };
        configured.clamp(1, n)
    }
}

impl Default for ShardExecutor {
    fn default() -> Self {
        ShardExecutor::new(ExecutorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn exec(workers: usize, depth: usize) -> ShardExecutor {
        ShardExecutor::new(ExecutorConfig {
            workers,
            queue_depth: depth,
        })
    }

    #[test]
    fn runs_every_task_exactly_once() {
        let e = exec(4, 64);
        let obs = Registry::new();
        let tasks: Vec<usize> = (0..37).collect();
        let mut got: Vec<(usize, usize)> = e.execute(&obs, &tasks, |&t| t % 5, |&t| t * 2);
        got.sort_unstable();
        assert_eq!(got.len(), 37);
        for (i, (idx, val)) in got.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*val, i * 2);
        }
        assert_eq!(e.stats().tasks, 37);
        assert_eq!(obs.counter("executor.tasks").get(), 37);
    }

    #[test]
    fn single_task_runs_inline() {
        let e = exec(8, 64);
        let obs = Registry::new();
        let caller = std::thread::current().id();
        let got = e.execute(
            &obs,
            &[42usize],
            |_| 0,
            |&t| {
                assert_eq!(std::thread::current().id(), caller);
                t + 1
            },
        );
        assert_eq!(got, vec![(0, 43)]);
        assert_eq!(e.stats().inline_runs, 1);
        assert_eq!(obs.counter("executor.inline").get(), 1);
    }

    #[test]
    fn blocked_owner_gets_its_queue_stolen() {
        // Two workers, four shard queues. Worker 0 owns queues 0 and 2;
        // its first task sleeps, so worker 1 must steal queue 2's task
        // to finish the fan-out.
        let e = exec(2, 64);
        let obs = Registry::new();
        let tasks: Vec<usize> = vec![0, 1, 2, 3]; // task i -> shard i
        let got = e.execute(
            &obs,
            &tasks,
            |&t| t,
            |&t| {
                if t == 0 {
                    std::thread::sleep(Duration::from_millis(40));
                }
                t
            },
        );
        assert_eq!(got.len(), 4);
        assert!(
            e.stats().steals >= 1,
            "worker 1 should have stolen the blocked owner's queue"
        );
        assert_eq!(obs.counter("executor.steals").get(), e.stats().steals);
    }

    #[test]
    fn queue_depth_spills_to_overflow_and_still_completes() {
        let e = exec(3, 2);
        let obs = Registry::new();
        // 10 tasks for one shard with depth 2: 8 spill to overflow.
        let tasks: Vec<usize> = (0..10).collect();
        let done = Arc::new(AtomicU64::new(0));
        let d = done.clone();
        let got = e.execute(
            &obs,
            &tasks,
            |_| 7,
            move |&t| {
                d.fetch_add(1, Ordering::Relaxed);
                t
            },
        );
        assert_eq!(got.len(), 10);
        assert_eq!(done.load(Ordering::Relaxed), 10);
        assert_eq!(e.stats().overflows, 8);
        assert_eq!(obs.counter("executor.overflows").get(), 8);
    }

    #[test]
    fn worker_count_caps_to_tasks_and_floor_one() {
        let auto = exec(0, 8);
        assert_eq!(auto.worker_count(1), 1);
        assert!(auto.worker_count(64) >= 1);
        let fixed = exec(6, 8);
        assert_eq!(fixed.worker_count(3), 3);
        assert_eq!(fixed.worker_count(100), 6);
    }

    #[test]
    fn metrics_land_in_the_registry_passed_per_call() {
        // The attribution contract: two deployments sharing one
        // executor-shaped world never bleed counters, because every
        // fan-out records into the registry it was handed — including
        // for stolen work.
        let e = exec(2, 64);
        let a = Registry::new();
        let b = Registry::new();
        let tasks: Vec<usize> = vec![0, 1, 2, 3];
        let slow = |&t: &usize| {
            if t == 0 {
                std::thread::sleep(Duration::from_millis(30));
            }
            t
        };
        e.execute(&a, &tasks, |&t| t, slow);
        assert!(a.counter("executor.tasks").get() == 4);
        assert_eq!(b.counter("executor.tasks").get(), 0);
        e.execute(&b, &tasks, |&t| t, slow);
        assert_eq!(a.counter("executor.tasks").get(), 4);
        assert_eq!(b.counter("executor.tasks").get(), 4);
        // Steals recorded during a's fan-out never landed in b.
        assert_eq!(
            a.counter("executor.steals").get() + b.counter("executor.steals").get(),
            e.stats().steals
        );
    }
}
