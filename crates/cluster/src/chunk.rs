//! Chunks: contiguous shard-key ranges assigned to shards.

/// One chunk: the half-open key range `[min, max)` living on `shard`.
/// `max == None` means +∞. The first chunk's `min` is the empty key
/// (−∞ — every encoded key is non-empty, so it sorts after).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// Inclusive lower key bound.
    pub min: Vec<u8>,
    /// Exclusive upper key bound; `None` is +∞.
    pub max: Option<Vec<u8>>,
    /// Owning shard id.
    pub shard: usize,
    /// Approximate bytes of documents in this chunk.
    pub bytes: u64,
    /// Documents in this chunk.
    pub docs: u64,
    /// True when the chunk exceeded the split size but cannot split
    /// (every document shares one shard-key value — §4.1.2's "jumbo").
    pub jumbo: bool,
}

impl Chunk {
    /// Does `key` fall inside this chunk?
    pub fn contains(&self, key: &[u8]) -> bool {
        key >= &self.min[..] && self.max.as_deref().is_none_or(|m| key < m)
    }
}

/// A rejected chunk split: the proposed key does not fall strictly
/// inside the chunk's `(min, max)` range. Returned (not panicked) so a
/// live balancer interleaved with migrations can route the error and
/// keep running instead of aborting mid-rebalance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitError {
    /// The rejected split key.
    pub split_key: Vec<u8>,
    /// The chunk's inclusive lower bound.
    pub min: Vec<u8>,
    /// The chunk's exclusive upper bound (`None` = +∞).
    pub max: Option<Vec<u8>>,
}

impl std::fmt::Display for SplitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "split key {:02x?} outside chunk [{:02x?}, {:?})",
            self.split_key, self.min, self.max
        )
    }
}

impl std::error::Error for SplitError {}

/// The cluster's routing table: chunks sorted by `min`, covering the
/// whole key space without gaps.
#[derive(Clone, Debug, Default)]
pub struct ChunkMap {
    chunks: Vec<Chunk>,
}

impl ChunkMap {
    /// A single chunk covering everything, on `shard`.
    pub fn new_single(shard: usize) -> Self {
        ChunkMap {
            chunks: vec![Chunk {
                min: Vec::new(),
                max: None,
                shard,
                bytes: 0,
                docs: 0,
                jumbo: false,
            }],
        }
    }

    /// All chunks, sorted by `min`.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Mutable access for the balancer/splitter.
    pub(crate) fn chunks_mut(&mut self) -> &mut [Chunk] {
        &mut self.chunks
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Never true — a chunk map always covers the key space.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Index of the chunk containing `key`.
    pub fn route(&self, key: &[u8]) -> usize {
        // Last chunk whose min <= key.
        self.chunks.partition_point(|c| c.min.as_slice() <= key) - 1
    }

    /// Indices of chunks intersecting `[lo, hi)` (`hi == None` → +∞).
    pub fn overlapping(&self, lo: &[u8], hi: Option<&[u8]>) -> std::ops::Range<usize> {
        let start = self.route(lo);
        let end = match hi {
            None => self.chunks.len(),
            Some(h) => {
                // First chunk whose min >= h is fully beyond the range.
                self.chunks.partition_point(|c| c.min.as_slice() < h)
            }
        };
        start..end.max(start + 1)
    }

    /// Split the chunk at `idx` at `split_key`. The key must fall
    /// strictly inside the chunk's range; an out-of-range key is
    /// rejected with a [`SplitError`] and the map is left untouched.
    /// Both halves stay on the same shard; counters split
    /// proportionally (re-estimated on subsequent inserts).
    pub fn split(&mut self, idx: usize, split_key: Vec<u8>) -> Result<(), SplitError> {
        let c = &mut self.chunks[idx];
        if split_key.as_slice() <= c.min.as_slice()
            || c.max.as_deref().is_some_and(|m| split_key.as_slice() >= m)
        {
            return Err(SplitError {
                split_key,
                min: c.min.clone(),
                max: c.max.clone(),
            });
        }
        let right = Chunk {
            min: split_key.clone(),
            max: c.max.take(),
            shard: c.shard,
            bytes: c.bytes / 2,
            docs: c.docs / 2,
            jumbo: false,
        };
        c.max = Some(split_key);
        c.bytes -= right.bytes;
        c.docs -= right.docs;
        c.jumbo = false;
        self.chunks.insert(idx + 1, right);
        Ok(())
    }

    /// Reassign chunk `idx` to `shard` — the routing-table flip that
    /// commits a migration.
    pub fn assign(&mut self, idx: usize, shard: usize) {
        self.chunks[idx].shard = shard;
    }

    /// Ensure boundaries exist at every given key (splitting chunks as
    /// needed) — used when zone ranges are applied.
    pub fn split_at_boundaries(&mut self, boundaries: &[Vec<u8>]) {
        for b in boundaries {
            if b.is_empty() {
                continue;
            }
            let idx = self.route(b);
            if self.chunks[idx].min != *b {
                self.split(idx, b.clone())
                    .expect("routed boundary lies inside its chunk");
            }
        }
    }

    /// Chunk count per shard (for the balancer), sized to `num_shards`.
    pub fn counts_per_shard(&self, num_shards: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_shards];
        for c in &self.chunks {
            counts[c.shard] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(n: u8) -> Vec<u8> {
        vec![0x10, n] // fake rank byte + payload, orders by n
    }

    #[test]
    fn single_chunk_routes_everything() {
        let m = ChunkMap::new_single(0);
        assert_eq!(m.route(&[]), 0);
        assert_eq!(m.route(&k(200)), 0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn split_and_route() {
        let mut m = ChunkMap::new_single(0);
        m.split(0, k(100)).unwrap();
        m.split(0, k(50)).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.route(&k(10)), 0);
        assert_eq!(m.route(&k(50)), 1);
        assert_eq!(m.route(&k(99)), 1);
        assert_eq!(m.route(&k(100)), 2);
        // Boundaries stay contiguous.
        assert_eq!(m.chunks()[0].max.as_ref(), Some(&k(50)));
        assert_eq!(m.chunks()[1].min, k(50));
        assert_eq!(m.chunks()[1].max.as_ref(), Some(&k(100)));
        assert_eq!(m.chunks()[2].max, None);
    }

    #[test]
    fn overlapping_ranges() {
        let mut m = ChunkMap::new_single(0);
        m.split(0, k(100)).unwrap();
        m.split(0, k(50)).unwrap();
        assert_eq!(m.overlapping(&k(0), Some(&k(49))), 0..1);
        assert_eq!(m.overlapping(&k(0), Some(&k(60))), 0..2);
        assert_eq!(m.overlapping(&k(55), Some(&k(60))), 1..2);
        assert_eq!(m.overlapping(&k(55), None), 1..3);
        assert_eq!(m.overlapping(&[], None), 0..3);
        // Range falling inside one chunk still yields that chunk.
        assert_eq!(m.overlapping(&k(120), Some(&k(130))), 2..3);
    }

    #[test]
    fn split_at_boundaries_is_idempotent() {
        let mut m = ChunkMap::new_single(0);
        m.split_at_boundaries(&[k(10), k(20)]);
        assert_eq!(m.len(), 3);
        m.split_at_boundaries(&[k(10), k(20)]);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn split_outside_is_rejected() {
        let mut m = ChunkMap::new_single(0);
        m.split(0, k(100)).unwrap();
        // k(50) lies in chunk 0, not chunk 1: rejected, map untouched.
        let err = m.split(1, k(50)).unwrap_err();
        assert_eq!(err.split_key, k(50));
        assert_eq!(err.min, k(100));
        assert_eq!(err.max, None);
        assert_eq!(m.len(), 2);
        // Splitting exactly at a boundary is rejected too (no-op split).
        assert!(m.split(1, k(100)).is_err());
        assert!(m.split(0, k(100)).is_err());
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn counts_per_shard() {
        let mut m = ChunkMap::new_single(1);
        m.split(0, k(10)).unwrap();
        m.assign(1, 0);
        assert_eq!(m.counts_per_shard(3), vec![1, 1, 0]);
    }
}
