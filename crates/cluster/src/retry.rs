//! Router-side fault tolerance: per-shard timeouts, bounded retries
//! with exponential backoff, and hedged reads to a replica.
//!
//! The recovery loop reacts to faults drawn from the
//! [`FaultInjector`]:
//!
//! * **no fault** — the attempt answers; done.
//! * **latency ≤ timeout** — slow but answered; the delay is recorded
//!   as virtual latency.
//! * **latency > timeout** — the attempt *times out*. A timed-out
//!   primary is hedged to the replica when hedging is on (waiting
//!   longer on a known-slow node is the worst move); otherwise the
//!   node is retried after backoff.
//! * **transient error** — retried on the same node after exponential
//!   backoff, up to `max_retries` extra attempts per node.
//! * **hard failure** — the node is down; no retry against it can
//!   help. The primary is hedged to the replica when hedging is on,
//!   else the shard is abandoned.
//!
//! Each node (primary, and replica if hedged) gets an attempt budget
//! of `1 + max_retries`. When the primary's budget is exhausted the
//! router hedges once (if enabled and not already done); when the
//! replica's is too, the shard is marked `gave_up` and the query
//! report turns `partial`.
//!
//! All waiting is **virtual**: injected latency and backoff are summed
//! into [`ShardRecovery`] instead of sleeping, so tests assert on
//! deterministic numbers and never on the wall clock.

use crate::faults::{AttemptCtx, FaultInjector, FaultKind};
use std::time::Duration;

/// The router's per-shard recovery policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Virtual per-attempt timeout: an attempt whose injected latency
    /// exceeds this is a timeout.
    pub shard_timeout: Duration,
    /// Extra attempts allowed per node beyond the first.
    pub max_retries: u32,
    /// First backoff pause; doubles each retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Hedge reads to the shard's replica when the primary times out,
    /// is down, or exhausts its retry budget.
    pub hedge_reads: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            shard_timeout: Duration::from_millis(250),
            max_retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            hedge_reads: true,
        }
    }
}

impl RecoveryPolicy {
    /// A policy that never retries nor hedges: first fault loses the
    /// shard. Useful as a chaos-test control group.
    pub fn fail_fast() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            hedge_reads: false,
            ..RecoveryPolicy::default()
        }
    }

    /// The exponential pause before retry number `retry` (0-based):
    /// `backoff_base * 2^retry`, capped at `backoff_cap`.
    pub fn backoff(&self, retry: u32) -> Duration {
        self.backoff_base
            .saturating_mul(1u32.checked_shl(retry.min(20)).unwrap_or(u32::MAX))
            .min(self.backoff_cap)
    }
}

/// What recovering one shard's answer cost. All durations are virtual
/// (injected), never wall-clock measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardRecovery {
    /// Attempts issued in total, across primary and replica.
    pub attempts: u32,
    /// Re-attempts against a node already tried (backoff retries).
    pub retries: u32,
    /// Hedged reads issued to the replica (0 or 1).
    pub hedges: u32,
    /// Attempts that exceeded the per-shard timeout.
    pub timeouts: u32,
    /// Attempts that failed with a retryable error.
    pub transient_errors: u32,
    /// Virtual time spent waiting on injected latency (timed-out
    /// attempts contribute the timeout, answered ones their delay).
    pub injected_latency: Duration,
    /// Virtual time spent in backoff pauses.
    pub backoff_wait: Duration,
    /// Whether the answer finally came from the replica.
    pub served_by_replica: bool,
    /// Whether the router abandoned the shard (the report is partial).
    pub gave_up: bool,
}

impl ShardRecovery {
    /// True when nothing noteworthy happened: one attempt, no faults.
    pub fn clean(&self) -> bool {
        self == &ShardRecovery {
            attempts: self.attempts.min(1),
            ..ShardRecovery::default()
        }
    }

    /// Total virtual delay this shard added (latency + backoff).
    pub fn virtual_delay(&self) -> Duration {
        self.injected_latency + self.backoff_wait
    }
}

/// Run `work` for one shard under the recovery policy, drawing faults
/// from `faults`. Returns the work's output (or `None` if the shard
/// was abandoned) plus the recovery record.
pub fn run_with_recovery<R>(
    policy: &RecoveryPolicy,
    faults: &FaultInjector,
    query_id: u64,
    shard: usize,
    work: impl Fn() -> R,
) -> (Option<R>, ShardRecovery) {
    let mut rec = ShardRecovery::default();
    let mut replica = false;
    // 0-based attempt index on the current node.
    let mut attempt = 0u32;

    // Move to the replica (hedge) or abandon the shard.
    // Returns false when the shard is lost.
    fn hedge_or_give_up(
        policy: &RecoveryPolicy,
        rec: &mut ShardRecovery,
        replica: &mut bool,
        attempt: &mut u32,
    ) -> bool {
        if policy.hedge_reads && !*replica {
            rec.hedges += 1;
            *replica = true;
            *attempt = 0;
            true
        } else {
            rec.gave_up = true;
            false
        }
    }

    loop {
        rec.attempts += 1;
        let fault = faults.draw(&AttemptCtx {
            query_id,
            shard,
            attempt,
            replica,
        });
        // Did this attempt answer?
        match fault {
            None => {
                rec.served_by_replica = replica;
                return (Some(work()), rec);
            }
            Some(FaultKind::Latency(delay)) => {
                if delay <= policy.shard_timeout {
                    rec.injected_latency += delay;
                    rec.served_by_replica = replica;
                    return (Some(work()), rec);
                }
                // Waited the full timeout for nothing.
                rec.timeouts += 1;
                rec.injected_latency += policy.shard_timeout;
                // A slow node stays slow: prefer the replica over
                // queueing behind it again.
                if policy.hedge_reads && !replica {
                    rec.hedges += 1;
                    replica = true;
                    attempt = 0;
                    continue;
                }
            }
            Some(FaultKind::TransientError) => {
                rec.transient_errors += 1;
            }
            Some(FaultKind::HardFailure) => {
                // Down is down — never re-attempt this node.
                if hedge_or_give_up(policy, &mut rec, &mut replica, &mut attempt) {
                    continue;
                }
                return (None, rec);
            }
        }
        // Retry the current node if budget remains, else hedge/give up.
        if attempt < policy.max_retries {
            rec.backoff_wait += policy.backoff(attempt);
            rec.retries += 1;
            attempt += 1;
        } else if hedge_or_give_up(policy, &mut rec, &mut replica, &mut attempt) {
            continue;
        } else {
            return (None, rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FailPoint, FailPointMode};

    fn injector() -> FaultInjector {
        FaultInjector::new(0xFA17)
    }

    #[test]
    fn clean_run_is_one_attempt() {
        let inj = injector();
        let (out, rec) = run_with_recovery(&RecoveryPolicy::default(), &inj, 0, 0, || 42);
        assert_eq!(out, Some(42));
        assert_eq!(rec.attempts, 1);
        assert!(rec.clean());
        assert_eq!(rec.virtual_delay(), Duration::ZERO);
    }

    #[test]
    fn tolerable_latency_is_recorded_not_retried() {
        let inj = injector();
        inj.arm("slow", FailPoint::latency(0, Duration::from_millis(100)));
        let (out, rec) = run_with_recovery(&RecoveryPolicy::default(), &inj, 0, 0, || 1);
        assert_eq!(out, Some(1));
        assert_eq!(rec.attempts, 1);
        assert_eq!(rec.timeouts, 0);
        assert_eq!(rec.injected_latency, Duration::from_millis(100));
        assert!(!rec.clean());
    }

    #[test]
    fn timeout_hedges_to_replica() {
        let inj = injector();
        inj.arm("stall", FailPoint::latency(0, Duration::from_secs(10)));
        let policy = RecoveryPolicy::default();
        let (out, rec) = run_with_recovery(&policy, &inj, 0, 0, || 1);
        assert_eq!(out, Some(1));
        assert_eq!(rec.timeouts, 1);
        assert_eq!(rec.hedges, 1);
        assert!(rec.served_by_replica);
        assert_eq!(rec.injected_latency, policy.shard_timeout);
    }

    #[test]
    fn timeout_without_hedging_retries_with_backoff() {
        let inj = injector();
        inj.arm(
            "stall1",
            FailPoint::latency(0, Duration::from_secs(10)).with_mode(FailPointMode::Times(1)),
        );
        let policy = RecoveryPolicy {
            hedge_reads: false,
            ..RecoveryPolicy::default()
        };
        let (out, rec) = run_with_recovery(&policy, &inj, 0, 0, || 1);
        assert_eq!(out, Some(1));
        assert_eq!(rec.timeouts, 1);
        assert_eq!(rec.retries, 1);
        assert_eq!(rec.hedges, 0);
        assert_eq!(rec.backoff_wait, policy.backoff(0));
        assert!(!rec.served_by_replica);
    }

    #[test]
    fn transient_errors_retry_until_budget_then_hedge() {
        let inj = injector();
        inj.arm("flaky", FailPoint::transient(0)); // primary always errors
        let policy = RecoveryPolicy::default();
        let (out, rec) = run_with_recovery(&policy, &inj, 0, 0, || 1);
        assert_eq!(out, Some(1));
        // 1 + max_retries primary attempts, then one replica attempt.
        assert_eq!(rec.attempts, 1 + policy.max_retries + 1);
        assert_eq!(rec.retries, policy.max_retries);
        assert_eq!(rec.transient_errors, 1 + policy.max_retries);
        assert_eq!(rec.hedges, 1);
        assert!(rec.served_by_replica);
        // Exponential: base + 2*base.
        assert_eq!(rec.backoff_wait, policy.backoff(0) + policy.backoff(1));
    }

    #[test]
    fn hard_failure_hedges_immediately() {
        let inj = injector();
        inj.arm("down", FailPoint::hard_failure(0));
        let (out, rec) = run_with_recovery(&RecoveryPolicy::default(), &inj, 0, 0, || 1);
        assert_eq!(out, Some(1));
        assert_eq!(rec.attempts, 2);
        assert_eq!(rec.retries, 0, "a dead node is never retried");
        assert_eq!(rec.hedges, 1);
        assert!(rec.served_by_replica);
    }

    #[test]
    fn hard_failure_of_both_copies_gives_up() {
        let inj = injector();
        inj.arm("gone", FailPoint::hard_failure(0).on_replica_too());
        let (out, rec) = run_with_recovery(&RecoveryPolicy::default(), &inj, 0, 0, || 1);
        assert_eq!(out, None::<i32>);
        assert!(rec.gave_up);
        assert_eq!(rec.attempts, 2);
        assert_eq!(rec.hedges, 1);
    }

    #[test]
    fn fail_fast_policy_abandons_on_first_fault() {
        let inj = injector();
        inj.arm("flaky", FailPoint::transient(0));
        let (out, rec) = run_with_recovery(&RecoveryPolicy::fail_fast(), &inj, 0, 0, || 1);
        assert_eq!(out, None::<i32>);
        assert!(rec.gave_up);
        assert_eq!(rec.attempts, 1);
        assert_eq!(rec.retries, 0);
        assert_eq!(rec.hedges, 0);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RecoveryPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(35),
            ..RecoveryPolicy::default()
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(35), "capped");
        assert_eq!(p.backoff(63), Duration::from_millis(35), "shift saturates");
    }

    #[test]
    fn work_runs_exactly_once_on_success() {
        let inj = injector();
        inj.arm(
            "flaky2",
            FailPoint::transient(0).with_mode(FailPointMode::Times(2)),
        );
        let calls = std::cell::Cell::new(0u32);
        let (out, rec) = run_with_recovery(&RecoveryPolicy::default(), &inj, 0, 0, || {
            calls.set(calls.get() + 1);
            7
        });
        assert_eq!(out, Some(7));
        assert_eq!(calls.get(), 1, "failed attempts never invoke the work");
        assert_eq!(rec.attempts, 3);
    }
}
