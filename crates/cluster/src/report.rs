//! Cluster-level query reports: the paper's four metrics in one place,
//! plus the fault-tolerance observables (retries, hedges, timeouts).

use crate::retry::ShardRecovery;
use std::time::Duration;
use sts_obs::StageBreakdown;
use sts_query::ExecutionStats;

/// One shard's contribution to a scatter/gather query.
#[derive(Debug, Clone)]
pub struct ShardExecution {
    /// Shard id.
    pub shard: usize,
    /// That shard's explain statistics. Defaulted (with
    /// `completed: false`) when the shard was abandoned.
    pub stats: ExecutionStats,
    /// What it took to get (or fail to get) this shard's answer.
    pub recovery: ShardRecovery,
}

impl ShardExecution {
    /// A fault-free execution record.
    pub fn clean(shard: usize, stats: ExecutionStats) -> Self {
        ShardExecution {
            shard,
            stats,
            recovery: ShardRecovery {
                attempts: 1,
                ..ShardRecovery::default()
            },
        }
    }

    /// Per-stage timing breakdown for this shard. The wall-clock
    /// stages (planning, index scan, fetch + residual filter)
    /// partition the shard's measured time exactly; the recovery stage
    /// carries the *virtual* delay fault injection added (injected
    /// latency + backoff waits), attributed here and never conflated
    /// with scan time.
    pub fn stage_breakdown(&self) -> StageBreakdown {
        StageBreakdown {
            planning: self.stats.planning,
            index_scan: self.stats.scan_time(),
            fetch_filter: self.stats.fetch_time,
            recovery: self.recovery.virtual_delay(),
        }
    }

    /// The shard's total cost: measured wall time plus virtual
    /// recovery delay. Equals `stage_breakdown().total()` exactly.
    pub fn total_time(&self) -> Duration {
        self.stats.total_time() + self.recovery.virtual_delay()
    }
}

/// The merged result of routing one query through `mongos`.
#[derive(Debug, Clone, Default)]
pub struct ClusterQueryReport {
    /// Per-shard executions, one entry per *targeted* shard — including
    /// shards that were abandoned after recovery ran out.
    pub per_shard: Vec<ShardExecution>,
    /// Whether the router had to broadcast (no shard-key constraint).
    pub broadcast: bool,
    /// True when at least one targeted shard never answered, so the
    /// gathered result set may be incomplete.
    pub partial: bool,
    /// End-to-end wall time of the scatter/gather, including the merge.
    pub wall: Duration,
    /// Router-side routing stage: chunk-map targeting time.
    pub routing: Duration,
    /// Router-side merge stage: gathering, flattening, shaping and/or
    /// partial-aggregation merging after the shards answered.
    pub merge: Duration,
}

impl ClusterQueryReport {
    /// Number of nodes accessed (§5.1 "Nodes" metric).
    pub fn nodes(&self) -> usize {
        self.per_shard.len()
    }

    /// Maximum keys examined on any node (§5.1 "Keys examined").
    pub fn max_keys_examined(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.stats.keys_examined)
            .max()
            .unwrap_or(0)
    }

    /// Maximum documents examined on any node (§5.1 "Documents examined").
    pub fn max_docs_examined(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.stats.docs_examined)
            .max()
            .unwrap_or(0)
    }

    /// Total matching documents across shards.
    pub fn n_returned(&self) -> u64 {
        self.per_shard.iter().map(|s| s.stats.n_returned).sum()
    }

    /// Sum of keys examined across shards (not a paper metric, but
    /// useful for total-work comparisons in the ablations).
    pub fn total_keys_examined(&self) -> u64 {
        self.per_shard.iter().map(|s| s.stats.keys_examined).sum()
    }

    /// Names of indexes used per shard (Table 7's observable).
    pub fn indexes_used(&self) -> Vec<(usize, String)> {
        self.per_shard
            .iter()
            .map(|s| (s.shard, s.stats.index_used.clone()))
            .collect()
    }

    /// The slowest shard's execution time (what bounds latency).
    pub fn max_shard_time(&self) -> Duration {
        self.per_shard
            .iter()
            .map(|s| s.stats.duration)
            .max()
            .unwrap_or_default()
    }

    /// Backoff retries issued across all shards.
    pub fn total_retries(&self) -> u32 {
        self.per_shard.iter().map(|s| s.recovery.retries).sum()
    }

    /// Hedged reads issued across all shards.
    pub fn total_hedges(&self) -> u32 {
        self.per_shard.iter().map(|s| s.recovery.hedges).sum()
    }

    /// Attempts that hit the per-shard timeout, across all shards.
    pub fn total_timeouts(&self) -> u32 {
        self.per_shard.iter().map(|s| s.recovery.timeouts).sum()
    }

    /// Shards that timed out at least once (they may still have
    /// answered after a hedge or retry).
    pub fn timed_out_shards(&self) -> Vec<usize> {
        self.per_shard
            .iter()
            .filter(|s| s.recovery.timeouts > 0)
            .map(|s| s.shard)
            .collect()
    }

    /// Shards whose answers came from the replica.
    pub fn hedge_served_shards(&self) -> Vec<usize> {
        self.per_shard
            .iter()
            .filter(|s| s.recovery.served_by_replica)
            .map(|s| s.shard)
            .collect()
    }

    /// Shards the router abandoned (empty unless `partial`).
    pub fn failed_shards(&self) -> Vec<usize> {
        self.per_shard
            .iter()
            .filter(|s| s.recovery.gave_up)
            .map(|s| s.shard)
            .collect()
    }

    /// True when no recovery machinery engaged anywhere: every shard
    /// answered on its first attempt with no faults.
    pub fn fault_free(&self) -> bool {
        !self.partial && self.per_shard.iter().all(|s| s.recovery.clean())
    }

    /// The slowest shard's *virtual* delay (injected latency plus
    /// backoff) — what fault injection added to the critical path.
    pub fn max_virtual_delay(&self) -> Duration {
        self.per_shard
            .iter()
            .map(|s| s.recovery.virtual_delay())
            .max()
            .unwrap_or_default()
    }

    /// The slowest shard's total cost including virtual recovery delay
    /// (what bounds latency once injected faults are charged).
    pub fn max_shard_total_time(&self) -> Duration {
        self.per_shard
            .iter()
            .map(ShardExecution::total_time)
            .max()
            .unwrap_or_default()
    }

    /// Element-wise sum of every shard's stage breakdown — the
    /// cluster's total work per stage (not a latency: shards run
    /// concurrently).
    pub fn stage_totals(&self) -> StageBreakdown {
        let mut acc = StageBreakdown::default();
        for s in &self.per_shard {
            let b = s.stage_breakdown();
            acc.planning += b.planning;
            acc.index_scan += b.index_scan;
            acc.fetch_filter += b.fetch_filter;
            acc.recovery += b.recovery;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(shard: usize, keys: u64, docs: u64, ret: u64) -> ShardExecution {
        ShardExecution::clean(
            shard,
            ExecutionStats {
                keys_examined: keys,
                docs_examined: docs,
                n_returned: ret,
                completed: true,
                ..Default::default()
            },
        )
    }

    #[test]
    fn aggregates() {
        let r = ClusterQueryReport {
            per_shard: vec![exec(0, 100, 50, 10), exec(3, 500, 20, 5)],
            broadcast: false,
            partial: false,
            wall: Duration::from_millis(4),
            ..Default::default()
        };
        assert_eq!(r.nodes(), 2);
        assert_eq!(r.max_keys_examined(), 500);
        assert_eq!(r.max_docs_examined(), 50);
        assert_eq!(r.n_returned(), 15);
        assert_eq!(r.total_keys_examined(), 600);
        assert_eq!(r.indexes_used().len(), 2);
        assert!(r.fault_free());
        assert_eq!(r.total_retries(), 0);
        assert_eq!(r.total_hedges(), 0);
        assert_eq!(r.total_timeouts(), 0);
        assert!(r.failed_shards().is_empty());
        assert_eq!(r.max_virtual_delay(), Duration::ZERO);
    }

    #[test]
    fn empty_report() {
        let r = ClusterQueryReport::default();
        assert_eq!(r.nodes(), 0);
        assert_eq!(r.max_keys_examined(), 0);
        assert_eq!(r.n_returned(), 0);
        assert!(r.fault_free());
    }

    #[test]
    fn recovery_rollups() {
        let mut slow = exec(1, 10, 10, 2);
        slow.recovery = ShardRecovery {
            attempts: 3,
            retries: 1,
            hedges: 1,
            timeouts: 1,
            injected_latency: Duration::from_millis(250),
            backoff_wait: Duration::from_millis(10),
            served_by_replica: true,
            ..ShardRecovery::default()
        };
        let mut dead = ShardExecution::clean(2, ExecutionStats::default());
        dead.stats.completed = false;
        dead.recovery.attempts = 2;
        dead.recovery.hedges = 1;
        dead.recovery.gave_up = true;
        let r = ClusterQueryReport {
            per_shard: vec![exec(0, 5, 5, 5), slow, dead],
            broadcast: true,
            partial: true,
            wall: Duration::from_millis(1),
            ..Default::default()
        };
        assert!(!r.fault_free());
        assert_eq!(r.total_retries(), 1);
        assert_eq!(r.total_hedges(), 2);
        assert_eq!(r.total_timeouts(), 1);
        assert_eq!(r.timed_out_shards(), vec![1]);
        assert_eq!(r.hedge_served_shards(), vec![1]);
        assert_eq!(r.failed_shards(), vec![2]);
        assert_eq!(r.max_virtual_delay(), Duration::from_millis(260));
    }

    #[test]
    fn stage_breakdown_attributes_recovery_separately() {
        let mut s = ShardExecution::clean(
            0,
            ExecutionStats {
                duration: Duration::from_micros(100),
                planning: Duration::from_micros(10),
                fetch_time: Duration::from_micros(30),
                completed: true,
                ..Default::default()
            },
        );
        s.recovery.injected_latency = Duration::from_millis(250);
        s.recovery.backoff_wait = Duration::from_millis(10);
        let b = s.stage_breakdown();
        assert_eq!(b.planning, Duration::from_micros(10));
        assert_eq!(b.index_scan, Duration::from_micros(70));
        assert_eq!(b.fetch_filter, Duration::from_micros(30));
        assert_eq!(b.recovery, Duration::from_millis(260));
        // Injected delay never inflates the wall-clock scan stages.
        assert_eq!(b.wall(), Duration::from_micros(110));
        assert_eq!(b.total(), s.total_time());
    }

    #[test]
    fn stage_totals_sum_across_shards() {
        let mk = |p: u64, d: u64, f: u64| {
            ShardExecution::clean(
                0,
                ExecutionStats {
                    planning: Duration::from_micros(p),
                    duration: Duration::from_micros(d),
                    fetch_time: Duration::from_micros(f),
                    ..Default::default()
                },
            )
        };
        let r = ClusterQueryReport {
            per_shard: vec![mk(1, 10, 4), mk(2, 20, 6)],
            ..Default::default()
        };
        let t = r.stage_totals();
        assert_eq!(t.planning, Duration::from_micros(3));
        assert_eq!(t.index_scan, Duration::from_micros(20));
        assert_eq!(t.fetch_filter, Duration::from_micros(10));
        assert_eq!(t.recovery, Duration::ZERO);
        assert_eq!(r.max_shard_total_time(), Duration::from_micros(22));
    }
}
