//! Cluster-level query reports: the paper's four metrics in one place.

use std::time::Duration;
use sts_query::ExecutionStats;

/// One shard's contribution to a scatter/gather query.
#[derive(Debug, Clone)]
pub struct ShardExecution {
    /// Shard id.
    pub shard: usize,
    /// That shard's explain statistics.
    pub stats: ExecutionStats,
}

/// The merged result of routing one query through `mongos`.
#[derive(Debug, Clone, Default)]
pub struct ClusterQueryReport {
    /// Per-shard executions, one entry per *targeted* shard.
    pub per_shard: Vec<ShardExecution>,
    /// Whether the router had to broadcast (no shard-key constraint).
    pub broadcast: bool,
    /// End-to-end wall time of the scatter/gather, including the merge.
    pub wall: Duration,
}

impl ClusterQueryReport {
    /// Number of nodes accessed (§5.1 "Nodes" metric).
    pub fn nodes(&self) -> usize {
        self.per_shard.len()
    }

    /// Maximum keys examined on any node (§5.1 "Keys examined").
    pub fn max_keys_examined(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.stats.keys_examined)
            .max()
            .unwrap_or(0)
    }

    /// Maximum documents examined on any node (§5.1 "Documents examined").
    pub fn max_docs_examined(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.stats.docs_examined)
            .max()
            .unwrap_or(0)
    }

    /// Total matching documents across shards.
    pub fn n_returned(&self) -> u64 {
        self.per_shard.iter().map(|s| s.stats.n_returned).sum()
    }

    /// Sum of keys examined across shards (not a paper metric, but
    /// useful for total-work comparisons in the ablations).
    pub fn total_keys_examined(&self) -> u64 {
        self.per_shard.iter().map(|s| s.stats.keys_examined).sum()
    }

    /// Names of indexes used per shard (Table 7's observable).
    pub fn indexes_used(&self) -> Vec<(usize, String)> {
        self.per_shard
            .iter()
            .map(|s| (s.shard, s.stats.index_used.clone()))
            .collect()
    }

    /// The slowest shard's execution time (what bounds latency).
    pub fn max_shard_time(&self) -> Duration {
        self.per_shard
            .iter()
            .map(|s| s.stats.duration)
            .max()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(shard: usize, keys: u64, docs: u64, ret: u64) -> ShardExecution {
        ShardExecution {
            shard,
            stats: ExecutionStats {
                keys_examined: keys,
                docs_examined: docs,
                n_returned: ret,
                completed: true,
                ..Default::default()
            },
        }
    }

    #[test]
    fn aggregates() {
        let r = ClusterQueryReport {
            per_shard: vec![exec(0, 100, 50, 10), exec(3, 500, 20, 5)],
            broadcast: false,
            wall: Duration::from_millis(4),
        };
        assert_eq!(r.nodes(), 2);
        assert_eq!(r.max_keys_examined(), 500);
        assert_eq!(r.max_docs_examined(), 50);
        assert_eq!(r.n_returned(), 15);
        assert_eq!(r.total_keys_examined(), 600);
        assert_eq!(r.indexes_used().len(), 2);
    }

    #[test]
    fn empty_report() {
        let r = ClusterQueryReport::default();
        assert_eq!(r.nodes(), 0);
        assert_eq!(r.max_keys_examined(), 0);
        assert_eq!(r.n_returned(), 0);
    }
}
