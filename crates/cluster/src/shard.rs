//! A shard: one `mongod` holding a slice of the collection.

use crate::shardkey::ShardKey;
use std::ops::Bound;
use sts_btree::SizeReport;
use sts_document::Document;
use sts_index::{IndexSpec, ScanRange};
use sts_query::LocalCollection;
use sts_storage::CollectionStats;

/// One cluster node's data.
pub struct Shard {
    id: usize,
    collection: LocalCollection,
}

impl Shard {
    /// Fresh shard with the given index definitions.
    pub fn new(id: usize, index_specs: &[IndexSpec]) -> Self {
        let mut collection = LocalCollection::new();
        for spec in index_specs {
            collection.create_index(spec.clone());
        }
        Shard { id, collection }
    }

    /// Shard id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The shard-local collection (read access for query execution).
    pub fn collection(&self) -> &LocalCollection {
        &self.collection
    }

    /// Mutable collection access (deletes, migrations).
    pub fn collection_mut(&mut self) -> &mut LocalCollection {
        &mut self.collection
    }

    /// Insert a document.
    pub fn insert(&mut self, doc: &Document) -> Result<(), String> {
        self.collection.insert(doc).map(|_| ())
    }

    /// Insert a document carrying an explicit insert-epoch stamp — the
    /// recipient side of a chunk migration uses this so staged records
    /// stay staged (invisible) after crossing shards.
    pub fn insert_at_epoch(&mut self, doc: &Document, epoch: u64) -> Result<u64, String> {
        self.collection.insert_at_epoch(doc, epoch)
    }

    /// Live document count.
    pub fn len(&self) -> usize {
        self.collection.len()
    }

    /// True when the shard holds nothing.
    pub fn is_empty(&self) -> bool {
        self.collection.is_empty()
    }

    /// Storage statistics.
    pub fn stats(&self) -> CollectionStats {
        self.collection.stats()
    }

    /// Per-index size reports.
    pub fn index_sizes(&self) -> Vec<(String, SizeReport)> {
        self.collection.indexes().size_reports()
    }

    /// Record ids of documents whose shard key lies in `[min, max)`,
    /// found through the shard-key index named `index_name`.
    pub fn record_ids_in_key_range(
        &self,
        index_name: &str,
        min: &[u8],
        max: Option<&[u8]>,
    ) -> Vec<u64> {
        let Some(index) = self.collection.indexes().get(index_name) else {
            return Vec::new();
        };
        let range = ScanRange {
            lower: if min.is_empty() {
                Bound::Unbounded
            } else {
                Bound::Included(min.to_vec())
            },
            upper: match max {
                None => Bound::Unbounded,
                Some(m) => Bound::Excluded(m.to_vec()),
            },
        };
        let mut rids = Vec::new();
        index.scan_ranges(&[range], |_, rid| {
            rids.push(rid);
            std::ops::ControlFlow::Continue(())
        });
        rids
    }

    /// Sorted shard-key byte strings of every document in `[min, max)` —
    /// split-point discovery walks these to find the median.
    pub fn shard_keys_in_range(
        &self,
        shard_key: &ShardKey,
        index_name: &str,
        min: &[u8],
        max: Option<&[u8]>,
    ) -> Vec<Vec<u8>> {
        self.record_ids_in_key_range(index_name, min, max)
            .into_iter()
            .filter_map(|rid| self.collection.get(rid))
            .map(|doc| shard_key.key_bytes(&doc))
            .collect()
    }

    /// Non-destructive read of every record in the key range with its
    /// record id and insert-epoch stamp — the copy phase of a two-phase
    /// chunk migration. The donor keeps everything until the commit
    /// phase deletes by these record ids.
    pub fn records_in_key_range(
        &self,
        index_name: &str,
        min: &[u8],
        max: Option<&[u8]>,
    ) -> Vec<(u64, Document, u64)> {
        self.record_ids_in_key_range(index_name, min, max)
            .into_iter()
            .filter_map(|rid| {
                let doc = self.collection.get(rid)?;
                let epoch = self.collection.epoch_of(rid)?;
                Some((rid, doc, epoch))
            })
            .collect()
    }

    /// Remove and return every document in the key range (the donor side
    /// of a chunk migration).
    pub fn extract_range(
        &mut self,
        index_name: &str,
        min: &[u8],
        max: Option<&[u8]>,
    ) -> Vec<Document> {
        let rids = self.record_ids_in_key_range(index_name, min, max);
        rids.into_iter()
            .filter_map(|rid| self.collection.remove(rid))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_document::{doc, DateTime};
    use sts_index::IndexField;

    fn specs() -> Vec<IndexSpec> {
        vec![
            IndexSpec::single("_id"),
            IndexSpec::new(
                "hilbertIndex_1_date_1",
                vec![IndexField::asc("hilbertIndex"), IndexField::asc("date")],
            ),
        ]
    }

    fn d(h: i64, t: i64) -> Document {
        let mut d = doc! {"hilbertIndex" => h, "date" => DateTime::from_millis(t)};
        d.ensure_id(0);
        d
    }

    #[test]
    fn key_range_extraction() {
        let sk = ShardKey::range(&["hilbertIndex", "date"]);
        let mut s = Shard::new(3, &specs());
        for h in 0..10 {
            s.insert(&d(h, h * 100)).unwrap();
        }
        assert_eq!(s.id(), 3);
        assert_eq!(s.len(), 10);

        let lo = sk.encode_prefix(&[sts_document::Value::Int64(3)]);
        let hi = sk.encode_prefix(&[sts_document::Value::Int64(7)]);
        let rids = s.record_ids_in_key_range("hilbertIndex_1_date_1", &lo, Some(&hi));
        assert_eq!(rids.len(), 4); // h = 3,4,5,6

        let keys = s.shard_keys_in_range(&sk, "hilbertIndex_1_date_1", &lo, Some(&hi));
        assert_eq!(keys.len(), 4);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "sorted by key");

        let moved = s.extract_range("hilbertIndex_1_date_1", &lo, Some(&hi));
        assert_eq!(moved.len(), 4);
        assert_eq!(s.len(), 6);
        // Unbounded extraction empties the shard.
        let rest = s.extract_range("hilbertIndex_1_date_1", &[], None);
        assert_eq!(rest.len(), 6);
        assert!(s.is_empty());
    }
}
