//! Sharded-cluster simulator: the distributed half of the store.
//!
//! Reproduces the MongoDB machinery §3.3 of the paper describes:
//!
//! * **shard keys** (range or hashed) extracted from documents,
//! * **chunks** — contiguous shard-key ranges with a configurable
//!   maximum size, split at their median key when they overflow (jumbo
//!   detection included),
//! * a **balancer** that keeps per-shard chunk counts even by migrating
//!   chunks (physically moving documents between shards),
//! * **zones** — operator-pinned shard-key ranges per shard, including a
//!   `$bucketAuto`-style boundary calculator (§4.2.4),
//! * the **mongos router**: inserts route by shard key; queries target
//!   only the shards whose chunks intersect the filter's shard-key
//!   constraints (else broadcast), execute in parallel, and merge
//!   results with per-shard explain statistics,
//! * **fault tolerance** — a deterministic failpoint registry
//!   ([`faults`]) injects per-shard latency, transient errors and hard
//!   failures; the router recovers via per-shard timeouts, bounded
//!   backoff retries and hedged reads to a replica ([`retry`]), and the
//!   query report records every retry, hedge and timeout,
//! * **live ingestion** — a batched write-while-read path
//!   ([`Cluster::stage`] / [`Cluster::ingest`]): staged documents are
//!   stored and indexed immediately but stamped one epoch ahead of the
//!   committed snapshot, so concurrent scans observe a batch entirely
//!   or not at all; [`Cluster::commit_batch`] publishes the epoch with
//!   one atomic store and then runs a *live balancer* that turns the
//!   health ledger's chunk-heat/Gini signals into splits and two-phase,
//!   fault-tolerant chunk migrations (copy, then commit-or-roll-back).

//! # Example
//!
//! ```
//! use sts_cluster::{Cluster, ClusterConfig, ShardKey};
//! use sts_document::{doc, DateTime};
//! use sts_query::Filter;
//!
//! let mut cluster = Cluster::new(
//!     ClusterConfig { num_shards: 3, max_chunk_bytes: 8 * 1024, ..Default::default() },
//!     ShardKey::range(&["hilbertIndex", "date"]),
//!     vec![], // shard-key index auto-created, like MongoDB
//! );
//! for i in 0..500i64 {
//!     let mut d = doc! {"hilbertIndex" => i % 50, "date" => DateTime::from_millis(i * 1_000)};
//!     d.ensure_id(i as u32);
//!     cluster.insert(&d).unwrap();
//! }
//! // A shard-key constraint routes to a subset of shards.
//! let f = Filter::And(vec![
//!     Filter::gte("hilbertIndex", 10i64),
//!     Filter::lte("hilbertIndex", 12i64),
//! ]);
//! let (docs, report) = cluster.query(&f);
//! assert_eq!(docs.len(), 30);
//! assert!(!report.broadcast);
//! ```

mod chunk;
mod cluster;
pub mod executor;
pub mod faults;
pub mod health;
mod report;
pub mod retry;
mod shard;
mod shardkey;
mod zones;

pub use chunk::{Chunk, ChunkMap, SplitError};
pub use cluster::{
    Cluster, ClusterConfig, LiveBalancerConfig, MigrationStats, QueryExecOptions, RoutePlan,
};
pub use executor::{ExecutorConfig, ExecutorStats, ShardExecutor};
pub use faults::{AttemptCtx, FailPoint, FailPointMode, FaultInjector, FaultKind};
pub use health::{
    skew, BalancerEvent, BalancerEventKind, ChunkHeatSnapshot, HealthSnapshot, ShardLoadSnapshot,
    Skew,
};
pub use report::{ClusterQueryReport, ShardExecution};
pub use retry::{run_with_recovery, RecoveryPolicy, ShardRecovery};
pub use shard::Shard;
pub use shardkey::{ShardKey, ShardStrategy};
pub use zones::{bucket_boundaries, weighted_bucket_boundaries, Zone};
