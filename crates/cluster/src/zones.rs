//! Zones: operator-pinned shard-key ranges (§3.3, §4.2.4).

/// A zone: the shard-key range `[min, max)` pinned to one shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Zone {
    /// Inclusive lower key bound (empty = −∞).
    pub min: Vec<u8>,
    /// Exclusive upper key bound (`None` = +∞).
    pub max: Option<Vec<u8>>,
    /// The shard this range is pinned to.
    pub shard: usize,
}

impl Zone {
    /// Does a key fall inside this zone?
    pub fn contains(&self, key: &[u8]) -> bool {
        key >= &self.min[..] && self.max.as_deref().is_none_or(|m| key < m)
    }
}

/// `$bucketAuto`-style boundary computation (§4.2.4): split the sorted
/// multiset of key byte-strings into `n` buckets of (as close as
/// possible) equal document counts, returning the `n − 1` interior
/// boundaries.
///
/// Duplicated values cannot straddle a boundary (a boundary *is* a key
/// value), so heavy skew yields uneven buckets — the effect the paper
/// notes for spatially skewed Hilbert values.
pub fn bucket_boundaries(mut keys: Vec<Vec<u8>>, n: usize) -> Vec<Vec<u8>> {
    assert!(n >= 1, "need at least one bucket");
    if keys.is_empty() || n == 1 {
        return Vec::new();
    }
    keys.sort_unstable();
    let total = keys.len();
    let mut boundaries = Vec::with_capacity(n - 1);
    for i in 1..n {
        let target = i * total / n;
        let candidate = &keys[target.min(total - 1)];
        // Boundaries must be strictly increasing; skip duplicates caused
        // by skewed key multiplicities.
        if boundaries.last().is_none_or(|b: &Vec<u8>| b < candidate) {
            boundaries.push(candidate.clone());
        }
    }
    boundaries
}

/// Weighted `$bucketAuto`: boundaries that split the *total weight* (not
/// the document count) into `n` near-equal buckets. This is the
/// workload-aware partitioning of the paper's §6 future work: weighting
/// each document by its query-access frequency yields zones that balance
/// expected load instead of storage.
pub fn weighted_bucket_boundaries(mut pairs: Vec<(Vec<u8>, u64)>, n: usize) -> Vec<Vec<u8>> {
    assert!(n >= 1, "need at least one bucket");
    pairs.retain(|(_, w)| *w > 0);
    if pairs.is_empty() || n == 1 {
        return Vec::new();
    }
    pairs.sort_unstable();
    let total: u64 = pairs.iter().map(|(_, w)| w).sum();
    let mut boundaries = Vec::with_capacity(n - 1);
    let mut acc = 0u64;
    let mut next_cut = 1u64;
    for (key, w) in &pairs {
        acc += w;
        while next_cut < n as u64 && acc >= next_cut * total / n as u64 {
            if boundaries.last().is_none_or(|b: &Vec<u8>| b < key) {
                boundaries.push(key.clone());
            }
            next_cut += 1;
        }
    }
    boundaries
}

/// Build one zone per shard from interior boundaries: zone *i* covers
/// `[boundaries[i-1], boundaries[i])` and pins to shard *i*.
pub fn zones_from_boundaries(boundaries: &[Vec<u8>], num_shards: usize) -> Vec<Zone> {
    assert!(
        boundaries.len() < num_shards,
        "more boundaries than shards can absorb"
    );
    let mut zones = Vec::with_capacity(boundaries.len() + 1);
    let mut lo: Vec<u8> = Vec::new();
    for (i, b) in boundaries.iter().enumerate() {
        zones.push(Zone {
            min: lo.clone(),
            max: Some(b.clone()),
            shard: i,
        });
        lo = b.clone();
    }
    zones.push(Zone {
        min: lo,
        max: None,
        shard: boundaries.len(),
    });
    zones
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(n: u8) -> Vec<u8> {
        vec![0x10, n]
    }

    #[test]
    fn even_boundaries_on_uniform_keys() {
        let keys: Vec<Vec<u8>> = (0..100u8).map(k).collect();
        let b = bucket_boundaries(keys, 4);
        assert_eq!(b, vec![k(25), k(50), k(75)]);
    }

    #[test]
    fn skewed_keys_collapse_duplicate_boundaries() {
        // 90 copies of one value + 10 distinct values.
        let mut keys: Vec<Vec<u8>> = std::iter::repeat_with(|| k(5)).take(90).collect();
        keys.extend((10..20u8).map(k));
        let b = bucket_boundaries(keys, 4);
        // All early quantiles land on k(5); only distinct boundaries kept.
        assert!(b.len() < 3);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn zones_partition_key_space() {
        let zones = zones_from_boundaries(&[k(10), k(20)], 3);
        assert_eq!(zones.len(), 3);
        assert!(zones[0].contains(&[]));
        assert!(zones[0].contains(&k(9)));
        assert!(zones[1].contains(&k(10)));
        assert!(zones[2].contains(&k(20)));
        assert!(zones[2].contains(&k(255)));
        for key in [vec![], k(5), k(10), k(15), k(20), k(200)] {
            assert_eq!(zones.iter().filter(|z| z.contains(&key)).count(), 1);
        }
        assert_eq!(zones[0].shard, 0);
        assert_eq!(zones[2].shard, 2);
    }

    #[test]
    fn single_bucket_has_no_boundaries() {
        assert!(bucket_boundaries(vec![k(1), k(2)], 1).is_empty());
        assert!(bucket_boundaries(vec![], 5).is_empty());
    }

    #[test]
    fn weighted_boundaries_follow_weight_not_count() {
        // 100 keys, but key 10 carries 100× weight: the first boundary
        // must land right after the heavy key, not at the count median.
        let mut pairs: Vec<(Vec<u8>, u64)> = (0..100u8).map(|i| (k(i), 1)).collect();
        pairs[10].1 = 100;
        let b = weighted_bucket_boundaries(pairs, 2);
        assert_eq!(b.len(), 1);
        assert!(b[0] <= k(12), "boundary {:?} should hug the hot key", b[0]);

        // Uniform weights reduce to (approximately) the unweighted rule.
        let uniform: Vec<(Vec<u8>, u64)> = (0..100u8).map(|i| (k(i), 1)).collect();
        let b = weighted_bucket_boundaries(uniform, 4);
        assert_eq!(b.len(), 3);
        for (got, want) in b.iter().zip([25u8, 50, 75]) {
            let diff = (got[1] as i32 - i32::from(want)).abs();
            assert!(diff <= 1, "{got:?} vs {want}");
        }
    }

    #[test]
    fn weighted_boundaries_edge_cases() {
        assert!(weighted_bucket_boundaries(vec![], 4).is_empty());
        assert!(weighted_bucket_boundaries(vec![(k(1), 5)], 1).is_empty());
        // All weight on one key: no valid interior boundary above it.
        let pairs = vec![(k(5), 1_000), (k(6), 1), (k(7), 1)];
        let b = weighted_bucket_boundaries(pairs, 4);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!(b.len() < 4);
    }
}
