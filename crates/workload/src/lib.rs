//! Workloads: data sets and queries from §5.1 of the paper.
//!
//! The paper evaluates on a **proprietary fleet-management data set (R)**
//! — 15.2M GPS records of vehicles in Greece over five months, 75 values
//! per record — and a **uniform synthetic set (S)** with twice the
//! records in a small box over half the timespan. R is not publicly
//! available, so [`fleet`] generates the closest synthetic equivalent:
//! vehicles doing random-waypoint trips between weighted Greek urban
//! hotspots inside the paper's exact bounding box, emitting a GPS fix
//! every 30 s, each record padded to 75 fields (vehicle, weather, road,
//! POI payload). The spatial skew (urban concentration), trajectory
//! smoothness and temporal coverage are what the evaluation actually
//! exercises, and all are preserved.
//!
//! [`queries`] defines the paper's 8 spatio-temporal queries (small/big
//! rectangle × 1 hour/day/week/month, §5.1) and [`scale`] the R1–R4
//! scale factors of §5.4. Everything is deterministic in a seed.

pub mod chaos;
pub mod csv;
pub mod fleet;
pub mod queries;
pub mod scale;
pub mod synth;
pub mod trajectory;

mod record;

pub use record::Record;

use sts_geo::GeoRect;

/// The R data set's minimum bounding rectangle (§5.1).
pub const R_MBR: GeoRect = GeoRect::new(19.632533, 34.929233, 28.245285, 41.757797);

/// The S data set's minimum bounding rectangle (§5.1).
pub const S_MBR: GeoRect = GeoRect::new(23.3, 37.6, 24.3, 38.5);

/// Records in the paper's R₁ data set.
pub const PAPER_R_RECORDS: u64 = 15_210_901;

/// Default down-scale factor for laptop-scale reproduction (documented
/// in DESIGN.md): 1/100 of the paper's volume.
pub const DEFAULT_SCALE: f64 = 0.01;
