//! Synthetic fleet-trajectory generator — the stand-in for the paper's
//! proprietary data set R.

use crate::record::Record;
use crate::R_MBR;
use rand::prelude::*;
use rand_distr::Normal;
use sts_document::{DateTime, Value};
use sts_geo::GeoPoint;

/// Weighted urban hotspots (lon, lat, weight): vehicles concentrate in
/// Greek cities, giving the spatial skew the paper's R set exhibits.
/// Athens dominates — which is what makes the paper's small-query
/// rectangle (central Athens) productive.
const HOTSPOTS: &[(f64, f64, f64)] = &[
    (23.727539, 37.983810, 0.36), // Athens
    (23.850000, 38.150000, 0.10), // North Attica corridor (Kifisia–Marathon)
    (22.944608, 40.640063, 0.15), // Thessaloniki
    (21.734574, 38.246639, 0.08), // Patras
    (25.144213, 35.338735, 0.05), // Heraklion
    (22.419125, 39.639022, 0.05), // Larissa
    (22.942961, 39.362189, 0.04), // Volos
    (20.850832, 39.664993, 0.04), // Ioannina
    (24.401913, 40.939591, 0.03), // Kavala
    (22.114219, 37.038939, 0.03), // Kalamata
    (28.217750, 36.434903, 0.03), // Rhodes
    (21.274830, 37.675030, 0.02), // Pyrgos
    (26.136410, 38.367550, 0.02), // Chios
];

/// Spread of in-city driving around a hotspot centre, in degrees.
const CITY_SIGMA: f64 = 0.045;
/// GPS fix interval along a trip.
const FIX_INTERVAL_MS: i64 = 30_000;

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Total records to emit.
    pub records: u64,
    /// Fleet size; the scale study adds vehicles, never extends the
    /// spatio-temporal bounding box (§5.4).
    pub vehicles: u32,
    /// First fix timestamp (paper: 2018-07-01).
    pub start: DateTime,
    /// Covered timespan in days (paper: ~153, July–November 2018).
    pub span_days: u32,
    /// Extra payload columns beyond id/position/time/vehicle, to match
    /// the paper's 75-value records.
    pub extra_fields: usize,
    /// RNG seed (the generator is fully deterministic).
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            records: (crate::PAPER_R_RECORDS as f64 * crate::DEFAULT_SCALE) as u64,
            vehicles: 500,
            start: DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0),
            span_days: 153,
            extra_fields: 71,
            seed: 0x5137_2021,
        }
    }
}

/// Generate the full record stream, sorted by timestamp (fleet platforms
/// ingest time-ordered feeds, and §A.1's loader preserves that).
pub fn generate(cfg: &FleetConfig) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let per_vehicle = (cfg.records / u64::from(cfg.vehicles.max(1))).max(1);
    let span_ms = i64::from(cfg.span_days) * 86_400_000;
    let jitter = Normal::new(0.0, CITY_SIGMA).expect("valid sigma");

    let mut records = Vec::with_capacity(cfg.records as usize);
    let mut emitted = 0u64;
    for vehicle in 0..cfg.vehicles {
        if emitted >= cfg.records {
            break;
        }
        let budget = per_vehicle.min(cfg.records - emitted);
        emitted += budget;
        let home = pick_hotspot(&mut rng);
        // Trips of ~40 fixes (20 minutes) spread across the span.
        let trip_len = 40u64;
        let n_trips = budget.div_ceil(trip_len);
        let mut remaining = budget;
        for _ in 0..n_trips {
            if remaining == 0 {
                break;
            }
            let fixes = trip_len.min(remaining);
            remaining -= fixes;
            // 85% of trips stay in the home city; the rest drive to
            // another hotspot (long-haul segments cross the country).
            let from = jitter_around(home, &jitter, &mut rng);
            let to_center = if rng.gen_bool(0.85) {
                home
            } else {
                pick_hotspot(&mut rng)
            };
            let to = jitter_around(to_center, &jitter, &mut rng);
            let t0 = rng.gen_range(
                0..span_ms
                    .saturating_sub(fixes as i64 * FIX_INTERVAL_MS)
                    .max(1),
            );
            for f in 0..fixes {
                let frac = f as f64 / fixes.max(2) as f64;
                // Linear interpolation plus small GPS noise.
                let lon = from.lon + (to.lon - from.lon) * frac + rng.gen_range(-5e-4..5e-4);
                let lat = from.lat + (to.lat - from.lat) * frac + rng.gen_range(-5e-4..5e-4);
                let p = clamp_to_mbr(GeoPoint::new(lon, lat));
                let date = cfg.start.plus_millis(t0 + f as i64 * FIX_INTERVAL_MS);
                records.push(Record {
                    id: 0, // assigned after the time sort
                    vehicle,
                    lon: p.lon,
                    lat: p.lat,
                    date,
                    payload: payload_fields(cfg.extra_fields, vehicle, &p, &mut rng),
                });
            }
        }
    }
    records.sort_by_key(|r| r.date);
    for (i, r) in records.iter_mut().enumerate() {
        r.id = i as u64;
    }
    records
}

/// A live ingest feed over the fleet: the same deterministic,
/// time-sorted record stream [`generate`] produces, delivered as
/// arrival-ordered batches — what a telematics platform's collector
/// hands the store every few seconds. Batches partition the stream
/// exactly (no loss, no duplication), so a consumer that ingests every
/// batch ends up with precisely `generate(cfg)`.
pub struct FleetStream {
    records: std::vec::IntoIter<Record>,
    batch_size: usize,
}

impl FleetStream {
    /// Build the feed. `batch_size` is clamped to at least 1.
    pub fn new(cfg: &FleetConfig, batch_size: usize) -> Self {
        FleetStream {
            records: generate(cfg).into_iter(),
            batch_size: batch_size.max(1),
        }
    }

    /// Records not yet emitted.
    pub fn remaining(&self) -> usize {
        self.records.len()
    }
}

impl Iterator for FleetStream {
    type Item = Vec<Record>;

    fn next(&mut self) -> Option<Vec<Record>> {
        let batch: Vec<Record> = self.records.by_ref().take(self.batch_size).collect();
        if batch.is_empty() {
            None
        } else {
            Some(batch)
        }
    }
}

fn pick_hotspot(rng: &mut StdRng) -> GeoPoint {
    let total: f64 = HOTSPOTS.iter().map(|h| h.2).sum();
    let mut x = rng.gen_range(0.0..total);
    for &(lon, lat, w) in HOTSPOTS {
        if x < w {
            return GeoPoint::new(lon, lat);
        }
        x -= w;
    }
    let last = HOTSPOTS.last().unwrap();
    GeoPoint::new(last.0, last.1)
}

fn jitter_around(center: GeoPoint, dist: &Normal<f64>, rng: &mut StdRng) -> GeoPoint {
    clamp_to_mbr(GeoPoint::new(
        center.lon + dist.sample(rng),
        center.lat + dist.sample(rng),
    ))
}

fn clamp_to_mbr(p: GeoPoint) -> GeoPoint {
    GeoPoint::new(
        p.lon.clamp(R_MBR.min_lon, R_MBR.max_lon),
        p.lat.clamp(R_MBR.min_lat, R_MBR.max_lat),
    )
}

/// The 71 extra columns: vehicle telemetry, weather, road network and
/// POI context, mirroring the paper's schema description.
fn payload_fields(n: usize, vehicle: u32, p: &GeoPoint, rng: &mut StdRng) -> Vec<(String, Value)> {
    let mut out = Vec::with_capacity(n);
    let road_types = ["motorway", "primary", "secondary", "residential", "service"];
    let weather = ["clear", "clouds", "rain", "mist", "drizzle"];
    let poi = ["fuel", "parking", "restaurant", "hotel", "port", "depot"];
    let push = |out: &mut Vec<(String, Value)>, k: &str, v: Value| {
        if out.len() < n {
            out.push((k.to_string(), v));
        }
    };
    push(
        &mut out,
        "speedKmh",
        Value::from((rng.gen_range(0.0..130.0f64) * 10.0).round() / 10.0),
    );
    push(&mut out, "heading", Value::from(rng.gen_range(0..360)));
    push(&mut out, "engineRpm", Value::from(rng.gen_range(700..3500)));
    push(
        &mut out,
        "fuelLevel",
        Value::from((rng.gen_range(0.05..1.0f64) * 100.0).round() / 100.0),
    );
    push(
        &mut out,
        "odometerKm",
        Value::from(rng.gen_range(10_000.0..400_000.0f64).round()),
    );
    push(&mut out, "ignition", Value::from(true));
    push(
        &mut out,
        "driverId",
        Value::from(format!("drv-{:04}", vehicle % 997)),
    );
    push(
        &mut out,
        "weatherMain",
        Value::from(weather[rng.gen_range(0..weather.len())]),
    );
    push(
        &mut out,
        "temperatureC",
        Value::from((rng.gen_range(-5.0..40.0f64) * 10.0).round() / 10.0),
    );
    push(&mut out, "humidityPct", Value::from(rng.gen_range(20..100)));
    push(
        &mut out,
        "windMs",
        Value::from((rng.gen_range(0.0..20.0f64) * 10.0).round() / 10.0),
    );
    push(
        &mut out,
        "roadType",
        Value::from(road_types[rng.gen_range(0..road_types.len())]),
    );
    push(
        &mut out,
        "roadSpeedLimit",
        Value::from([50, 80, 90, 110, 130][rng.gen_range(0..5usize)]),
    );
    push(
        &mut out,
        "roadName",
        Value::from(format!("rd-{:03}", rng.gen_range(0..500))),
    );
    push(
        &mut out,
        "nearestPoiType",
        Value::from(poi[rng.gen_range(0..poi.len())]),
    );
    push(
        &mut out,
        "nearestPoiDistM",
        Value::from((rng.gen_range(5.0..5_000.0f64)).round()),
    );
    push(
        &mut out,
        "regionCode",
        Value::from(format!("GR-{:02}", (p.lon * 3.0) as i32 % 13)),
    );
    // Generic filler columns complete the 75-value schema.
    let mut i = 0;
    while out.len() < n {
        let v = match i % 3 {
            0 => Value::from((rng.gen_range(0.0..1.0f64) * 1_000.0).round() / 1_000.0),
            1 => Value::from(rng.gen_range(0..10_000)),
            _ => Value::from(format!("v{:04}", rng.gen_range(0..9_999))),
        };
        out.push((format!("aux{i:02}"), v));
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FleetConfig {
        FleetConfig {
            records: 5_000,
            vehicles: 25,
            ..Default::default()
        }
    }

    #[test]
    fn exact_count_and_time_order() {
        let recs = generate(&small_cfg());
        assert_eq!(recs.len(), 5_000);
        assert!(recs.windows(2).all(|w| w[0].date <= w[1].date));
        assert!(recs.windows(2).all(|w| w[0].id + 1 == w[1].id));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&small_cfg());
        let b = generate(&small_cfg());
        assert_eq!(a, b);
        let c = generate(&FleetConfig {
            seed: 1,
            ..small_cfg()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn stays_inside_paper_mbr() {
        for r in generate(&small_cfg()) {
            assert!(R_MBR.contains(GeoPoint::new(r.lon, r.lat)), "{r:?}");
            assert!(r.date >= DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0));
            assert!(r.date <= DateTime::from_ymd_hms(2018, 12, 2, 0, 0, 0));
        }
    }

    #[test]
    fn spatially_skewed_towards_athens() {
        let recs = generate(&FleetConfig {
            records: 20_000,
            vehicles: 100,
            ..Default::default()
        });
        let athens = sts_geo::GeoRect::new(23.5, 37.75, 24.0, 38.2);
        let in_athens = recs
            .iter()
            .filter(|r| athens.contains(GeoPoint::new(r.lon, r.lat)))
            .count();
        let frac = in_athens as f64 / recs.len() as f64;
        assert!(
            (0.25..0.75).contains(&frac),
            "Athens should dominate but not monopolize: {frac}"
        );
    }

    #[test]
    fn paper_schema_width() {
        let recs = generate(&FleetConfig {
            records: 10,
            vehicles: 1,
            ..Default::default()
        });
        // 75 values per record: _id, location, date, vehicleId + 71.
        assert!(recs.iter().all(|r| r.field_count() == 75));
        let d = recs[0].to_document();
        assert_eq!(d.len(), 75);
    }

    #[test]
    fn stream_partitions_the_generated_set_exactly() {
        let cfg = small_cfg();
        let full = generate(&cfg);
        let mut stream = FleetStream::new(&cfg, 1_024);
        assert_eq!(stream.remaining(), full.len());
        let batches: Vec<Vec<Record>> = stream.by_ref().collect();
        assert_eq!(stream.remaining(), 0);
        // 5000 records in 1024-record batches: four full + one runt.
        assert_eq!(batches.len(), 5);
        assert!(batches[..4].iter().all(|b| b.len() == 1_024));
        assert_eq!(batches[4].len(), 5_000 - 4 * 1_024);
        let streamed: Vec<Record> = batches.into_iter().flatten().collect();
        assert_eq!(streamed, full, "no lost, duplicated or reordered records");
    }

    #[test]
    fn more_vehicles_same_box() {
        // Scale-up adds vehicles, distribution stays inside the MBR.
        let big = generate(&FleetConfig {
            records: 10_000,
            vehicles: 200,
            ..Default::default()
        });
        let vehicles: std::collections::HashSet<u32> = big.iter().map(|r| r.vehicle).collect();
        assert!(vehicles.len() > 150);
    }
}
