//! Assembling query results back into per-vehicle trajectories.
//!
//! The paper's fleet operators "retrieve trajectories … analyzed for
//! fleet cost reduction … intelligent routing … movement patterns"
//! (§1). A spatio-temporal range query returns a bag of point
//! documents; this module stitches them into time-ordered per-vehicle
//! tracks and computes the basic route statistics those analyses start
//! from.

use sts_document::{Document, Value};
use sts_geo::{haversine_km, GeoPoint};

/// One vehicle's time-ordered track within a query result.
#[derive(Clone, Debug, PartialEq)]
pub struct Trajectory {
    /// Vehicle identifier (the `vehicleId` field).
    pub vehicle: String,
    /// `(position, time in ms)` fixes, ascending in time.
    pub fixes: Vec<(GeoPoint, i64)>,
}

impl Trajectory {
    /// Number of fixes.
    pub fn len(&self) -> usize {
        self.fixes.len()
    }

    /// True when the track has no fixes.
    pub fn is_empty(&self) -> bool {
        self.fixes.is_empty()
    }

    /// Path length in km (sum of consecutive great-circle hops).
    pub fn length_km(&self) -> f64 {
        self.fixes
            .windows(2)
            .map(|w| haversine_km(w[0].0, w[1].0))
            .sum()
    }

    /// Wall-clock duration covered, in seconds.
    pub fn duration_secs(&self) -> f64 {
        match (self.fixes.first(), self.fixes.last()) {
            (Some((_, t0)), Some((_, t1))) => (t1 - t0) as f64 / 1_000.0,
            _ => 0.0,
        }
    }

    /// Average speed over the track in km/h (0 for degenerate tracks).
    pub fn avg_speed_kmh(&self) -> f64 {
        let secs = self.duration_secs();
        if secs <= 0.0 {
            return 0.0;
        }
        self.length_km() / (secs / 3_600.0)
    }

    /// Split the track wherever the gap between consecutive fixes
    /// exceeds `max_gap_secs` — one segment per trip.
    pub fn split_by_gap(&self, max_gap_secs: f64) -> Vec<Trajectory> {
        let mut out = Vec::new();
        let mut cur: Vec<(GeoPoint, i64)> = Vec::new();
        for &(p, t) in &self.fixes {
            if let Some(&(_, prev)) = cur.last() {
                if (t - prev) as f64 / 1_000.0 > max_gap_secs {
                    out.push(Trajectory {
                        vehicle: self.vehicle.clone(),
                        fixes: std::mem::take(&mut cur),
                    });
                }
            }
            cur.push((p, t));
        }
        if !cur.is_empty() {
            out.push(Trajectory {
                vehicle: self.vehicle.clone(),
                fixes: cur,
            });
        }
        out
    }
}

/// Group a query result into per-vehicle trajectories (sorted by
/// vehicle id; fixes time-ordered). Documents without a valid position,
/// timestamp or `vehicleId` are skipped.
pub fn assemble(docs: &[Document]) -> Vec<Trajectory> {
    let mut by_vehicle: std::collections::BTreeMap<String, Vec<(GeoPoint, i64)>> =
        std::collections::BTreeMap::new();
    for d in docs {
        let Some(p) = point_of(d, sts_core::LOCATION_FIELD) else {
            continue;
        };
        let Some(t) = d.get("date").and_then(Value::as_datetime) else {
            continue;
        };
        let Some(v) = d.get("vehicleId").and_then(Value::as_str) else {
            continue;
        };
        by_vehicle
            .entry(v.to_string())
            .or_default()
            .push((p, t.millis()));
    }
    by_vehicle
        .into_iter()
        .map(|(vehicle, mut fixes)| {
            fixes.sort_by_key(|&(_, t)| t);
            Trajectory { vehicle, fixes }
        })
        .collect()
}

fn point_of(d: &Document, path: &str) -> Option<GeoPoint> {
    let v = d.get_path(path)?;
    let coords = match v {
        Value::Document(obj) => obj.get("coordinates")?.as_array()?,
        Value::Array(a) => a.as_slice(),
        _ => return None,
    };
    Some(GeoPoint::new(
        coords.first()?.as_f64()?,
        coords.get(1)?.as_f64()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{generate, FleetConfig};
    use crate::Record;

    #[test]
    fn assemble_groups_and_orders() {
        let records = generate(&FleetConfig {
            records: 400,
            vehicles: 4,
            extra_fields: 2,
            ..Default::default()
        });
        let docs: Vec<_> = records.iter().map(Record::to_document).collect();
        let trajectories = assemble(&docs);
        assert_eq!(trajectories.len(), 4);
        let total: usize = trajectories.iter().map(Trajectory::len).sum();
        assert_eq!(total, 400);
        for t in &trajectories {
            assert!(t.fixes.windows(2).all(|w| w[0].1 <= w[1].1), "time order");
            assert!(t.length_km() >= 0.0);
        }
    }

    #[test]
    fn stats_on_a_straight_line() {
        let t = Trajectory {
            vehicle: "v".into(),
            // ~1 degree of latitude ≈ 111 km in 1 hour.
            fixes: vec![
                (GeoPoint::new(23.0, 37.0), 0),
                (GeoPoint::new(23.0, 38.0), 3_600_000),
            ],
        };
        assert!((t.length_km() - 111.2).abs() < 1.0, "{}", t.length_km());
        assert_eq!(t.duration_secs(), 3_600.0);
        assert!((t.avg_speed_kmh() - 111.2).abs() < 1.0);
    }

    #[test]
    fn gap_splitting() {
        let t = Trajectory {
            vehicle: "v".into(),
            fixes: vec![
                (GeoPoint::new(23.0, 37.0), 0),
                (GeoPoint::new(23.0, 37.01), 30_000),
                (GeoPoint::new(23.5, 37.5), 10_000_000), // big gap
                (GeoPoint::new(23.5, 37.51), 10_030_000),
            ],
        };
        let trips = t.split_by_gap(600.0);
        assert_eq!(trips.len(), 2);
        assert_eq!(trips[0].len(), 2);
        assert_eq!(trips[1].len(), 2);
        // Degenerate cases.
        assert!(Trajectory {
            vehicle: "x".into(),
            fixes: vec![]
        }
        .split_by_gap(1.0)
        .is_empty());
    }

    #[test]
    fn skips_malformed_documents() {
        use sts_document::doc;
        let docs = vec![
            doc! {"vehicleId" => "a"}, // no location/date
            doc! {
                "location" => doc! {"type" => "Point", "coordinates" => vec![Value::from(23.0), Value::from(37.0)]},
                "date" => sts_document::DateTime::from_millis(5),
                "vehicleId" => "b",
            },
        ];
        let ts = assemble(&docs);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].vehicle, "b");
    }
}
