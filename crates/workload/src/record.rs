//! The raw record type generators produce.

use sts_document::{doc, DateTime, Document, Value};

/// One GPS trace record before it becomes a store document.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Sequential record id (also seeds the `_id` ObjectId timestamp so
    /// that `_id` order tracks insertion order, as in a live system).
    pub id: u64,
    /// Vehicle identifier.
    pub vehicle: u32,
    /// Longitude (degrees).
    pub lon: f64,
    /// Latitude (degrees).
    pub lat: f64,
    /// Fix timestamp.
    pub date: DateTime,
    /// Additional named payload values (vehicle / weather / road / POI
    /// columns of the paper's 75-column schema).
    pub payload: Vec<(String, Value)>,
}

impl Record {
    /// Convert to the store's document form: GeoJSON point + ISODate +
    /// payload fields + `_id` (§A.1's loading pipeline).
    pub fn to_document(&self) -> Document {
        let mut d = doc! {
            "location" => doc! {
                "type" => "Point",
                "coordinates" => vec![Value::from(self.lon), Value::from(self.lat)],
            },
            "date" => self.date,
            "vehicleId" => format!("veh-{:05}", self.vehicle),
        };
        for (k, v) in &self.payload {
            d.set(k.clone(), v.clone());
        }
        // Stamp _id with a load-order timestamp: documents inserted
        // near each other in time share ObjectId prefixes, which drives
        // the `_id`-index compression effects of §A.3.
        d.ensure_id(1_546_300_800 + (self.id / 64) as u32);
        d
    }

    /// Total number of values in the document form (for schema checks).
    pub fn field_count(&self) -> usize {
        // _id + location + date + vehicleId + payload
        4 + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_form_carries_everything() {
        let r = Record {
            id: 9,
            vehicle: 3,
            lon: 23.7,
            lat: 37.9,
            date: DateTime::from_millis(1_000),
            payload: vec![("speed".into(), Value::from(54.5))],
        };
        let d = r.to_document();
        assert_eq!(
            d.get_path("location.coordinates.0").unwrap().as_f64(),
            Some(23.7)
        );
        assert_eq!(d.get("vehicleId").unwrap().as_str(), Some("veh-00003"));
        assert_eq!(d.get("speed").unwrap().as_f64(), Some(54.5));
        assert!(d.object_id().is_some());
        assert_eq!(d.len(), r.field_count());
    }
}
