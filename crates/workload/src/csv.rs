//! CSV import/export of record streams (§A.1's loading pipeline reads
//! the data sets "record-by-record" from CSV files).
//!
//! Layout: `id,vehicle,lon,lat,date[,name=value…]` — payload columns are
//! self-describing `name=value` pairs so the 75-column R schema and the
//! 4-column S schema share one reader.

use crate::record::Record;
use std::io::{self, BufRead, BufWriter, Write};
use sts_document::{DateTime, Value};

/// Write records as CSV.
pub fn write_csv<W: Write>(w: W, records: &[Record]) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    for r in records {
        write!(
            w,
            "{},{},{:.6},{:.6},{}",
            r.id,
            r.vehicle,
            r.lon,
            r.lat,
            r.date.to_iso()
        )?;
        for (k, v) in &r.payload {
            let cell = match v {
                Value::String(s) => s.clone(),
                Value::Int32(x) => x.to_string(),
                Value::Int64(x) => x.to_string(),
                Value::Double(x) => x.to_string(),
                Value::Bool(b) => b.to_string(),
                other => format!("{other:?}"),
            };
            write!(w, ",{k}={cell}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Read records back. Numeric payload cells become doubles or integers;
/// everything else stays a string.
pub fn read_csv<R: io::Read>(r: R) -> io::Result<Vec<Record>> {
    let reader = io::BufReader::new(r);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut cells = line.split(',');
        let parse_err = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {what}", lineno + 1),
            )
        };
        let id = cells
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| parse_err("bad id"))?;
        let vehicle = cells
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| parse_err("bad vehicle"))?;
        let lon = cells
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| parse_err("bad lon"))?;
        let lat = cells
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| parse_err("bad lat"))?;
        let date = cells
            .next()
            .and_then(|c| DateTime::parse_iso(c).ok())
            .ok_or_else(|| parse_err("bad date"))?;
        let mut payload = Vec::new();
        for cell in cells {
            let Some((k, v)) = cell.split_once('=') else {
                return Err(parse_err("payload cell without '='"));
            };
            let value = if let Ok(i) = v.parse::<i64>() {
                if v.len() <= 9 {
                    Value::Int32(i as i32)
                } else {
                    Value::Int64(i)
                }
            } else if let Ok(f) = v.parse::<f64>() {
                Value::Double(f)
            } else if v == "true" || v == "false" {
                Value::Bool(v == "true")
            } else {
                Value::String(v.to_string())
            };
            payload.push((k.to_string(), value));
        }
        out.push(Record {
            id,
            vehicle,
            lon,
            lat,
            date,
            payload,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{generate, FleetConfig};

    #[test]
    fn roundtrip_preserves_core_fields() {
        let recs = generate(&FleetConfig {
            records: 200,
            vehicles: 5,
            extra_fields: 6,
            ..Default::default()
        });
        let mut buf = Vec::new();
        write_csv(&mut buf, &recs).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(back.len(), recs.len());
        for (a, b) in recs.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.vehicle, b.vehicle);
            assert!((a.lon - b.lon).abs() < 1e-6);
            assert!((a.lat - b.lat).abs() < 1e-6);
            assert_eq!(a.date, b.date);
            assert_eq!(a.payload.len(), b.payload.len());
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_csv(&b"not,a,valid,line"[..]).is_err());
        assert!(read_csv(&b"1,2,3.0,4.0,2018-07-01T00:00:00Z,plain"[..]).is_err());
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(read_csv(&b""[..]).unwrap().is_empty());
        assert!(read_csv(&b"\n\n"[..]).unwrap().is_empty());
    }
}
