//! The uniform synthetic data set S (§5.1).

use crate::record::Record;
use crate::S_MBR;
use rand::prelude::*;
use sts_document::DateTime;

/// Configuration for the S set.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Records to generate (paper: 2× the R set).
    pub records: u64,
    /// First timestamp (paper: same start as R).
    pub start: DateTime,
    /// Timespan in days (paper: half of R's, ~76).
    pub span_days: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            records: (2.0 * crate::PAPER_R_RECORDS as f64 * crate::DEFAULT_SCALE) as u64,
            start: DateTime::from_ymd_hms(2018, 7, 1, 0, 0, 0),
            span_days: 76,
            seed: 0x5137_2022,
        }
    }
}

/// Generate uniformly random records (4 columns: id, lon, lat, date),
/// sorted by time.
pub fn generate(cfg: &SynthConfig) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let span_ms = i64::from(cfg.span_days) * 86_400_000;
    let mut records: Vec<Record> = (0..cfg.records)
        .map(|_| Record {
            id: 0,
            vehicle: 0,
            lon: rng.gen_range(S_MBR.min_lon..S_MBR.max_lon),
            lat: rng.gen_range(S_MBR.min_lat..S_MBR.max_lat),
            date: cfg.start.plus_millis(rng.gen_range(0..span_ms)),
            payload: Vec::new(),
        })
        .collect();
    records.sort_by_key(|r| r.date);
    for (i, r) in records.iter_mut().enumerate() {
        r.id = i as u64;
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_geo::GeoPoint;

    #[test]
    fn uniform_in_box_and_span() {
        let recs = generate(&SynthConfig {
            records: 10_000,
            ..Default::default()
        });
        assert_eq!(recs.len(), 10_000);
        assert!(recs
            .iter()
            .all(|r| S_MBR.contains(GeoPoint::new(r.lon, r.lat))));
        // Roughly uniform: each lon quartile holds ~25%.
        let q1 = recs
            .iter()
            .filter(|r| r.lon < S_MBR.min_lon + 0.25 * S_MBR.lon_span())
            .count();
        assert!((1_800..3_200).contains(&q1), "{q1}");
        assert!(recs.windows(2).all(|w| w[0].date <= w[1].date));
    }

    #[test]
    fn minimal_schema() {
        let recs = generate(&SynthConfig {
            records: 5,
            ..Default::default()
        });
        // id, lon+lat (location), date, vehicleId → 4-ish columns; no payload.
        assert!(recs.iter().all(|r| r.payload.is_empty()));
        let d = recs[0].to_document();
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn deterministic() {
        let cfg = SynthConfig {
            records: 100,
            ..Default::default()
        };
        assert_eq!(generate(&cfg), generate(&cfg));
    }
}
