//! Chaos scenario generator: deterministic failpoint profiles for
//! fault drills against a deployed store.
//!
//! A [`ChaosScenario`] is a named set of failpoints to arm together.
//! [`scenarios`] derives a reproducible suite from a seed — every
//! draw comes from a seeded [`StdRng`], so the same config always
//! yields the same faults — and [`default_profile`] is the fixed
//! single-shard profile the CI chaos job runs the e2e suite under.

use rand::prelude::*;
use std::time::Duration;
use sts_core::{FailPoint, FailPointMode, StStore};

/// Chaos-suite configuration.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Deterministic seed for the scenario draws.
    pub seed: u64,
    /// Shard count of the store under test.
    pub num_shards: usize,
    /// Scenarios to generate.
    pub scenarios: usize,
    /// Include hard failures (primaries down, hedging required).
    pub include_hard: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A0_5151,
            num_shards: 12,
            scenarios: 8,
            include_hard: true,
        }
    }
}

/// One named fault drill: failpoints armed together.
#[derive(Clone, Debug)]
pub struct ChaosScenario {
    /// Human-readable scenario name (unique within a suite).
    pub name: String,
    /// `(failpoint name, failpoint)` pairs to arm.
    pub points: Vec<(String, FailPoint)>,
}

impl ChaosScenario {
    /// Arm every failpoint of this scenario on the store's router.
    pub fn arm(&self, store: &StStore) {
        for (name, point) in &self.points {
            store.arm_failpoint(name.clone(), point.clone());
        }
    }

    /// Disarm this scenario's failpoints.
    pub fn disarm(&self, store: &StStore) {
        for (name, _) in &self.points {
            store.disarm_failpoint(name);
        }
    }
}

/// The fixed profile the CI chaos job uses: one slow shard (latency
/// past any default timeout), one flaky shard (transient errors that
/// stop after two attempts), one dead primary. Shards are chosen
/// spread across the cluster; with fewer than three shards the
/// profile degrades gracefully to the shards that exist.
pub fn default_profile(num_shards: usize) -> ChaosScenario {
    assert!(num_shards >= 1, "need at least one shard");
    let slow = 0;
    let flaky = (num_shards / 2).min(num_shards - 1);
    let dead = num_shards - 1;
    let mut points = vec![(
        "chaos/slow".to_string(),
        FailPoint::latency(slow, Duration::from_secs(3600)),
    )];
    if flaky != slow {
        points.push((
            "chaos/flaky".to_string(),
            FailPoint::transient(flaky).with_mode(FailPointMode::Times(2)),
        ));
    }
    if dead != slow && dead != flaky {
        points.push(("chaos/dead".to_string(), FailPoint::hard_failure(dead)));
    }
    ChaosScenario {
        name: "default-profile".to_string(),
        points,
    }
}

/// Generate a deterministic chaos suite: each scenario afflicts one
/// random shard with one random fault kind and firing mode.
pub fn scenarios(cfg: &ChaosConfig) -> Vec<ChaosScenario> {
    assert!(cfg.num_shards >= 1, "need at least one shard");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.scenarios);
    for i in 0..cfg.scenarios {
        let shard = rng.gen_range(0..cfg.num_shards);
        let n_kinds = if cfg.include_hard { 3 } else { 2 };
        let (kind_name, point) = match rng.gen_range(0..n_kinds) {
            0 => {
                // Latency from well-under to well-over a sane timeout.
                let ms = rng.gen_range(5..2_000u64);
                (
                    format!("latency-{ms}ms"),
                    FailPoint::latency(shard, Duration::from_millis(ms)),
                )
            }
            1 => ("transient".to_string(), FailPoint::transient(shard)),
            _ => ("hard".to_string(), FailPoint::hard_failure(shard)),
        };
        let (mode_name, mode) = match rng.gen_range(0..3usize) {
            0 => {
                let n = rng.gen_range(1..4u32);
                (format!("times{n}"), FailPointMode::Times(n))
            }
            1 => ("always".to_string(), FailPointMode::AlwaysOn),
            _ => {
                let probability = rng.gen_range(0.1..0.5f64);
                (
                    format!("p{:02}", (probability * 100.0) as u32),
                    FailPointMode::Random { probability },
                )
            }
        };
        let name = format!("chaos-{i}/{kind_name}-{mode_name}-shard{shard}");
        out.push(ChaosScenario {
            name: name.clone(),
            points: vec![(name, point.with_mode(mode))],
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_core::FaultKind;

    #[test]
    fn suite_is_deterministic_in_seed() {
        let cfg = ChaosConfig::default();
        let a = scenarios(&cfg);
        let b = scenarios(&cfg);
        assert_eq!(a.len(), cfg.scenarios);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.points, y.points);
        }
        let c = scenarios(&ChaosConfig {
            seed: 1,
            ..cfg.clone()
        });
        assert!(a.iter().zip(&c).any(|(x, y)| x.points != y.points));
    }

    #[test]
    fn scenarios_stay_inside_the_cluster() {
        let cfg = ChaosConfig {
            num_shards: 3,
            scenarios: 50,
            ..Default::default()
        };
        for s in scenarios(&cfg) {
            for (_, p) in &s.points {
                assert!(p.shard.unwrap() < 3, "{s:?}");
            }
        }
    }

    #[test]
    fn include_hard_false_never_kills_a_shard() {
        let cfg = ChaosConfig {
            include_hard: false,
            scenarios: 60,
            ..Default::default()
        };
        for s in scenarios(&cfg) {
            for (_, p) in &s.points {
                assert_ne!(p.kind, FaultKind::HardFailure, "{s:?}");
            }
        }
    }

    #[test]
    fn default_profile_covers_three_distinct_shards() {
        let p = default_profile(12);
        assert_eq!(p.points.len(), 3);
        let shards: Vec<usize> = p.points.iter().map(|(_, f)| f.shard.unwrap()).collect();
        assert_eq!(shards, vec![0, 6, 11]);
        // Degrades with tiny clusters.
        assert_eq!(default_profile(1).points.len(), 1);
        assert_eq!(default_profile(2).points.len(), 2);
    }

    #[test]
    fn arm_and_disarm_round_trip_on_a_store() {
        let store = StStore::new(sts_core::StoreConfig {
            num_shards: 4,
            ..Default::default()
        });
        let profile = default_profile(4);
        profile.arm(&store);
        assert_eq!(
            store.cluster().fault_injector().armed().len(),
            profile.points.len()
        );
        profile.disarm(&store);
        assert!(!store.cluster().fault_injector().is_active());
    }
}
